//! Co-citation similarity on a citation network — the paper's "similarity
//! computation" use case, exercising the rectangular `C = Aᵀ·A` path.
//!
//! `(AᵀA)[i][j]` counts (weighted) papers citing both `i` and `j`; rows of
//! the product are classic co-citation similarity vectors. The example also
//! runs a few power-iteration steps of a PageRank-style ranking with the
//! spMV kernels to pick interesting papers to compare.
//!
//! Run with: `cargo run --release --example cocitation_similarity`

use blockreorg::prelude::*;
use blockreorg::sparse::ops::{sparse_add, spmv_transpose};

fn main() {
    // Citation graph: R-MAT with moderate skew (citations follow fame).
    let a = rmat(RmatConfig::snap_like(13, 12, 99)).to_csr();
    let n = a.nrows();
    println!("citation graph: {} papers, {} citations", n, a.nnz());

    // --- PageRank-style ranking via repeated y = Aᵀ x (spMV substrate) ---
    let damping = 0.85;
    let mut rank = vec![1.0 / n as f64; n];
    let out_degree: Vec<f64> = a.row_degrees().iter().map(|&d| d.max(1) as f64).collect();
    for _ in 0..20 {
        let scaled: Vec<f64> = rank.iter().zip(&out_degree).map(|(&r, &d)| r / d).collect();
        let spread = spmv_transpose(&a, &scaled).expect("length matches nrows");
        rank = spread
            .iter()
            .map(|&s| (1.0 - damping) / n as f64 + damping * s)
            .collect();
    }
    let mut top: Vec<(usize, f64)> = rank.iter().copied().enumerate().collect();
    top.sort_by(|x, y| y.1.partial_cmp(&x.1).expect("ranks are finite"));
    println!("top-ranked papers: {:?}", &top[..5.min(top.len())]);

    // --- Co-citation similarity: C = Aᵀ · A on the simulated GPU ---
    let at = a.transpose();
    let device = DeviceConfig::titan_xp();
    let run = BlockReorganizer::new(ReorganizerConfig::default())
        .multiply(&at, &a, &device)
        .expect("inner dimensions agree");
    println!(
        "\nco-citation matrix: {} similar pairs, {:.2} ms simulated, {:.1} GFLOPS",
        run.result.nnz(),
        run.total_ms,
        run.gflops()
    );

    // Most similar partner of the top-ranked paper.
    let star = top[0].0;
    let (cols, vals) = run.result.row(star);
    if let Some((&best, &w)) = cols
        .iter()
        .zip(vals)
        .filter(|(&c, _)| c as usize != star)
        .max_by(|x, y| x.1.partial_cmp(y.1).expect("finite"))
    {
        println!("paper {star} is most co-cited with paper {best} (weight {w:.2})");
    }

    // Combine 1-hop citations and co-citation edges into one influence
    // graph (exercises sparse_add on same-shape operands).
    let influence = sparse_add(&a, &run.result).expect("same shapes");
    println!("combined influence graph: {} edges", influence.nnz());

    // Verify the rectangular product against the oracle.
    let oracle = spgemm_gustavson(&at, &a).expect("inner dimensions agree");
    assert!(run.result.approx_eq(&oracle, 1e-9));
    println!("\nAᵀA verified against the CPU reference ✓");
}
