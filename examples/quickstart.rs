//! Quickstart: square a power-law sparse network with the Block Reorganizer
//! on a simulated Titan Xp, verify the result against the CPU reference,
//! and print the pass's own statistics.
//!
//! Run with: `cargo run --release --example quickstart`

use blockreorg::prelude::*;

fn main() {
    // A ~16k-node social-network-like graph (R-MAT, Graph500 skew).
    let a = rmat(RmatConfig::graph500(14, 8, 7)).to_csr();
    let stats = DegreeStats::of_rows(&a);
    println!(
        "input: {} nodes, {} edges, max degree {}, gini {:.2} ({})",
        a.nrows(),
        a.nnz(),
        stats.max,
        stats.gini,
        if stats.is_skewed() {
            "skewed"
        } else {
            "regular"
        }
    );

    // Multiply C = A^2 with the full Block Reorganizer pipeline.
    let device = DeviceConfig::titan_xp();
    let reorganizer = BlockReorganizer::new(ReorganizerConfig::default());
    let run = reorganizer
        .multiply(&a, &a, &device)
        .expect("square shapes always agree");

    println!("\nBlock Reorganizer on {}:", device.name);
    println!("  dominator pairs:    {}", run.stats.dominators);
    println!("  low performers:     {}", run.stats.low_performers);
    println!("  gathered blocks:    {}", run.stats.gathered_blocks);
    println!("  limited merge rows: {}", run.stats.limited_rows);
    println!("  max split factor:   {}", run.stats.max_split_factor);
    println!("  nnz(C):             {}", run.result.nnz());
    println!("  simulated time:     {:.3} ms", run.total_ms);
    println!("  performance:        {:.2} GFLOPS", run.gflops());
    for p in &run.profiles {
        println!(
            "    {:<24} {:>8.3} ms  LBI {:.2}  L2 hit {:.0}%",
            p.name,
            p.time_ms,
            p.lbi(),
            p.l2.hit_rate() * 100.0
        );
    }

    // Verify against the sequential Gustavson oracle.
    let oracle = spgemm_gustavson(&a, &a).expect("square shapes always agree");
    assert!(
        run.result.approx_eq(&oracle, 1e-9),
        "simulated kernel result must match the CPU reference"
    );
    println!("\nresult verified against the CPU Gustavson reference ✓");
}
