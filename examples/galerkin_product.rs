//! The Galerkin triple product `Pᵀ·A·P` — the multigrid coarsening chain
//! where per-step plan caching pays off.
//!
//! An AMG or Newton outer loop re-assembles its operator every iteration:
//! the *values* of `A` change but the *structure* does not, and the
//! prolongator `P` is fixed. The chain runs the triple product twice —
//! once for `A`, once for a value-refreshed `A'` — and because
//! reorganization plans are keyed on operand structure, the refresh pass
//! hits the plan cache on both of its steps. Contrast with
//! `iterated_squaring`, where every step misses.
//!
//! Run with: `cargo run --release --example galerkin_product`

use blockreorg::gpu_sim::sim::GpuSimulator;
use blockreorg::obs::Registry;
use blockreorg::prelude::*;
use blockreorg::service::chain::{execute_chain, register_chain_instruments, ChainRequest};
use blockreorg::spgemm::accum::ScratchPool;
use std::sync::Arc;

fn main() {
    // A fine-level operator from a power-law mesh-ish graph; the canonical
    // prolongator aggregates pairs of fine nodes into coarse ones.
    let a = rmat(RmatConfig::snap_like(12, 6, 99)).to_csr();
    println!(
        "fine operator A: {}x{}, nnz {}",
        a.nrows(),
        a.ncols(),
        a.nnz()
    );

    let device = DeviceConfig::titan_xp();
    let sim = GpuSimulator::new(device.clone());
    let pool = ScratchPool::new();
    let registry = Arc::new(Registry::new());
    let instruments = register_chain_instruments(&registry);
    let cache = PlanCache::with_registry(8, registry.clone());

    let request = ChainRequest::workload(0, Workload::Galerkin, &a);
    let outcome = execute_chain(
        0,
        &device,
        &sim,
        &cache,
        &pool,
        None,
        ReorderStrategy::None,
        &instruments,
        &registry,
        request,
        0.0,
    )
    .expect("galerkin chain executes");

    for s in &outcome.steps {
        println!(
            "  step {} {:<17} plan {:<4} structure {:<6} {:>9.4} ms  nnz {}",
            s.index,
            s.label,
            if s.cache_hit { "hit" } else { "miss" },
            if s.fresh_structure { "fresh" } else { "reused" },
            s.total_ms,
            s.output_nnz,
        );
    }
    println!(
        "\ncoarse operator: {}x{}, nnz {} — {} plan-cache hits / {} misses",
        outcome.result.nrows(),
        outcome.result.ncols(),
        outcome.result.nnz(),
        outcome.cache_hits(),
        outcome.cache_misses()
    );
    // The refresh pass repeats the first pass's operand structures, so a
    // structure-keyed plan cache serves exactly its two steps.
    let hits: Vec<bool> = outcome.steps.iter().map(|s| s.cache_hit).collect();
    assert_eq!(hits, [false, false, true, true]);
    assert_eq!(outcome.structure_churn(), 2);
}
