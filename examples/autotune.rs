//! Auto-tuning the Block Reorganizer for a specific matrix — the extension
//! the paper's "it is difficult to find an optimal point for each matrix"
//! remarks ask for.
//!
//! Run with: `cargo run --release --example autotune`

use block_reorganizer::{tune, WorkloadReport};
use blockreorg::prelude::*;
use blockreorg::spgemm::ProblemContext;

fn main() {
    let spec = RealWorldRegistry::get("as-caida").expect("registry dataset");
    let a = spec.generate(blockreorg::datasets::ScaleFactor::Div(32));
    let device = DeviceConfig::titan_xp();
    let ctx = ProblemContext::new(&a, &a).expect("square shapes agree");

    println!(
        "dataset: {} surrogate ({} nodes, {} edges)\n",
        spec.name,
        a.nrows(),
        a.nnz()
    );
    println!(
        "{}\n",
        WorkloadReport::of(&ctx, &ReorganizerConfig::default(), &device)
    );

    let result = tune(&ctx, &device).expect("square shapes agree");
    println!(
        "tuned in {} simulated runs: {:.3} ms -> {:.3} ms ({:.2}x over default)",
        result.evaluations,
        result.default_ms,
        result.best_ms,
        result.gain()
    );
    println!(
        "best config: alpha={}, policy={:?}, limiting_units={}",
        result.config.alpha, result.config.split_policy, result.config.limiting_units
    );

    // The tuned config still computes the exact product.
    let run = BlockReorganizer::new(result.config)
        .multiply_ctx(&ctx, &device)
        .expect("square shapes agree");
    let oracle = spgemm_gustavson(&a, &a).expect("square shapes agree");
    assert!(run.result.approx_eq(&oracle, 1e-9));
    println!("\ntuned result verified against the CPU reference ✓");
}
