//! Triangle counting via the masked square `A² ∘ A` — one SpGEMM plus a
//! mask-by-pattern post-op, run as a single-step chain.
//!
//! Entry `(i,j)` of the masked square counts the common neighbours of the
//! stored edge `(i,j)`; for an undirected simple graph, summing all
//! entries counts each triangle six times (3 edges × 2 directions).
//!
//! Run with: `cargo run --release --example triangle_count`

use blockreorg::gpu_sim::sim::GpuSimulator;
use blockreorg::obs::Registry;
use blockreorg::prelude::*;
use blockreorg::service::chain::{execute_chain, register_chain_instruments, ChainRequest};
use blockreorg::spgemm::accum::ScratchPool;
use blockreorg::workloads::planted_partition;
use std::sync::Arc;

fn main() {
    // Eight 6-cliques with no cross edges: each K6 holds C(6,3) = 20
    // triangles, so the ground truth is exactly 160.
    let (blocks, per_block) = (8, 6);
    let a = planted_partition(blocks, per_block, 0, 3);
    let expected = blocks * per_block * (per_block - 1) * (per_block - 2) / 6;
    println!(
        "graph: {} nodes, {} directed edges ({} disjoint {}-cliques)",
        a.nrows(),
        a.nnz(),
        blocks,
        per_block
    );

    let device = DeviceConfig::tesla_v100();
    let sim = GpuSimulator::new(device.clone());
    let pool = ScratchPool::new();
    let registry = Arc::new(Registry::new());
    let instruments = register_chain_instruments(&registry);
    let cache = PlanCache::with_registry(4, registry.clone());

    let request = ChainRequest::workload(0, Workload::Triangle, &a);
    let outcome = execute_chain(
        0,
        &device,
        &sim,
        &cache,
        &pool,
        None,
        ReorderStrategy::None,
        &instruments,
        &registry,
        request,
        0.0,
    )
    .expect("triangle chain executes");

    let step = &outcome.steps[0];
    println!(
        "masked square: product nnz {} -> masked nnz {} in {:.4} ms simulated on {}",
        step.product_nnz, step.output_nnz, step.total_ms, device.name
    );

    // Σ (A² ∘ A) = 6 · triangles.
    let total: f64 = outcome.result.val().iter().sum();
    let triangles = (total / 6.0).round() as usize;
    println!("triangles: {triangles} (expected {expected})");
    assert_eq!(triangles, expected);
}
