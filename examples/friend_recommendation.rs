//! Friend-of-friend recommendation on a social network — the paper's
//! motivating SNS workload (`C = A²` counts weighted 2-hop paths).
//!
//! For each user, the strongest entries of row `i` of `A²` that are not
//! already direct friends are the classic "people you may know" candidates.
//!
//! Run with: `cargo run --release --example friend_recommendation`

use blockreorg::datasets::chung_lu::{chung_lu, ChungLuConfig};
use blockreorg::prelude::*;

fn main() {
    // A power-law "friendship" network: most users have a handful of
    // friends, a few hubs have thousands.
    let n = 20_000;
    let a = chung_lu(ChungLuConfig::social(n, 120_000, 2024)).to_csr();
    println!("social network: {} users, {} directed edges", n, a.nnz());

    // Two-hop path counts via the Block Reorganizer on a simulated V100.
    let device = DeviceConfig::tesla_v100();
    let run = BlockReorganizer::new(ReorganizerConfig::default())
        .multiply(&a, &a, &device)
        .expect("square shapes agree");
    let two_hop = &run.result;
    println!(
        "A^2: {} candidate pairs in {:.2} ms simulated on {} ({:.1} GFLOPS)",
        two_hop.nnz(),
        run.total_ms,
        device.name,
        run.gflops()
    );

    // Recommend: for a few sample users, the top-3 two-hop neighbours that
    // are not already friends.
    let users = [0usize, 42, 4242, 19_999];
    for &u in &users {
        let (direct, _) = a.row(u);
        let (cands, weights) = two_hop.row(u);
        let mut scored: Vec<(u32, f64)> = cands
            .iter()
            .zip(weights)
            .filter(|(&c, _)| c as usize != u && direct.binary_search(&c).is_err())
            .map(|(&c, &w)| (c, w))
            .collect();
        scored.sort_by(|x, y| y.1.partial_cmp(&x.1).expect("weights are finite"));
        let top: Vec<String> = scored
            .iter()
            .take(3)
            .map(|(c, w)| format!("user {c} (score {w:.2})"))
            .collect();
        println!(
            "user {u:>6}: {} direct friends, recommend → [{}]",
            direct.len(),
            top.join(", ")
        );
    }

    // Sanity: recommendations derive from a verified product.
    let oracle = spgemm_gustavson(&a, &a).expect("square shapes agree");
    assert!(two_hop.approx_eq(&oracle, 1e-9));
    println!("\ntwo-hop matrix verified against the CPU reference ✓");
}
