//! Markov clustering (MCL) — iterated expansion with column-normalise and
//! prune post-ops after every SpGEMM, converging to a block fixed point.
//!
//! The chain squares a column-stochastic seed matrix repeatedly; the
//! normalise/prune post-ops play the role of MCL's inflation, starving
//! weak cross-cluster walks until only within-cluster structure survives.
//! On a planted-partition graph the converged matrix recovers the planted
//! blocks exactly.
//!
//! Run with: `cargo run --release --example markov_clustering`

use blockreorg::gpu_sim::sim::GpuSimulator;
use blockreorg::obs::Registry;
use blockreorg::prelude::*;
use blockreorg::service::chain::{execute_chain, register_chain_instruments, ChainRequest};
use blockreorg::spgemm::accum::ScratchPool;
use blockreorg::workloads::planted_partition;
use std::sync::Arc;

fn main() {
    // Four ground-truth communities of 8 nodes plus a few noisy cross
    // edges the clustering has to shrug off.
    let (blocks, per_block) = (4, 8);
    let a = planted_partition(blocks, per_block, 5, 17);
    println!(
        "graph: {} nodes, {} directed edges, {} planted communities",
        a.nrows(),
        a.nnz(),
        blocks
    );

    let device = DeviceConfig::titan_xp();
    let sim = GpuSimulator::new(device.clone());
    let pool = ScratchPool::new();
    let registry = Arc::new(Registry::new());
    let instruments = register_chain_instruments(&registry);
    let cache = PlanCache::with_registry(16, registry.clone());

    let workload = Workload::Markov {
        iters: 6,
        tol: 0.05,
    };
    let request = ChainRequest::workload(0, workload, &a);
    let outcome = execute_chain(
        0,
        &device,
        &sim,
        &cache,
        &pool,
        None,
        ReorderStrategy::None,
        &instruments,
        &registry,
        request,
        0.0,
    )
    .expect("markov chain executes");

    for s in &outcome.steps {
        println!(
            "  {} nnz {} -> {} after normalise+prune ({:.4} ms)",
            s.label, s.product_nnz, s.output_nnz, s.total_ms
        );
    }

    // Read the clustering off the fixed point: each column's attractor is
    // the row holding its largest transition mass.
    let m = &outcome.result;
    let mut attractor = vec![usize::MAX; m.ncols()];
    let mut best = vec![f64::NEG_INFINITY; m.ncols()];
    for (r, c, v) in m.iter() {
        if v > best[c as usize] {
            best[c as usize] = v;
            attractor[c as usize] = r as usize;
        }
    }
    let mut clusters: Vec<usize> = attractor.clone();
    clusters.sort_unstable();
    clusters.dedup();
    println!(
        "\nconverged in {} expansions: {} clusters recovered (expected {})",
        outcome.steps.len(),
        clusters.len(),
        blocks
    );
    assert_eq!(clusters.len(), blocks);
    // And nobody is attracted across a planted block boundary.
    for (node, &attr) in attractor.iter().enumerate() {
        assert_eq!(
            node / per_block,
            attr / per_block,
            "node {node} crossed blocks"
        );
    }
}
