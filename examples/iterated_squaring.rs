//! Iterated squaring — `A^(2^k)` by `k` chained SpGEMMs, the workload
//! that defeats plan caching on purpose.
//!
//! Every squaring step multiplies a matrix whose sparsity pattern no
//! earlier step produced (fill-in changes the structure each time), so a
//! structure-keyed plan cache misses on every step. This example runs the
//! chain through the plan-cached service executor and shows the all-miss,
//! all-fresh step log — the honest baseline to contrast with
//! `galerkin_product`, where the cache pays off.
//!
//! Run with: `cargo run --release --example iterated_squaring`

use blockreorg::gpu_sim::sim::GpuSimulator;
use blockreorg::obs::Registry;
use blockreorg::prelude::*;
use blockreorg::service::chain::{execute_chain, register_chain_instruments, ChainRequest};
use blockreorg::spgemm::accum::ScratchPool;
use std::sync::Arc;

fn main() {
    // A power-law web-ish graph; A^(2^k) counts length-2^k paths, the
    // classic multi-hop reachability build-up.
    let a = rmat(RmatConfig::snap_like(9, 8, 7)).to_csr();
    let k = 3;
    println!(
        "A: {}x{}, nnz {} — squaring {k} times",
        a.nrows(),
        a.ncols(),
        a.nnz()
    );

    let device = DeviceConfig::titan_xp();
    let sim = GpuSimulator::new(device.clone());
    let pool = ScratchPool::new();
    let registry = Arc::new(Registry::new());
    let instruments = register_chain_instruments(&registry);
    let cache = PlanCache::with_registry(16, registry.clone());

    let request = ChainRequest::workload(0, Workload::Square { k }, &a);
    let outcome = execute_chain(
        0,
        &device,
        &sim,
        &cache,
        &pool,
        None,
        ReorderStrategy::None,
        &instruments,
        &registry,
        request,
        0.0,
    )
    .expect("square chain executes");

    for s in &outcome.steps {
        println!(
            "  step {} {:<10} plan {:<4} structure {:<6} {:>9.4} ms  nnz {} ({:.2}x fill-in)",
            s.index,
            s.label,
            if s.cache_hit { "hit" } else { "miss" },
            if s.fresh_structure { "fresh" } else { "reused" },
            s.total_ms,
            s.output_nnz,
            s.fill_in_permille as f64 / 1000.0,
        );
    }
    println!(
        "\nA^{}: nnz {} in {:.3} ms simulated — {} cache hits out of {} steps",
        1 << k,
        outcome.result.nnz(),
        outcome.total_ms,
        outcome.cache_hits(),
        outcome.steps.len()
    );
    assert_eq!(
        outcome.cache_hits(),
        0,
        "every squaring step is a new structure"
    );
    assert_eq!(outcome.structure_churn(), k, "all {k} steps churn");
}
