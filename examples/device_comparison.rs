//! Compare all seven spGEMM methods across the paper's three GPU
//! generations on one skewed workload — a miniature of Figures 8 and 15.
//!
//! Run with: `cargo run --release --example device_comparison`

use blockreorg::prelude::*;
use blockreorg::spgemm::pipeline::run_method;

fn main() {
    let spec = RealWorldRegistry::get("sx-mathoverflow").expect("registry dataset");
    let a = spec.generate(blockreorg::datasets::ScaleFactor::Tiny);
    let ctx = blockreorg::spgemm::ProblemContext::new(&a, &a).expect("square shapes agree");
    println!(
        "dataset: {} surrogate ({} nodes, {} edges; paper size {} / {})\n",
        spec.name,
        a.nrows(),
        a.nnz(),
        spec.paper_dim,
        spec.paper_nnz_a
    );

    println!(
        "{:<20} {:>12} {:>12} {:>12}",
        "method", "Titan Xp", "Tesla V100", "RTX 2080 Ti"
    );
    let devices = DeviceConfig::all_paper_targets();
    let mut row_base = [0.0f64; 3];
    for (d, dev) in devices.iter().enumerate() {
        row_base[d] = run_method(&ctx, SpgemmMethod::RowProduct, dev)
            .expect("valid shapes")
            .total_ms;
    }
    for method in SpgemmMethod::all() {
        let mut cells = Vec::new();
        for (d, dev) in devices.iter().enumerate() {
            let ms = run_method(&ctx, method, dev)
                .expect("valid shapes")
                .total_ms;
            cells.push(format!("{:.2}x", row_base[d] / ms));
        }
        println!(
            "{:<20} {:>12} {:>12} {:>12}",
            method.name(),
            cells[0],
            cells[1],
            cells[2]
        );
    }
    let mut cells = Vec::new();
    for (d, dev) in devices.iter().enumerate() {
        let run = BlockReorganizer::new(ReorganizerConfig::default())
            .multiply_ctx(&ctx, dev)
            .expect("valid shapes");
        cells.push(format!("{:.2}x", row_base[d] / run.total_ms));
    }
    println!(
        "{:<20} {:>12} {:>12} {:>12}",
        "Block-Reorganizer", cells[0], cells[1], cells[2]
    );
    println!("\n(speedups normalized to each device's row-product baseline, as in Fig. 15)");
}
