//! Cross-crate integration tests: every simulated method, on every dataset
//! class, must reproduce the CPU oracle's numeric result, deterministically.

use blockreorg::datasets::registry::ScaleFactor;
use blockreorg::prelude::*;
use blockreorg::spgemm::pipeline::run_method;
use blockreorg::spgemm::ProblemContext;

/// Datasets covering both distribution classes, small enough for CI.
fn test_specs() -> Vec<DatasetSpec> {
    ["harbor", "mario002", "as-caida", "emailEnron"]
        .iter()
        .map(|n| RealWorldRegistry::get(n).expect("registry dataset"))
        .collect()
}

#[test]
fn all_methods_match_oracle_on_both_dataset_classes() {
    let dev = DeviceConfig::titan_xp();
    for spec in test_specs() {
        let a = spec.generate(ScaleFactor::Div(128));
        let ctx = ProblemContext::new(&a, &a).expect("square shapes agree");
        let oracle = spgemm_gustavson(&a, &a).expect("square shapes agree");
        for m in SpgemmMethod::all() {
            let run = run_method(&ctx, m, &dev).expect("valid shapes");
            assert!(
                run.result.approx_eq(&oracle, 1e-9),
                "{} wrong on {}",
                m.name(),
                spec.name
            );
        }
        let run = BlockReorganizer::new(ReorganizerConfig::default())
            .multiply_ctx(&ctx, &dev)
            .expect("valid shapes");
        assert!(
            run.result.approx_eq(&oracle, 1e-9),
            "Block-Reorganizer wrong on {}",
            spec.name
        );
    }
}

#[test]
fn rectangular_pair_product_matches_oracle() {
    let dev = DeviceConfig::titan_xp();
    let a = rmat(RmatConfig::snap_like(9, 6, 1)).to_csr();
    let b = rmat(RmatConfig::uniform(9, 4, 2)).to_csr();
    let ctx = ProblemContext::new(&a, &b).expect("shapes agree");
    let oracle = spgemm_gustavson(&a, &b).expect("shapes agree");
    for m in SpgemmMethod::all() {
        let run = run_method(&ctx, m, &dev).expect("valid shapes");
        assert!(
            run.result.approx_eq(&oracle, 1e-9),
            "{} wrong on C=AB",
            m.name()
        );
    }
    let run = BlockReorganizer::new(ReorganizerConfig::default())
        .multiply_ctx(&ctx, &dev)
        .expect("valid shapes");
    assert!(run.result.approx_eq(&oracle, 1e-9));
}

#[test]
fn simulation_is_fully_deterministic() {
    let dev = DeviceConfig::titan_xp();
    let spec = RealWorldRegistry::get("slashDot").expect("registry dataset");
    let a = spec.generate(ScaleFactor::Div(128));
    let reorg = BlockReorganizer::new(ReorganizerConfig::default());
    let r1 = reorg.multiply(&a, &a, &dev).expect("valid shapes");
    let r2 = reorg.multiply(&a, &a, &dev).expect("valid shapes");
    assert_eq!(r1.total_ms, r2.total_ms);
    assert_eq!(r1.stats, r2.stats);
    assert_eq!(r1.result, r2.result);
    assert_eq!(r1.profiles.len(), r2.profiles.len());
    for (p1, p2) in r1.profiles.iter().zip(&r2.profiles) {
        assert_eq!(p1.makespan_cycles, p2.makespan_cycles);
        assert_eq!(p1.l2, p2.l2);
    }
}

#[test]
fn reorganizer_works_on_every_paper_device() {
    let spec = RealWorldRegistry::get("epinions").expect("registry dataset");
    let a = spec.generate(ScaleFactor::Div(128));
    let oracle = spgemm_gustavson(&a, &a).expect("square shapes agree");
    for dev in DeviceConfig::all_paper_targets() {
        let run = BlockReorganizer::new(ReorganizerConfig::default())
            .multiply(&a, &a, &dev)
            .expect("valid shapes");
        assert!(run.result.approx_eq(&oracle, 1e-9), "wrong on {}", dev.name);
        assert!(run.total_ms > 0.0);
    }
}

#[test]
fn identity_and_empty_edge_cases_run_through_the_whole_stack() {
    let dev = DeviceConfig::titan_xp();
    let reorg = BlockReorganizer::new(ReorganizerConfig::default());

    let i = CsrMatrix::<f64>::identity(100);
    let run = reorg.multiply(&i, &i, &dev).expect("valid shapes");
    assert!(run.result.approx_eq(&i, 1e-15));

    let z = CsrMatrix::<f64>::zeros(50, 50);
    let run = reorg.multiply(&z, &z, &dev).expect("valid shapes");
    assert_eq!(run.result.nnz(), 0);

    // mismatched shapes must error, not panic
    let a = CsrMatrix::<f64>::zeros(3, 4);
    let b = CsrMatrix::<f64>::zeros(5, 6);
    assert!(reorg.multiply(&a, &b, &dev).is_err());
}

#[test]
fn matrix_market_roundtrip_through_the_pipeline() {
    use blockreorg::sparse::io::{read_matrix_market, write_matrix_market};
    let a = rmat(RmatConfig::uniform(8, 4, 11)).to_csr();
    let mut buf = Vec::new();
    write_matrix_market(&a, &mut buf).expect("in-memory write succeeds");
    let back = read_matrix_market::<f64, _>(buf.as_slice())
        .expect("own output parses")
        .to_csr();
    assert!(a.approx_eq(&back, 1e-12));

    let dev = DeviceConfig::titan_xp();
    let run = BlockReorganizer::new(ReorganizerConfig::default())
        .multiply(&back, &back, &dev)
        .expect("valid shapes");
    let oracle = spgemm_gustavson(&a, &a).expect("square shapes agree");
    assert!(run.result.approx_eq(&oracle, 1e-9));
}
