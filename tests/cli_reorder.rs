//! CLI contract for the `--reorder` strategy flag: unknown spellings must
//! be rejected with exit code 2 and a message naming the bad value and the
//! valid strategies, before any worker pool spins up; valid spellings must
//! clear flag parsing (their failures, if any, are later and different).

use std::process::Command;

fn run_batch_with_reorder(value: &str) -> std::process::Output {
    // `--jobs` is checked after flag parsing, so a bad strategy fails
    // first and a good one falls through to the missing-file error.
    Command::new(env!("CARGO_BIN_EXE_blockreorg-cli"))
        .args([
            "batch",
            "--jobs",
            "/nonexistent/jobs.txt",
            "--reorder",
            value,
        ])
        .output()
        .expect("CLI binary runs")
}

#[test]
fn unknown_reorder_strategy_is_rejected_with_exit_2_and_choices() {
    for bad in ["degre", "DEGREE-SORT", "bfs", "42", ""] {
        let out = run_batch_with_reorder(bad);
        assert_eq!(
            out.status.code(),
            Some(2),
            "--reorder {bad:?} must exit 2 (usage error)"
        );
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(stderr.contains("bad --reorder value"), "{bad:?}: {stderr}");
        assert!(
            stderr.contains(&format!("{bad:?}")),
            "message must name the bad value: {stderr}"
        );
        assert!(
            stderr.contains("none") && stderr.contains("rcm") && stderr.contains("cluster"),
            "message must list the valid strategies: {stderr}"
        );
    }
}

#[test]
fn valid_reorder_strategies_clear_flag_parsing() {
    // Every valid spelling (case-insensitive, whitespace-tolerant) gets
    // past the parser and dies on the nonexistent job file instead: exit 1
    // (runtime), not 2 (usage).
    for good in ["none", "degree", "rcm", "cluster", "auto", " Degree "] {
        let out = run_batch_with_reorder(good);
        assert_eq!(
            out.status.code(),
            Some(1),
            "--reorder {good:?} must parse and fail on the job file"
        );
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            stderr.contains("cannot read job file"),
            "{good:?}: {stderr}"
        );
    }
}

#[test]
fn serve_mode_rejects_unknown_reorder_too() {
    let out = Command::new(env!("CARGO_BIN_EXE_blockreorg-cli"))
        .args(["serve", "--listen", "127.0.0.1:0", "--reorder", "sorted"])
        .output()
        .expect("CLI binary runs");
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("bad --reorder value"), "{stderr}");
    assert!(stderr.contains("\"sorted\""), "{stderr}");
}

#[test]
fn unknown_bench_suite_message_includes_reorder() {
    let out = Command::new(env!("CARGO_BIN_EXE_blockreorg-cli"))
        .args(["bench", "run", "--suite", "nope"])
        .output()
        .expect("CLI binary runs");
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown suite"), "{stderr}");
    assert!(
        stderr.contains("reorder"),
        "suite list must include the reorder suite: {stderr}"
    );
}
