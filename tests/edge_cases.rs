//! Adversarial structural edge cases through the full stack: degenerate
//! shapes, extreme skew patterns, and the pathological matrices that break
//! naive block bookkeeping (empty rows, dense hubs, strict triangles).

use blockreorg::prelude::*;
use blockreorg::spgemm::pipeline::run_method;
use blockreorg::spgemm::ProblemContext;

fn verify_all(a: &CsrMatrix<f64>, b: &CsrMatrix<f64>) {
    let dev = DeviceConfig::titan_xp();
    let ctx = ProblemContext::new(a, b).expect("shapes agree");
    let oracle = spgemm_gustavson(a, b).expect("shapes agree");
    for m in SpgemmMethod::all() {
        let run = run_method(&ctx, m, &dev).expect("valid shapes");
        assert!(
            run.result.approx_eq(&oracle, 1e-9),
            "{} diverged on edge case",
            m.name()
        );
    }
    let run = BlockReorganizer::new(ReorganizerConfig::default())
        .multiply_ctx(&ctx, &dev)
        .expect("valid shapes");
    assert!(run.result.approx_eq(&oracle, 1e-9), "reorganizer diverged");
}

/// n×n with one full row r0 and one full column c0.
fn cross(n: usize, r0: usize, c0: usize) -> CsrMatrix<f64> {
    let mut coo = CooMatrix::new(n, n);
    for j in 0..n {
        coo.push(r0 as u32, j as u32, 1.0 + j as f64 * 0.01)
            .unwrap();
    }
    for i in 0..n {
        if i != r0 {
            coo.push(i as u32, c0 as u32, 2.0 - i as f64 * 0.01)
                .unwrap();
        }
    }
    coo.to_csr()
}

#[test]
fn arrow_matrix_hub_row_and_column() {
    // One dominator pair (the full column × the full row) plus a tail of
    // single-entry pairs — the most extreme classification split possible.
    verify_all(&cross(200, 0, 0), &cross(200, 0, 0));
}

#[test]
fn off_center_cross_and_mismatched_hubs() {
    let a = cross(150, 40, 90);
    let b = cross(150, 90, 40);
    verify_all(&a, &b);
}

#[test]
fn single_row_and_single_column_matrices() {
    // 1×n times n×1 → 1×1 dense dot product.
    let n = 300;
    let row = CsrMatrix::try_new(
        1,
        n,
        vec![0, n],
        (0..n as u32).collect(),
        (0..n).map(|i| 1.0 + i as f64).collect(),
    )
    .unwrap();
    let col = CsrMatrix::try_new(
        n,
        1,
        (0..=n).collect(),
        vec![0u32; n],
        (0..n).map(|i| 2.0 - i as f64 * 0.001).collect(),
    )
    .unwrap();
    verify_all(&row, &col);
    // n×1 times 1×n → rank-1 n×n (one enormous outer-product pair).
    verify_all(&col, &row);
}

#[test]
fn strictly_triangular_chain() {
    // Superdiagonal shift matrix: A² is the double shift; nilpotent
    // structure exercises rows that produce nothing.
    let n = 128;
    let shift = CsrMatrix::try_new(
        n,
        n,
        (0..=n).map(|r| r.min(n - 1)).collect(),
        (1..n as u32).collect(),
        vec![1.0; n - 1],
    )
    .unwrap();
    verify_all(&shift, &shift);
    let c = spgemm_gustavson(&shift, &shift).unwrap();
    assert_eq!(c.nnz(), n - 2);
}

#[test]
fn mostly_empty_matrix_with_sparse_survivors() {
    let n = 500;
    let mut coo = CooMatrix::new(n, n);
    // entries only every 97th row
    for r in (0..n).step_by(97) {
        coo.push(r as u32, ((r * 31) % n) as u32, 1.5).unwrap();
        coo.push(r as u32, ((r * 57) % n) as u32, -0.5).unwrap();
    }
    verify_all(&coo.to_csr(), &coo.to_csr());
}

#[test]
fn wide_and_tall_rectangles() {
    let wide = rmat(RmatConfig::uniform(9, 2, 3).with_dim(40).with_edges(70)); // built on 512 grid, clipped
    let wide = wide.to_csr(); // 40×40
    let tall = wide.transpose();
    verify_all(&wide, &tall);
}

#[test]
fn values_with_cancellation_keep_symbolic_structure() {
    // a row of +1/-1 times a column of 1s → exact zero, still stored.
    let a = CsrMatrix::try_new(2, 2, vec![0, 2, 2], vec![0, 1], vec![1.0, -1.0]).unwrap();
    let b = CsrMatrix::try_new(2, 2, vec![0, 1, 2], vec![0, 0], vec![1.0, 1.0]).unwrap();
    let dev = DeviceConfig::titan_xp();
    let run = BlockReorganizer::new(ReorganizerConfig::default())
        .multiply(&a, &b, &dev)
        .unwrap();
    assert_eq!(run.result.nnz(), 1);
    assert_eq!(run.result.get(0, 0), 0.0);
    // prune() is the user-facing way to drop it
    assert_eq!(run.result.prune(1e-12).nnz(), 0);
}

#[test]
fn f32_scalar_path_works_end_to_end() {
    // The whole stack is generic over Scalar; run the f32 instantiation.
    let mut coo = CooMatrix::<f32>::new(64, 64);
    let mut x = 1u64;
    for _ in 0..400 {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let r = (x >> 33) % 64;
        let c = (x >> 13) % 64;
        coo.push(r as u32, c as u32, 0.5 + (x % 100) as f32 / 100.0)
            .unwrap();
    }
    let a = coo.to_csr();
    let dev = DeviceConfig::rtx_2080_ti();
    let run = BlockReorganizer::new(ReorganizerConfig::default())
        .multiply(&a, &a, &dev)
        .unwrap();
    let oracle = spgemm_gustavson(&a, &a).unwrap();
    assert!(run.result.approx_eq(&oracle, 1e-3)); // f32 tolerance
}
