//! CLI contract for the `--bins` threshold override: malformed, inverted,
//! or overlapping spellings must be rejected with exit code 2 and a
//! message naming the offending values, before any suite work starts.

use std::process::Command;

fn run_bins(value: &str) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_blockreorg-cli"))
        .args(["bench", "run", "--suite", "quick", "--bins", value])
        .output()
        .expect("CLI binary runs")
}

#[test]
fn reversed_bins_are_rejected_with_exit_2_and_both_values() {
    let out = run_bins("512,4");
    assert_eq!(out.status.code(), Some(2), "usage errors exit 2");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("bad --bins value"), "{stderr}");
    assert!(
        stderr.contains("512") && stderr.contains("4"),
        "message must name both thresholds: {stderr}"
    );
}

#[test]
fn kway_threshold_below_heavy_is_rejected() {
    let out = run_bins("4,512,256");
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("512") && stderr.contains("256"),
        "message must name the overlapping pair: {stderr}"
    );
}

#[test]
fn malformed_bins_are_rejected() {
    for bad in ["abc", "16", "1,2,3,4"] {
        let out = run_bins(bad);
        assert_eq!(out.status.code(), Some(2), "--bins {bad} must exit 2");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(stderr.contains("bad --bins value"), "{bad}: {stderr}");
    }
}
