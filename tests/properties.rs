//! Property-based tests (proptest) over the invariants in DESIGN.md §6.

use block_reorganizer::config::SplitPolicy;
use block_reorganizer::split::SplitPlan;
use blockreorg::prelude::*;
use blockreorg::spgemm::numeric::{spgemm_dense_spa, spgemm_hash, spgemm_sort_reduce};
use blockreorg::spgemm::pipeline::run_method;
use blockreorg::spgemm::ProblemContext;
use proptest::prelude::*;

/// Strategy: a random COO matrix up to `max_dim` × `max_dim` with up to
/// `max_nnz` (possibly duplicate) entries.
fn coo_strategy(max_dim: u32, max_nnz: usize) -> impl Strategy<Value = CooMatrix<f64>> {
    (1..max_dim, 1..max_dim).prop_flat_map(move |(nr, nc)| {
        proptest::collection::vec((0..nr, 0..nc, -4.0f64..4.0), 0..max_nnz).prop_map(move |trips| {
            let mut coo = CooMatrix::new(nr as usize, nc as usize);
            for (r, c, v) in trips {
                coo.push(r, c, v).expect("in bounds by construction");
            }
            coo
        })
    })
}

/// Strategy: a random *square* CSR matrix.
fn square_csr(max_dim: u32, max_nnz: usize) -> impl Strategy<Value = CsrMatrix<f64>> {
    (2..max_dim).prop_flat_map(move |n| {
        proptest::collection::vec((0..n, 0..n, 0.25f64..4.0), 1..max_nnz).prop_map(move |trips| {
            let mut coo = CooMatrix::new(n as usize, n as usize);
            for (r, c, v) in trips {
                coo.push(r, c, v).expect("in bounds by construction");
            }
            coo.to_csr()
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn coo_csr_preserves_summed_triplets(coo in coo_strategy(24, 60)) {
        let csr = coo.to_csr();
        csr.check_invariants().expect("canonical output");
        // Sum duplicates by hand and compare via dense.
        let mut dense = vec![0.0; coo.nrows() * coo.ncols()];
        for (r, c, v) in coo.iter() {
            dense[r as usize * coo.ncols() + c as usize] += v;
        }
        for r in 0..coo.nrows() {
            for c in 0..coo.ncols() {
                let want = dense[r * coo.ncols() + c];
                prop_assert!((csr.get(r, c) - want).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn transpose_is_involutive(coo in coo_strategy(24, 60)) {
        let csr = coo.to_csr();
        prop_assert_eq!(csr.transpose().transpose(), csr);
    }

    #[test]
    fn csc_roundtrip_identity(coo in coo_strategy(24, 60)) {
        let csr = coo.to_csr();
        prop_assert_eq!(csr.to_csc().to_csr(), csr);
    }

    #[test]
    fn three_numeric_mergers_agree(a in square_csr(20, 50)) {
        let spa = spgemm_dense_spa(&a, &a).expect("square shapes");
        let esc = spgemm_sort_reduce(&a, &a).expect("square shapes");
        let hash = spgemm_hash(&a, &a).expect("square shapes");
        prop_assert_eq!(spa.ptr(), esc.ptr());
        prop_assert_eq!(spa.idx(), esc.idx());
        prop_assert!(spa.approx_eq(&esc, 1e-9));
        prop_assert!(spa.approx_eq(&hash, 1e-9));
    }

    #[test]
    fn oracle_matches_dense_multiplication(a in square_csr(16, 40)) {
        let c = spgemm_gustavson(&a, &a).expect("square shapes");
        let expect = a.to_dense().matmul(&a.to_dense());
        prop_assert!(c.to_dense().approx_eq(&expect, 1e-9));
    }

    #[test]
    fn symbolic_counts_match_numeric_structure(a in square_csr(20, 50)) {
        use blockreorg::sparse::ops::{row_intermediate_nnz, symbolic_nnz, block_products};
        let c = spgemm_gustavson(&a, &a).expect("square shapes");
        let sym = symbolic_nnz(&a, &a).expect("square shapes");
        for (r, &count) in sym.iter().enumerate() {
            prop_assert_eq!(count, c.row_nnz(r));
        }
        let rows = row_intermediate_nnz(&a, &a).expect("square shapes");
        let blocks = block_products(&a, &a).expect("square shapes");
        prop_assert_eq!(rows.iter().sum::<u64>(), blocks.iter().sum::<u64>());
    }

    #[test]
    fn split_plan_partitions_any_column(nnz in 1usize..5000, factor_log in 0u32..8) {
        let plan = SplitPlan::new(0, nnz, 1 << factor_log);
        let mut cursor = 0usize;
        for &(s, e) in &plan.pieces {
            prop_assert_eq!(s, cursor);
            prop_assert!(e > s);
            cursor = e;
        }
        prop_assert_eq!(cursor, nnz);
    }

    #[test]
    fn matrix_market_roundtrip_any_matrix(coo in coo_strategy(24, 60)) {
        use blockreorg::sparse::io::{read_matrix_market, write_matrix_market};
        let m = coo.to_csr();
        let mut buf = Vec::new();
        write_matrix_market(&m, &mut buf).expect("in-memory write succeeds");
        let back = read_matrix_market::<f64, _>(buf.as_slice())
            .expect("own output parses")
            .to_csr();
        prop_assert_eq!(back.ptr(), m.ptr());
        prop_assert_eq!(back.idx(), m.idx());
        prop_assert!(m.approx_eq(&back, 1e-9));
    }

    #[test]
    fn configuration_model_reproduces_any_degree_sequence(
        degrees in proptest::collection::vec(0usize..40, 1..60),
        ncols in 40usize..200,
        seed in 0u64..1000,
    ) {
        use blockreorg::datasets::configuration::{configuration_model, ColumnModel};
        let m = configuration_model(&degrees, ncols, ColumnModel::Uniform, seed).to_csr();
        let expect: Vec<usize> = degrees.iter().map(|&d| d.min(ncols)).collect();
        prop_assert_eq!(m.row_degrees(), expect);
        m.check_invariants().expect("canonical output");
    }

    #[test]
    fn scheduler_conserves_work(durations in proptest::collection::vec(0.0f64..1000.0, 0..200),
                                sms in 1u32..128) {
        use blockreorg::gpu_sim::scheduler::schedule;
        let r = schedule(&durations, sms);
        let total: f64 = r.sm_busy.iter().sum();
        let expect: f64 = durations.iter().sum();
        prop_assert!((total - expect).abs() < 1e-6);
        let longest = durations.iter().copied().fold(0.0, f64::max);
        prop_assert!(r.makespan >= longest - 1e-9);
        let lbi = r.lbi();
        prop_assert!((0.0..=1.0 + 1e-9).contains(&lbi));
    }
}

proptest! {
    // Heavier end-to-end cases: fewer iterations.
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn every_simulated_method_matches_oracle(a in square_csr(28, 120)) {
        let dev = DeviceConfig::titan_xp();
        let ctx = ProblemContext::new(&a, &a).expect("square shapes");
        let oracle = spgemm_gustavson(&a, &a).expect("square shapes");
        for m in SpgemmMethod::all() {
            let run = run_method(&ctx, m, &dev).expect("valid shapes");
            prop_assert!(run.result.approx_eq(&oracle, 1e-9), "{} diverged", m.name());
            prop_assert!(run.total_ms > 0.0);
        }
    }

    #[test]
    fn reorganizer_is_correct_under_any_config(
        a in square_csr(28, 120),
        alpha in 1.0f64..64.0,
        beta in 1.0f64..32.0,
        units in 0u32..8,
        split in any::<bool>(),
        gather in any::<bool>(),
        limit in any::<bool>(),
        factor_log in 0u32..7,
    ) {
        let dev = DeviceConfig::titan_xp();
        let oracle = spgemm_gustavson(&a, &a).expect("square shapes");
        let cfg = ReorganizerConfig {
            alpha,
            beta,
            limiting_units: units,
            split_policy: if split { SplitPolicy::Fixed(1 << factor_log) } else { SplitPolicy::Auto },
            enable_split: split,
            enable_gather: gather,
            enable_limit: limit,
            ..Default::default()
        };
        let run = BlockReorganizer::new(cfg).multiply(&a, &a, &dev).expect("valid shapes");
        prop_assert!(run.result.approx_eq(&oracle, 1e-9));
        prop_assert!(run.total_ms > 0.0);
    }
}
