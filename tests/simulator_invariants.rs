//! Conservation and consistency invariants of the performance model,
//! checked on *real* kernel launches (not synthetic traces): whatever the
//! cost constants say, these must hold or the simulator is lying.

use blockreorg::datasets::registry::ScaleFactor;
use blockreorg::prelude::*;
use blockreorg::spgemm::pipeline::run_method;
use blockreorg::spgemm::ProblemContext;

fn test_ctx() -> ProblemContext<f64> {
    let a = RealWorldRegistry::get("sx-mathoverflow")
        .expect("registry dataset")
        .generate(ScaleFactor::Div(64));
    ProblemContext::new(&a, &a).expect("square shapes")
}

#[test]
fn per_sm_busy_time_sums_to_total_block_work() {
    let dev = DeviceConfig::titan_xp();
    let run = run_method(&test_ctx(), SpgemmMethod::OuterProduct, &dev).unwrap();
    for p in &run.profiles {
        let sm_total: f64 = p.sm_busy.iter().sum();
        assert!(
            (sm_total - p.busy_cycles).abs() < 1e-6 * p.busy_cycles.max(1.0),
            "{}: Σ sm_busy {} != busy {}",
            p.name,
            sm_total,
            p.busy_cycles
        );
        assert_eq!(p.sm_busy.len(), dev.num_sms as usize);
    }
}

#[test]
fn makespan_bounds_hold_for_every_kernel() {
    let dev = DeviceConfig::titan_xp();
    for m in SpgemmMethod::all() {
        let run = run_method(&test_ctx(), m, &dev).unwrap();
        for p in &run.profiles {
            let max_sm = p.sm_busy.iter().copied().fold(0.0f64, f64::max);
            // Makespan = max SM time + fixed launch latency.
            assert!(
                p.makespan_cycles >= max_sm,
                "{}: makespan {} < max sm {}",
                p.name,
                p.makespan_cycles,
                max_sm
            );
            // And can never beat perfect parallelization of the busy work.
            let lower = p.busy_cycles / dev.num_sms as f64;
            assert!(
                p.makespan_cycles >= lower - 1e-6,
                "{}: makespan {} below work bound {}",
                p.name,
                p.makespan_cycles,
                lower
            );
        }
    }
}

#[test]
fn lbi_is_bounded_and_histogram_counts_blocks() {
    let dev = DeviceConfig::titan_xp();
    let run = run_method(&test_ctx(), SpgemmMethod::OuterProduct, &dev).unwrap();
    for p in &run.profiles {
        let lbi = p.lbi();
        assert!((0.0..=1.0 + 1e-9).contains(&lbi), "{}: LBI {lbi}", p.name);
        let hist_total: usize = p.effective_thread_histogram.iter().sum();
        assert_eq!(hist_total, p.num_blocks, "{}", p.name);
    }
}

#[test]
fn l2_hits_never_exceed_accesses_and_bytes_match_traffic() {
    let dev = DeviceConfig::titan_xp();
    let ctx = test_ctx();
    for m in SpgemmMethod::all() {
        let run = run_method(&ctx, m, &dev).unwrap();
        for p in &run.profiles {
            assert!(p.l2.hits <= p.l2.accesses, "{}", p.name);
            assert!(p.l2.hit_rate() <= 1.0);
        }
    }
    // The expansion must read at least both operands once and write all of
    // Ĉ (logical bytes).
    let run = run_method(&ctx, SpgemmMethod::OuterProduct, &dev).unwrap();
    let expansion = &run.profiles[0];
    let elem = 12u64;
    assert!(expansion.l2.read_bytes >= (ctx.a.nnz() + ctx.b.nnz()) as u64 * elem / 2);
    assert_eq!(expansion.l2.write_bytes, ctx.intermediate_total * elem);
}

#[test]
fn smaller_l2_means_fewer_hits() {
    use blockreorg::gpu_sim::device::DeviceConfig as Dev;
    let ctx = test_ctx();
    let big = Dev::titan_xp();
    let small = Dev {
        l2_bytes: 64 * 1024,
        ..Dev::titan_xp()
    };
    let run_big = run_method(&ctx, SpgemmMethod::OuterProduct, &big).unwrap();
    let run_small = run_method(&ctx, SpgemmMethod::OuterProduct, &small).unwrap();
    let hits = |r: &blockreorg::spgemm::SpgemmRun<f64>| -> u64 {
        r.profiles.iter().map(|p| p.l2.hits).sum()
    };
    assert!(
        hits(&run_small) < hits(&run_big),
        "shrinking L2 48x must lose hits: {} vs {}",
        hits(&run_small),
        hits(&run_big)
    );
}

#[test]
fn more_sms_never_slow_a_kernel_down() {
    let ctx = test_ctx();
    let base = DeviceConfig::titan_xp();
    let double = DeviceConfig {
        num_sms: 60,
        // keep per-SM bandwidth share identical
        dram_bandwidth_gbs: base.dram_bandwidth_gbs * 2.0,
        l2_bandwidth_gbs: base.l2_bandwidth_gbs * 2.0,
        l2_bytes: base.l2_bytes * 2,
        ..base.clone()
    };
    let t30 = run_method(&ctx, SpgemmMethod::RowProduct, &base)
        .unwrap()
        .total_ms;
    let t60 = run_method(&ctx, SpgemmMethod::RowProduct, &double)
        .unwrap()
        .total_ms;
    assert!(
        t60 <= t30 * 1.01,
        "doubling SMs+bandwidth must not slow down: {t60} vs {t30}"
    );
}

#[test]
fn preprocessing_overhead_is_charged_to_the_reorganizer() {
    let ctx = test_ctx();
    let dev = DeviceConfig::titan_xp();
    let run = BlockReorganizer::new(ReorganizerConfig::default())
        .multiply_ctx(&ctx, &dev)
        .unwrap();
    let kernel_ms: f64 = run.profiles.iter().map(|p| p.time_ms).sum();
    assert!(run.preprocess_ms > 0.0, "splitting has host-side cost");
    assert!((run.total_ms - (kernel_ms + run.preprocess_ms)).abs() < 1e-9);
}
