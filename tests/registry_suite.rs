//! The full Table II suite, end to end: every one of the 28 surrogates is
//! generated, classified, multiplied by the Block Reorganizer, and checked
//! against the CPU oracle — at a small scale so the whole sweep stays
//! CI-friendly.

use block_reorganizer::WorkloadReport;
use blockreorg::datasets::registry::{DatasetClass, ScaleFactor};
use blockreorg::prelude::*;
use blockreorg::spgemm::ProblemContext;

const SCALE: ScaleFactor = ScaleFactor::Div(256);

#[test]
fn all_28_surrogates_run_the_full_pipeline_correctly() {
    let dev = DeviceConfig::titan_xp();
    let reorg = BlockReorganizer::new(ReorganizerConfig::default());
    for spec in RealWorldRegistry::all() {
        let a = spec.generate(SCALE);
        let oracle = spgemm_gustavson(&a, &a).expect("square shapes");
        let run = reorg.multiply(&a, &a, &dev).expect("valid shapes");
        assert!(
            run.result.approx_eq(&oracle, 1e-9),
            "{}: wrong result",
            spec.name
        );
        assert!(run.total_ms > 0.0, "{}: zero time", spec.name);
        assert_eq!(
            run.result.nnz(),
            oracle.nnz(),
            "{}: nnz mismatch",
            spec.name
        );
    }
}

#[test]
fn classification_tracks_the_declared_dataset_class() {
    let dev = DeviceConfig::titan_xp();
    let cfg = ReorganizerConfig::default();
    let mut skewed_dominator_share = Vec::new();
    let mut regular_dominator_share = Vec::new();
    for spec in RealWorldRegistry::all() {
        let a = spec.generate(SCALE);
        let ctx = ProblemContext::new(&a, &a).expect("square shapes");
        if ctx.intermediate_total == 0 {
            continue;
        }
        let report = WorkloadReport::of(&ctx, &cfg, &dev);
        match spec.class {
            DatasetClass::Skewed => skewed_dominator_share.push(report.dominators.product_share),
            DatasetClass::Regular => regular_dominator_share.push(report.dominators.product_share),
        }
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    assert!(
        mean(&skewed_dominator_share) > mean(&regular_dominator_share),
        "skewed sets should concentrate work in dominators: {} vs {}",
        mean(&skewed_dominator_share),
        mean(&regular_dominator_share)
    );
    // Regular FEM surrogates should have (almost) no dominator work at all.
    assert!(mean(&regular_dominator_share) < 0.15);
    // Skewed surrogates concentrate a substantial share in a few pairs.
    assert!(mean(&skewed_dominator_share) > 0.25);
}

#[test]
fn surrogate_suite_is_generation_stable() {
    // Regenerating the whole registry yields identical matrices — the
    // experiments are exactly reproducible run to run.
    for spec in RealWorldRegistry::all().into_iter().take(6) {
        assert_eq!(spec.generate(SCALE), spec.generate(SCALE), "{}", spec.name);
    }
}
