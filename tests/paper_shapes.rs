//! Qualitative-shape calibration tests: the paper's headline *shapes* must
//! hold on the simulated substrate (DESIGN.md §5 "Calibration").
//!
//! These run at a reduced scale (÷64) to stay CI-friendly; the bench
//! binaries reproduce the full curves at ÷16.

use block_reorganizer::classify::Classification;
use block_reorganizer::split::dominator_only_launch;
use blockreorg::datasets::registry::ScaleFactor;
use blockreorg::gpu_sim::GpuSimulator;
use blockreorg::prelude::*;
use blockreorg::spgemm::pipeline::run_method;
use blockreorg::spgemm::ProblemContext;
use blockreorg::spgemm::Workspace;

const SCALE: ScaleFactor = ScaleFactor::Div(64);

fn ctx_of(name: &str) -> ProblemContext<f64> {
    let a = RealWorldRegistry::get(name)
        .expect("registry dataset")
        .generate(SCALE);
    ProblemContext::new(&a, &a).expect("square shapes")
}

/// Figure 3(a): outer-product expansion balances on regular data and
/// collapses on skewed data.
#[test]
fn fig3a_shape_sm_utilization_gap() {
    let dev = DeviceConfig::titan_xp();
    let regular = run_method(&ctx_of("harbor"), SpgemmMethod::OuterProduct, &dev).unwrap();
    let skewed = run_method(&ctx_of("as-caida"), SpgemmMethod::OuterProduct, &dev).unwrap();
    let lbi_reg = regular.profiles[0].lbi();
    let lbi_skw = skewed.profiles[0].lbi();
    assert!(
        lbi_reg > 0.85,
        "regular expansion should balance: {lbi_reg}"
    );
    assert!(lbi_skw < 0.5, "skewed expansion should collapse: {lbi_skw}");
}

/// Figure 3(b): on sparse networks, most outer-product blocks are
/// underloaded (< 32 effective threads).
#[test]
fn fig3b_shape_underloaded_majority() {
    let dev = DeviceConfig::titan_xp();
    let run = run_method(&ctx_of("youtube"), SpgemmMethod::OuterProduct, &dev).unwrap();
    let hist = &run.profiles[0].effective_thread_histogram;
    let total: usize = hist.iter().sum();
    let under: usize = hist.iter().take(6).sum(); // buckets ≤ 32 threads
    assert!(
        under as f64 > 0.8 * total as f64,
        "most blocks should be underloaded: {under}/{total}"
    );
}

/// Figure 8 headline: the Block Reorganizer beats both baselines on the
/// skewed suite, and the mean speedup over the row product sits in the
/// paper's band (≳ 1.1× at this reduced scale; 1.43× at full scale).
#[test]
fn fig8_shape_reorganizer_wins_on_skewed_suite() {
    let dev = DeviceConfig::titan_xp();
    let reorg = BlockReorganizer::new(ReorganizerConfig::default());
    let mut speedups_row = Vec::new();
    for name in ["youtube", "as-caida", "loc-gowalla", "slashDot", "epinions"] {
        let ctx = ctx_of(name);
        let row = run_method(&ctx, SpgemmMethod::RowProduct, &dev).unwrap();
        let outer = run_method(&ctx, SpgemmMethod::OuterProduct, &dev).unwrap();
        let r = reorg.multiply_ctx(&ctx, &dev).unwrap();
        assert!(
            r.total_ms < outer.total_ms,
            "{name}: must beat outer-product ({} vs {})",
            r.total_ms,
            outer.total_ms
        );
        speedups_row.push(row.total_ms / r.total_ms);
    }
    let mean = speedups_row
        .iter()
        .product::<f64>()
        .powf(1.0 / speedups_row.len() as f64);
    assert!(
        mean > 1.1,
        "mean speedup over row-product on skewed sets too low: {mean}"
    );
}

/// Figure 11: splitting the dominators raises LBI monotonically (to ≳ 0.9
/// once the factor reaches the SM count) and speeds the dominator blocks
/// up by a large factor.
#[test]
fn fig11_shape_lbi_recovers_with_splitting() {
    let ctx = ctx_of("as-caida");
    let dev = DeviceConfig::titan_xp();
    let cls = Classification::of(&ctx, &ReorganizerConfig::default());
    assert!(!cls.dominators.is_empty());
    let ws = Workspace::for_context(&ctx);
    let sim = GpuSimulator::new(dev);
    let mut lbis = Vec::new();
    let mut times = Vec::new();
    for factor in [1u32, 4, 32, 64] {
        let p = sim.run(
            &dominator_only_launch(&ctx, &ws, &cls.dominators, factor, 256),
            &ws.layout,
        );
        lbis.push(p.lbi());
        times.push(p.time_ms);
    }
    assert!(
        lbis[0] < 0.4,
        "unsplit dominators unbalance SMs: {}",
        lbis[0]
    );
    assert!(
        lbis[3] > 0.85,
        "factor 64 should balance ≳ 0.9: {}",
        lbis[3]
    );
    assert!(lbis.windows(2).all(|w| w[1] >= w[0] - 0.05), "{lbis:?}");
    assert!(
        times[0] / times[3] > 3.0,
        "dominator speedup should be large: {}x",
        times[0] / times[3]
    );
}

/// Figure 12: splitting turns the dominators' row-vector traffic into L2
/// hits.
#[test]
fn fig12_shape_l2_hit_rate_improves_with_splitting() {
    let ctx = ctx_of("loc-gowalla");
    let dev = DeviceConfig::titan_xp();
    let cls = Classification::of(&ctx, &ReorganizerConfig::default());
    let ws = Workspace::for_context(&ctx);
    let sim = GpuSimulator::new(dev);
    let unsplit = sim.run(
        &dominator_only_launch(&ctx, &ws, &cls.dominators, 1, 256),
        &ws.layout,
    );
    let split = sim.run(
        &dominator_only_launch(&ctx, &ws, &cls.dominators, 64, 256),
        &ws.layout,
    );
    assert!(
        split.l2.hit_rate() > unsplit.l2.hit_rate(),
        "splitting should add reuse: {} vs {}",
        split.l2.hit_rate(),
        unsplit.l2.hit_rate()
    );
    let tp_unsplit = unsplit.l2_read_gbs() + unsplit.l2_write_gbs();
    let tp_split = split.l2_read_gbs() + split.l2_write_gbs();
    assert!(
        tp_split > tp_unsplit,
        "L2 throughput should rise: {tp_split} vs {tp_unsplit}"
    );
}

/// Figure 13: gathering removes most sync stalls.
#[test]
fn fig13_shape_sync_stalls_drop_after_gathering() {
    let dev = DeviceConfig::titan_xp();
    let ctx = ctx_of("sx-mathoverflow");
    let before = run_method(&ctx, SpgemmMethod::OuterProduct, &dev).unwrap();
    let after = BlockReorganizer::new(ReorganizerConfig::gather_only())
        .multiply_ctx(&ctx, &dev)
        .unwrap();
    let b = before.profiles[0].sync_stall_ratio();
    let a = after.profiles[1].sync_stall_ratio();
    assert!(
        a < 0.75 * b,
        "gathering should clearly cut sync stalls: {a} vs {b}"
    );
    // At the bench scale (÷16) the drop is much larger; at this CI scale
    // the ungathered dominator/normal blocks keep a floor under the ratio.
}

/// Figure 14: B-Limiting's occupancy trade-off — the limited merge keeps
/// the same traffic but fewer resident blocks; at the production factor the
/// merge must not be slower than unlimited *on skewed data*, and pushing
/// the factor far past the knee must eventually hurt relative to the peak.
#[test]
fn fig14_shape_limiting_tradeoff() {
    let dev = DeviceConfig::titan_xp();
    let ctx = ctx_of("loc-gowalla");
    let merge_ms = |units: u32| {
        let run = BlockReorganizer::new(ReorganizerConfig {
            limiting_units: units,
            ..Default::default()
        })
        .multiply_ctx(&ctx, &dev)
        .unwrap();
        run.phase_ms("merge")
    };
    let at0 = merge_ms(0);
    let at4 = merge_ms(4);
    let at14 = merge_ms(14); // 14 × 6144 B ≈ 86 KiB → 1 block per SM
    assert!(
        at4 <= at0 * 1.02,
        "production limiting must not hurt skewed merges: {at4} vs {at0}"
    );
    let best = at0.min(at4);
    assert!(
        at14 >= best,
        "extreme limiting should not beat the peak: {at14} vs {best}"
    );
}

/// Figure 15: the reorganizer's advantage holds on every device generation
/// — provided the problem is big enough to feed the device. (On matrices
/// too small for 80 SMs, preprocessing overheads dominate — exactly the
/// Figure 16(a) "s1" observation — so this uses the largest surrogate.)
#[test]
fn fig15_shape_gain_on_every_device() {
    let a = RealWorldRegistry::get("youtube")
        .expect("registry dataset")
        .generate(ScaleFactor::Div(32));
    let ctx = ProblemContext::new(&a, &a).expect("square shapes");
    for dev in DeviceConfig::all_paper_targets() {
        let row = run_method(&ctx, SpgemmMethod::RowProduct, &dev).unwrap();
        let r = BlockReorganizer::new(ReorganizerConfig::default())
            .multiply_ctx(&ctx, &dev)
            .unwrap();
        assert!(
            row.total_ms / r.total_ms > 1.0,
            "{}: reorganizer should win ({} vs {})",
            dev.name,
            r.total_ms,
            row.total_ms
        );
    }
}

/// Figure 16(b)/§VI-D: C = AB on independent pairs compresses far less
/// than C = A² on a network (compression factor ≈ 1 vs ≫ 1).
#[test]
fn fig16b_shape_ab_compression_is_low() {
    use blockreorg::datasets::synthetic::ab_pairs;
    let spec = &ab_pairs()[0];
    let a = spec.generate_a(ScaleFactor::Div(32));
    let b = spec.generate_b(ScaleFactor::Div(32));
    let pair = ProblemContext::new(&a, &b).unwrap();
    let pair_compression = pair.intermediate_total as f64 / pair.output_total.max(1) as f64;

    // Compare against A² on a hub-heavy network: hub collisions force many
    // products onto the same output coordinates. (as-caida keeps its hubs
    // even at CI scale; diffuse networks only show this at larger scales.)
    let net = ctx_of("as-caida");
    let net_compression = net.intermediate_total as f64 / net.output_total.max(1) as f64;
    assert!(
        pair_compression < 1.5,
        "independent AB should barely compress: {pair_compression}"
    );
    assert!(
        net_compression > pair_compression,
        "A² on a hub-heavy network must compress more: {net_compression} vs {pair_compression}"
    );
}
