#!/usr/bin/env bash
# CI perf-regression gate: run the quick benchmark suite, check the report
# is byte-deterministic (across reruns AND across host thread counts), and
# compare it against the checked-in baseline.
#
# Usage: scripts/bench_gate.sh [cycles-threshold-pct]
#
# Exits nonzero if any tracked metric regresses beyond its threshold
# (default: 5% on simulated cycle counts), if the report is not
# reproducible, or if the baseline is missing. Refresh the baseline with:
#   blockreorg-cli bench run --suite quick --no-host \
#       --out results/baselines/BENCH_quick.json
#
# Byte-compares use --no-host (the wall-clock host section legitimately
# differs run to run); the baseline comparison ignores the host section by
# construction, so the final report keeps it for throughput visibility.

set -euo pipefail
cd "$(dirname "$0")/.."

threshold="${1:-5}"
baseline="results/baselines/BENCH_quick.json"
cli="cargo run --release --quiet --bin blockreorg-cli --"

if [[ ! -f "$baseline" ]]; then
    echo "error: baseline $baseline missing" >&2
    exit 1
fi

echo "== determinism check: 1 thread vs 8 threads must be byte-identical =="
BR_THREADS=1 $cli bench run --suite quick --no-host --out BENCH_quick.t1.json \
    --metrics metrics.t1.prom >/dev/null
BR_THREADS=8 $cli bench run --suite quick --no-host --out BENCH_quick.t8.json \
    --metrics metrics.t8.prom >/dev/null
if ! cmp -s BENCH_quick.t1.json BENCH_quick.t8.json; then
    echo "error: BENCH_quick.json differs between BR_THREADS=1 and BR_THREADS=8" >&2
    diff BENCH_quick.t1.json BENCH_quick.t8.json | head -40 >&2 || true
    exit 1
fi
echo "ok: report is byte-identical at any thread count"

echo "== metrics determinism: exposition must be byte-identical too =="
# The default --metrics dump contains only deterministic families, so the
# Prometheus text and the JSONL must byte-compare between BR_THREADS=1 and
# BR_THREADS=8 (each process ran the identical job multiset).
for pair in "metrics.t1.prom metrics.t8.prom" \
            "metrics.t1.prom.jsonl metrics.t8.prom.jsonl"; do
    # shellcheck disable=SC2086  # intentional word split into the two paths
    set -- $pair
    if ! cmp -s "$1" "$2"; then
        echo "error: metrics exposition differs between BR_THREADS=1 and BR_THREADS=8 ($1 vs $2)" >&2
        diff "$1" "$2" | head -40 >&2 || true
        exit 1
    fi
done
# And a rerun at the same thread count must reproduce the same bytes.
BR_THREADS=8 $cli bench run --suite quick --no-host --out BENCH_quick.rerun.json \
    --metrics metrics.rerun.prom >/dev/null
if ! cmp -s metrics.t8.prom metrics.rerun.prom; then
    echo "error: metrics exposition differs between identical reruns" >&2
    diff metrics.t8.prom metrics.rerun.prom | head -40 >&2 || true
    exit 1
fi
# Sanity: the dump actually carries the pipeline's instruments.
for family in br_sim_kernel_launches_total br_spgemm_rows_merged_total \
              br_cache_hits_total br_jobs_submitted_total br_span_total; do
    if ! grep -q "^$family" metrics.t8.prom; then
        echo "error: expected metric family $family missing from metrics.t8.prom" >&2
        exit 1
    fi
done
rm -f metrics.t1.prom metrics.t8.prom metrics.rerun.prom \
      metrics.t1.prom.jsonl metrics.t8.prom.jsonl metrics.rerun.prom.jsonl \
      BENCH_quick.rerun.json
echo "ok: metrics exposition is byte-identical across thread counts and reruns"

echo "== baseline byte-identity: instrumentation must not move a single byte =="
# Everything the report tracks is a pure function of simulated execution,
# so a fresh --no-host run must reproduce the checked-in baseline exactly.
# Legitimate differences only: the git_sha provenance line, and the
# explicit '"plan": null' / '"host": null' a current run writes where
# pre-section baselines omitted those keys entirely.
normalize() {
    grep -v '"git_sha"' "$1" | sed -z 's/,\n  "host": null//; s/,\n  "plan": null//'
}
if ! cmp -s <(normalize BENCH_quick.t1.json) <(normalize "$baseline"); then
    echo "error: BENCH_quick.json deviates byte-for-byte from $baseline" >&2
    diff <(normalize "$baseline") <(normalize BENCH_quick.t1.json) | head -40 >&2 || true
    exit 1
fi
echo "ok: fresh report is byte-identical to the checked-in baseline"

echo "== determinism check: non-default --bins must be byte-identical too =="
BR_THREADS=8 $cli bench run --suite quick --no-host --bins 4,512 \
    --out BENCH_quick.bins.json >/dev/null
if ! cmp -s BENCH_quick.t1.json BENCH_quick.bins.json; then
    echo "error: BENCH_quick.json differs under --bins 4,512" >&2
    diff BENCH_quick.t1.json BENCH_quick.bins.json | head -40 >&2 || true
    exit 1
fi
rm -f BENCH_quick.t1.json BENCH_quick.t8.json BENCH_quick.bins.json
echo "ok: row-bin thresholds never change the report"

echo "== net flood determinism: admission accounting is a pure function of load =="
# Flood a held br-net server (worker gate closed, shed threshold 6, ample
# quota): 16 alternating-lane submissions admit 6 and shed 10 purely by
# arrival order, then Release drains and Shutdown exits the server, which
# dumps its metrics. The strict exposition must byte-compare across
# BR_THREADS=1/8 and across reruns — shedding never depends on how fast
# workers drain.
net_flood() {
    local threads="$1" tag="$2"
    rm -f "net.$tag.port"
    BR_THREADS="$threads" $cli serve --listen 127.0.0.1:0 \
        --port-file "net.$tag.port" --hold --workers 2 \
        --shed-threshold 6 --quota 64 --metrics "net.$tag.prom" \
        >/dev/null &
    local server_pid=$!
    local tries=0
    until [[ -s "net.$tag.port" ]]; do
        tries=$((tries + 1))
        if [[ $tries -gt 100 ]]; then
            echo "error: serve never wrote net.$tag.port" >&2
            kill "$server_pid" 2>/dev/null || true
            exit 1
        fi
        sleep 0.1
    done
    $cli client --connect "$(cat "net.$tag.port")" --client-id flood \
        --spec 'rmat=6,4' --count 16 --lane alternate \
        --release --shutdown --quiet >/dev/null
    wait "$server_pid"
}
net_flood 1 t1
net_flood 8 t8
net_flood 8 rerun
for pair in "net.t1.prom net.t8.prom" \
            "net.t8.prom net.rerun.prom" \
            "net.t1.prom.jsonl net.t8.prom.jsonl" \
            "net.t8.prom.jsonl net.rerun.prom.jsonl"; do
    # shellcheck disable=SC2086  # intentional word split into the two paths
    set -- $pair
    if ! cmp -s "$1" "$2"; then
        echo "error: net metrics exposition differs ($1 vs $2)" >&2
        diff "$1" "$2" | head -40 >&2 || true
        exit 1
    fi
done
for family in br_net_requests_total br_net_admitted_total br_net_shed_total \
              br_net_saturation_total br_net_rejects_total \
              br_net_results_total br_net_drain_notices_total; do
    if ! grep -q "^$family" net.t8.prom; then
        echo "error: expected metric family $family missing from net.t8.prom" >&2
        exit 1
    fi
done
# The held-gate flood admits exactly 6 and sheds exactly 10, per lane 3/5.
for line in 'br_net_shed_total{lane="batch"} 5' \
            'br_net_shed_total{lane="interactive"} 5' \
            'br_net_results_total{lane="batch"} 3' \
            'br_net_results_total{lane="interactive"} 3'; do
    if ! grep -qF "$line" net.t8.prom; then
        echo "error: expected '$line' in net.t8.prom" >&2
        grep '^br_net' net.t8.prom >&2 || true
        exit 1
    fi
done
rm -f net.t1.prom net.t8.prom net.rerun.prom \
      net.t1.prom.jsonl net.t8.prom.jsonl net.rerun.prom.jsonl \
      net.t1.port net.t8.port net.rerun.port
echo "ok: shed/quota accounting is byte-identical across thread counts and reruns"

echo "== estimator determinism: estplan must be byte-identical across threads and reruns =="
# The sampling estimator is seeded from the operands' structure hashes and
# the sample count only, so the estplan report (plan section included) and
# the metrics exposition must byte-compare across BR_THREADS=1/8 and
# across reruns — estimation never reads wall clock, thread order, or
# matrix values.
BR_THREADS=1 $cli bench run --suite estplan --no-host --out BENCH_estplan.t1.json \
    --metrics estplan.t1.prom >/dev/null
BR_THREADS=8 $cli bench run --suite estplan --no-host --out BENCH_estplan.t8.json \
    --metrics estplan.t8.prom >/dev/null
BR_THREADS=8 $cli bench run --suite estplan --no-host --out BENCH_estplan.rerun.json \
    --metrics estplan.rerun.prom >/dev/null
for pair in "BENCH_estplan.t1.json BENCH_estplan.t8.json" \
            "BENCH_estplan.t8.json BENCH_estplan.rerun.json" \
            "estplan.t1.prom estplan.t8.prom" \
            "estplan.t8.prom estplan.rerun.prom" \
            "estplan.t1.prom.jsonl estplan.t8.prom.jsonl" \
            "estplan.t8.prom.jsonl estplan.rerun.prom.jsonl"; do
    # shellcheck disable=SC2086  # intentional word split into the two paths
    set -- $pair
    if ! cmp -s "$1" "$2"; then
        echo "error: estplan output differs ($1 vs $2)" >&2
        diff "$1" "$2" | head -40 >&2 || true
        exit 1
    fi
done
for family in br_plan_estimates_total br_plan_exact_total \
              br_plan_sampled_cols_total br_plan_ops_total; do
    if ! grep -q "^$family" estplan.t8.prom; then
        echo "error: expected metric family $family missing from estplan.t8.prom" >&2
        exit 1
    fi
done
rm -f BENCH_estplan.t1.json BENCH_estplan.t8.json BENCH_estplan.rerun.json \
      estplan.t1.prom estplan.t8.prom estplan.rerun.prom \
      estplan.t1.prom.jsonl estplan.t8.prom.jsonl estplan.rerun.prom.jsonl
echo "ok: estimator planning is byte-identical across thread counts and reruns"

echo "== kway determinism: forced k-way merge must be byte-identical across threads and reruns =="
# The kway suite forces the k-way tournament bin open per case, so heavy
# rows run through the loser-tree merge on the host numeric path and the
# kway-merge kernel in the simulated stream. Pop order is fixed by
# (column, run-generation) keys, so the report and the metrics exposition
# (kway instrument cells included) must byte-compare across BR_THREADS=1/8
# and across reruns.
BR_THREADS=1 $cli bench run --suite kway --no-host --out BENCH_kway.t1.json \
    --metrics kway.t1.prom >/dev/null
BR_THREADS=8 $cli bench run --suite kway --no-host --out BENCH_kway.t8.json \
    --metrics kway.t8.prom >/dev/null
BR_THREADS=8 $cli bench run --suite kway --no-host --out BENCH_kway.rerun.json \
    --metrics kway.rerun.prom >/dev/null
for pair in "BENCH_kway.t1.json BENCH_kway.t8.json" \
            "BENCH_kway.t8.json BENCH_kway.rerun.json" \
            "kway.t1.prom kway.t8.prom" \
            "kway.t8.prom kway.rerun.prom" \
            "kway.t1.prom.jsonl kway.t8.prom.jsonl" \
            "kway.t8.prom.jsonl kway.rerun.prom.jsonl"; do
    # shellcheck disable=SC2086  # intentional word split into the two paths
    set -- $pair
    if ! cmp -s "$1" "$2"; then
        echo "error: kway output differs ($1 vs $2)" >&2
        diff "$1" "$2" | head -40 >&2 || true
        exit 1
    fi
done
# The kway instrument cells must be present — and the bin actually used.
for line in 'br_spgemm_rows_merged_total{bin="kway"}' \
            'br_spgemm_kway_runs_total'; do
    if ! grep -qF "$line" kway.t8.prom; then
        echo "error: expected '$line' in kway.t8.prom" >&2
        grep '^br_spgemm' kway.t8.prom >&2 || true
        exit 1
    fi
done
if grep -qF 'br_spgemm_rows_merged_total{bin="kway"} 0' kway.t8.prom; then
    echo "error: kway suite merged no rows through the kway bin" >&2
    exit 1
fi
rm -f BENCH_kway.t1.json BENCH_kway.t8.json BENCH_kway.rerun.json \
      kway.t1.prom kway.t8.prom kway.rerun.prom \
      kway.t1.prom.jsonl kway.t8.prom.jsonl kway.rerun.prom.jsonl
echo "ok: forced k-way merge is byte-identical across thread counts and reruns"

echo "== reorder determinism: forced row reordering must be byte-identical across threads and reruns =="
# The reorder suite plans every dataset under each strategy; permutations
# are pure functions of A's structure, and the plan un-permutes its output,
# so the report and the metrics exposition (reorder instrument cells
# included) must byte-compare across BR_THREADS=1/8 and across reruns.
BR_THREADS=1 $cli bench run --suite reorder --no-host --out BENCH_reorder.t1.json \
    --metrics reorder.t1.prom >/dev/null
BR_THREADS=8 $cli bench run --suite reorder --no-host --out BENCH_reorder.t8.json \
    --metrics reorder.t8.prom >/dev/null
BR_THREADS=8 $cli bench run --suite reorder --no-host --out BENCH_reorder.rerun.json \
    --metrics reorder.rerun.prom >/dev/null
for pair in "BENCH_reorder.t1.json BENCH_reorder.t8.json" \
            "BENCH_reorder.t8.json BENCH_reorder.rerun.json" \
            "reorder.t1.prom reorder.t8.prom" \
            "reorder.t8.prom reorder.rerun.prom" \
            "reorder.t1.prom.jsonl reorder.t8.prom.jsonl" \
            "reorder.t8.prom.jsonl reorder.rerun.prom.jsonl"; do
    # shellcheck disable=SC2086  # intentional word split into the two paths
    set -- $pair
    if ! cmp -s "$1" "$2"; then
        echo "error: reorder output differs ($1 vs $2)" >&2
        diff "$1" "$2" | head -40 >&2 || true
        exit 1
    fi
done
# Every strategy cell must be pre-registered — and the non-trivial ones used.
for strategy in none degree rcm cluster; do
    if ! grep -qF "br_reorder_plans_total{strategy=\"$strategy\"}" reorder.t8.prom; then
        echo "error: expected br_reorder_plans_total{strategy=\"$strategy\"} in reorder.t8.prom" >&2
        grep '^br_reorder' reorder.t8.prom >&2 || true
        exit 1
    fi
done
for strategy in degree rcm cluster; do
    if grep -qF "br_reorder_plans_total{strategy=\"$strategy\"} 0" reorder.t8.prom; then
        echo "error: reorder suite built no $strategy plans" >&2
        exit 1
    fi
done
rm -f BENCH_reorder.t1.json BENCH_reorder.t8.json BENCH_reorder.rerun.json \
      reorder.t1.prom reorder.t8.prom reorder.rerun.prom \
      reorder.t1.prom.jsonl reorder.t8.prom.jsonl reorder.rerun.prom.jsonl
echo "ok: row reordering is byte-identical across thread counts and reruns"

echo "== chain determinism: chained workloads must be byte-identical across threads and reruns =="
# The chain suite runs each of the four canonical workloads against a
# fresh per-case plan cache, so per-step hit/miss counters are pure
# functions of the chain program — the report (chain section included)
# and the metrics exposition (br_chain_* families included) must
# byte-compare across BR_THREADS=1/8 and across reruns.
BR_THREADS=1 $cli bench run --suite chain --no-host --out BENCH_chain.t1.json \
    --metrics chain.t1.prom >/dev/null
BR_THREADS=8 $cli bench run --suite chain --no-host --out BENCH_chain.t8.json \
    --metrics chain.t8.prom >/dev/null
BR_THREADS=8 $cli bench run --suite chain --no-host --out BENCH_chain.rerun.json \
    --metrics chain.rerun.prom >/dev/null
for pair in "BENCH_chain.t1.json BENCH_chain.t8.json" \
            "BENCH_chain.t8.json BENCH_chain.rerun.json" \
            "chain.t1.prom chain.t8.prom" \
            "chain.t8.prom chain.rerun.prom" \
            "chain.t1.prom.jsonl chain.t8.prom.jsonl" \
            "chain.t8.prom.jsonl chain.rerun.prom.jsonl"; do
    # shellcheck disable=SC2086  # intentional word split into the two paths
    set -- $pair
    if ! cmp -s "$1" "$2"; then
        echo "error: chain output differs ($1 vs $2)" >&2
        diff "$1" "$2" | head -40 >&2 || true
        exit 1
    fi
done
for family in br_chain_steps_total br_chain_step_cache_hits_total \
              br_chain_step_cache_misses_total br_chain_structure_churn_total \
              br_chain_fill_in_permille; do
    if ! grep -q "^$family" chain.t8.prom; then
        echo "error: expected metric family $family missing from chain.t8.prom" >&2
        exit 1
    fi
done
# The designed contrast, cell by cell: every galerkin case serves its
# value-refreshed pass from the plan cache (exactly 2 hits), while every
# iterated-squaring case churns structure on all 3 steps (0 hits,
# 3 misses). Both workloads run over 3 datasets each.
if ! awk '
    /"workload":/   { w = $2; gsub(/[",]/, "", w) }
    /"cache_hits":/   { v = $2; gsub(/,/, "", v)
                        if (w == "galerkin") { g++; if (v != 2) bad = 1 }
                        if (w == "square:3" && v != 0) bad = 1 }
    /"cache_misses":/ { v = $2; gsub(/,/, "", v)
                        if (w == "square:3") { s++; if (v != 3) bad = 1 } }
    END { exit (bad || g != 3 || s != 3) }
' BENCH_chain.t8.json; then
    echo "error: chain suite hit/miss contrast broken (want galerkin=2 hits, square:3=3 misses per case)" >&2
    grep -E '"(workload|cache_hits|cache_misses)":' BENCH_chain.t8.json >&2 || true
    exit 1
fi

echo "== compare chain suite against results/baselines/BENCH_chain.json =="
$cli bench compare results/baselines/BENCH_chain.json BENCH_chain.t1.json \
    --cycles-pct "$threshold"
rm -f BENCH_chain.t1.json BENCH_chain.t8.json BENCH_chain.rerun.json \
      chain.t1.prom chain.t8.prom chain.rerun.prom \
      chain.t1.prom.jsonl chain.t8.prom.jsonl chain.rerun.prom.jsonl
echo "ok: chained workloads are byte-identical across thread counts and reruns"

echo "== bench gate: quick suite, cycle threshold ${threshold}% =="
$cli bench run --suite quick --out BENCH_quick.json

echo "== compare against $baseline =="
$cli bench compare "$baseline" BENCH_quick.json --cycles-pct "$threshold"
