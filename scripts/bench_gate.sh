#!/usr/bin/env bash
# CI perf-regression gate: run the quick benchmark suite, check the report
# is byte-deterministic (across reruns AND across host thread counts), and
# compare it against the checked-in baseline.
#
# Usage: scripts/bench_gate.sh [cycles-threshold-pct]
#
# Exits nonzero if any tracked metric regresses beyond its threshold
# (default: 5% on simulated cycle counts), if the report is not
# reproducible, or if the baseline is missing. Refresh the baseline with:
#   blockreorg-cli bench run --suite quick --no-host \
#       --out results/baselines/BENCH_quick.json
#
# Byte-compares use --no-host (the wall-clock host section legitimately
# differs run to run); the baseline comparison ignores the host section by
# construction, so the final report keeps it for throughput visibility.

set -euo pipefail
cd "$(dirname "$0")/.."

threshold="${1:-5}"
baseline="results/baselines/BENCH_quick.json"
cli="cargo run --release --quiet --bin blockreorg-cli --"

if [[ ! -f "$baseline" ]]; then
    echo "error: baseline $baseline missing" >&2
    exit 1
fi

echo "== determinism check: 1 thread vs 8 threads must be byte-identical =="
BR_THREADS=1 $cli bench run --suite quick --no-host --out BENCH_quick.t1.json >/dev/null
BR_THREADS=8 $cli bench run --suite quick --no-host --out BENCH_quick.t8.json >/dev/null
if ! cmp -s BENCH_quick.t1.json BENCH_quick.t8.json; then
    echo "error: BENCH_quick.json differs between BR_THREADS=1 and BR_THREADS=8" >&2
    diff BENCH_quick.t1.json BENCH_quick.t8.json | head -40 >&2 || true
    exit 1
fi
echo "ok: report is byte-identical at any thread count"

echo "== determinism check: non-default --bins must be byte-identical too =="
BR_THREADS=8 $cli bench run --suite quick --no-host --bins 4,512 \
    --out BENCH_quick.bins.json >/dev/null
if ! cmp -s BENCH_quick.t1.json BENCH_quick.bins.json; then
    echo "error: BENCH_quick.json differs under --bins 4,512" >&2
    diff BENCH_quick.t1.json BENCH_quick.bins.json | head -40 >&2 || true
    exit 1
fi
rm -f BENCH_quick.t1.json BENCH_quick.t8.json BENCH_quick.bins.json
echo "ok: row-bin thresholds never change the report"

echo "== bench gate: quick suite, cycle threshold ${threshold}% =="
$cli bench run --suite quick --out BENCH_quick.json

echo "== compare against $baseline =="
$cli bench compare "$baseline" BENCH_quick.json --cycles-pct "$threshold"
