#!/usr/bin/env bash
# CI perf-regression gate: run the quick benchmark suite, check the report
# is byte-deterministic, and compare it against the checked-in baseline.
#
# Usage: scripts/bench_gate.sh [cycles-threshold-pct]
#
# Exits nonzero if any tracked metric regresses beyond its threshold
# (default: 5% on simulated cycle counts), if the report is not
# reproducible, or if the baseline is missing. Refresh the baseline with:
#   blockreorg-cli bench run --suite quick --out results/baselines/BENCH_quick.json

set -euo pipefail
cd "$(dirname "$0")/.."

threshold="${1:-5}"
baseline="results/baselines/BENCH_quick.json"
cli="cargo run --release --quiet --bin blockreorg-cli --"

if [[ ! -f "$baseline" ]]; then
    echo "error: baseline $baseline missing" >&2
    exit 1
fi

echo "== bench gate: quick suite, cycle threshold ${threshold}% =="
$cli bench run --suite quick --out BENCH_quick.json

echo "== determinism check: second run must be byte-identical =="
$cli bench run --suite quick --out BENCH_quick.rerun.json >/dev/null
if ! cmp -s BENCH_quick.json BENCH_quick.rerun.json; then
    echo "error: BENCH_quick.json differs between two consecutive runs" >&2
    diff BENCH_quick.json BENCH_quick.rerun.json | head -40 >&2 || true
    exit 1
fi
rm -f BENCH_quick.rerun.json
echo "ok: report is byte-deterministic"

echo "== compare against $baseline =="
$cli bench compare "$baseline" BENCH_quick.json --cycles-pct "$threshold"
