#!/usr/bin/env bash
# Regenerates every table and figure of the paper's evaluation section into
# results/ (text + JSON). Default scale is 1/16 of published sizes; pass
# e.g. "--scale full" to override (forwarded to every binary).
#
# Usage: scripts/reproduce.sh [--scale tiny|default|full|<divisor>]
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release -p br-bench
mkdir -p results

BINARIES=(
  table1_systems table2_datasets table3_synthetic
  fig03a_sm_variance fig03b_block_histogram fig03c_phase_split
  fig08_speedup fig09_gflops fig10_ablation fig11_lbi fig12_l2_split
  fig13_sync_stalls fig14_l2_limit fig15_scalability
  fig16a_synthetic_a2 fig16b_synthetic_ab walkthrough_youtube
  ablation_params ext_sm_scaling
)

for bin in "${BINARIES[@]}"; do
  echo "=== ${bin} ==="
  ./target/release/"${bin}" "$@" --json "results/${bin}.json" \
    | tee "results/${bin}.txt"
done

echo "all results written to results/"
