//! `blockreorg-cli` — run any spGEMM method on a Matrix Market file, a
//! registry surrogate, or a generated matrix, on any modelled device.
//!
//! ```text
//! USAGE:
//!   blockreorg-cli --input <file.mtx> | --dataset <name> | --rmat <scale,ef>
//!                  [--method <name>] [--device <name>] [--scale <div>]
//!                  [--square | --pair-with <file.mtx>] [--verify] [--list]
//!
//! EXAMPLES:
//!   blockreorg-cli --dataset youtube --method reorganizer --verify --report
//!   blockreorg-cli --rmat 14,8 --method all --device v100
//!   blockreorg-cli --input my.mtx --method cusparse
//!   blockreorg-cli --list
//! ```

use blockreorg::datasets::registry::ScaleFactor;
use blockreorg::prelude::*;
use blockreorg::sparse::io::read_matrix_market_file;
use blockreorg::spgemm::pipeline::run_method;
use blockreorg::spgemm::ProblemContext;
use std::process::exit;

struct Options {
    input: Option<String>,
    dataset: Option<String>,
    rmat: Option<(u32, usize)>,
    pair_with: Option<String>,
    method: String,
    device: String,
    scale: usize,
    verify: bool,
    report: bool,
    tune: bool,
}

fn usage_and_exit(msg: &str) -> ! {
    eprintln!("error: {msg}\n");
    eprintln!("usage: blockreorg-cli (--input <mtx> | --dataset <name> | --rmat <scale,ef>)");
    eprintln!(
        "                      [--method row|outer|cusparse|cusp|bhsparse|mkl|reorganizer|all]"
    );
    eprintln!("                      [--device titanxp|v100|2080ti] [--scale <divisor>]");
    eprintln!("                      [--pair-with <mtx>] [--verify] [--report] [--tune] [--list]");
    exit(2)
}

fn parse_options() -> Options {
    let mut o = Options {
        input: None,
        dataset: None,
        rmat: None,
        pair_with: None,
        method: "reorganizer".to_string(),
        device: "titanxp".to_string(),
        scale: 16,
        verify: false,
        report: false,
        tune: false,
    };
    let mut args = std::env::args().skip(1);
    let next = |args: &mut dyn Iterator<Item = String>, flag: &str| -> String {
        args.next()
            .unwrap_or_else(|| usage_and_exit(&format!("missing value for {flag}")))
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--input" => o.input = Some(next(&mut args, "--input")),
            "--dataset" => o.dataset = Some(next(&mut args, "--dataset")),
            "--pair-with" => o.pair_with = Some(next(&mut args, "--pair-with")),
            "--method" => o.method = next(&mut args, "--method"),
            "--device" => o.device = next(&mut args, "--device"),
            "--verify" => o.verify = true,
            "--report" => o.report = true,
            "--tune" => o.tune = true,
            "--square" => {} // the default
            "--scale" => {
                o.scale = next(&mut args, "--scale")
                    .parse()
                    .unwrap_or_else(|_| usage_and_exit("--scale must be a positive integer"))
            }
            "--rmat" => {
                let v = next(&mut args, "--rmat");
                let parts: Vec<&str> = v.split(',').collect();
                if parts.len() != 2 {
                    usage_and_exit("--rmat expects <scale,edge-factor>");
                }
                let s = parts[0]
                    .parse()
                    .unwrap_or_else(|_| usage_and_exit("bad rmat scale"));
                let ef = parts[1]
                    .parse()
                    .unwrap_or_else(|_| usage_and_exit("bad rmat edge factor"));
                o.rmat = Some((s, ef));
            }
            "--list" => {
                println!("registry datasets (Table II):");
                for spec in RealWorldRegistry::all() {
                    println!(
                        "  {:<18} {:?}  dim {:>9}  nnz(A) {:>11}",
                        spec.name, spec.class, spec.paper_dim, spec.paper_nnz_a
                    );
                }
                exit(0)
            }
            other => usage_and_exit(&format!("unknown flag {other:?}")),
        }
    }
    o
}

fn load_a(o: &Options) -> CsrMatrix<f64> {
    if let Some(path) = &o.input {
        read_matrix_market_file::<f64, _>(path)
            .unwrap_or_else(|e| usage_and_exit(&format!("cannot read {path}: {e}")))
    } else if let Some(name) = &o.dataset {
        RealWorldRegistry::get(name)
            .unwrap_or_else(|| usage_and_exit(&format!("unknown dataset {name:?} (try --list)")))
            .generate(ScaleFactor::Div(o.scale))
    } else if let Some((scale, ef)) = o.rmat {
        rmat(RmatConfig::graph500(scale, ef, 42)).to_csr()
    } else {
        usage_and_exit("one of --input / --dataset / --rmat is required")
    }
}

fn device_of(name: &str) -> DeviceConfig {
    match name.to_ascii_lowercase().as_str() {
        "titanxp" | "titan-xp" | "pascal" => DeviceConfig::titan_xp(),
        "v100" | "volta" => DeviceConfig::tesla_v100(),
        "2080ti" | "turing" => DeviceConfig::rtx_2080_ti(),
        other => usage_and_exit(&format!("unknown device {other:?}")),
    }
}

fn method_of(name: &str) -> Option<SpgemmMethod> {
    match name.to_ascii_lowercase().as_str() {
        "row" | "row-product" => Some(SpgemmMethod::RowProduct),
        "outer" | "outer-product" => Some(SpgemmMethod::OuterProduct),
        "cusparse" => Some(SpgemmMethod::CusparseLike),
        "cusp" => Some(SpgemmMethod::CuspEsc),
        "bhsparse" => Some(SpgemmMethod::BhsparseLike),
        "mkl" => Some(SpgemmMethod::MklLike),
        _ => None,
    }
}

fn report(name: &str, total_ms: f64, gflops: f64, nnz_c: usize) {
    println!(
        "{:<20} {:>10.3} ms  {:>8.2} GFLOPS  nnz(C) = {}",
        name, total_ms, gflops, nnz_c
    );
}

fn main() {
    let o = parse_options();
    let a = load_a(&o);
    let b = match &o.pair_with {
        Some(path) => read_matrix_market_file::<f64, _>(path)
            .unwrap_or_else(|e| usage_and_exit(&format!("cannot read {path}: {e}"))),
        None => a.clone(),
    };
    let device = device_of(&o.device);
    println!(
        "A: {}x{}, nnz {} | B: {}x{}, nnz {} | device: {}\n",
        a.nrows(),
        a.ncols(),
        a.nnz(),
        b.nrows(),
        b.ncols(),
        b.nnz(),
        device.name
    );
    let ctx = ProblemContext::new(&a, &b)
        .unwrap_or_else(|e| usage_and_exit(&format!("incompatible shapes: {e}")));

    if o.report {
        let report =
            block_reorganizer::WorkloadReport::of(&ctx, &ReorganizerConfig::default(), &device);
        println!("{report}\n");
    }

    let oracle = if o.verify {
        Some(spgemm_gustavson(&a, &b).expect("shapes validated above"))
    } else {
        None
    };
    let check = |result: &CsrMatrix<f64>| {
        if let Some(oracle) = &oracle {
            assert!(result.approx_eq(oracle, 1e-9), "verification FAILED");
            println!("  verified against CPU reference ✓");
        }
    };

    let run_one = |m: SpgemmMethod| {
        let run = run_method(&ctx, m, &device).expect("shapes validated above");
        report(m.name(), run.total_ms, run.gflops(), run.result.nnz());
        check(&run.result);
    };
    let run_reorg = || {
        let config = if o.tune {
            let t = block_reorganizer::tune(&ctx, &device).expect("shapes validated above");
            println!(
                "tuned in {} runs: {:.3} ms -> {:.3} ms (alpha={}, policy={:?}, units={})",
                t.evaluations,
                t.default_ms,
                t.best_ms,
                t.config.alpha,
                t.config.split_policy,
                t.config.limiting_units
            );
            t.config
        } else {
            ReorganizerConfig::default()
        };
        let run = BlockReorganizer::new(config)
            .multiply_ctx(&ctx, &device)
            .expect("shapes validated above");
        report(
            "Block-Reorganizer",
            run.total_ms,
            run.gflops(),
            run.result.nnz(),
        );
        println!(
            "  dominators {} | low performers {} | gathered {} | limited rows {}",
            run.stats.dominators,
            run.stats.low_performers,
            run.stats.gathered_blocks,
            run.stats.limited_rows
        );
        check(&run.result);
    };

    match o.method.to_ascii_lowercase().as_str() {
        "all" => {
            for m in SpgemmMethod::all() {
                run_one(m);
            }
            run_reorg();
        }
        "reorganizer" | "block-reorganizer" => run_reorg(),
        name => match method_of(name) {
            Some(m) => run_one(m),
            None => usage_and_exit(&format!("unknown method {name:?}")),
        },
    }
}
