//! `blockreorg-cli` — run any spGEMM method on a Matrix Market file, a
//! registry surrogate, or a generated matrix, on any modelled device; or
//! run a whole batch of jobs through the `br-service` worker pool.
//!
//! ```text
//! USAGE:
//!   blockreorg-cli --input <file.mtx> | --dataset <name> | --rmat <scale,ef>
//!                  [--method <name>] [--device <name>] [--scale <div>]
//!                  [--square | --pair-with <file.mtx>] [--verify] [--list]
//!   blockreorg-cli batch --jobs <file> [--device <d1,d2,..>] [--workers <n>]
//!                  [--cache <entries>] [--queue-cap <n>] [--threads <n>]
//!                  [--est-samples <n>] [--est-tolerance <f>] [--no-estimate]
//!                  [--metrics <path>] [--metrics-timing]
//!   blockreorg-cli serve --listen <addr> [--workers <n>] [--device <name>]
//!                  [--cache <entries>] [--shed-threshold <n>] [--quota <n>]
//!                  [--hold] [--port-file <path>] [--threads <n>]
//!                  [--est-samples <n>] [--est-tolerance <f>] [--no-estimate]
//!                  [--reorder none|degree|rcm|cluster|auto]
//!                  [--metrics <path>] [--metrics-timing]
//!   blockreorg-cli client --connect <addr> [--client-id <id>] --spec '<jobline>'
//!                  [--count <n>] [--lane interactive|batch|alternate]
//!                  [--deadline-ms <n>] [--release] [--shutdown] [--quiet]
//!   blockreorg-cli chain (--workload <spec> | --spec-file <path>)
//!                  (--dataset <name> [--scale <div>] | --rmat <scale,ef> [--seed <n>]
//!                   | --input <file.mtx>)
//!                  [--device <name>] [--cache <entries>] [--threads <n>]
//!                  [--reorder none|degree|rcm|cluster|auto]
//!                  [--est-samples <n>] [--est-tolerance <f>] [--no-estimate]
//!                  [--metrics <path>] [--metrics-timing]
//!   blockreorg-cli bench run [--suite quick|full|scaling|estplan|kway|reorder|chain] [--out <path>]
//!                  [--threads <n>] [--no-host] [--bins <tiny>,<heavy>[,<kway>]]
//!                  [--est-samples <n>] [--est-tolerance <f>] [--no-estimate]
//!                  [--metrics <path>] [--metrics-timing]
//!   blockreorg-cli bench compare <baseline.json> <current.json>
//!                  [--cycles-pct <pct>] [--plan-pct <pct>]
//!
//! EXAMPLES:
//!   blockreorg-cli --dataset youtube --method reorganizer --verify --report
//!   blockreorg-cli --rmat 14,8 --method all --device v100
//!   blockreorg-cli batch --jobs jobs.txt --device titanxp --workers 4
//!   blockreorg-cli serve --listen 127.0.0.1:7474 --workers 2 --shed-threshold 64
//!   blockreorg-cli client --connect 127.0.0.1:7474 --spec 'rmat=8,6' --count 4 --shutdown
//!   blockreorg-cli chain --workload galerkin --rmat 9,6
//!   blockreorg-cli chain --workload markov:4,0.001 --dataset emailEnron
//!   blockreorg-cli --list
//! ```
//!
//! Exit codes: 0 success, 1 runtime failure (I/O, failed jobs, failed
//! verification), 2 usage error, 3 bind/listen failure in serve mode.

use blockreorg::block_reorganizer::reorder::ReorderStrategy;
use blockreorg::datasets::registry::ScaleFactor;
use blockreorg::prelude::*;
use blockreorg::service::job::{expand_jobs, parse_job_file};
use blockreorg::sparse::io::read_matrix_market_file;
use blockreorg::spgemm::estimate::{set_global_estimator, EstimatorConfig, EstimatorOverride};
use blockreorg::spgemm::pipeline::run_method;
use blockreorg::spgemm::ProblemContext;
use std::process::exit;

const METHOD_CHOICES: &str = "row, outer, cusparse, cusp, bhsparse, mkl, reorganizer, all";
const DEVICE_CHOICES: &str = "titanxp, v100, 2080ti";

struct Options {
    input: Option<String>,
    dataset: Option<String>,
    rmat: Option<(u32, usize)>,
    pair_with: Option<String>,
    method: String,
    device: String,
    scale: usize,
    verify: bool,
    report: bool,
    tune: bool,
}

struct BatchOptions {
    jobs: Option<String>,
    devices: String,
    workers: usize,
    cache: usize,
    queue_cap: Option<usize>,
    metrics: Option<String>,
    metrics_timing: bool,
    estimator: Option<EstimatorConfig>,
    reorder: ReorderStrategy,
}

struct ServeOptions {
    listen: Option<String>,
    workers: usize,
    device: String,
    cache: usize,
    shed_threshold: usize,
    quota: u64,
    hold: bool,
    port_file: Option<String>,
    metrics: Option<String>,
    metrics_timing: bool,
    estimator: Option<EstimatorConfig>,
    reorder: ReorderStrategy,
}

struct ClientOptions {
    connect: Option<String>,
    client_id: String,
    spec: Option<String>,
    count: u64,
    lane: String,
    deadline_ms: u32,
    chain: bool,
    release: bool,
    shutdown: bool,
    quiet: bool,
}

struct ChainOptions {
    workload: Option<String>,
    spec_file: Option<String>,
    dataset: Option<String>,
    rmat: Option<(u32, usize)>,
    input: Option<String>,
    scale: usize,
    seed: u64,
    device: String,
    cache: usize,
    metrics: Option<String>,
    metrics_timing: bool,
    estimator: Option<EstimatorConfig>,
    reorder: ReorderStrategy,
}

fn print_usage() {
    println!("usage: blockreorg-cli (--input <mtx> | --dataset <name> | --rmat <scale,ef>)");
    println!("                      [--method {METHOD_CHOICES}]");
    println!("                      [--device {DEVICE_CHOICES}] [--scale <divisor>]");
    println!("                      [--pair-with <mtx>] [--verify] [--report] [--tune] [--list]");
    println!("       blockreorg-cli batch --jobs <file> [--device <d1,d2,..>] [--workers <n>]");
    println!("                      [--cache <entries>] [--queue-cap <n>] [--threads <n>]");
    println!("                      [--est-samples <n>] [--est-tolerance <f>] [--no-estimate]");
    println!("                      [--reorder none|degree|rcm|cluster|auto]");
    println!("                      [--metrics <path>] [--metrics-timing]");
    println!("       blockreorg-cli serve --listen <addr> [--workers <n>] [--device <name>]");
    println!("                      [--cache <entries>] [--shed-threshold <n>] [--quota <n>]");
    println!("                      [--hold] [--port-file <path>] [--threads <n>]");
    println!("                      [--est-samples <n>] [--est-tolerance <f>] [--no-estimate]");
    println!("                      [--reorder none|degree|rcm|cluster|auto]");
    println!("                      [--metrics <path>] [--metrics-timing]");
    println!("       blockreorg-cli client --connect <addr> [--client-id <id>] --spec '<jobline>'");
    println!("                      [--count <n>] [--lane interactive|batch|alternate]");
    println!("                      [--deadline-ms <n>] [--chain] [--release] [--shutdown]");
    println!("                      [--quiet]");
    println!("       blockreorg-cli chain (--workload <spec> | --spec-file <path>)");
    println!("                      (--dataset <name> [--scale <div>] | --rmat <scale,ef>");
    println!("                       [--seed <n>] | --input <file.mtx>)");
    println!("                      [--device <name>] [--cache <entries>] [--threads <n>]");
    println!("                      [--reorder none|degree|rcm|cluster|auto]");
    println!("                      [--est-samples <n>] [--est-tolerance <f>] [--no-estimate]");
    println!("                      [--metrics <path>] [--metrics-timing]");
    println!(
        "       blockreorg-cli bench run [--suite quick|full|scaling|estplan|kway|reorder|chain]"
    );
    println!("                      [--out <path>]");
    println!("                      [--threads <n>] [--no-host] [--bins <tiny>,<heavy>[,<kway>]]");
    println!("                      [--est-samples <n>] [--est-tolerance <f>] [--no-estimate]");
    println!("                      [--metrics <path>] [--metrics-timing]");
    println!("       blockreorg-cli bench compare <baseline.json> <current.json>");
    println!("                      [--cycles-pct <pct>] [--plan-pct <pct>]");
    println!();
    println!("--metrics <path> dumps the process-wide observability registry on exit:");
    println!("Prometheus text to <path>, JSONL to <path>.jsonl. The default dump contains");
    println!("only deterministic families (counters/histograms keyed by content), so the");
    println!("files byte-compare across repeated runs and any --threads / BR_THREADS");
    println!("setting. --metrics-timing adds wall-clock families (queue waits, span");
    println!("durations, LBI/L2 gauges) — informational, not byte-stable.");
    println!();
    println!("bench mode runs a fixed (dataset x method x device) grid on the simulator,");
    println!("writes a deterministic BENCH_<suite>.json report, and compares reports with");
    println!("per-metric tolerances (nonzero exit on regression) — the CI perf gate.");
    println!();
    println!("--threads <n> (or the BR_THREADS env var) sets the host worker count for");
    println!("the suite grid, the per-block simulator passes, and the numeric mergers;");
    println!("1 = exact sequential path. Every simulated metric is bit-identical at any");
    println!("thread count; only wall clock changes. --no-host omits the wall-clock");
    println!("'host' section from the report so files byte-compare across runs.");
    println!("--bins <tiny_max>,<heavy_min>[,<kway_min>] overrides the adaptive numeric");
    println!("engine's row-bin thresholds (default 16,2048, kway off); the optional third");
    println!("field routes rows with at least that many intermediate products through the");
    println!("k-way tournament merge. Inverted/overlapping spellings are rejected (exit 2).");
    println!("Results are bit-identical at any setting — bins change only which merge");
    println!("kernel runs, never the numbers.");
    println!();
    println!("--est-samples <n> / --est-tolerance <f> configure the sampling estimator");
    println!("that replaces exact cold-plan precalculation (defaults 64 / 1.0); in batch");
    println!("and serve mode any --est-* flag opts the worker pool into estimation,");
    println!("while bench run's estplan suite estimates by default. --no-estimate forces");
    println!("exact precalculation everywhere. Results are bit-identical either way —");
    println!("estimation changes only plan-time cost and performance-knob choices.");
    println!("bench compare gates per-case plan ops with --plan-pct (default 10%).");
    println!();
    println!("--reorder <strategy> (batch / serve) permutes A's rows before planning:");
    println!("'degree' sorts by descending row nnz, 'rcm' reduces bandwidth via reverse");
    println!("Cuthill-McKee, 'cluster' groups rows with similar column structure, 'auto'");
    println!("picks per problem, 'none' (default) keeps the input order. The permutation");
    println!("is stored in the cached plan and undone on output, so results are");
    println!("bit-identical at any setting — only the simulated launch schedule (LBI,");
    println!("L2 hit rate) changes. bench run's reorder suite sweeps every strategy.");
    println!();
    println!("batch mode runs every job in <file> through the br-service worker pool");
    println!("(one simulated device per worker) with an LRU reorganization-plan cache,");
    println!("then prints per-phase latency, cache hit rate, and per-device utilization.");
    println!("Job-file lines: 'dataset=<name> [scale=<div>] [repeat=<n>]',");
    println!("'rmat=<scale,ef> [seed=<n>] [repeat=<n>]', or 'input=<mtx> [pair=<mtx>]';");
    println!("'#' starts a comment. --queue-cap bounds the submission queue; jobs beyond");
    println!("the bound are reported as failures instead of queued.");
    println!();
    println!("chain mode runs a multiplication workload — a DAG of SpGEMM steps with");
    println!("optional element-wise post-ops — through the plan-cached service executor");
    println!("and prints a per-step table (cache hit/miss, fresh vs reused structure,");
    println!("method, time, output size). --workload takes a canonical spec:");
    println!("'square:<k>' (iterated squaring), 'triangle' (masked A^2 count),");
    println!("'markov:<iters>,<tol>' (MCL expansion/inflation), or 'galerkin'");
    println!("(P'AP restriction, run twice to demonstrate plan-cache reuse).");
    println!("--spec-file loads the generic chain format (see DESIGN.md section 16);");
    println!("generic files must declare exactly one input, bound to the loaded matrix.");
    println!("Chain results are bit-identical at any --threads / --reorder setting.");
    println!();
    println!("serve mode hosts the br-net TCP front end (length-prefixed binary frames,");
    println!("interactive/batch priority lanes, per-client quotas, load shedding at");
    println!("--shed-threshold, per-request deadlines, graceful drain on a Shutdown");
    println!("frame). --hold keeps the worker gate closed until a client sends Release,");
    println!("making shed/quota accounting a pure function of arrival order. --port-file");
    println!("writes the bound address (useful with ':0' ephemeral listens). client mode");
    println!("submits --count copies of the --spec job line and prints the response tally;");
    println!("--chain sends SubmitChain frames instead (the spec needs a chain=<workload>");
    println!("key, e.g. 'chain=galerkin rmat=8,6'), answered with per-step ChainResults.");
    println!();
    println!("exit codes: 0 success, 1 runtime failure, 2 usage error, 3 bind/listen");
    println!("failure in serve mode");
}

fn usage_and_exit(msg: &str) -> ! {
    eprintln!("error: {msg}\n");
    print_usage();
    exit(2)
}

fn runtime_error(msg: &str) -> ! {
    eprintln!("error: {msg}");
    exit(1)
}

fn parse_options(args: &mut dyn Iterator<Item = String>) -> Options {
    let mut o = Options {
        input: None,
        dataset: None,
        rmat: None,
        pair_with: None,
        method: "reorganizer".to_string(),
        device: "titanxp".to_string(),
        scale: 16,
        verify: false,
        report: false,
        tune: false,
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "-h" | "--help" => {
                print_usage();
                exit(0)
            }
            "--input" => o.input = Some(next_value(args, "--input")),
            "--dataset" => o.dataset = Some(next_value(args, "--dataset")),
            "--pair-with" => o.pair_with = Some(next_value(args, "--pair-with")),
            "--method" => o.method = next_value(args, "--method"),
            "--device" => o.device = next_value(args, "--device"),
            "--verify" => o.verify = true,
            "--report" => o.report = true,
            "--tune" => o.tune = true,
            "--square" => {} // the default
            "--scale" => {
                o.scale = next_value(args, "--scale")
                    .parse()
                    .unwrap_or_else(|_| usage_and_exit("--scale must be a positive integer"))
            }
            "--rmat" => {
                let v = next_value(args, "--rmat");
                let parts: Vec<&str> = v.split(',').collect();
                if parts.len() != 2 {
                    usage_and_exit("--rmat expects <scale,edge-factor>");
                }
                let s = parts[0]
                    .parse()
                    .unwrap_or_else(|_| usage_and_exit("bad rmat scale"));
                let ef = parts[1]
                    .parse()
                    .unwrap_or_else(|_| usage_and_exit("bad rmat edge factor"));
                o.rmat = Some((s, ef));
            }
            "--list" => {
                println!("registry datasets (Table II):");
                for spec in RealWorldRegistry::all() {
                    println!(
                        "  {:<18} {:?}  dim {:>9}  nnz(A) {:>11}",
                        spec.name, spec.class, spec.paper_dim, spec.paper_nnz_a
                    );
                }
                exit(0)
            }
            other => usage_and_exit(&format!("unknown flag {other:?}")),
        }
    }
    o
}

fn parse_batch_options(args: &mut dyn Iterator<Item = String>) -> BatchOptions {
    let mut o = BatchOptions {
        jobs: None,
        devices: "titanxp".to_string(),
        workers: 0,
        cache: 32,
        queue_cap: None,
        metrics: None,
        metrics_timing: false,
        estimator: None,
        reorder: ReorderStrategy::None,
    };
    let mut est = EstimatorFlags::default();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "-h" | "--help" => {
                print_usage();
                exit(0)
            }
            "--jobs" => o.jobs = Some(next_value(args, "--jobs")),
            "--device" => o.devices = next_value(args, "--device"),
            "--metrics" => o.metrics = Some(next_value(args, "--metrics")),
            "--metrics-timing" => o.metrics_timing = true,
            "--workers" => {
                o.workers = next_value(args, "--workers")
                    .parse()
                    .unwrap_or_else(|_| usage_and_exit("--workers must be a positive integer"));
                if o.workers == 0 {
                    usage_and_exit("--workers must be >= 1");
                }
            }
            "--cache" => {
                o.cache = next_value(args, "--cache")
                    .parse()
                    .unwrap_or_else(|_| usage_and_exit("--cache must be a positive integer"));
            }
            "--queue-cap" => {
                let cap: usize = next_value(args, "--queue-cap")
                    .parse()
                    .unwrap_or_else(|_| usage_and_exit("--queue-cap must be a positive integer"));
                if cap == 0 {
                    usage_and_exit("--queue-cap must be >= 1");
                }
                o.queue_cap = Some(cap);
            }
            "--threads" => apply_threads_flag(&next_value(args, "--threads")),
            "--reorder" => o.reorder = parse_reorder_flag(&next_value(args, "--reorder")),
            other => {
                if !est.try_parse(other, args) {
                    usage_and_exit(&format!("unknown flag {other:?} in batch mode"))
                }
            }
        }
    }
    o.estimator = est.service_estimator();
    o
}

fn parse_serve_options(args: &mut dyn Iterator<Item = String>) -> ServeOptions {
    let mut o = ServeOptions {
        listen: None,
        workers: 1,
        device: "titanxp".to_string(),
        cache: 32,
        shed_threshold: 64,
        quota: 256,
        hold: false,
        port_file: None,
        metrics: None,
        metrics_timing: false,
        estimator: None,
        reorder: ReorderStrategy::None,
    };
    let mut est = EstimatorFlags::default();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "-h" | "--help" => {
                print_usage();
                exit(0)
            }
            "--listen" => o.listen = Some(next_value(args, "--listen")),
            "--device" => o.device = next_value(args, "--device"),
            "--port-file" => o.port_file = Some(next_value(args, "--port-file")),
            "--metrics" => o.metrics = Some(next_value(args, "--metrics")),
            "--metrics-timing" => o.metrics_timing = true,
            "--hold" => o.hold = true,
            "--workers" => {
                o.workers = next_value(args, "--workers")
                    .parse()
                    .unwrap_or_else(|_| usage_and_exit("--workers must be a positive integer"));
                if o.workers == 0 {
                    usage_and_exit("--workers must be >= 1");
                }
            }
            "--cache" => {
                o.cache = next_value(args, "--cache")
                    .parse()
                    .unwrap_or_else(|_| usage_and_exit("--cache must be a positive integer"));
            }
            "--shed-threshold" => {
                o.shed_threshold =
                    next_value(args, "--shed-threshold")
                        .parse()
                        .unwrap_or_else(|_| {
                            usage_and_exit("--shed-threshold must be a positive integer")
                        });
                if o.shed_threshold == 0 {
                    usage_and_exit("--shed-threshold must be >= 1");
                }
            }
            "--quota" => {
                o.quota = next_value(args, "--quota")
                    .parse()
                    .unwrap_or_else(|_| usage_and_exit("--quota must be a positive integer"));
                if o.quota == 0 {
                    usage_and_exit("--quota must be >= 1");
                }
            }
            "--threads" => apply_threads_flag(&next_value(args, "--threads")),
            "--reorder" => o.reorder = parse_reorder_flag(&next_value(args, "--reorder")),
            other => {
                if !est.try_parse(other, args) {
                    usage_and_exit(&format!("unknown flag {other:?} in serve mode"))
                }
            }
        }
    }
    o.estimator = est.service_estimator();
    o
}

fn parse_client_options(args: &mut dyn Iterator<Item = String>) -> ClientOptions {
    let mut o = ClientOptions {
        connect: None,
        client_id: "cli".to_string(),
        spec: None,
        count: 1,
        lane: "interactive".to_string(),
        deadline_ms: 0,
        chain: false,
        release: false,
        shutdown: false,
        quiet: false,
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "-h" | "--help" => {
                print_usage();
                exit(0)
            }
            "--connect" => o.connect = Some(next_value(args, "--connect")),
            "--client-id" => o.client_id = next_value(args, "--client-id"),
            "--spec" => o.spec = Some(next_value(args, "--spec")),
            "--lane" => o.lane = next_value(args, "--lane"),
            "--chain" => o.chain = true,
            "--release" => o.release = true,
            "--shutdown" => o.shutdown = true,
            "--quiet" => o.quiet = true,
            "--count" => {
                o.count = next_value(args, "--count")
                    .parse()
                    .unwrap_or_else(|_| usage_and_exit("--count must be a positive integer"));
                if o.count == 0 {
                    usage_and_exit("--count must be >= 1");
                }
            }
            "--deadline-ms" => {
                o.deadline_ms = next_value(args, "--deadline-ms")
                    .parse()
                    .unwrap_or_else(|_| usage_and_exit("--deadline-ms must be an integer"));
            }
            other => usage_and_exit(&format!("unknown flag {other:?} in client mode")),
        }
    }
    o
}

fn parse_chain_options(args: &mut dyn Iterator<Item = String>) -> ChainOptions {
    let mut o = ChainOptions {
        workload: None,
        spec_file: None,
        dataset: None,
        rmat: None,
        input: None,
        scale: 16,
        seed: 42,
        device: "titanxp".to_string(),
        cache: 32,
        metrics: None,
        metrics_timing: false,
        estimator: None,
        reorder: ReorderStrategy::None,
    };
    let mut est = EstimatorFlags::default();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "-h" | "--help" => {
                print_usage();
                exit(0)
            }
            "--workload" => o.workload = Some(next_value(args, "--workload")),
            "--spec-file" => o.spec_file = Some(next_value(args, "--spec-file")),
            "--dataset" => o.dataset = Some(next_value(args, "--dataset")),
            "--input" => o.input = Some(next_value(args, "--input")),
            "--device" => o.device = next_value(args, "--device"),
            "--metrics" => o.metrics = Some(next_value(args, "--metrics")),
            "--metrics-timing" => o.metrics_timing = true,
            "--scale" => {
                o.scale = next_value(args, "--scale")
                    .parse()
                    .unwrap_or_else(|_| usage_and_exit("--scale must be a positive integer"))
            }
            "--seed" => {
                o.seed = next_value(args, "--seed")
                    .parse()
                    .unwrap_or_else(|_| usage_and_exit("--seed must be an integer"))
            }
            "--cache" => {
                o.cache = next_value(args, "--cache")
                    .parse()
                    .unwrap_or_else(|_| usage_and_exit("--cache must be a positive integer"));
            }
            "--rmat" => {
                let v = next_value(args, "--rmat");
                let parts: Vec<&str> = v.split(',').collect();
                if parts.len() != 2 {
                    usage_and_exit("--rmat expects <scale,edge-factor>");
                }
                let s = parts[0]
                    .parse()
                    .unwrap_or_else(|_| usage_and_exit("bad rmat scale"));
                let ef = parts[1]
                    .parse()
                    .unwrap_or_else(|_| usage_and_exit("bad rmat edge factor"));
                o.rmat = Some((s, ef));
            }
            "--threads" => apply_threads_flag(&next_value(args, "--threads")),
            "--reorder" => o.reorder = parse_reorder_flag(&next_value(args, "--reorder")),
            other => {
                if !est.try_parse(other, args) {
                    usage_and_exit(&format!("unknown flag {other:?} in chain mode"))
                }
            }
        }
    }
    o.estimator = est.service_estimator();
    o
}

/// Accumulates the estimator flag group shared by batch / serve / bench
/// run: `--est-samples <n>`, `--est-tolerance <f>`, `--no-estimate`.
#[derive(Default)]
struct EstimatorFlags {
    samples: Option<usize>,
    tolerance: Option<f64>,
    disabled: bool,
}

impl EstimatorFlags {
    /// Consumes `arg` (and its value) when it belongs to the estimator
    /// group; returns false so the caller can try its own flags.
    fn try_parse(&mut self, arg: &str, args: &mut dyn Iterator<Item = String>) -> bool {
        match arg {
            "--no-estimate" => self.disabled = true,
            "--est-samples" => {
                let v = next_value(args, "--est-samples");
                match v.parse::<usize>() {
                    Ok(n) if n >= 1 => self.samples = Some(n),
                    _ => usage_and_exit("--est-samples must be a positive integer"),
                }
            }
            "--est-tolerance" => {
                let v = next_value(args, "--est-tolerance");
                match v.parse::<f64>() {
                    Ok(t) if t >= 0.0 && t.is_finite() => self.tolerance = Some(t),
                    _ => usage_and_exit("--est-tolerance must be a finite number >= 0"),
                }
            }
            _ => return false,
        }
        true
    }

    /// The configured values over the defaults.
    fn config(&self) -> EstimatorConfig {
        let mut config = EstimatorConfig::default();
        if let Some(samples) = self.samples {
            config.samples = samples;
        }
        if let Some(tolerance) = self.tolerance {
            config.tolerance = tolerance;
        }
        config
    }

    /// batch / serve semantics: estimation is opt-in (`None` = exact
    /// precalculation, the historical default); any `--est-*` flag turns
    /// it on, `--no-estimate` wins over both.
    fn service_estimator(&self) -> Option<EstimatorConfig> {
        if self.disabled || (self.samples.is_none() && self.tolerance.is_none()) {
            None
        } else {
            Some(self.config())
        }
    }

    /// bench-run semantics: the estplan suite estimates by default, so the
    /// flags install a process-wide override only when one was given
    /// (`--no-estimate` forces every plan back to exact precalculation).
    fn install_global(&self) {
        if self.disabled || self.samples.is_some() || self.tolerance.is_some() {
            set_global_estimator(Some(EstimatorOverride {
                config: self.config(),
                enabled: !self.disabled,
            }));
        }
    }
}

fn next_value(args: &mut dyn Iterator<Item = String>, flag: &str) -> String {
    args.next()
        .unwrap_or_else(|| usage_and_exit(&format!("missing value for {flag}")))
}

/// Parses and installs a `--threads <n>` override. `n = 0` is a usage
/// error (exit 2): the sequential path is requested with `--threads 1`,
/// not zero workers. The override takes precedence over `BR_THREADS`.
fn apply_threads_flag(value: &str) {
    match value.parse::<usize>() {
        Ok(n) if n >= 1 => blockreorg::sparse::par::set_global_threads(n),
        Ok(_) => usage_and_exit("--threads must be >= 1 (use 1 for the sequential path)"),
        Err(_) => usage_and_exit(&format!(
            "--threads expects a positive integer, got {value:?}"
        )),
    }
}

/// Parses a `--reorder <strategy>` value through the typed
/// `ReorderParseError` path, so a bad spelling exits 2 with the valid
/// strategy list in the message.
fn parse_reorder_flag(value: &str) -> ReorderStrategy {
    ReorderStrategy::parse(value)
        .unwrap_or_else(|e| usage_and_exit(&format!("bad --reorder value: {e}")))
}

fn load_a(o: &Options) -> CsrMatrix<f64> {
    if let Some(path) = &o.input {
        read_matrix_market_file::<f64, _>(path)
            .unwrap_or_else(|e| runtime_error(&format!("cannot read {path}: {e}")))
    } else if let Some(name) = &o.dataset {
        RealWorldRegistry::get(name)
            .unwrap_or_else(|| {
                let valid: Vec<&str> = RealWorldRegistry::all().iter().map(|s| s.name).collect();
                usage_and_exit(&format!(
                    "unknown dataset {name:?}; valid datasets: {}",
                    valid.join(", ")
                ))
            })
            .generate(ScaleFactor::Div(o.scale))
    } else if let Some((scale, ef)) = o.rmat {
        rmat(RmatConfig::graph500(scale, ef, 42)).to_csr()
    } else {
        usage_and_exit("one of --input / --dataset / --rmat is required")
    }
}

fn device_of(name: &str) -> DeviceConfig {
    match name.to_ascii_lowercase().as_str() {
        "titanxp" | "titan-xp" | "pascal" => DeviceConfig::titan_xp(),
        "v100" | "volta" => DeviceConfig::tesla_v100(),
        "2080ti" | "turing" => DeviceConfig::rtx_2080_ti(),
        other => usage_and_exit(&format!(
            "unknown device {other:?}; valid devices: {DEVICE_CHOICES}"
        )),
    }
}

fn method_of(name: &str) -> Option<SpgemmMethod> {
    match name.to_ascii_lowercase().as_str() {
        "row" | "row-product" => Some(SpgemmMethod::RowProduct),
        "outer" | "outer-product" => Some(SpgemmMethod::OuterProduct),
        "cusparse" => Some(SpgemmMethod::CusparseLike),
        "cusp" => Some(SpgemmMethod::CuspEsc),
        "bhsparse" => Some(SpgemmMethod::BhsparseLike),
        "mkl" => Some(SpgemmMethod::MklLike),
        _ => None,
    }
}

fn report(name: &str, total_ms: f64, gflops: f64, nnz_c: usize) {
    println!(
        "{:<20} {:>10.3} ms  {:>8.2} GFLOPS  nnz(C) = {}",
        name, total_ms, gflops, nnz_c
    );
}

/// Dumps the process-wide observability registry: Prometheus text to
/// `path`, one JSON object per line to `path.jsonl`. With `timing = false`
/// (the default) only deterministic families are written, so the files
/// byte-compare across repeated runs and any `BR_THREADS` setting;
/// `--metrics-timing` adds the timing families (queue depths, wall-clock
/// histograms, span durations) for human inspection.
fn write_metrics(path: &str, timing: bool) {
    // Pre-register every merge, reorder, and chain instrument cell so the
    // exported cell set is byte-identical whether or not the run exercised
    // each bin, reorder strategy, or chain step.
    blockreorg::spgemm::accum::register_merge_instruments();
    blockreorg::block_reorganizer::reorder::register_reorder_instruments();
    blockreorg::service::chain::register_chain_instruments(blockreorg::obs::global());
    let reg = blockreorg::obs::global();
    if let Err(e) = std::fs::write(path, reg.render_prometheus(timing)) {
        runtime_error(&format!("cannot write {path}: {e}"));
    }
    let jsonl = format!("{path}.jsonl");
    if let Err(e) = std::fs::write(&jsonl, reg.render_jsonl(timing)) {
        runtime_error(&format!("cannot write {jsonl}: {e}"));
    }
    println!("wrote metrics: {path} (Prometheus), {jsonl} (JSONL)");
}

fn run_batch_mode(o: BatchOptions) -> ! {
    let path = o
        .jobs
        .unwrap_or_else(|| usage_and_exit("batch mode requires --jobs <file>"));
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| runtime_error(&format!("cannot read job file {path}: {e}")));
    let specs = parse_job_file(&text).unwrap_or_else(|e| runtime_error(&e));
    let jobs =
        expand_jobs(&specs, ReorganizerConfig::default()).unwrap_or_else(|e| runtime_error(&e));

    let mut devices: Vec<DeviceConfig> = o.devices.split(',').map(device_of).collect();
    if o.workers > 0 {
        if devices.len() == 1 {
            devices = vec![devices[0].clone(); o.workers];
        } else if devices.len() != o.workers {
            usage_and_exit("--workers must match the --device list length (or give one device)");
        }
    }
    println!(
        "batch: {} jobs from {path}, {} workers, plan cache {} entries",
        jobs.len(),
        devices.len(),
        o.cache
    );
    for (i, d) in devices.iter().enumerate() {
        println!("  worker {i}: {}", d.name);
    }
    println!();

    if o.metrics_timing {
        blockreorg::obs::install_wall_clock(blockreorg::obs::global());
    }
    let batch = SpgemmService::run_batch(
        ServiceConfig {
            devices,
            cache_capacity: o.cache,
            queue_capacity: o.queue_cap,
            // Job-lifecycle spans and cache counters land in the same
            // process-wide registry as the spgemm / gpu-sim instruments,
            // so one --metrics dump covers the whole pipeline.
            registry: Some(blockreorg::obs::global_arc()),
            estimator: o.estimator,
            reorder: o.reorder,
        },
        jobs,
    );
    for outcome in &batch.outcomes {
        println!(
            "{:<24} worker {}  {}  {:>10.4} ms  {:>8.2} GFLOPS  nnz(C) = {}",
            outcome.label,
            outcome.worker,
            if outcome.cache_hit { "hit " } else { "miss" },
            outcome.total_ms,
            outcome.gflops,
            outcome.nnz_c
        );
    }
    println!();
    print!("{}", batch.stats);
    if let Some(path) = &o.metrics {
        write_metrics(path, o.metrics_timing);
    }
    if batch.failures.is_empty() {
        exit(0)
    }
    for failure in &batch.failures {
        eprintln!(
            "job {} ({}) failed: {}",
            failure.id, failure.label, failure.message
        );
    }
    exit(1)
}

/// `serve` — hosts the br-net TCP front end over a worker pool, runs
/// until a client's `Shutdown` frame completes the graceful drain, then
/// prints the serve report and exits 0. Bind/listen failures exit 3 so
/// scripts can tell "port taken" from "jobs failed".
fn run_serve_mode(o: ServeOptions) -> ! {
    use blockreorg::net::server::{NetServer, ServerConfig};

    let listen = o
        .listen
        .unwrap_or_else(|| usage_and_exit("serve mode requires --listen <addr>"));
    let device = device_of(&o.device);
    let devices = vec![device; o.workers];
    if o.metrics_timing {
        blockreorg::obs::install_wall_clock(blockreorg::obs::global());
    }
    let config = ServerConfig {
        devices,
        cache_capacity: o.cache,
        shed_threshold: o.shed_threshold,
        quota: o.quota,
        hold: o.hold,
        config: ReorganizerConfig::default(),
        // Net admission counters share the process-wide registry with the
        // spgemm / gpu-sim instruments, so one --metrics dump covers the
        // whole serving path.
        registry: Some(blockreorg::obs::global_arc()),
        estimator: o.estimator,
        reorder: o.reorder,
    };
    let server = match NetServer::bind(&listen, config) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("error: cannot bind/listen on {listen}: {e}");
            exit(3)
        }
    };
    let addr = server.local_addr();
    if let Some(path) = &o.port_file {
        if let Err(e) = std::fs::write(path, format!("{addr}\n")) {
            runtime_error(&format!("cannot write port file {path}: {e}"));
        }
    }
    println!(
        "serving on {addr}: {} workers, shed threshold {}, quota {}{}",
        o.workers,
        o.shed_threshold,
        o.quota,
        if o.hold { ", worker gate held" } else { "" }
    );
    let report = server.run();
    print!("{report}");
    if let Some(path) = &o.metrics {
        write_metrics(path, o.metrics_timing);
    }
    exit(0)
}

/// `client` — submits `--count` copies of a job line over the wire,
/// collects exactly one response per request, and prints the tally.
fn run_client_mode(o: ClientOptions) -> ! {
    use blockreorg::net::client::NetClient;
    use blockreorg::net::frame::Lane;

    let addr = o
        .connect
        .unwrap_or_else(|| usage_and_exit("client mode requires --connect <addr>"));
    let spec = o
        .spec
        .unwrap_or_else(|| usage_and_exit("client mode requires --spec '<jobline>'"));
    let lane_of = |id: u64| match o.lane.as_str() {
        "interactive" => Lane::Interactive,
        "batch" => Lane::Batch,
        "alternate" => {
            if id.is_multiple_of(2) {
                Lane::Interactive
            } else {
                Lane::Batch
            }
        }
        other => usage_and_exit(&format!(
            "unknown lane {other:?}; valid lanes: interactive, batch, alternate"
        )),
    };
    let mut client = NetClient::connect(&addr, &o.client_id)
        .unwrap_or_else(|e| runtime_error(&format!("cannot connect to {addr}: {e}")));
    let info = client.server_info();
    if !o.quiet {
        println!(
            "connected to {addr}: protocol v{}, shed threshold {}, quota {}{}",
            info.version,
            info.shed_threshold,
            info.quota,
            if info.held { ", worker gate held" } else { "" }
        );
    }
    let fail = |e: blockreorg::net::client::ClientError| -> ! {
        runtime_error(&format!("client error: {e}"))
    };
    for id in 0..o.count {
        if o.chain {
            client
                .submit_chain(id, lane_of(id), o.deadline_ms, &spec)
                .unwrap_or_else(|e| fail(e));
        } else {
            client
                .submit(id, lane_of(id), o.deadline_ms, &spec)
                .unwrap_or_else(|e| fail(e));
        }
    }
    if o.release {
        client.release().unwrap_or_else(|e| fail(e));
    }
    let mut summary = client
        .collect_responses(o.count as usize)
        .unwrap_or_else(|e| fail(e));
    if o.shutdown {
        client.shutdown().unwrap_or_else(|e| fail(e));
        client
            .drain_to_eof(&mut summary)
            .unwrap_or_else(|e| fail(e));
    } else {
        client.goodbye().ok();
    }
    let counts = summary.counts();
    let tally: Vec<String> = counts
        .iter()
        .filter(|(_, n)| **n > 0)
        .map(|(kind, n)| format!("{kind} {n}"))
        .collect();
    println!(
        "client {}: {} submitted, {} responses ({}){}",
        o.client_id,
        o.count,
        summary.total(),
        tally.join(", "),
        if summary.drain_notice {
            ", drain notice received"
        } else {
            ""
        }
    );
    if !o.quiet {
        for (id, cache_hit) in &summary.results {
            println!(
                "  request {id}: result ({})",
                if *cache_hit { "hit" } else { "miss" }
            );
        }
        for (id, steps, cached) in &summary.chain_results {
            println!("  request {id}: chain result ({steps} steps, {cached} plan-cache hits)");
        }
        for id in &summary.shed {
            println!("  request {id}: shed");
        }
        for (id, reason) in &summary.rejected {
            println!("  request {id}: rejected ({reason})");
        }
    }
    exit(0)
}

/// `chain` — runs one multiplication workload (a DAG of SpGEMM steps with
/// element-wise post-ops) through the plan-cached chain executor and
/// prints the per-step table: which steps hit the plan cache, which saw a
/// fresh operand structure, and what each step cost.
fn run_chain_mode(o: ChainOptions) -> ! {
    use blockreorg::bench::report::Table;
    use blockreorg::gpu_sim::sim::GpuSimulator;
    use blockreorg::service::chain::{self, ChainRequest};
    use blockreorg::spgemm::accum::ScratchPool;
    use blockreorg::workloads::{parse_chain_spec, Workload};
    use std::sync::Arc;

    let a: CsrMatrix<f64> = if let Some(path) = &o.input {
        read_matrix_market_file::<f64, _>(path)
            .unwrap_or_else(|e| runtime_error(&format!("cannot read {path}: {e}")))
    } else if let Some(name) = &o.dataset {
        RealWorldRegistry::get(name)
            .unwrap_or_else(|| {
                let valid: Vec<&str> = RealWorldRegistry::all().iter().map(|s| s.name).collect();
                usage_and_exit(&format!(
                    "unknown dataset {name:?}; valid datasets: {}",
                    valid.join(", ")
                ))
            })
            .generate(ScaleFactor::Div(o.scale))
    } else if let Some((scale, ef)) = o.rmat {
        rmat(RmatConfig::graph500(scale, ef, o.seed)).to_csr()
    } else {
        usage_and_exit("chain mode needs one of --dataset / --rmat / --input")
    };
    println!("A: {}x{}, nnz {}", a.nrows(), a.ncols(), a.nnz());

    let request = match (&o.workload, &o.spec_file) {
        (Some(_), Some(_)) => usage_and_exit("--workload and --spec-file are mutually exclusive"),
        (None, None) => usage_and_exit("chain mode needs --workload <spec> or --spec-file <path>"),
        (Some(w), None) => {
            let workload = Workload::parse(w).unwrap_or_else(|e| usage_and_exit(&e));
            ChainRequest::workload(0, workload, &a)
        }
        (None, Some(path)) => {
            let text = std::fs::read_to_string(path)
                .unwrap_or_else(|e| runtime_error(&format!("cannot read {path}: {e}")));
            let program =
                parse_chain_spec(&text).unwrap_or_else(|e| runtime_error(&format!("{path}: {e}")));
            if program.inputs.len() != 1 {
                runtime_error(&format!(
                    "{path}: generic spec files must declare exactly one input (found {}); \
                     multi-input workloads go through --workload",
                    program.inputs.len()
                ));
            }
            ChainRequest::program(0, program, vec![Arc::new(a)])
        }
    };

    let device = device_of(&o.device);
    if o.metrics_timing {
        blockreorg::obs::install_wall_clock(blockreorg::obs::global());
    }
    // Chain counters land in the process-wide registry, so one --metrics
    // dump covers the plan cache, the simulator, and the chain roll-up.
    let registry = blockreorg::obs::global_arc();
    let instruments = chain::register_chain_instruments(&registry);
    let cache = PlanCache::with_registry(o.cache, registry.clone());
    let sim = GpuSimulator::new(device.clone());
    let pool = ScratchPool::new();
    println!(
        "chain {}: {} steps on {}, plan cache {} entries\n",
        request.label,
        request.program.steps.len(),
        device.name,
        o.cache
    );

    let outcome = chain::execute_chain(
        0,
        &device,
        &sim,
        &cache,
        &pool,
        o.estimator,
        o.reorder,
        &instruments,
        &registry,
        request,
        0.0,
    )
    .unwrap_or_else(|e| runtime_error(&format!("chain failed: {}", e.message)));

    let mut table = Table::new(vec![
        "step",
        "plan",
        "structure",
        "method",
        "time (ms)",
        "product nnz",
        "output nnz",
        "fill-in",
    ]);
    for s in &outcome.steps {
        table.row(vec![
            format!("{}:{}", s.index, s.label),
            if s.cache_hit { "hit" } else { "miss" }.to_string(),
            if s.fresh_structure { "fresh" } else { "reused" }.to_string(),
            s.method.to_string(),
            format!("{:.4}", s.total_ms),
            s.product_nnz.to_string(),
            s.output_nnz.to_string(),
            format!("{:.3}x", s.fill_in_permille as f64 / 1000.0),
        ]);
    }
    table.print();
    println!();
    println!(
        "chain {}: {} steps, {} plan-cache hits / {} misses, {} fresh structures, \
         {:.4} ms simulated, result nnz {}",
        outcome.label,
        outcome.steps.len(),
        outcome.cache_hits(),
        outcome.cache_misses(),
        outcome.structure_churn(),
        outcome.total_ms,
        outcome.result.nnz()
    );
    if let Some(path) = &o.metrics {
        write_metrics(path, o.metrics_timing);
    }
    exit(0)
}

/// `bench run` / `bench compare` — the regression-tracking front end over
/// `br-bench::{suite, compare}` (see EXPERIMENTS.md "Benchmarking &
/// regression tracking").
fn run_bench_mode(args: &mut dyn Iterator<Item = String>) -> ! {
    use blockreorg::bench::compare::{compare, Thresholds};
    use blockreorg::bench::schema::BenchReport;
    use blockreorg::bench::suite::{run_suite, Suite};

    match args.next().as_deref() {
        Some("run") => {
            let mut suite = Suite::Quick;
            let mut out: Option<String> = None;
            let mut no_host = false;
            let mut metrics: Option<String> = None;
            let mut metrics_timing = false;
            let mut est = EstimatorFlags::default();
            while let Some(arg) = args.next() {
                match arg.as_str() {
                    "--suite" => {
                        let v = args
                            .next()
                            .unwrap_or_else(|| usage_and_exit("missing --suite value"));
                        suite = Suite::parse(&v).unwrap_or_else(|| {
                            usage_and_exit(&format!(
                                "unknown suite {v:?}; valid suites: quick, full, scaling, estplan, kway, reorder, chain"
                            ))
                        });
                    }
                    "--out" => {
                        out = Some(
                            args.next()
                                .unwrap_or_else(|| usage_and_exit("missing --out path")),
                        );
                    }
                    "--threads" => {
                        let v = args
                            .next()
                            .unwrap_or_else(|| usage_and_exit("missing --threads value"));
                        apply_threads_flag(&v);
                    }
                    "--no-host" => no_host = true,
                    "--metrics" => {
                        metrics = Some(
                            args.next()
                                .unwrap_or_else(|| usage_and_exit("missing --metrics path")),
                        );
                    }
                    "--metrics-timing" => metrics_timing = true,
                    "--bins" => {
                        use blockreorg::spgemm::accum::{set_global_thresholds, BinThresholds};
                        let v = args
                            .next()
                            .unwrap_or_else(|| usage_and_exit("missing --bins value"));
                        let thresholds = BinThresholds::parse(&v)
                            .unwrap_or_else(|e| usage_and_exit(&format!("bad --bins value: {e}")));
                        set_global_thresholds(Some(thresholds));
                    }
                    other => {
                        if !est.try_parse(other, args) {
                            usage_and_exit(&format!("unknown bench run flag {other:?}"))
                        }
                    }
                }
            }
            est.install_global();
            if metrics_timing {
                blockreorg::obs::install_wall_clock(blockreorg::obs::global());
            }
            let path = out.unwrap_or_else(|| format!("BENCH_{}.json", suite.name()));
            let mut report = run_suite(suite, |line| println!("{line}"));
            // The wall-clock line is always printed; --no-host only keeps
            // it out of the file so reports byte-compare across runs.
            if let Some(host) = &report.host {
                println!(
                    "host: {} threads, {:.0} ms wall ({:.2} cases/s, {:.2} jobs/s)",
                    host.threads, host.wall_ms, host.cases_per_sec, host.jobs_per_sec
                );
            }
            if no_host {
                report.host = None;
            }
            if let Err(e) = std::fs::write(&path, report.to_json()) {
                runtime_error(&format!("cannot write {path}: {e}"));
            }
            if let Some(metrics_path) = &metrics {
                write_metrics(metrics_path, metrics_timing);
            }
            let chain_cases = report.chain.as_ref().map_or(0, |c| c.cases.len());
            println!(
                "\nwrote {path}: {} cases ({chain_cases} chain), model v{}, git {}",
                report.cases.len(),
                report.model_version,
                report.git_sha
            );
            exit(0)
        }
        Some("compare") => {
            let mut paths = Vec::new();
            let mut thresholds = Thresholds::default();
            while let Some(arg) = args.next() {
                match arg.as_str() {
                    "--cycles-pct" => {
                        let v = args
                            .next()
                            .unwrap_or_else(|| usage_and_exit("missing --cycles-pct value"));
                        thresholds.cycles_pct = v.parse().unwrap_or_else(|_| {
                            usage_and_exit(&format!("bad --cycles-pct value {v:?}"))
                        });
                    }
                    "--plan-pct" => {
                        let v = args
                            .next()
                            .unwrap_or_else(|| usage_and_exit("missing --plan-pct value"));
                        thresholds.plan_ops_pct = v.parse().unwrap_or_else(|_| {
                            usage_and_exit(&format!("bad --plan-pct value {v:?}"))
                        });
                    }
                    other if other.starts_with("--") => {
                        usage_and_exit(&format!("unknown bench compare flag {other:?}"))
                    }
                    path => paths.push(path.to_string()),
                }
            }
            let [baseline_path, current_path] = paths.as_slice() else {
                usage_and_exit("bench compare needs exactly <baseline.json> <current.json>");
            };
            let load = |path: &str| -> BenchReport {
                let text = std::fs::read_to_string(path)
                    .unwrap_or_else(|e| runtime_error(&format!("cannot read {path}: {e}")));
                BenchReport::from_json(&text)
                    .unwrap_or_else(|e| runtime_error(&format!("{path}: {e}")))
            };
            let baseline = load(baseline_path);
            let current = load(current_path);
            let cmp = compare(&baseline, &current, &thresholds);
            print!("{}", cmp.render());
            if cmp.has_regressions() {
                eprintln!(
                    "regression gate FAILED: suite {:?}, baseline {baseline_path} \
                     (cycle threshold {:.1}%, plan threshold {:.1}%)",
                    baseline.suite, thresholds.cycles_pct, thresholds.plan_ops_pct
                );
                exit(1)
            }
            println!("regression gate passed");
            exit(0)
        }
        Some(other) => usage_and_exit(&format!(
            "unknown bench subcommand {other:?}; expected run or compare"
        )),
        None => usage_and_exit("bench needs a subcommand: run or compare"),
    }
}

fn main() {
    let mut args = std::env::args().skip(1).peekable();
    match args.peek().map(String::as_str) {
        Some("batch") => {
            args.next();
            let o = parse_batch_options(&mut args);
            run_batch_mode(o)
        }
        Some("serve") => {
            args.next();
            let o = parse_serve_options(&mut args);
            run_serve_mode(o)
        }
        Some("client") => {
            args.next();
            let o = parse_client_options(&mut args);
            run_client_mode(o)
        }
        Some("chain") => {
            args.next();
            let o = parse_chain_options(&mut args);
            run_chain_mode(o)
        }
        Some("bench") => {
            args.next();
            run_bench_mode(&mut args)
        }
        _ => {}
    }
    let o = parse_options(&mut args);
    let a = load_a(&o);
    let b = match &o.pair_with {
        Some(path) => read_matrix_market_file::<f64, _>(path)
            .unwrap_or_else(|e| runtime_error(&format!("cannot read {path}: {e}"))),
        None => a.clone(),
    };
    let device = device_of(&o.device);
    println!(
        "A: {}x{}, nnz {} | B: {}x{}, nnz {} | device: {}\n",
        a.nrows(),
        a.ncols(),
        a.nnz(),
        b.nrows(),
        b.ncols(),
        b.nnz(),
        device.name
    );
    let ctx = ProblemContext::new(&a, &b)
        .unwrap_or_else(|e| usage_and_exit(&format!("incompatible shapes: {e}")));

    if o.report {
        let report =
            block_reorganizer::WorkloadReport::of(&ctx, &ReorganizerConfig::default(), &device);
        println!("{report}\n");
    }

    let oracle = if o.verify {
        Some(spgemm_gustavson(&a, &b).expect("shapes validated above"))
    } else {
        None
    };
    let check = |result: &CsrMatrix<f64>| {
        if let Some(oracle) = &oracle {
            if !result.approx_eq(oracle, 1e-9) {
                runtime_error("verification FAILED: result differs from CPU reference");
            }
            println!("  verified against CPU reference ✓");
        }
    };

    let run_one = |m: SpgemmMethod| {
        let run = run_method(&ctx, m, &device).expect("shapes validated above");
        report(m.name(), run.total_ms, run.gflops(), run.result.nnz());
        check(&run.result);
    };
    let run_reorg = || {
        let config = if o.tune {
            let t = block_reorganizer::tune(&ctx, &device).expect("shapes validated above");
            println!(
                "tuned in {} runs: {:.3} ms -> {:.3} ms (alpha={}, policy={:?}, units={})",
                t.evaluations,
                t.default_ms,
                t.best_ms,
                t.config.alpha,
                t.config.split_policy,
                t.config.limiting_units
            );
            t.config
        } else {
            ReorganizerConfig::default()
        };
        let run = BlockReorganizer::new(config)
            .multiply_ctx(&ctx, &device)
            .expect("shapes validated above");
        report(
            "Block-Reorganizer",
            run.total_ms,
            run.gflops(),
            run.result.nnz(),
        );
        println!(
            "  dominators {} | low performers {} | gathered {} | limited rows {}",
            run.stats.dominators,
            run.stats.low_performers,
            run.stats.gathered_blocks,
            run.stats.limited_rows
        );
        check(&run.result);
    };

    match o.method.to_ascii_lowercase().as_str() {
        "all" => {
            for m in SpgemmMethod::all() {
                run_one(m);
            }
            run_reorg();
        }
        "reorganizer" | "block-reorganizer" => run_reorg(),
        name => match method_of(name) {
            Some(m) => run_one(m),
            None => usage_and_exit(&format!(
                "unknown method {name:?}; valid methods: {METHOD_CHOICES}"
            )),
        },
    }
}
