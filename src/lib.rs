//! # blockreorg — facade crate
//!
//! One-stop re-export of the whole workspace: sparse formats, dataset
//! generators, the GPU performance model, the spGEMM kernel zoo, and the
//! Block Reorganizer optimization pass reproduced from
//! *"Optimization of GPU-based Sparse Matrix Multiplication for Large Sparse
//! Networks"* (Lee et al., ICDE 2020).
//!
//! ```
//! use blockreorg::prelude::*;
//!
//! // Build a small power-law graph, square it with the Block Reorganizer
//! // pipeline on a simulated Titan Xp, and check against the CPU oracle.
//! let a = rmat(RmatConfig::snap_like(10, 8, 42)).to_csr();
//! let device = DeviceConfig::titan_xp();
//! let run = BlockReorganizer::new(ReorganizerConfig::default())
//!     .multiply(&a, &a, &device)
//!     .unwrap();
//! let oracle = spgemm_gustavson(&a, &a).unwrap();
//! let mut c = run.result;
//! c.sort_rows();
//! assert!(c.approx_eq(&oracle, 1e-9));
//! ```

#![warn(missing_docs)]

pub use block_reorganizer;
pub use br_bench as bench;
pub use br_datasets as datasets;
pub use br_gpu_sim as gpu_sim;
pub use br_net as net;
pub use br_obs as obs;
pub use br_service as service;
pub use br_sparse as sparse;
pub use br_spgemm as spgemm;
pub use br_workloads as workloads;

/// Convenient glob-import surface for examples and downstream users.
pub mod prelude {
    pub use block_reorganizer::{
        AblationReport, BlockReorganizer, PlanMode, ReorderStrategy, ReorgPlan, ReorganizerConfig,
        WorkloadClass,
    };
    pub use br_datasets::registry::{DatasetSpec, RealWorldRegistry};
    pub use br_datasets::rmat::{rmat, RmatConfig};
    pub use br_gpu_sim::device::DeviceConfig;
    pub use br_service::{
        BatchOutcome, CacheStats, JobOutcome, JobRequest, PlanCache, PlanKey, ServiceConfig,
        ServiceStats, SpgemmService,
    };
    pub use br_sparse::ops::{multiply_flops, spgemm_gustavson};
    pub use br_sparse::stats::DegreeStats;
    pub use br_sparse::{CooMatrix, CscMatrix, CsrMatrix, Scalar};
    pub use br_spgemm::pipeline::{SpgemmMethod, SpgemmRun};
    pub use br_workloads::{ChainProgram, ChainStep, Operand, PostOp, Workload};
}
