//! Offline stand-in for the `rand` crate (see `vendor/README.md`).
//!
//! Provides exactly what the workspace's generators use: a seedable,
//! deterministic [`rngs::SmallRng`] (xoshiro256++), `Rng::gen` over the
//! standard distribution, half-open `Rng::gen_range`, and `gen_bool`.
//! Sequences are stable across platforms and releases — dataset surrogates
//! and therefore simulated cycle counts are reproducible bit-for-bit,
//! which the benchmark regression gate depends on.

use std::ops::Range;

/// Core source of randomness: a 64-bit word stream.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits (upper half of [`next_u64`](Self::next_u64)).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling helpers layered over [`RngCore`].
pub trait Rng: RngCore {
    /// Samples from the standard distribution of `T` (`f64`/`f32` in
    /// `[0, 1)`, integers uniform over their domain, fair `bool`).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Samples uniformly from a half-open range. Panics when empty.
    fn gen_range<T: UniformRange>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, range)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore> Rng for R {}

/// Types with a standard distribution for [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one standard-distributed value.
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        // 53 high bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types that can be drawn uniformly from a half-open range.
pub trait UniformRange: Sized {
    /// Draws one value in `[range.start, range.end)`.
    fn sample_range<R: RngCore>(rng: &mut R, range: Range<Self>) -> Self;
}

macro_rules! uniform_int {
    ($($t:ty),*) => {$(
        impl UniformRange for $t {
            fn sample_range<R: RngCore>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "gen_range: empty range");
                let span = (range.end as u64).wrapping_sub(range.start as u64);
                // Debiased multiply-shift (Lemire); span of 0 means the full
                // 2^64 domain, where the raw word is already uniform.
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                let mut m = (rng.next_u64() as u128) * (span as u128);
                let mut low = m as u64;
                if low < span {
                    let threshold = span.wrapping_neg() % span;
                    while low < threshold {
                        m = (rng.next_u64() as u128) * (span as u128);
                        low = m as u64;
                    }
                }
                range.start.wrapping_add((m >> 64) as u64 as $t)
            }
        }
    )*};
}

uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl UniformRange for f64 {
    fn sample_range<R: RngCore>(rng: &mut R, range: Range<Self>) -> Self {
        assert!(range.start < range.end, "gen_range: empty range");
        let u = f64::sample_standard(rng);
        range.start + u * (range.end - range.start)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic generator (xoshiro256++).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as rand does for small seeds.
            let mut state = seed;
            let mut next = || {
                state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            SmallRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    /// Alias of [`SmallRng`]: one deterministic generator serves both roles
    /// in this stand-in.
    pub type StdRng = SmallRng;
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn streams_are_deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        let mut c = SmallRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    use super::RngCore;

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u32..17);
            assert!((10..17).contains(&v));
            let f = rng.gen_range(-2.0f64..3.0);
            assert!((-2.0..3.0).contains(&f));
            let i = rng.gen_range(-5i64..-1);
            assert!((-5..-1).contains(&i));
        }
    }

    #[test]
    fn unit_floats_in_range_and_spread() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
