//! Offline stand-in for `serde_derive` (see `vendor/README.md`).
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` for the
//! shapes this workspace actually uses — non-generic structs (named, tuple,
//! unit) and enums (unit, tuple, struct variants) without `#[serde(...)]`
//! attributes — by walking the raw `proc_macro` token stream and emitting
//! impls of the vendored `serde::Serialize` / `serde::Deserialize` traits.
//! Unsupported shapes panic at compile time with a clear message rather
//! than silently mis-serializing.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize` by lowering the type into a `serde::Value`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    render_serialize(&item)
        .parse()
        .expect("generated impl parses")
}

/// Derives `serde::Deserialize` by rebuilding the type from a `serde::Value`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    render_deserialize(&item)
        .parse()
        .expect("generated impl parses")
}

struct Field {
    name: String, // field name, or tuple index as text
    ty: String,
}

struct Variant {
    name: String,
    shape: Shape,
}

enum Shape {
    Unit,
    Tuple(Vec<Field>),
    Named(Vec<Field>),
}

struct Item {
    name: String,
    is_enum: bool,
    shape: Shape,           // for structs
    variants: Vec<Variant>, // for enums
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attributes_and_vis(&tokens, &mut i);
    let kind = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive: expected `struct` or `enum`, found {other}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive: expected type name, found {other}"),
    };
    i += 1;
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive (vendored): generic type `{name}` is not supported");
    }
    match kind.as_str() {
        "struct" => {
            let shape = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Shape::Named(parse_named_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Shape::Tuple(parse_tuple_fields(g.stream()))
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::Unit,
                other => panic!("serde_derive: unsupported struct body for `{name}`: {other:?}"),
            };
            Item {
                name,
                is_enum: false,
                shape,
                variants: Vec::new(),
            }
        }
        "enum" => {
            let body = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                other => panic!("serde_derive: expected enum body for `{name}`, found {other:?}"),
            };
            Item {
                name,
                is_enum: true,
                shape: Shape::Unit,
                variants: parse_variants(body),
            }
        }
        other => panic!("serde_derive: cannot derive for `{other}` items"),
    }
}

fn skip_attributes_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 2; // `#` + bracketed attribute group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1; // `pub(crate)` and friends
                }
            }
            _ => return,
        }
    }
}

/// Splits a token list on top-level commas, tracking `<...>` nesting so
/// commas inside generic arguments stay attached to their type.
fn split_top_level_commas(stream: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut out: Vec<Vec<TokenTree>> = vec![Vec::new()];
    let mut angle_depth = 0i32;
    for tt in stream {
        match &tt {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                out.push(Vec::new());
                continue;
            }
            _ => {}
        }
        out.last_mut().expect("non-empty").push(tt);
    }
    if out.last().map(Vec::is_empty).unwrap_or(false) {
        out.pop(); // trailing comma
    }
    out
}

fn tokens_to_type(tokens: &[TokenTree]) -> String {
    let rendered: Vec<String> = tokens.iter().map(ToString::to_string).collect();
    rendered.join(" ")
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    split_top_level_commas(stream)
        .into_iter()
        .map(|mut entry| {
            let mut i = 0;
            skip_attributes_and_vis(&entry, &mut i);
            entry.drain(..i);
            let name = match entry.first() {
                Some(TokenTree::Ident(id)) => id.to_string(),
                other => panic!("serde_derive: expected field name, found {other:?}"),
            };
            match entry.get(1) {
                Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
                other => panic!("serde_derive: expected `:` after `{name}`, found {other:?}"),
            }
            Field {
                name,
                ty: tokens_to_type(&entry[2..]),
            }
        })
        .collect()
}

fn parse_tuple_fields(stream: TokenStream) -> Vec<Field> {
    split_top_level_commas(stream)
        .into_iter()
        .enumerate()
        .map(|(index, mut entry)| {
            let mut i = 0;
            skip_attributes_and_vis(&entry, &mut i);
            entry.drain(..i);
            Field {
                name: index.to_string(),
                ty: tokens_to_type(&entry),
            }
        })
        .collect()
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut out = Vec::new();
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    while i < tokens.len() {
        skip_attributes_and_vis(&tokens, &mut i);
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("serde_derive: expected variant name, found {other:?}"),
        };
        i += 1;
        let shape = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                Shape::Tuple(parse_tuple_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Shape::Named(parse_named_fields(g.stream()))
            }
            _ => Shape::Unit,
        };
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
            panic!("serde_derive: explicit discriminants are not supported (variant `{name}`)");
        }
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
        out.push(Variant { name, shape });
    }
    out
}

fn render_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = if item.is_enum {
        let arms: Vec<String> = item
            .variants
            .iter()
            .map(|v| {
                let vn = &v.name;
                match &v.shape {
                    Shape::Unit => format!(
                        "{name}::{vn} => ::serde::Value::Str(\"{vn}\".to_string()),"
                    ),
                    Shape::Tuple(fields) if fields.len() == 1 => format!(
                        "{name}::{vn}(__f0) => ::serde::Value::Map(vec![(\"{vn}\".to_string(), \
                         ::serde::Serialize::to_value(__f0))]),"
                    ),
                    Shape::Tuple(fields) => {
                        let binders: Vec<String> =
                            (0..fields.len()).map(|k| format!("__f{k}")).collect();
                        let values: Vec<String> = binders
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_value({b})"))
                            .collect();
                        format!(
                            "{name}::{vn}({}) => ::serde::Value::Map(vec![(\"{vn}\".to_string(), \
                             ::serde::Value::Seq(vec![{}]))]),",
                            binders.join(", "),
                            values.join(", ")
                        )
                    }
                    Shape::Named(fields) => {
                        let binders: Vec<String> =
                            fields.iter().map(|f| f.name.clone()).collect();
                        let entries: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "(\"{0}\".to_string(), ::serde::Serialize::to_value({0}))",
                                    f.name
                                )
                            })
                            .collect();
                        format!(
                            "{name}::{vn} {{ {} }} => ::serde::Value::Map(vec![(\"{vn}\".to_string(), \
                             ::serde::Value::Map(vec![{}]))]),",
                            binders.join(", "),
                            entries.join(", ")
                        )
                    }
                }
            })
            .collect();
        format!("match self {{ {} }}", arms.join("\n"))
    } else {
        match &item.shape {
            Shape::Unit => "::serde::Value::Null".to_string(),
            Shape::Tuple(fields) if fields.len() == 1 => {
                "::serde::Serialize::to_value(&self.0)".to_string()
            }
            Shape::Tuple(fields) => {
                let values: Vec<String> = (0..fields.len())
                    .map(|k| format!("::serde::Serialize::to_value(&self.{k})"))
                    .collect();
                format!("::serde::Value::Seq(vec![{}])", values.join(", "))
            }
            Shape::Named(fields) => {
                let entries: Vec<String> = fields
                    .iter()
                    .map(|f| {
                        format!(
                            "(\"{0}\".to_string(), ::serde::Serialize::to_value(&self.{0}))",
                            f.name
                        )
                    })
                    .collect();
                format!("::serde::Value::Map(vec![{}])", entries.join(", "))
            }
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

fn render_named_constructor(ty_name: &str, path: &str, fields: &[Field], map_expr: &str) -> String {
    let assignments: Vec<String> = fields
        .iter()
        .map(|f| {
            format!(
                "{0}: ::serde::from_field::<{1}>({map_expr}, \"{0}\", \"{ty_name}\")?",
                f.name, f.ty
            )
        })
        .collect();
    format!("{path} {{ {} }}", assignments.join(", "))
}

fn render_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = if item.is_enum {
        let mut unit_arms = Vec::new();
        let mut keyed_arms = Vec::new();
        for v in &item.variants {
            let vn = &v.name;
            match &v.shape {
                Shape::Unit => unit_arms.push(format!(
                    "::serde::Value::Str(__s) if __s.as_str() == \"{vn}\" => return Ok({name}::{vn}),"
                )),
                Shape::Tuple(fields) if fields.len() == 1 => keyed_arms.push(format!(
                    "\"{vn}\" => return Ok({name}::{vn}(::serde::Deserialize::from_value(__inner)\
                     .map_err(|e| ::serde::Error::custom(format!(\"variant `{vn}` of `{name}`: {{e}}\")))?)),",
                )),
                Shape::Tuple(fields) => {
                    let gets: Vec<String> = fields
                        .iter()
                        .enumerate()
                        .map(|(k, f)| {
                            format!(
                                "<{} as ::serde::Deserialize>::from_value(__seq.get({k})\
                                 .ok_or_else(|| ::serde::Error::custom(\"variant `{vn}` of `{name}`: tuple too short\"))?)?",
                                f.ty
                            )
                        })
                        .collect();
                    keyed_arms.push(format!(
                        "\"{vn}\" => {{ let __seq = __inner.as_seq()\
                         .ok_or_else(|| ::serde::Error::custom(\"variant `{vn}` of `{name}`: expected sequence\"))?;\
                         return Ok({name}::{vn}({})); }}",
                        gets.join(", ")
                    ));
                }
                Shape::Named(fields) => {
                    let ctor =
                        render_named_constructor(name, &format!("{name}::{vn}"), fields, "__entries");
                    keyed_arms.push(format!(
                        "\"{vn}\" => {{ let __entries = __inner.as_map()\
                         .ok_or_else(|| ::serde::Error::custom(\"variant `{vn}` of `{name}`: expected map\"))?;\
                         return Ok({}); }}",
                        ctor
                    ));
                }
            }
        }
        format!(
            "match value {{\n{}\n\
             ::serde::Value::Map(__m) if __m.len() == 1 => {{\n\
             let (__tag, __inner) = &__m[0];\n\
             match __tag.as_str() {{\n{}\n_ => {{}} }}\n}}\n_ => {{}} }}\n\
             Err(::serde::Error::custom(\"unknown variant for `{name}`\"))",
            unit_arms.join("\n"),
            keyed_arms.join("\n"),
        )
    } else {
        match &item.shape {
            Shape::Unit => format!("let _ = value; Ok({name})"),
            Shape::Tuple(fields) if fields.len() == 1 => format!(
                "Ok({name}(<{} as ::serde::Deserialize>::from_value(value)?))",
                fields[0].ty
            ),
            Shape::Tuple(fields) => {
                let gets: Vec<String> = fields
                    .iter()
                    .enumerate()
                    .map(|(k, f)| {
                        format!(
                            "<{} as ::serde::Deserialize>::from_value(__seq.get({k})\
                             .ok_or_else(|| ::serde::Error::custom(\"`{name}`: tuple too short\"))?)?",
                            f.ty
                        )
                    })
                    .collect();
                format!(
                    "let __seq = value.as_seq()\
                     .ok_or_else(|| ::serde::Error::custom(\"expected sequence for `{name}`\"))?;\n\
                     Ok({name}({}))",
                    gets.join(", ")
                )
            }
            Shape::Named(fields) => {
                let ctor = render_named_constructor(name, name, fields, "__entries");
                format!(
                    "let __entries = value.as_map()\
                     .ok_or_else(|| ::serde::Error::custom(\"expected map for `{name}`\"))?;\n\
                     Ok({})",
                    ctor
                )
            }
        }
    };
    format!(
        "impl<'de> ::serde::Deserialize<'de> for {name} {{\n\
         fn from_value(value: &::serde::Value) -> ::core::result::Result<Self, ::serde::Error> {{\n\
         {body}\n}}\n}}"
    )
}
