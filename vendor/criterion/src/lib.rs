//! Offline stand-in for the `criterion` crate (see `vendor/README.md`).
//!
//! Implements the API surface the workspace's benches use — groups,
//! `bench_function`, `iter`, `iter_batched`, `sample_size` — over a plain
//! `Instant` timing loop. `--test` (what `cargo bench -- --test` passes)
//! runs every benchmark body exactly once and reports `ok`, which is what
//! CI uses; a normal run reports mean wall time over a small sample.
//! There are no statistics, plots, or baselines.

use std::time::{Duration, Instant};

/// An opaque-to-the-optimizer value barrier (re-export of `std::hint`).
pub use std::hint::black_box;

/// How `iter_batched` amortizes setup; carried for API compatibility, the
/// stand-in re-runs setup per iteration either way.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Setup output is cheap to hold.
    SmallInput,
    /// Setup output is large.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// The benchmark driver.
pub struct Criterion {
    test_mode: bool,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion {
            test_mode,
            sample_size: 10,
        }
    }
}

impl Criterion {
    /// Sets the per-benchmark sample count (builder-style).
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let sample_size = self.sample_size;
        run_benchmark(name, self.test_mode, sample_size, &mut f);
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            prefix: name.to_string(),
            test_mode: self.test_mode,
            sample_size: self.sample_size,
            _parent: self,
        }
    }
}

/// A group of related benchmarks sharing a name prefix and sample size.
pub struct BenchmarkGroup<'a> {
    prefix: String,
    test_mode: bool,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the group's sample count.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one named benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let full = format!("{}/{}", self.prefix, name);
        run_benchmark(&full, self.test_mode, self.sample_size, &mut f);
        self
    }

    /// Ends the group (no-op; exists for API compatibility).
    pub fn finish(self) {}
}

fn run_benchmark(name: &str, test_mode: bool, sample_size: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut bencher = Bencher {
        iterations: if test_mode { 1 } else { sample_size as u64 },
        elapsed: Duration::ZERO,
    };
    f(&mut bencher);
    if test_mode {
        println!("test {name} ... ok");
    } else {
        let mean_ns = bencher.elapsed.as_nanos() as f64 / bencher.iterations.max(1) as f64;
        println!(
            "{name}: mean {:.3} ms over {} iters",
            mean_ns / 1e6,
            bencher.iterations
        );
    }
}

/// Runs the measured routine and accumulates wall time.
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over the configured iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iterations {
            black_box(routine());
        }
        self.elapsed += start.elapsed();
    }

    /// Times `routine` with fresh `setup` output per iteration; setup time
    /// is excluded from the measurement.
    pub fn iter_batched<I, O, S: FnMut() -> I, R: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
        _size: BatchSize,
    ) {
        for _ in 0..self.iterations {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.elapsed += start.elapsed();
        }
    }
}

/// Declares a group-running function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench binary's `main`, criterion-style.
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_and_function_run_bodies() {
        let mut c = Criterion {
            test_mode: true,
            sample_size: 3,
        };
        let mut runs = 0usize;
        c.bench_function("one", |b| b.iter(|| runs += 1));
        assert_eq!(runs, 1, "test mode runs exactly once");
        let mut g = c.benchmark_group("grp");
        g.sample_size(5);
        let mut batched = 0usize;
        g.bench_function("two", |b| {
            b.iter_batched(|| 7usize, |x| batched += x, BatchSize::SmallInput)
        });
        g.finish();
        assert_eq!(batched, 7);
    }
}
