//! Offline stand-in for the `serde_json` crate (see `vendor/README.md`).
//!
//! Renders the vendored [`serde::Value`] tree to JSON and parses JSON back
//! into it. Map entries keep insertion order and float formatting is the
//! shortest round-trip form, so output is byte-deterministic for equal
//! inputs — the benchmark regression gate depends on that.

pub use serde::Error;
use serde::{Deserialize, Serialize, Value};
use std::fmt::Write as _;

/// Serializes a value to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes a value to human-readable JSON (2-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Serializes a value to compact JSON and writes it out.
pub fn to_writer<W: std::io::Write, T: Serialize + ?Sized>(
    mut writer: W,
    value: &T,
) -> Result<(), Error> {
    let text = to_string(value)?;
    writer
        .write_all(text.as_bytes())
        .map_err(|e| Error::custom(format!("write failed: {e}")))
}

/// Parses JSON text into any deserializable type.
pub fn from_str<T: for<'a> Deserialize<'a>>(text: &str) -> Result<T, Error> {
    let value = parse_value(text)?;
    T::from_value(&value)
}

/// Parses JSON bytes into any deserializable type.
pub fn from_slice<T: for<'a> Deserialize<'a>>(bytes: &[u8]) -> Result<T, Error> {
    let text =
        std::str::from_utf8(bytes).map_err(|e| Error::custom(format!("invalid UTF-8: {e}")))?;
    from_str(text)
}

/// Parses JSON text into the raw [`Value`] tree.
pub fn parse_value(text: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::custom(format!(
            "trailing characters at byte {}",
            p.pos
        )));
    }
    Ok(value)
}

fn write_value(out: &mut String, value: &Value, indent: Option<usize>, level: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::I64(v) => {
            let _ = write!(out, "{v}");
        }
        Value::U64(v) => {
            let _ = write!(out, "{v}");
        }
        Value::F64(v) => write_f64(out, *v),
        Value::Str(s) => write_string(out, s),
        Value::Seq(items) => write_compound(out, indent, level, '[', ']', items.len(), |out, i| {
            write_value(out, &items[i], indent, level + 1)
        }),
        Value::Map(entries) => {
            write_compound(out, indent, level, '{', '}', entries.len(), |out, i| {
                write_string(out, &entries[i].0);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, &entries[i].1, indent, level + 1)
            })
        }
    }
}

fn write_compound(
    out: &mut String,
    indent: Option<usize>,
    level: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * (level + 1)));
        }
        item(out, i);
    }
    if let Some(width) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(width * level));
    }
    out.push(close);
}

fn write_f64(out: &mut String, v: f64) {
    if !v.is_finite() {
        out.push_str("null"); // JSON has no NaN/Inf; match serde_json
        return;
    }
    // `{}` prints the shortest round-trip form; keep a `.0` so the value
    // parses back as a float when integral.
    let text = format!("{v}");
    out.push_str(&text);
    if !text.contains(['.', 'e', 'E']) {
        out.push_str(".0");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected `{}` at byte {}",
                byte as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, literal: &str) -> bool {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.seq(),
            Some(b'{') => self.map(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(Error::custom(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            ))),
        }
    }

    fn seq(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => {
                    return Err(Error::custom(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn map(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            entries.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => {
                    return Err(Error::custom(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::custom("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::custom("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::custom("bad \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::custom("bad \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error::custom(format!("bad escape {other:?}")));
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    let start = self.pos;
                    while matches!(self.peek(), Some(c) if c != b'"' && c != b'\\') {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|e| Error::custom(format!("invalid UTF-8: {e}")))?,
                    );
                }
                None => return Err(Error::custom("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|e| Error::custom(format!("invalid UTF-8: {e}")))?;
        if !is_float {
            if text.starts_with('-') {
                if let Ok(v) = text.parse::<i64>() {
                    return Ok(Value::I64(v));
                }
            } else if let Ok(v) = text.parse::<u64>() {
                return Ok(Value::U64(v));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::custom(format!("bad number: {text}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_shapes() {
        let value = Value::Map(vec![
            ("b".to_string(), Value::Bool(true)),
            ("n".to_string(), Value::Null),
            ("i".to_string(), Value::I64(-3)),
            ("u".to_string(), Value::U64(18_000_000_000_000_000_001)),
            ("f".to_string(), Value::F64(1.5)),
            ("whole".to_string(), Value::F64(2.0)),
            ("s".to_string(), Value::Str("a \"quote\"\nline".to_string())),
            (
                "seq".to_string(),
                Value::Seq(vec![Value::U64(1), Value::Str("x".to_string())]),
            ),
            ("empty".to_string(), Value::Seq(vec![])),
        ]);
        let compact = to_string(&value).unwrap();
        let parsed = parse_value(&compact).unwrap();
        assert_eq!(parsed, value);
        let pretty = to_string_pretty(&value).unwrap();
        assert_eq!(parse_value(&pretty).unwrap(), value);
        assert!(pretty.contains("\n  "));
    }

    #[test]
    fn whole_floats_stay_floats() {
        let text = to_string(&Value::F64(2.0)).unwrap();
        assert_eq!(text, "2.0");
        assert_eq!(parse_value("2.0").unwrap(), Value::F64(2.0));
        assert_eq!(parse_value("2").unwrap(), Value::U64(2));
    }

    #[test]
    fn deterministic_output() {
        let value = Value::Map(vec![
            ("z".to_string(), Value::U64(1)),
            ("a".to_string(), Value::U64(2)),
        ]);
        let a = to_string_pretty(&value).unwrap();
        let b = to_string_pretty(&value).unwrap();
        assert_eq!(a, b);
        assert!(
            a.find("\"z\"").unwrap() < a.find("\"a\"").unwrap(),
            "order preserved"
        );
    }

    #[test]
    fn typed_roundtrip() {
        let v: Vec<(u32, f64)> = vec![(1, 0.5), (2, 1.0)];
        let text = to_string(&v).unwrap();
        let back: Vec<(u32, f64)> = from_str(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_value("{\"a\":}").is_err());
        assert!(parse_value("[1,]").is_err());
        assert!(parse_value("1 2").is_err());
        assert!(from_str::<u32>("\"nope\"").is_err());
    }
}
