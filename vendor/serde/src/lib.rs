//! Offline stand-in for the `serde` crate.
//!
//! The crates.io registry is unreachable from the build container (see
//! `vendor/README.md`), so the workspace pins this minimal implementation
//! via `[patch.crates-io]`. It covers exactly the surface the workspace
//! uses: `#[derive(Serialize, Deserialize)]` on attribute-free structs and
//! enums, plus the blanket impls those derives need.
//!
//! The data model is a single order-preserving [`Value`] tree: `Serialize`
//! lowers a type into a [`Value`], `Deserialize` rebuilds it from one.
//! `serde_json` (also vendored) renders and parses that tree. Maps keep
//! insertion order, so emitted JSON is deterministic — a property the
//! benchmark regression gate relies on.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};

/// The self-describing tree every serializable value lowers into.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null` (also `None` and unit).
    Null,
    /// A boolean.
    Bool(bool),
    /// A signed integer (negative numbers).
    I64(i64),
    /// An unsigned integer (non-negative integers).
    U64(u64),
    /// A float.
    F64(f64),
    /// A string.
    Str(String),
    /// A sequence.
    Seq(Vec<Value>),
    /// A map with *insertion-ordered* entries (deterministic output).
    Map(Vec<(String, Value)>),
}

impl Value {
    /// The entries of a map value.
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(entries) => Some(entries),
            _ => None,
        }
    }

    /// The elements of a sequence value.
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(items) => Some(items),
            _ => None,
        }
    }

    /// Numeric coercion to `f64` (integers widen).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::I64(v) => Some(v as f64),
            Value::U64(v) => Some(v as f64),
            Value::F64(v) => Some(v),
            _ => None,
        }
    }

    /// Numeric coercion to `i64` (floats must be integral).
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::I64(v) => Some(v),
            Value::U64(v) => i64::try_from(v).ok(),
            Value::F64(v) if v.fract() == 0.0 && v.abs() < 9.0e18 => Some(v as i64),
            _ => None,
        }
    }

    /// Numeric coercion to `u64` (floats must be integral and non-negative).
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::I64(v) => u64::try_from(v).ok(),
            Value::U64(v) => Some(v),
            Value::F64(v) if v.fract() == 0.0 && (0.0..1.9e19).contains(&v) => Some(v as u64),
            _ => None,
        }
    }

    /// Looks up a key in a map value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_map()
            .and_then(|m| m.iter().find(|(k, _)| k == key).map(|(_, v)| v))
    }
}

/// Deserialization error: what was expected, where.
#[derive(Debug, Clone, PartialEq)]
pub struct Error(String);

impl Error {
    /// Builds an error from any message.
    pub fn custom(msg: impl std::fmt::Display) -> Self {
        Error(msg.to_string())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Lowers `self` into a [`Value`] tree.
pub trait Serialize {
    /// The value-tree form of `self`.
    fn to_value(&self) -> Value;
}

/// Rebuilds `Self` from a [`Value`] tree. The lifetime parameter exists
/// only for signature compatibility with real serde bounds
/// (`for<'de> Deserialize<'de>`); this implementation always copies.
pub trait Deserialize<'de>: Sized {
    /// Parses the value tree.
    fn from_value(value: &Value) -> Result<Self, Error>;
}

/// Fetches and deserializes a struct field from map entries; a missing key
/// deserializes as [`Value::Null`] so `Option` fields default to `None`.
pub fn from_field<T: for<'a> Deserialize<'a>>(
    entries: &[(String, Value)],
    key: &str,
    ty: &str,
) -> Result<T, Error> {
    match entries.iter().find(|(k, _)| k == key) {
        Some((_, v)) => {
            T::from_value(v).map_err(|e| Error::custom(format!("field `{key}` of `{ty}`: {e}")))
        }
        None => T::from_value(&Value::Null)
            .map_err(|_| Error::custom(format!("missing field `{key}` of `{ty}`"))),
    }
}

macro_rules! ser_de_int {
    ($($t:ty => $variant:ident / $coerce:ident),* $(,)?) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::$variant(*self as _)
            }
        }
        impl<'de> Deserialize<'de> for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let wide = value
                    .$coerce()
                    .ok_or_else(|| Error::custom(concat!("expected ", stringify!($t))))?;
                <$t>::try_from(wide)
                    .map_err(|_| Error::custom(concat!("out of range for ", stringify!($t))))
            }
        }
    )*};
}

ser_de_int!(
    i8 => I64 / as_i64,
    i16 => I64 / as_i64,
    i32 => I64 / as_i64,
    i64 => I64 / as_i64,
    isize => I64 / as_i64,
    u8 => U64 / as_u64,
    u16 => U64 / as_u64,
    u32 => U64 / as_u64,
    u64 => U64 / as_u64,
    usize => U64 / as_u64,
);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl<'de> Deserialize<'de> for f64 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_f64()
            .ok_or_else(|| Error::custom("expected number"))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(*self as f64)
    }
}

impl<'de> Deserialize<'de> for f32 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_f64()
            .map(|v| v as f32)
            .ok_or_else(|| Error::custom("expected number"))
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl<'de> Deserialize<'de> for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::custom("expected bool")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl<'de> Deserialize<'de> for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(Error::custom("expected string")),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_seq()
            .ok_or_else(|| Error::custom("expected sequence"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<'de, T: Deserialize<'de> + std::fmt::Debug, const N: usize> Deserialize<'de> for [T; N] {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let items: Vec<T> = Vec::from_value(value)?;
        <[T; N]>::try_from(items)
            .map_err(|_| Error::custom(format!("expected sequence of length {N}")))
    }
}

macro_rules! ser_de_tuple {
    ($(($($t:ident . $idx:tt),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<'de, $($t: Deserialize<'de>),+> Deserialize<'de> for ($($t,)+) {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let seq = value.as_seq().ok_or_else(|| Error::custom("expected tuple sequence"))?;
                let mut items = seq.iter();
                let out = ($({
                    let _ = $idx;
                    $t::from_value(items.next().ok_or_else(|| Error::custom("tuple too short"))?)?
                },)+);
                Ok(out)
            }
        }
    )*};
}

ser_de_tuple! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

impl<K: std::fmt::Display, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        // Sort keys so HashMap iteration order cannot leak into output.
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Map(entries)
    }
}

impl<K: std::fmt::Display, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (k.to_string(), v.to_value()))
                .collect(),
        )
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl<'de> Deserialize<'de> for Value {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn option_roundtrip_through_null() {
        assert_eq!(Option::<u32>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(Some(3u32).to_value(), Value::U64(3));
    }

    #[test]
    fn numeric_coercions() {
        assert_eq!(f64::from_value(&Value::U64(4)).unwrap(), 4.0);
        assert_eq!(u32::from_value(&Value::F64(7.0)).unwrap(), 7);
        assert!(u32::from_value(&Value::F64(7.5)).is_err());
        assert!(u8::from_value(&Value::U64(300)).is_err());
    }

    #[test]
    fn missing_field_is_none_for_option() {
        let entries = vec![("present".to_string(), Value::U64(1))];
        let missing: Option<u64> = from_field(&entries, "absent", "T").unwrap();
        assert_eq!(missing, None);
        let err = from_field::<u64>(&entries, "absent", "T").unwrap_err();
        assert!(err.to_string().contains("missing field"));
    }
}
