//! Offline stand-in for the `proptest` crate (see `vendor/README.md`).
//!
//! Supports the subset the workspace's property tests use: range and tuple
//! strategies, `collection::vec`, `any::<T>()`, `prop_map`/`prop_flat_map`,
//! the `proptest!` macro with an optional `#![proptest_config(..)]`, and
//! `prop_assert!`/`prop_assert_eq!`. Cases are generated from a
//! deterministic per-test seed. There is **no shrinking**: a failing case
//! reports its case index and seed instead of a minimized input.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::ops::Range;

/// Everything a test file needs in one import.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, ProptestConfig,
        Strategy,
    };
}

/// Runner configuration (only `cases` is honored).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// The random source handed to strategies.
pub type TestRng = SmallRng;

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Feeds generated values into a strategy-producing `f` and draws from
    /// the produced strategy.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// A strategy yielding one fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
}

/// Types with a canonical whole-domain strategy for [`any`].
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.gen()
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.gen()
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Strategy over the whole domain of `T` — `any::<bool>()` etc.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// See [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;
    use std::ops::Range;

    /// A `Vec` whose length is drawn from `len` and whose elements come
    /// from `element`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    /// See [`fn@vec`].
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = if self.len.is_empty() {
                self.len.start
            } else {
                rng.gen_range(self.len.clone())
            };
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Runs one property over `cases` deterministic random cases. The per-case
/// seed mixes the property name, so distinct tests see distinct streams;
/// a failure message names the case index and seed for replay.
pub fn run_property<V>(
    name: &str,
    config: &ProptestConfig,
    strategy: &dyn Fn(&mut TestRng) -> V,
    check: &dyn Fn(V),
) {
    let base = fnv1a(name.as_bytes());
    for case in 0..config.cases {
        let seed = base ^ ((case as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15));
        let mut rng = TestRng::seed_from_u64(seed);
        let value = strategy(&mut rng);
        let guard = FailureContext { name, case, seed };
        check(value);
        std::mem::forget(guard);
    }
}

struct FailureContext<'a> {
    name: &'a str,
    case: u32,
    seed: u64,
}

impl Drop for FailureContext<'_> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            eprintln!(
                "proptest (vendored): property `{}` failed at case {} (seed {:#x}); \
                 no shrinking in the offline stand-in",
                self.name, self.case, self.seed
            );
        }
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// `assert!` that reads like proptest.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// `assert_eq!` that reads like proptest.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// `assert_ne!` that reads like proptest.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// The property-test entry point: wraps each `fn name(arg in strategy, ..)`
/// into a `#[test]` running [`run_property`] over the (optional) block
/// config.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { @cfg($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config = $cfg;
                $crate::run_property(
                    stringify!($name),
                    &__config,
                    &|__rng| {
                        use $crate::Strategy as _;
                        ($($strat.generate(__rng),)+)
                    },
                    &|($($arg,)+)| $body,
                );
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn vec_and_flat_map_compose() {
        let strategy = (2u32..10)
            .prop_flat_map(|n| crate::collection::vec(0u32..n, 1..20).prop_map(move |v| (n, v)));
        crate::run_property(
            "compose",
            &ProptestConfig::with_cases(200),
            &|rng| strategy.generate(rng),
            &|(n, v)| {
                assert!(!v.is_empty() && v.len() < 20);
                assert!(v.iter().all(|&x| x < n));
            },
        );
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_draws_all_args(x in 0u64..100, y in -4.0f64..4.0, b in any::<bool>()) {
            prop_assert!(x < 100);
            prop_assert!((-4.0..4.0).contains(&y));
            let _ = b;
            prop_assert_eq!(x, x);
        }
    }

    proptest! {
        #[test]
        fn macro_without_config(v in crate::collection::vec(0u32..5, 0..8)) {
            prop_assert!(v.len() < 8);
        }
    }
}
