//! Configuration-model generator: a random matrix with an *exact* target
//! row-degree sequence.
//!
//! Surrogate fidelity can go one step beyond "same distribution class":
//! given the row-degree sequence of a real matrix (e.g. extracted from a
//! genuine SuiteSparse download once), this generator reproduces it
//! exactly, with columns drawn from a (configurable-skew) column
//! distribution. The workload classification of the Block Reorganizer is a
//! pure function of these degree sequences, so a configuration-model clone
//! exercises the pass identically to the original matrix.

use br_sparse::{CooMatrix, CsrMatrix, Scalar};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// How column targets are drawn.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ColumnModel {
    /// Uniform over all columns.
    Uniform,
    /// Proportional to the same degree sequence (in-degree ≈ out-degree,
    /// as in most social networks).
    MatchDegrees,
}

/// Generates an `n × ncols` matrix whose row `r` has **exactly**
/// `degrees[r]` distinct entries (capped at `ncols`), with values in
/// `[0.5, 1.5)`.
pub fn configuration_model(
    degrees: &[usize],
    ncols: usize,
    columns: ColumnModel,
    seed: u64,
) -> CooMatrix<f64> {
    assert!(ncols > 0, "need at least one column");
    let n = degrees.len();
    let mut rng = SmallRng::seed_from_u64(seed);

    // Cumulative column weights for the MatchDegrees model.
    let cumulative: Option<Vec<u64>> = match columns {
        ColumnModel::Uniform => None,
        ColumnModel::MatchDegrees => {
            let mut acc = 0u64;
            let cum: Vec<u64> = degrees
                .iter()
                .chain(std::iter::repeat_n(&1, ncols.saturating_sub(n)))
                .take(ncols)
                .map(|&d| {
                    acc += d.max(1) as u64;
                    acc
                })
                .collect();
            Some(cum)
        }
    };
    let sample_col = |rng: &mut SmallRng| -> u32 {
        match &cumulative {
            None => rng.gen_range(0..ncols as u32),
            Some(cum) => {
                let total = *cum.last().expect("ncols > 0");
                let x = rng.gen_range(0..total);
                cum.partition_point(|&c| c <= x) as u32
            }
        }
    };

    let total: usize = degrees.iter().map(|&d| d.min(ncols)).sum();
    let mut coo = CooMatrix::with_capacity(n, ncols, total);
    let mut picked: Vec<u32> = Vec::new();
    for (r, &deg) in degrees.iter().enumerate() {
        let deg = deg.min(ncols);
        picked.clear();
        // Rejection sampling for distinct columns; switch to a dense
        // permutation draw when the degree is a large fraction of ncols.
        if deg * 3 >= ncols {
            let mut all: Vec<u32> = (0..ncols as u32).collect();
            for i in 0..deg {
                let j = rng.gen_range(i..ncols);
                all.swap(i, j);
            }
            picked.extend_from_slice(&all[..deg]);
        } else {
            while picked.len() < deg {
                let c = sample_col(&mut rng);
                if !picked.contains(&c) {
                    picked.push(c);
                }
            }
        }
        for &c in &picked {
            let v = 0.5 + rng.gen::<f64>();
            coo.push(r as u32, c, v).expect("in bounds by construction");
        }
    }
    coo
}

/// Clones the row-degree profile of an existing matrix into a fresh random
/// matrix of the same shape.
pub fn degree_clone<T: Scalar>(m: &CsrMatrix<T>, seed: u64) -> CsrMatrix<f64> {
    configuration_model(&m.row_degrees(), m.ncols(), ColumnModel::MatchDegrees, seed).to_csr()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chung_lu::{chung_lu, ChungLuConfig};
    use br_sparse::stats::DegreeStats;

    #[test]
    fn degrees_are_reproduced_exactly() {
        let degrees = vec![0, 1, 5, 32, 200, 3, 3, 7];
        let m = configuration_model(&degrees, 300, ColumnModel::Uniform, 9).to_csr();
        assert_eq!(m.row_degrees(), degrees);
        m.check_invariants().unwrap();
    }

    #[test]
    fn degrees_above_ncols_are_capped() {
        let m = configuration_model(&[10, 2], 4, ColumnModel::Uniform, 1).to_csr();
        assert_eq!(m.row_degrees(), vec![4, 2]);
    }

    #[test]
    fn deterministic_per_seed() {
        let d = vec![3usize; 50];
        let a = configuration_model(&d, 100, ColumnModel::MatchDegrees, 5).to_csr();
        let b = configuration_model(&d, 100, ColumnModel::MatchDegrees, 5).to_csr();
        let c = configuration_model(&d, 100, ColumnModel::MatchDegrees, 6).to_csr();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn clone_preserves_row_profile_and_skew_class() {
        let original = chung_lu(ChungLuConfig {
            gamma: 2.1,
            ..ChungLuConfig::social(3000, 24_000, 4)
        })
        .to_csr();
        let clone = degree_clone(&original, 77);
        assert_eq!(clone.row_degrees(), original.row_degrees());
        assert_eq!(clone.nrows(), original.nrows());
        assert_eq!(clone.ncols(), original.ncols());
        // column skew follows the row profile under MatchDegrees
        let orig_cols = DegreeStats::of_cols(&original);
        let clone_cols = DegreeStats::of_cols(&clone);
        assert_eq!(orig_cols.is_skewed(), clone_cols.is_skewed());
    }

    #[test]
    fn match_degrees_concentrates_columns_on_hubs() {
        // Rows 0..10 are hubs; their columns should also be hot.
        let mut degrees = vec![2usize; 2000];
        for d in degrees.iter_mut().take(10) {
            *d = 400;
        }
        let m = configuration_model(&degrees, 2000, ColumnModel::MatchDegrees, 3).to_csr();
        let col_stats = DegreeStats::of_cols(&m);
        let uni = configuration_model(&degrees, 2000, ColumnModel::Uniform, 3).to_csr();
        let uni_stats = DegreeStats::of_cols(&uni);
        assert!(
            col_stats.gini > uni_stats.gini + 0.1,
            "matched columns must be more skewed: {} vs {}",
            col_stats.gini,
            uni_stats.gini
        );
    }
}
