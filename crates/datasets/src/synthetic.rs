//! Table III — the paper's synthetic dataset families.
//!
//! * **S (scalability)**: four matrices of growing dimension
//!   (250 k → 1 M nodes) at fixed skew `(0.45, 0.15, 0.15, 0.25)`.
//! * **P (skewness)**: 1 M nodes / 1 M elements at four skew levels, from
//!   uniform `(0.25, 0.25, 0.25, 0.25)` to `(0.57, 0.19, 0.19, 0.05)`.
//! * **SP (sparsity)**: 1 M nodes at 4 M → 1 M elements, uniform quadrants.
//! * **AB pairs**: independent `(A, B)` R-MAT pairs at scales 15–18 with
//!   edge-factor 16, for the `C = AB` experiment (Figure 16(b)); the
//!   table's exact distinct-edge counts are reproduced verbatim.

use crate::registry::ScaleFactor;
use crate::rmat::{rmat, RmatConfig};
use br_sparse::CsrMatrix;

/// Which product the dataset is used for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyntheticOp {
    /// `C = A²` (S, P, SP families).
    Square,
    /// `C = A·B` with an independent pair (scale-15…18 pairs).
    Pair,
}

/// One Table III entry.
#[derive(Debug, Clone, PartialEq)]
pub struct SyntheticSpec {
    /// Name as printed in the paper (`s1`…`s4`, `p1`…`p4`, `sp1`…`sp4`,
    /// `15`…`18`).
    pub name: &'static str,
    /// Published dimension.
    pub dim: usize,
    /// Published element count for `A` (and `B`, when `op == Pair`, of the
    /// same magnitude — the exact published pair counts are stored below).
    pub elements: usize,
    /// Element count for `B` (pairs only; equals `elements` for squares).
    pub elements_b: usize,
    /// R-MAT quadrant probabilities.
    pub probs: [f64; 4],
    /// Square or pair experiment.
    pub op: SyntheticOp,
}

impl SyntheticSpec {
    fn scaled(&self, x: usize, scale: ScaleFactor) -> usize {
        (x / scale.divisor()).max(64)
    }

    /// Scaled dimension.
    pub fn scaled_dim(&self, scale: ScaleFactor) -> usize {
        self.scaled(self.dim, scale)
    }

    fn gen_one(&self, edges: usize, scale: ScaleFactor, seed: u64) -> CsrMatrix<f64> {
        let dim = self.scaled_dim(scale);
        let edges = self.scaled(edges, scale).min(dim * dim / 2);
        let grid_scale = (usize::BITS - (dim - 1).leading_zeros()).max(1);
        rmat(RmatConfig {
            scale: grid_scale,
            edges,
            probs: self.probs,
            seed,
            noise: 0.1,
            dim: Some(dim),
        })
        .to_csr()
    }

    /// Generates `A` at the given scale.
    pub fn generate_a(&self, scale: ScaleFactor) -> CsrMatrix<f64> {
        self.gen_one(self.elements, scale, fnv(self.name) ^ 0xA)
    }

    /// Generates `B` at the given scale: the independent pair partner for
    /// `Pair` specs, or `A` itself for `Square` specs.
    pub fn generate_b(&self, scale: ScaleFactor) -> CsrMatrix<f64> {
        match self.op {
            SyntheticOp::Square => self.generate_a(scale),
            SyntheticOp::Pair => self.gen_one(self.elements_b, scale, fnv(self.name) ^ 0xB),
        }
    }
}

fn fnv(s: &str) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

const UNIFORM: [f64; 4] = [0.25, 0.25, 0.25, 0.25];
const SKEW_45: [f64; 4] = [0.45, 0.15, 0.15, 0.25];
const SKEW_55: [f64; 4] = [0.55, 0.15, 0.15, 0.15];
const SKEW_57: [f64; 4] = [0.57, 0.19, 0.19, 0.05];

fn square(name: &'static str, dim: usize, elements: usize, probs: [f64; 4]) -> SyntheticSpec {
    SyntheticSpec {
        name,
        dim,
        elements,
        elements_b: elements,
        probs,
        op: SyntheticOp::Square,
    }
}

/// The S (scalability) family: growing size, fixed skew.
pub fn s_family() -> Vec<SyntheticSpec> {
    vec![
        square("s1", 250_000, 62_500, SKEW_45),
        square("s2", 500_000, 250_000, SKEW_45),
        square("s3", 750_000, 562_500, SKEW_45),
        square("s4", 1_000_000, 1_000_000, SKEW_45),
    ]
}

/// The P (skewness) family: fixed size, growing skew.
pub fn p_family() -> Vec<SyntheticSpec> {
    vec![
        square("p1", 1_000_000, 1_000_000, UNIFORM),
        square("p2", 1_000_000, 1_000_000, SKEW_45),
        square("p3", 1_000_000, 1_000_000, SKEW_55),
        square("p4", 1_000_000, 1_000_000, SKEW_57),
    ]
}

/// The SP (sparsity) family: fixed size, shrinking density.
pub fn sp_family() -> Vec<SyntheticSpec> {
    vec![
        square("sp1", 1_000_000, 4_000_000, UNIFORM),
        square("sp2", 1_000_000, 3_000_000, UNIFORM),
        square("sp3", 1_000_000, 2_000_000, UNIFORM),
        square("sp4", 1_000_000, 1_000_000, UNIFORM),
    ]
}

/// The `C = AB` pairs at scales 15–18, edge-factor 16, with Table III's
/// published distinct-edge counts.
pub fn ab_pairs() -> Vec<SyntheticSpec> {
    let pair = |name, scale: u32, ea, eb| SyntheticSpec {
        name,
        dim: 1usize << scale,
        elements: ea,
        elements_b: eb,
        probs: SKEW_45,
        op: SyntheticOp::Pair,
    };
    vec![
        pair("15", 15, 440_747, 440_024),
        pair("16", 16, 908_672, 909_957),
        pair("17", 17, 1_864_289, 1_868_244),
        pair("18", 18, 3_806_124, 3_801_872),
    ]
}

/// All twelve `C = A²` synthetic datasets in Figure 16(a) order.
pub fn all_square() -> Vec<SyntheticSpec> {
    let mut v = s_family();
    v.extend(p_family());
    v.extend(sp_family());
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use br_sparse::stats::DegreeStats;

    #[test]
    fn family_sizes_match_table() {
        assert_eq!(s_family().len(), 4);
        assert_eq!(p_family().len(), 4);
        assert_eq!(sp_family().len(), 4);
        assert_eq!(ab_pairs().len(), 4);
        assert_eq!(all_square().len(), 12);
    }

    #[test]
    fn s_family_grows_in_dimension() {
        let dims: Vec<_> = s_family().iter().map(|s| s.dim).collect();
        assert!(dims.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn sp_family_shrinks_in_density() {
        let els: Vec<_> = sp_family().iter().map(|s| s.elements).collect();
        assert!(els.windows(2).all(|w| w[0] > w[1]));
    }

    #[test]
    fn p_family_skew_increases_generated_gini() {
        let scale = ScaleFactor::Div(64);
        let p1 = p_family()[0].generate_a(scale);
        let p4 = p_family()[3].generate_a(scale);
        let g1 = DegreeStats::of_rows(&p1).gini;
        let g4 = DegreeStats::of_rows(&p4).gini;
        assert!(
            g4 > g1 + 0.15,
            "p4 should be clearly more skewed: {g1} vs {g4}"
        );
    }

    #[test]
    fn pair_generates_distinct_a_and_b_of_same_shape() {
        let spec = &ab_pairs()[0];
        let scale = ScaleFactor::Div(32);
        let a = spec.generate_a(scale);
        let b = spec.generate_b(scale);
        assert_eq!(a.nrows(), b.nrows());
        assert_ne!(a, b);
    }

    #[test]
    fn square_spec_b_equals_a() {
        let spec = &s_family()[0];
        let scale = ScaleFactor::Div(64);
        assert_eq!(spec.generate_a(scale), spec.generate_b(scale));
    }

    #[test]
    fn scaled_edges_respect_divisor() {
        let spec = &sp_family()[0]; // 4M elements
        let a = spec.generate_a(ScaleFactor::Div(64));
        let expect = 4_000_000 / 64;
        assert_eq!(a.nnz(), expect);
    }
}
