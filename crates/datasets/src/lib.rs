//! # br-datasets — sparse-network generators and the paper's dataset suites
//!
//! The paper evaluates on 28 real-world matrices (Table II: 19 Florida
//! SuiteSparse + 9 SNAP graphs) and on synthetic R-MAT families (Table III).
//! We do not ship the real files; instead this crate provides:
//!
//! * [`mod@rmat`] — the R-MAT recursive generator (Chakrabarti et al., SDM'04),
//!   the same model the paper uses for Table III.
//! * [`mod@chung_lu`] — a power-law (Chung–Lu) generator used for SNAP-graph
//!   surrogates, where hub degree must be controlled independently of size.
//! * [`configuration`] — a configuration-model generator reproducing an
//!   *exact* target row-degree sequence (clone a real matrix's profile).
//! * [`mod@mesh`] — quasi-regular generators (3-D stencils, banded matrices)
//!   used for Florida FEM-style surrogates.
//! * [`registry`] — the Table II registry: every dataset's *published*
//!   dimension/nnz plus a surrogate recipe in the same distribution class,
//!   generated at a configurable scale.
//! * [`synthetic`] — Table III: the S (scalability), P (skewness) and
//!   SP (sparsity) families for `C = A²` and the scale-15…18 pairs for
//!   `C = AB`.
//!
//! All generators are deterministic given a seed. If genuine `.mtx` files
//! are available, `br_sparse::io` loads them and the registry can be
//! bypassed entirely.

#![warn(missing_docs)]

pub mod chung_lu;
pub mod configuration;
pub mod mesh;
pub mod registry;
pub mod rmat;
pub mod synthetic;

pub use registry::{DatasetClass, DatasetSpec, RealWorldRegistry, ScaleFactor};
pub use rmat::{rmat, RmatConfig};
