//! The Table II dataset registry.
//!
//! Records every one of the paper's 28 real-world matrices — its published
//! dimension, `nnz(A)`, and `nnz(C = A²)` — together with a surrogate recipe
//! in the same *distribution class*. Regular FEM/circuit matrices from the
//! Florida collection map to stencil/banded generators matched on mean
//! degree; skewed SNAP networks map to Chung–Lu generators whose exponent is
//! tuned to the published `nnz(C)/nnz(A)` amplification (heavier hubs ⇒
//! larger amplification).
//!
//! Surrogates are generated at a configurable [`ScaleFactor`]; the default
//! divides the published dimension by 16 (keeping mean degree) so the whole
//! 28-matrix suite runs in minutes on a laptop. `ScaleFactor::Full`
//! approaches paper sizes for users with time to spare. EXPERIMENTS.md
//! reports all results at the default scale.

use crate::chung_lu::{chung_lu, ChungLuConfig};
use crate::mesh::{banded, stencil3d};
use br_sparse::CsrMatrix;
use serde::{Deserialize, Serialize};

/// Distribution class of a dataset — drives which optimizations matter
/// (Section VI-A: splitting/limiting help skewed data; gathering helps all).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DatasetClass {
    /// Near-uniform degrees (Florida FEM/circuit matrices).
    Regular,
    /// Power-law degrees with hub nodes (SNAP social/web networks).
    Skewed,
}

/// Source collection, as in Table II's two columns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Collection {
    /// University of Florida sparse matrix collection (SuiteSparse).
    Florida,
    /// Stanford large network dataset collection (SNAP).
    Snap,
}

/// How far to scale a surrogate down from the published size.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScaleFactor {
    /// ÷64 — seconds for the full suite; used by integration tests.
    Tiny,
    /// ÷16 — minutes for the full suite; used by the benchmark harness.
    Default,
    /// ÷1 — published sizes (long-running; needs several GB of memory).
    Full,
    /// Custom divisor.
    Div(usize),
}

impl ScaleFactor {
    /// The dimension divisor this factor represents.
    pub fn divisor(self) -> usize {
        match self {
            ScaleFactor::Tiny => 64,
            ScaleFactor::Default => 16,
            ScaleFactor::Full => 1,
            ScaleFactor::Div(d) => d.max(1),
        }
    }

    /// Parses the CLI/bench spelling: `tiny`, `default`, `full`, or a
    /// numeric divisor ≥ 1.
    pub fn parse(text: &str) -> Option<ScaleFactor> {
        match text {
            "tiny" => Some(ScaleFactor::Tiny),
            "default" => Some(ScaleFactor::Default),
            "full" => Some(ScaleFactor::Full),
            other => match other.parse::<usize>() {
                Ok(d) if d >= 1 => Some(ScaleFactor::Div(d)),
                _ => None,
            },
        }
    }

    /// The canonical spelling [`ScaleFactor::parse`] accepts, used in
    /// report files and usage messages.
    pub fn label(self) -> String {
        match self {
            ScaleFactor::Tiny => "tiny".to_string(),
            ScaleFactor::Default => "default".to_string(),
            ScaleFactor::Full => "full".to_string(),
            ScaleFactor::Div(d) => d.to_string(),
        }
    }
}

/// Surrogate generation recipe (see module docs for the mapping rationale).
#[derive(Debug, Clone, PartialEq)]
enum Recipe {
    /// 3-D stencil with the given reach — interior degree `(2r+1)³`.
    Stencil { reach: usize },
    /// Band matrix with the given mean degree; bandwidth is `8·deg`.
    Banded { deg: usize },
    /// Chung–Lu power-law with exponent `gamma` (smaller = heavier hubs).
    ChungLu { gamma: f64 },
}

/// One Table II dataset: published numbers plus its surrogate recipe.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetSpec {
    /// Dataset name as printed in the paper.
    pub name: &'static str,
    /// Which collection it came from.
    pub collection: Collection,
    /// Regular or skewed degree distribution.
    pub class: DatasetClass,
    /// Published matrix dimension.
    pub paper_dim: usize,
    /// Published `nnz(A)`.
    pub paper_nnz_a: usize,
    /// Published `nnz(C)` for `C = A²`.
    pub paper_nnz_c: usize,
    /// Member of the 10-dataset panel used in Figures 3, 11, 12 and 14
    /// (5 regular + 5 skewed).
    pub fig3_panel: bool,
    recipe: Recipe,
}

impl DatasetSpec {
    /// Surrogate dimension at the given scale (≥ 256 so tiny scales stay
    /// meaningful).
    pub fn scaled_dim(&self, scale: ScaleFactor) -> usize {
        (self.paper_dim / scale.divisor()).max(256)
    }

    /// Surrogate nnz target at the given scale (mean degree preserved).
    pub fn scaled_nnz(&self, scale: ScaleFactor) -> usize {
        let dim = self.scaled_dim(scale);
        let mean_deg = (self.paper_nnz_a as f64 / self.paper_dim as f64).max(1.0);
        // Cap at 60% grid density so tiny scales of dense-ish matrices
        // remain generatable with distinct coordinates.
        (((dim as f64) * mean_deg) as usize).min(dim * dim * 3 / 5)
    }

    /// Loads the *genuine* matrix from `<dir>/<name>.mtx` when the file
    /// exists (users with the Florida/SNAP downloads get the paper-faithful
    /// path), falling back to the surrogate at the given scale otherwise.
    pub fn load_or_generate(
        &self,
        dir: impl AsRef<std::path::Path>,
        scale: ScaleFactor,
    ) -> CsrMatrix<f64> {
        let path = dir.as_ref().join(format!("{}.mtx", self.name));
        if path.is_file() {
            match br_sparse::io::read_matrix_market_file::<f64, _>(&path) {
                Ok(m) => return m,
                Err(e) => eprintln!(
                    "warning: {} unreadable ({e}); using the surrogate",
                    path.display()
                ),
            }
        }
        self.generate(scale)
    }

    /// Generates the surrogate matrix at the given scale (deterministic:
    /// the seed is derived from the dataset name).
    pub fn generate(&self, scale: ScaleFactor) -> CsrMatrix<f64> {
        let dim = self.scaled_dim(scale);
        let nnz = self.scaled_nnz(scale);
        let seed = fnv1a(self.name);
        match self.recipe {
            Recipe::Stencil { reach } => {
                // Pick grid sides multiplying to ≈ dim.
                let side = (dim as f64).cbrt().round().max(2.0) as usize;
                stencil3d(side, side, side, reach).to_csr()
            }
            Recipe::Banded { deg } => {
                let bw = (deg * 8).min(dim.saturating_sub(1)).max(1);
                banded(dim, bw, deg, seed).to_csr()
            }
            Recipe::ChungLu { gamma } => chung_lu(ChungLuConfig {
                nodes: dim,
                edges: nnz,
                gamma,
                offset: 1.0,
                seed,
            })
            .to_csr(),
        }
    }
}

/// 64-bit FNV-1a over the dataset name — a stable, dependency-free seed.
fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// The full Table II registry.
pub struct RealWorldRegistry;

impl RealWorldRegistry {
    /// All 28 datasets in the paper's table order (left column first).
    pub fn all() -> Vec<DatasetSpec> {
        use Collection::*;
        use DatasetClass::*;
        use Recipe::*;
        let spec =
            |name, collection, class, paper_dim, paper_nnz_a, paper_nnz_c, fig3_panel, recipe| {
                DatasetSpec {
                    name,
                    collection,
                    class,
                    paper_dim,
                    paper_nnz_a,
                    paper_nnz_c,
                    fig3_panel,
                    recipe,
                }
            };
        vec![
            // ---- Florida matrix suite (regular distributions) ----
            spec(
                "filter3D",
                Florida,
                Regular,
                106_000,
                2_700_000,
                20_100_000,
                true,
                Stencil { reach: 1 },
            ),
            spec(
                "ship",
                Florida,
                Regular,
                140_000,
                3_700_000,
                23_000_000,
                true,
                Stencil { reach: 1 },
            ),
            spec(
                "harbor",
                Florida,
                Regular,
                46_000,
                2_300_000,
                7_500_000,
                true,
                Banded { deg: 50 },
            ),
            spec(
                "protein",
                Florida,
                Regular,
                36_000,
                2_100_000,
                18_700_000,
                true,
                Banded { deg: 58 },
            ),
            spec(
                "sphere",
                Florida,
                Regular,
                81_000,
                2_900_000,
                25_300_000,
                false,
                Banded { deg: 36 },
            ),
            spec(
                "2cube_sphere",
                Florida,
                Regular,
                99_000,
                854_000,
                8_600_000,
                false,
                Banded { deg: 9 },
            ),
            spec(
                "accelerator",
                Florida,
                Regular,
                118_000,
                1_300_000,
                17_800_000,
                false,
                Banded { deg: 11 },
            ),
            spec(
                "cage12",
                Florida,
                Regular,
                127_000,
                1_900_000,
                14_500_000,
                false,
                Banded { deg: 15 },
            ),
            spec(
                "hood",
                Florida,
                Regular,
                215_000,
                5_200_000,
                32_700_000,
                false,
                Stencil { reach: 1 },
            ),
            spec(
                "m133-b3",
                Florida,
                Regular,
                196_000,
                782_000,
                3_000_000,
                false,
                Banded { deg: 4 },
            ),
            spec(
                "majorbasis",
                Florida,
                Regular,
                156_000,
                1_700_000,
                7_900_000,
                false,
                Banded { deg: 11 },
            ),
            spec(
                "mario002",
                Florida,
                Regular,
                381_000,
                1_100_000,
                6_200_000,
                false,
                Banded { deg: 3 },
            ),
            spec(
                "mono_500Hz",
                Florida,
                Regular,
                165_000,
                4_800_000,
                39_500_000,
                false,
                Stencil { reach: 1 },
            ),
            spec(
                "offshore",
                Florida,
                Regular,
                254_000,
                2_100_000,
                22_200_000,
                false,
                Banded { deg: 8 },
            ),
            spec(
                "patents_main",
                Florida,
                Regular,
                235_000,
                548_000,
                2_200_000,
                false,
                ChungLu { gamma: 3.0 },
            ),
            spec(
                "poisson3Da",
                Florida,
                Regular,
                13_000,
                344_000,
                2_800_000,
                false,
                Stencil { reach: 1 },
            ),
            spec(
                "QCD",
                Florida,
                Regular,
                48_000,
                1_800_000,
                10_400_000,
                true,
                Banded { deg: 39 },
            ),
            spec(
                "scircuit",
                Florida,
                Regular,
                167_000,
                900_000,
                5_000_000,
                false,
                Banded { deg: 6 },
            ),
            spec(
                "power197k",
                Florida,
                Regular,
                193_000,
                3_300_000,
                38_000_000,
                false,
                Banded { deg: 17 },
            ),
            // ---- Stanford large network collection (skewed) ----
            spec(
                "youtube",
                Snap,
                Skewed,
                1_100_000,
                2_800_000,
                148_000_000,
                true,
                ChungLu { gamma: 2.2 },
            ),
            spec(
                "as-caida",
                Snap,
                Skewed,
                26_000,
                104_000,
                25_600_000,
                true,
                ChungLu { gamma: 2.0 },
            ),
            spec(
                "sx-mathoverflow",
                Snap,
                Skewed,
                87_000,
                495_000,
                17_700_000,
                true,
                ChungLu { gamma: 2.2 },
            ),
            spec(
                "loc-gowalla",
                Snap,
                Skewed,
                192_000,
                1_800_000,
                456_000_000,
                true,
                ChungLu { gamma: 2.0 },
            ),
            spec(
                "emailEnron",
                Snap,
                Skewed,
                36_000,
                359_000,
                29_100_000,
                false,
                ChungLu { gamma: 2.1 },
            ),
            spec(
                "slashDot",
                Snap,
                Skewed,
                76_000,
                884_000,
                75_200_000,
                true,
                ChungLu { gamma: 2.1 },
            ),
            spec(
                "epinions",
                Snap,
                Skewed,
                74_000,
                497_000,
                19_600_000,
                false,
                ChungLu { gamma: 2.2 },
            ),
            spec(
                "web-Notredame",
                Snap,
                Skewed,
                318_000,
                1_400_000,
                16_000_000,
                false,
                ChungLu { gamma: 2.4 },
            ),
            spec(
                "stanford",
                Snap,
                Skewed,
                275_000,
                2_200_000,
                19_800_000,
                false,
                ChungLu { gamma: 2.4 },
            ),
        ]
    }

    /// Looks a dataset up by (case-sensitive) paper name.
    pub fn get(name: &str) -> Option<DatasetSpec> {
        Self::all().into_iter().find(|d| d.name == name)
    }

    /// The Florida (regular) subset, in table order.
    pub fn florida() -> Vec<DatasetSpec> {
        Self::all()
            .into_iter()
            .filter(|d| d.collection == Collection::Florida)
            .collect()
    }

    /// The SNAP (skewed) subset, in table order.
    pub fn snap() -> Vec<DatasetSpec> {
        Self::all()
            .into_iter()
            .filter(|d| d.collection == Collection::Snap)
            .collect()
    }

    /// The 10-dataset panel of Figures 3, 11, 12 and 14
    /// (5 regular, then 5 skewed).
    pub fn fig3_panel() -> Vec<DatasetSpec> {
        let mut panel: Vec<DatasetSpec> =
            Self::all().into_iter().filter(|d| d.fig3_panel).collect();
        panel.sort_by_key(|d| d.class == DatasetClass::Skewed); // regular first
        panel
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use br_sparse::stats::DegreeStats;

    #[test]
    fn registry_has_28_datasets() {
        let all = RealWorldRegistry::all();
        assert_eq!(all.len(), 28);
        assert_eq!(RealWorldRegistry::florida().len(), 19);
        assert_eq!(RealWorldRegistry::snap().len(), 9);
    }

    #[test]
    fn names_are_unique() {
        let all = RealWorldRegistry::all();
        let mut names: Vec<_> = all.iter().map(|d| d.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 28);
    }

    #[test]
    fn fig3_panel_is_5_regular_plus_5_skewed() {
        let panel = RealWorldRegistry::fig3_panel();
        assert_eq!(panel.len(), 10);
        assert!(panel[..5].iter().all(|d| d.class == DatasetClass::Regular));
        assert!(panel[5..].iter().all(|d| d.class == DatasetClass::Skewed));
    }

    #[test]
    fn lookup_by_name() {
        let yt = RealWorldRegistry::get("youtube").unwrap();
        assert_eq!(yt.paper_nnz_c, 148_000_000);
        assert!(RealWorldRegistry::get("nonexistent").is_none());
    }

    #[test]
    fn surrogates_match_declared_class_at_tiny_scale() {
        for spec in [
            RealWorldRegistry::get("filter3D").unwrap(),
            RealWorldRegistry::get("harbor").unwrap(),
            RealWorldRegistry::get("youtube").unwrap(),
            RealWorldRegistry::get("as-caida").unwrap(),
        ] {
            let m = spec.generate(ScaleFactor::Tiny);
            let stats = DegreeStats::of_rows(&m);
            match spec.class {
                DatasetClass::Regular => {
                    assert!(
                        !stats.is_skewed(),
                        "{} should be regular: {stats:?}",
                        spec.name
                    )
                }
                DatasetClass::Skewed => {
                    assert!(
                        stats.is_skewed(),
                        "{} should be skewed: {stats:?}",
                        spec.name
                    )
                }
            }
        }
    }

    #[test]
    fn scaled_dim_honours_divisor_and_floor() {
        let yt = RealWorldRegistry::get("youtube").unwrap();
        assert_eq!(yt.scaled_dim(ScaleFactor::Default), 1_100_000 / 16);
        assert_eq!(yt.scaled_dim(ScaleFactor::Full), 1_100_000);
        let small = RealWorldRegistry::get("poisson3Da").unwrap();
        assert_eq!(small.scaled_dim(ScaleFactor::Tiny), 256); // floored
    }

    #[test]
    fn scaled_nnz_preserves_mean_degree() {
        let p = RealWorldRegistry::get("protein").unwrap();
        let dim = p.scaled_dim(ScaleFactor::Tiny);
        let nnz = p.scaled_nnz(ScaleFactor::Tiny);
        let mean = nnz as f64 / dim as f64;
        let paper_mean = p.paper_nnz_a as f64 / p.paper_dim as f64;
        assert!((mean - paper_mean).abs() / paper_mean < 0.1);
    }

    #[test]
    fn load_or_generate_prefers_real_files() {
        let dir = std::env::temp_dir().join("br_registry_test");
        std::fs::create_dir_all(&dir).unwrap();
        let spec = RealWorldRegistry::get("QCD").unwrap();
        // No file yet → surrogate.
        let surrogate = spec.load_or_generate(&dir, ScaleFactor::Tiny);
        assert_eq!(surrogate, spec.generate(ScaleFactor::Tiny));
        // Drop a tiny "real" file in place → it wins, whatever the scale.
        let real =
            br_sparse::CsrMatrix::try_new(2, 2, vec![0, 1, 2], vec![1, 0], vec![3.0, 4.0]).unwrap();
        br_sparse::io::write_matrix_market_file(&real, dir.join("QCD.mtx")).unwrap();
        let loaded = spec.load_or_generate(&dir, ScaleFactor::Tiny);
        assert!(loaded.approx_eq(&real, 1e-12));
        std::fs::remove_file(dir.join("QCD.mtx")).unwrap();
    }

    #[test]
    fn load_or_generate_falls_back_on_corrupt_files() {
        // A present-but-unreadable .mtx (truncated download, wrong format)
        // must not abort the run: the loader warns and generates the
        // surrogate instead.
        let dir = std::env::temp_dir().join("br_registry_corrupt_test");
        std::fs::create_dir_all(&dir).unwrap();
        let spec = RealWorldRegistry::get("scircuit").unwrap();
        let path = dir.join("scircuit.mtx");
        std::fs::write(
            &path,
            "%%MatrixMarket matrix coordinate real general\n2 2 5\n1 1 1.0\n",
        )
        .unwrap();
        let loaded = spec.load_or_generate(&dir, ScaleFactor::Tiny);
        assert_eq!(loaded, spec.generate(ScaleFactor::Tiny));
        // Not even a header.
        std::fs::write(&path, "this is not a matrix\n").unwrap();
        let loaded = spec.load_or_generate(&dir, ScaleFactor::Tiny);
        assert_eq!(loaded, spec.generate(ScaleFactor::Tiny));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn generation_is_deterministic() {
        let spec = RealWorldRegistry::get("emailEnron").unwrap();
        assert_eq!(
            spec.generate(ScaleFactor::Tiny),
            spec.generate(ScaleFactor::Tiny)
        );
    }
}
