//! Quasi-regular matrix generators — surrogates for the Florida SuiteSparse
//! group of Table II (FEM meshes, lattice QCD, circuit matrices).
//!
//! These matrices have *regular* degree distributions: nearly every row has
//! close to the mean degree (Fig. 3(a)'s five left-hand datasets). Two
//! generators cover the space:
//!
//! * [`stencil3d`] — a 3-D finite-element-style stencil with a configurable
//!   neighbourhood reach; degrees are uniform except at boundaries.
//! * [`banded`] — a band matrix with random in-band fill, matching a target
//!   average degree exactly (circuit-style irregular-but-bounded rows).

use br_sparse::CooMatrix;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A 3-D stencil matrix on an `nx × ny × nz` grid: node `(x,y,z)` connects
/// to every node within Chebyshev distance `reach` (including itself).
///
/// Degree is `(2·reach+1)³` in the interior — e.g. `reach = 1` gives the
/// classic 27-point stencil; `reach = 2` gives 125 neighbours, close to the
/// `protein` dataset's mean degree of 58 after boundary clipping.
pub fn stencil3d(nx: usize, ny: usize, nz: usize, reach: usize) -> CooMatrix<f64> {
    let n = nx * ny * nz;
    let node = |x: usize, y: usize, z: usize| -> u32 { ((z * ny + y) * nx + x) as u32 };
    let r = reach as isize;
    let deg_cap = (2 * reach + 1).pow(3);
    let mut coo = CooMatrix::with_capacity(n, n, n * deg_cap);
    for z in 0..nz {
        for y in 0..ny {
            for x in 0..nx {
                let row = node(x, y, z);
                for dz in -r..=r {
                    let zz = z as isize + dz;
                    if zz < 0 || zz >= nz as isize {
                        continue;
                    }
                    for dy in -r..=r {
                        let yy = y as isize + dy;
                        if yy < 0 || yy >= ny as isize {
                            continue;
                        }
                        for dx in -r..=r {
                            let xx = x as isize + dx;
                            if xx < 0 || xx >= nx as isize {
                                continue;
                            }
                            let col = node(xx as usize, yy as usize, zz as usize);
                            // Diagonal dominance keeps values FEM-plausible.
                            let v = if col == row { 26.0 } else { -1.0 };
                            coo.push(row, col, v).expect("stencil in bounds");
                        }
                    }
                }
            }
        }
    }
    coo
}

/// A band matrix of dimension `n` and half-bandwidth `bw`, with each row
/// holding `deg` entries drawn uniformly from its band (diagonal always
/// present). Rows near the edges have clipped bands, mirroring the slight
/// irregularity of real circuit matrices.
pub fn banded(n: usize, bw: usize, deg: usize, seed: u64) -> CooMatrix<f64> {
    assert!(deg >= 1, "need at least the diagonal");
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut coo = CooMatrix::with_capacity(n, n, n * deg);
    let mut picked: Vec<u32> = Vec::with_capacity(deg);
    for r in 0..n {
        let lo = r.saturating_sub(bw);
        let hi = (r + bw).min(n - 1);
        let band = hi - lo + 1;
        picked.clear();
        picked.push(r as u32); // diagonal
        let want = deg.min(band);
        // Rejection-sample distinct in-band columns; band ≫ deg in practice.
        let mut guard = 0;
        while picked.len() < want && guard < band * 8 {
            let c = (lo + rng.gen_range(0..band)) as u32;
            if !picked.contains(&c) {
                picked.push(c);
            }
            guard += 1;
        }
        for &c in &picked {
            let v = if c as usize == r {
                4.0
            } else {
                -0.5 - rng.gen::<f64>()
            };
            coo.push(r as u32, c, v).expect("banded in bounds");
        }
    }
    coo
}

#[cfg(test)]
mod tests {
    use super::*;
    use br_sparse::stats::DegreeStats;

    #[test]
    fn stencil_interior_degree_is_cube_of_window() {
        let m = stencil3d(6, 6, 6, 1).to_csr();
        // interior node (not touching a boundary) has 27 neighbours
        let interior = (3 * 6 + 3) * 6 + 3; // node (3,3,3)
        assert_eq!(m.row_nnz(interior), 27);
        // corner node has 8
        assert_eq!(m.row_nnz(0), 8);
    }

    #[test]
    fn stencil_is_structurally_symmetric() {
        let m = stencil3d(4, 3, 2, 1).to_csr();
        let t = m.transpose();
        assert_eq!(m.ptr(), t.ptr());
        assert_eq!(m.idx(), t.idx());
    }

    #[test]
    fn stencil_is_regular_not_skewed() {
        let m = stencil3d(10, 10, 10, 1).to_csr();
        let s = DegreeStats::of_rows(&m);
        assert!(!s.is_skewed(), "stencil must be regular: {s:?}");
        assert!(s.max_over_mean < 2.0);
    }

    #[test]
    fn banded_hits_target_degree_and_stays_in_band() {
        let m = banded(500, 40, 12, 7).to_csr();
        let s = DegreeStats::of_rows(&m);
        assert!((s.mean - 12.0).abs() < 0.5, "mean degree {}", s.mean);
        for (r, c, _) in m.iter() {
            assert!((r as i64 - c as i64).unsigned_abs() <= 40);
        }
        assert!(!s.is_skewed());
    }

    #[test]
    fn banded_always_has_diagonal() {
        let m = banded(100, 10, 4, 1).to_csr();
        for r in 0..100 {
            assert_ne!(m.get(r, r), 0.0, "row {r} missing diagonal");
        }
    }

    #[test]
    fn banded_deterministic() {
        assert_eq!(banded(64, 8, 5, 3).to_csr(), banded(64, 8, 5, 3).to_csr());
    }
}
