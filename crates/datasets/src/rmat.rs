//! R-MAT recursive matrix generator (Chakrabarti, Zhan, Faloutsos — SDM'04).
//!
//! Each edge picks one of four quadrants per recursion level with
//! probabilities `(a, b, c, d)`; `a > d` concentrates edges in the top-left,
//! producing the power-law degree skew characteristic of social networks.
//! The paper's Table III uses exactly this model:
//! `(0.25,0.25,0.25,0.25)` (uniform, Erdős–Rényi-like) through
//! `(0.57,0.19,0.19,0.05)` (heavily skewed).

use br_sparse::CooMatrix;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;

/// Configuration of one R-MAT generation run.
#[derive(Debug, Clone, PartialEq)]
pub struct RmatConfig {
    /// Recursion depth; the sampling grid is `2^scale × 2^scale`.
    pub scale: u32,
    /// Number of **distinct** edges to produce.
    pub edges: usize,
    /// Quadrant probabilities `(a, b, c, d)`; must sum to ≈ 1.
    pub probs: [f64; 4],
    /// RNG seed — generation is fully deterministic.
    pub seed: u64,
    /// Per-level probability perturbation (± `noise/2` on `a`, compensated
    /// on `d`), as in the original paper's "smoothing" to avoid exact
    /// self-similarity staircases. `0.0` disables it.
    pub noise: f64,
    /// Clip coordinates to `dim` (rejection-sampled) when the target
    /// dimension is not a power of two — Table III's S family has
    /// dimensions like 250 000.
    pub dim: Option<usize>,
}

impl RmatConfig {
    /// Plain R-MAT on a `2^scale` grid with `edge_factor · 2^scale` edges and
    /// the Graph500 default probabilities `(0.57, 0.19, 0.19, 0.05)`.
    pub fn graph500(scale: u32, edge_factor: usize, seed: u64) -> Self {
        RmatConfig {
            scale,
            edges: edge_factor << scale,
            probs: [0.57, 0.19, 0.19, 0.05],
            seed,
            noise: 0.1,
            dim: None,
        }
    }

    /// SNAP-network-like skew: the paper's Table III "P" default
    /// `(0.45, 0.15, 0.15, 0.25)`.
    pub fn snap_like(scale: u32, edge_factor: usize, seed: u64) -> Self {
        RmatConfig {
            scale,
            edges: edge_factor << scale,
            probs: [0.45, 0.15, 0.15, 0.25],
            seed,
            noise: 0.1,
            dim: None,
        }
    }

    /// Uniform quadrants — an Erdős–Rényi-style regular random graph.
    pub fn uniform(scale: u32, edge_factor: usize, seed: u64) -> Self {
        RmatConfig {
            scale,
            edges: edge_factor << scale,
            probs: [0.25; 4],
            seed,
            noise: 0.0,
            dim: None,
        }
    }

    /// Overrides the matrix dimension (coordinates outside are re-sampled).
    pub fn with_dim(mut self, dim: usize) -> Self {
        assert!(dim <= 1usize << self.scale, "dim exceeds 2^scale grid");
        self.dim = Some(dim);
        self
    }

    /// Overrides the exact distinct-edge count.
    pub fn with_edges(mut self, edges: usize) -> Self {
        self.edges = edges;
        self
    }

    /// Matrix dimension this config generates.
    pub fn dimension(&self) -> usize {
        self.dim.unwrap_or(1usize << self.scale)
    }
}

/// Generates one R-MAT matrix. Edge weights are uniform in `[0.5, 1.5)`
/// (bounded away from zero so products never cancel in tests).
///
/// Duplicate samples are rejected until `edges` *distinct* coordinates
/// exist; generation panics if the grid cannot hold that many (caller bug).
pub fn rmat(config: RmatConfig) -> CooMatrix<f64> {
    let dim = config.dimension();
    assert!(
        config.edges <= dim.saturating_mul(dim),
        "edge count exceeds grid capacity"
    );
    let p = config.probs;
    let total = p.iter().sum::<f64>();
    assert!(
        (total - 1.0).abs() < 1e-6,
        "quadrant probabilities must sum to 1, got {total}"
    );

    let mut rng = SmallRng::seed_from_u64(config.seed);
    let mut seen: HashSet<u64> = HashSet::with_capacity(config.edges * 2);
    let mut coo = CooMatrix::with_capacity(dim, dim, config.edges);

    // Cumulative quadrant thresholds, re-perturbed per level when noisy.
    let base = [p[0], p[0] + p[1], p[0] + p[1] + p[2]];
    while coo.nnz() < config.edges {
        let (mut row, mut col) = (0usize, 0usize);
        for _ in 0..config.scale {
            let u: f64 = rng.gen();
            let thresholds = if config.noise > 0.0 {
                let jitter = (rng.gen::<f64>() - 0.5) * config.noise * p[0];
                [base[0] + jitter, base[1] + jitter, base[2] + jitter]
            } else {
                base
            };
            row <<= 1;
            col <<= 1;
            if u < thresholds[0] {
                // quadrant a: (0, 0)
            } else if u < thresholds[1] {
                col |= 1; // b: (0, 1)
            } else if u < thresholds[2] {
                row |= 1; // c: (1, 0)
            } else {
                row |= 1;
                col |= 1; // d: (1, 1)
            }
        }
        if row >= dim || col >= dim {
            continue;
        }
        let key = (row as u64) << 32 | col as u64;
        if seen.insert(key) {
            let w = 0.5 + rng.gen::<f64>();
            coo.push(row as u32, col as u32, w)
                .expect("rmat coordinates in bounds by construction");
        }
    }
    coo
}

#[cfg(test)]
mod tests {
    use super::*;
    use br_sparse::stats::DegreeStats;

    #[test]
    fn produces_requested_distinct_edge_count() {
        let m = rmat(RmatConfig::snap_like(8, 4, 1));
        assert_eq!(m.nnz(), 4 << 8);
        // COO→CSR dedupe must not remove anything: edges were distinct.
        assert_eq!(m.to_csr().nnz(), 4 << 8);
    }

    #[test]
    fn deterministic_for_same_seed() {
        let a = rmat(RmatConfig::graph500(7, 8, 99)).to_csr();
        let b = rmat(RmatConfig::graph500(7, 8, 99)).to_csr();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = rmat(RmatConfig::graph500(7, 8, 1)).to_csr();
        let b = rmat(RmatConfig::graph500(7, 8, 2)).to_csr();
        assert_ne!(a, b);
    }

    #[test]
    fn skewed_probs_make_skewed_degrees() {
        let skewed = rmat(RmatConfig::graph500(10, 8, 7)).to_csr();
        let uniform = rmat(RmatConfig::uniform(10, 8, 7)).to_csr();
        let s = DegreeStats::of_rows(&skewed);
        let u = DegreeStats::of_rows(&uniform);
        assert!(
            s.gini > u.gini + 0.2,
            "expected clear skew separation: gini {} vs {}",
            s.gini,
            u.gini
        );
        assert!(s.max > 4 * u.max);
    }

    #[test]
    fn dim_override_clips_coordinates() {
        let dim = 700; // not a power of two; grid is 1024
        let m = rmat(RmatConfig::uniform(10, 2, 3).with_dim(dim).with_edges(1000));
        assert_eq!(m.nrows(), dim);
        assert_eq!(m.ncols(), dim);
        assert_eq!(m.nnz(), 1000);
        assert!(m
            .iter()
            .all(|(r, c, _)| (r as usize) < dim && (c as usize) < dim));
    }

    #[test]
    fn weights_are_bounded_away_from_zero() {
        let m = rmat(RmatConfig::uniform(6, 4, 5));
        assert!(m.iter().all(|(_, _, v)| (0.5..1.5).contains(&v)));
    }

    #[test]
    #[should_panic(expected = "probabilities must sum to 1")]
    fn bad_probs_rejected() {
        let mut c = RmatConfig::uniform(4, 2, 0);
        c.probs = [0.9, 0.2, 0.2, 0.2];
        let _ = rmat(c);
    }

    #[test]
    #[should_panic(expected = "edge count exceeds grid capacity")]
    fn impossible_edge_count_rejected() {
        let _ = rmat(RmatConfig::uniform(2, 2, 0).with_edges(17));
    }
}
