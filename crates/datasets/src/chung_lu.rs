//! Chung–Lu power-law generator.
//!
//! Given a target power-law exponent `γ` and edge count, each node gets an
//! expected-degree weight `wᵢ ∝ (i + i₀)^(−1/(γ−1))` and edges are sampled
//! with probability proportional to `wᵢ·wⱼ`. Unlike R-MAT, this gives direct
//! control over the hub-to-tail ratio, which the Table II surrogates use to
//! match each SNAP graph's published skew (e.g. loc-gowalla's enormous
//! `nnz(C)/nnz(A)` amplification comes from a handful of super-hubs).

use br_sparse::CooMatrix;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;

/// Configuration for the Chung–Lu sampler.
#[derive(Debug, Clone, PartialEq)]
pub struct ChungLuConfig {
    /// Number of nodes (matrix dimension).
    pub nodes: usize,
    /// Number of distinct directed edges to produce.
    pub edges: usize,
    /// Power-law exponent `γ` of the degree distribution (2 < γ ≤ 4 is the
    /// social-network regime; smaller γ ⇒ heavier hubs).
    pub gamma: f64,
    /// Offset `i₀` flattening the head of the distribution; larger values
    /// cap the maximum hub degree.
    pub offset: f64,
    /// RNG seed.
    pub seed: u64,
}

impl ChungLuConfig {
    /// A typical social-network configuration: `γ = 2.2`, small offset.
    pub fn social(nodes: usize, edges: usize, seed: u64) -> Self {
        ChungLuConfig {
            nodes,
            edges,
            gamma: 2.2,
            offset: 1.0,
            seed,
        }
    }
}

/// Samples a node index from the power-law weight distribution via inverse
/// transform on the (analytically integrable) continuous envelope.
#[inline]
fn sample_node(rng: &mut SmallRng, nodes: usize, alpha: f64, offset: f64) -> usize {
    // Weight w(x) = (x + offset)^(-alpha) on [0, nodes); its CDF inverse is
    // closed-form, so sampling is O(1). The alpha = 1 case (gamma = 2, the
    // heaviest-hub regime) integrates to a logarithm instead of a power.
    let u: f64 = rng.gen();
    let x = if (alpha - 1.0).abs() < 1e-9 {
        let ratio = (nodes as f64 + offset) / offset;
        offset * ratio.powf(u) - offset
    } else {
        let lo = offset.powf(1.0 - alpha);
        let hi = (nodes as f64 + offset).powf(1.0 - alpha);
        (lo + u * (hi - lo)).powf(1.0 / (1.0 - alpha)) - offset
    };
    (x.max(0.0) as usize).min(nodes - 1)
}

/// Generates a directed Chung–Lu power-law matrix with distinct edges and
/// weights uniform in `[0.5, 1.5)`.
pub fn chung_lu(config: ChungLuConfig) -> CooMatrix<f64> {
    assert!(config.gamma > 1.0, "gamma must exceed 1");
    assert!(config.nodes > 0, "need at least one node");
    assert!(
        config.edges <= config.nodes.saturating_mul(config.nodes),
        "edge count exceeds grid capacity"
    );
    let alpha = 1.0 / (config.gamma - 1.0);
    let mut rng = SmallRng::seed_from_u64(config.seed);
    let mut seen: HashSet<u64> = HashSet::with_capacity(config.edges * 2);
    let mut coo = CooMatrix::with_capacity(config.nodes, config.nodes, config.edges);
    while coo.nnz() < config.edges {
        let r = sample_node(&mut rng, config.nodes, alpha, config.offset);
        let c = sample_node(&mut rng, config.nodes, alpha, config.offset);
        let key = (r as u64) << 32 | c as u64;
        if seen.insert(key) {
            let w = 0.5 + rng.gen::<f64>();
            coo.push(r as u32, c as u32, w)
                .expect("chung-lu coordinates in bounds by construction");
        }
    }
    coo
}

#[cfg(test)]
mod tests {
    use super::*;
    use br_sparse::stats::DegreeStats;

    #[test]
    fn distinct_edge_count_met() {
        let m = chung_lu(ChungLuConfig::social(2000, 10_000, 11));
        assert_eq!(m.nnz(), 10_000);
        assert_eq!(m.to_csr().nnz(), 10_000);
    }

    #[test]
    fn deterministic() {
        let a = chung_lu(ChungLuConfig::social(500, 2_000, 3)).to_csr();
        let b = chung_lu(ChungLuConfig::social(500, 2_000, 3)).to_csr();
        assert_eq!(a, b);
    }

    #[test]
    fn lower_gamma_means_heavier_hubs() {
        let heavy = chung_lu(ChungLuConfig {
            gamma: 2.0,
            ..ChungLuConfig::social(4000, 20_000, 5)
        })
        .to_csr();
        let light = chung_lu(ChungLuConfig {
            gamma: 3.5,
            ..ChungLuConfig::social(4000, 20_000, 5)
        })
        .to_csr();
        let h = DegreeStats::of_rows(&heavy);
        let l = DegreeStats::of_rows(&light);
        assert!(
            h.max > l.max,
            "gamma=2.0 should have a bigger hub: {} vs {}",
            h.max,
            l.max
        );
        assert!(h.gini > l.gini);
    }

    #[test]
    fn produces_power_law_class_distribution() {
        let m = chung_lu(ChungLuConfig::social(8000, 60_000, 9)).to_csr();
        let s = DegreeStats::of_rows(&m);
        assert!(
            s.is_skewed(),
            "social config must register as skewed: {s:?}"
        );
    }

    #[test]
    #[should_panic(expected = "gamma must exceed 1")]
    fn gamma_validated() {
        let _ = chung_lu(ChungLuConfig {
            gamma: 0.5,
            ..ChungLuConfig::social(10, 10, 0)
        });
    }
}
