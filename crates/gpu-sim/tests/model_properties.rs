//! Property-based tests of the performance model's monotonicity and
//! conservation laws: whatever the cost constants, these relations must
//! hold or the model cannot be trusted for A/B comparisons.

use br_gpu_sim::device::DeviceConfig;
use br_gpu_sim::l2cache::{BlockL2, L2Cache};
use br_gpu_sim::scheduler::schedule;
use br_gpu_sim::sim::GpuSimulator;
use br_gpu_sim::timing::{block_timing, SmContext};
use br_gpu_sim::trace::{KernelLaunch, MemoryLayout, TraceBuilder};
use proptest::prelude::*;

fn dev() -> DeviceConfig {
    DeviceConfig::titan_xp()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// More per-thread compute never shortens a block.
    #[test]
    fn compute_is_monotone(base in 1u64..100_000, extra in 1u64..100_000,
                           threads_log in 5u32..10) {
        let threads = 1u32 << threads_log;
        let ctx = SmContext::solo(threads / 32);
        let l2 = BlockL2::default();
        let t1 = block_timing(&dev(), &TraceBuilder::new(threads, threads).compute(base).build(), &l2, &ctx);
        let t2 = block_timing(&dev(), &TraceBuilder::new(threads, threads).compute(base + extra).build(), &l2, &ctx);
        prop_assert!(t2.duration >= t1.duration);
    }

    /// Converting hits to misses never speeds a block up.
    #[test]
    fn misses_cost_at_least_hits(hits in 0u64..50_000, misses in 0u64..50_000) {
        let block = TraceBuilder::new(256, 256).build();
        let ctx = SmContext::solo(8);
        let all_hit = BlockL2 {
            hit_transactions: hits + misses,
            miss_transactions: 0,
            read_bytes: (hits + misses) * 128,
            write_bytes: 0,
        };
        let mixed = BlockL2 {
            hit_transactions: hits,
            miss_transactions: misses,
            read_bytes: (hits + misses) * 128,
            write_bytes: 0,
        };
        let t_hit = block_timing(&dev(), &block, &all_hit, &ctx);
        let t_mix = block_timing(&dev(), &block, &mixed, &ctx);
        prop_assert!(t_mix.duration >= t_hit.duration - 1e-9);
    }

    /// More hiding warps never slow the memory path down.
    #[test]
    fn hiding_is_monotone(warps_a in 1u32..64, warps_b in 1u32..64,
                          transactions in 1u64..100_000) {
        let (lo, hi) = (warps_a.min(warps_b), warps_a.max(warps_b));
        let block = TraceBuilder::new(256, 256).build();
        let l2 = BlockL2 {
            hit_transactions: 0,
            miss_transactions: transactions,
            read_bytes: transactions * 128,
            write_bytes: 0,
        };
        let t_lo = block_timing(&dev(), &block, &l2, &SmContext {
            resident_blocks: 1, hiding_warps: lo as f64, bandwidth_pressure: 0.0 });
        let t_hi = block_timing(&dev(), &block, &l2, &SmContext {
            resident_blocks: 1, hiding_warps: hi as f64, bandwidth_pressure: 0.0 });
        prop_assert!(t_hi.memory_cycles <= t_lo.memory_cycles + 1e-9);
    }

    /// Bandwidth pressure only ever inflates durations.
    #[test]
    fn contention_is_monotone(rho_a in 0.0f64..4.0, rho_b in 0.0f64..4.0,
                              transactions in 1u64..10_000) {
        let (lo, hi) = (rho_a.min(rho_b), rho_a.max(rho_b));
        let block = TraceBuilder::new(256, 256).build();
        let l2 = BlockL2 {
            hit_transactions: transactions,
            miss_transactions: transactions,
            read_bytes: transactions * 256,
            write_bytes: 0,
        };
        let mk = |rho| SmContext { resident_blocks: 4, hiding_warps: 16.0, bandwidth_pressure: rho };
        let t_lo = block_timing(&dev(), &block, &l2, &mk(lo));
        let t_hi = block_timing(&dev(), &block, &l2, &mk(hi));
        prop_assert!(t_hi.duration >= t_lo.duration - 1e-9);
    }

    /// A bigger cache never hits less on the same access stream.
    #[test]
    fn cache_capacity_is_monotone(ranges in proptest::collection::vec((0u64..1u64<<18, 1u64..8192), 1..20)) {
        let mut layout = MemoryLayout::new();
        let region = layout.alloc(1 << 19);
        let mk_seg = |off: u64, len: u64| br_gpu_sim::trace::MemSegment {
            region,
            offset: off.min((1 << 19) - 1),
            bytes: len.min((1 << 19) - off.min((1 << 19) - 1)).max(1),
            pattern: br_gpu_sim::trace::AccessPattern::Coalesced,
            write: false,
            atomic: false,
        };
        let mut small = L2Cache::new(16 * 1024, 128, 8);
        let mut big = L2Cache::new(512 * 1024, 128, 8);
        let (mut h_small, mut h_big) = (0u64, 0u64);
        for &(off, len) in &ranges {
            let seg = mk_seg(off, len);
            h_small += small.stream_segment(&layout, &seg).0;
            h_big += big.stream_segment(&layout, &seg).0;
        }
        prop_assert!(h_big >= h_small, "big {h_big} < small {h_small}");
    }

    /// Scheduling is work-conserving and bounded by the two classic lower
    /// bounds, for any durations and SM count.
    #[test]
    fn scheduling_bounds(durations in proptest::collection::vec(0.0f64..1e6, 0..300),
                         sms in 1u32..256) {
        let r = schedule(&durations, sms);
        let total: f64 = durations.iter().sum();
        let longest = durations.iter().copied().fold(0.0, f64::max);
        let scale = total.max(1.0);
        prop_assert!((r.sm_busy.iter().sum::<f64>() - total).abs() < 1e-9 * scale);
        prop_assert!(r.makespan >= longest - 1e-9);
        prop_assert!(r.makespan >= total / sms as f64 - 1e-9 * scale);
        // Greedy list scheduling is 2-competitive.
        prop_assert!(r.makespan <= total / sms as f64 + longest + 1e-9 * scale);
    }

    /// The full simulator is deterministic for arbitrary block mixes.
    #[test]
    fn simulator_is_deterministic(seeds in proptest::collection::vec(0u64..1000, 1..40)) {
        let mut layout = MemoryLayout::new();
        let region = layout.alloc(1 << 22);
        let blocks: Vec<_> = seeds
            .iter()
            .map(|&s| {
                TraceBuilder::new(32 * (1 + (s % 8) as u32), 1 + (s % 200) as u32)
                    .compute(s * 17 + 1)
                    .read(region, (s * 4096) % (1 << 21), 1 + s * 13 % 8192)
                    .barriers((s % 3) as u32)
                    .build()
            })
            .collect();
        let launch = KernelLaunch::new("prop", blocks);
        let sim = GpuSimulator::new(dev());
        let p1 = sim.run(&launch, &layout);
        let p2 = sim.run(&launch, &layout);
        prop_assert_eq!(p1, p2);
    }
}
