//! # br-gpu-sim — execution-driven GPU performance model
//!
//! The paper's techniques live or die by four GPU mechanisms:
//!
//! 1. **Thread blocks are dispatched to SMs in launch order** as resources
//!    free up — one overloaded block can pin an SM while the other 29 idle
//!    (motivates B-Splitting).
//! 2. **Warps execute 32 threads in lock-step**, so a block with 3 effective
//!    threads wastes 29 lanes and cannot hide memory latency
//!    (motivates B-Gathering).
//! 3. **Occupancy is bounded by shared memory / threads / block slots**, so
//!    allocating extra shared memory *reduces* co-resident blocks
//!    (the lever B-Limiting pulls).
//! 4. **The L2 cache and DRAM bandwidth are shared across SMs**, so
//!    co-resident memory-hungry blocks contend
//!    (the pressure B-Limiting relieves).
//!
//! This crate models exactly those four mechanisms and nothing speculative:
//!
//! * [`device`] — published configurations of the paper's three GPUs
//!   (Titan Xp, Tesla V100, RTX 2080 Ti) and the CPU used for the MKL-like
//!   baseline.
//! * [`trace`] — the cost-trace vocabulary kernels speak: per-block compute
//!   cycles, memory *segments* (region + byte-range + access pattern, O(1)
//!   space per segment regardless of nnz), barriers, atomics.
//! * [`occupancy`] — resident-blocks-per-SM calculator.
//! * [`l2cache`] — set-associative LRU L2 simulator fed by segments at
//!   cache-line granularity.
//! * [`timing`] — block-duration model: `max(compute, memory/hiding) +
//!   stalls`, with a queueing-style bandwidth-contention inflation.
//! * [`scheduler`] — event-driven block dispatcher producing per-SM busy
//!   times, makespan, and the paper's Load Balancing Index (Equation 3).
//! * [`profiler`] — nvprof-style counters: sync-stall ratio, L2 read/write
//!   throughput, effective-thread histograms (Figures 3, 12, 13, 14).
//! * [`sim`] — [`sim::GpuSimulator`] tying it all together: feed it a
//!   [`trace::KernelLaunch`], get a [`profiler::KernelProfile`].
//!
//! The model is *execution-driven*: kernels really compute their results in
//! Rust and emit traces as a side effect, so simulated time is a pure
//! function of the algorithm's actual memory/compute behaviour.

#![warn(missing_docs)]

/// Version of the timing model itself. Benchmark reports embed this so a
/// regression gate can distinguish a genuine performance change from an
/// intentional recalibration of the simulator: bump it whenever a change to
/// the cost model, scheduler, or cache simulation is *expected* to shift
/// cycle counts, and refresh the checked-in baselines in the same commit.
pub const MODEL_VERSION: u32 = 1;

pub mod device;
pub mod l2cache;
pub mod occupancy;
pub mod profiler;
pub mod scheduler;
pub mod sim;
pub mod timing;
pub mod trace;
pub mod validate;

pub use device::{CpuConfig, DeviceConfig};
pub use profiler::KernelProfile;
pub use sim::GpuSimulator;
pub use trace::{AccessPattern, BlockTrace, KernelLaunch, MemoryLayout, RegionId, TraceBuilder};
