//! Thread-block dispatcher.
//!
//! Real GPUs hand the next block in launch order to the first SM with a
//! free slot. For makespan/balance purposes this is equivalent to greedy
//! list scheduling onto the least-loaded SM (each SM conserves its total
//! work regardless of intra-SM interleaving), which is what we simulate.
//! Per-SM busy time falls straight out — Figure 3(a)'s bars — and the
//! paper's Load Balancing Index (Equation 3) is
//!
//! ```text
//! LBI = (Σᵢ cycles(SMᵢ) / MAX cycles(SM)) / N
//! ```

/// One block's position in the simulated timeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BlockPlacement {
    /// Block index in launch order.
    pub block: usize,
    /// SM the block ran on.
    pub sm: u32,
    /// Start cycle on that SM.
    pub start: f64,
    /// End cycle on that SM.
    pub end: f64,
}

/// Outcome of scheduling one kernel's blocks.
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduleResult {
    /// Busy cycles per SM.
    pub sm_busy: Vec<f64>,
    /// Kernel makespan in cycles (max over SMs).
    pub makespan: f64,
    /// Which SM each block ran on, in launch order.
    pub assignment: Vec<u32>,
    /// Full timeline: per-block (SM, start, end), in launch order.
    pub placements: Vec<BlockPlacement>,
}

impl ScheduleResult {
    /// The paper's Load Balancing Index: mean SM time over max SM time,
    /// in `[0, 1]`; 1 = perfectly balanced.
    pub fn lbi(&self) -> f64 {
        let max = self.makespan;
        if max <= 0.0 {
            return 1.0;
        }
        let n = self.sm_busy.len() as f64;
        self.sm_busy.iter().map(|&c| c / max).sum::<f64>() / n
    }

    /// SM utilization = mean busy over makespan (equals LBI here; kept as a
    /// named alias because the paper reports both terms).
    pub fn sm_utilization(&self) -> f64 {
        self.lbi()
    }

    /// Busy times sorted descending — Figure 3(a)'s presentation.
    pub fn sm_busy_descending(&self) -> Vec<f64> {
        let mut v = self.sm_busy.clone();
        v.sort_by(|a, b| b.partial_cmp(a).expect("busy times are finite"));
        v
    }
}

/// Greedy list scheduling of `durations` (in launch order) onto `num_sms`
/// identical SMs: each block goes to the SM that frees up first.
pub fn schedule(durations: &[f64], num_sms: u32) -> ScheduleResult {
    assert!(num_sms > 0, "need at least one SM");
    let n = num_sms as usize;
    let mut busy = vec![0.0f64; n];
    let mut assignment = Vec::with_capacity(durations.len());
    let mut placements = Vec::with_capacity(durations.len());
    for (i, &d) in durations.iter().enumerate() {
        debug_assert!(d.is_finite() && d >= 0.0, "block duration must be finite");
        // Argmin over SM free times; ties go to the lowest index, matching
        // hardware's deterministic slot scan.
        let (sm, _) = busy
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
            .expect("at least one SM");
        let start = busy[sm];
        busy[sm] += d;
        assignment.push(sm as u32);
        placements.push(BlockPlacement {
            block: i,
            sm: sm as u32,
            start,
            end: busy[sm],
        });
    }
    let makespan = busy.iter().copied().fold(0.0, f64::max);
    ScheduleResult {
        sm_busy: busy,
        makespan,
        assignment,
        placements,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_blocks_balance_perfectly() {
        let r = schedule(&[10.0; 30], 30);
        assert_eq!(r.makespan, 10.0);
        assert!((r.lbi() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn one_dominator_wrecks_lbi() {
        // 1 block of 1000 cycles + 29 of 1 cycle on 30 SMs: the paper's
        // overloaded-block scenario.
        let mut d = vec![1000.0];
        d.extend(std::iter::repeat_n(1.0, 29));
        let r = schedule(&d, 30);
        assert_eq!(r.makespan, 1000.0);
        assert!(r.lbi() < 0.05, "LBI should collapse: {}", r.lbi());
    }

    #[test]
    fn splitting_the_dominator_restores_lbi() {
        // Same total work, dominator split into 32 pieces.
        let mut d: Vec<f64> = std::iter::repeat_n(1000.0 / 32.0, 32).collect();
        d.extend(std::iter::repeat_n(1.0, 29));
        let r = schedule(&d, 30);
        assert!(r.makespan < 70.0, "makespan {}", r.makespan);
        assert!(r.lbi() > 0.45, "LBI should recover: {}", r.lbi());
    }

    #[test]
    fn work_is_conserved() {
        let d = [3.0, 7.0, 2.0, 9.0, 4.0];
        let r = schedule(&d, 2);
        let total: f64 = r.sm_busy.iter().sum();
        assert!((total - 25.0).abs() < 1e-12);
        assert_eq!(r.assignment.len(), 5);
    }

    #[test]
    fn makespan_at_least_longest_block_and_mean_load() {
        let d = [5.0, 1.0, 1.0, 1.0];
        let r = schedule(&d, 4);
        assert!(r.makespan >= 5.0);
        let r2 = schedule(&[2.0; 8], 4);
        assert!((r2.makespan - 4.0).abs() < 1e-12);
    }

    #[test]
    fn descending_view_is_sorted() {
        let r = schedule(&[1.0, 5.0, 3.0], 3);
        let v = r.sm_busy_descending();
        assert!(v.windows(2).all(|w| w[0] >= w[1]));
    }

    #[test]
    fn launch_order_changes_the_schedule_heavy_first_wins() {
        // Greedy list scheduling is order-sensitive: the same block
        // multiset scheduled heavy-first (the LPT heuristic a
        // degree-descending row reorder approximates) beats the same
        // blocks arriving heavy-last. This is the lever the plan-cached
        // reorder stage pulls — it permutes launch order, never work.
        let mut heavy_last: Vec<f64> = vec![1.0; 8];
        heavy_last.extend([7.0, 9.0]);
        let mut heavy_first = heavy_last.clone();
        heavy_first.sort_by(|a, b| b.partial_cmp(a).unwrap());
        let worst = schedule(&heavy_last, 2);
        let best = schedule(&heavy_first, 2);
        let total: f64 = heavy_last.iter().sum();
        assert!((worst.sm_busy.iter().sum::<f64>() - total).abs() < 1e-12);
        assert!((best.sm_busy.iter().sum::<f64>() - total).abs() < 1e-12);
        assert!(
            best.makespan < worst.makespan,
            "heavy-first {} must beat heavy-last {}",
            best.makespan,
            worst.makespan
        );
        assert!(
            best.lbi() > worst.lbi(),
            "{} vs {}",
            best.lbi(),
            worst.lbi()
        );
    }

    #[test]
    fn empty_launch_is_trivially_balanced() {
        let r = schedule(&[], 30);
        assert_eq!(r.makespan, 0.0);
        assert_eq!(r.lbi(), 1.0);
    }

    #[test]
    fn placements_are_consistent_with_busy_times() {
        let d = [3.0, 7.0, 2.0, 9.0];
        let r = schedule(&d, 2);
        assert_eq!(r.placements.len(), 4);
        for p in &r.placements {
            assert!((p.end - p.start - d[p.block]).abs() < 1e-12);
            assert_eq!(r.assignment[p.block], p.sm);
            assert!(p.end <= r.makespan + 1e-12);
        }
        // Per-SM placements must not overlap.
        for sm in 0..2u32 {
            let mut spans: Vec<(f64, f64)> = r
                .placements
                .iter()
                .filter(|p| p.sm == sm)
                .map(|p| (p.start, p.end))
                .collect();
            spans.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
            for w in spans.windows(2) {
                assert!(w[0].1 <= w[1].0 + 1e-12, "overlap on SM {sm}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one SM")]
    fn zero_sms_rejected() {
        let _ = schedule(&[1.0], 0);
    }
}
