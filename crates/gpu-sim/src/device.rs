//! Device configurations — Table I of the paper, plus microarchitectural
//! parameters from the vendors' published specifications.
//!
//! Absolute simulated time is a model quantity; what matters for the
//! reproduction is that the *ratios* between resources (SM count, shared
//! L2/DRAM bandwidth per SM, shared-memory capacity) match real silicon,
//! because those ratios decide where load imbalance, warp underfill and
//! contention bite.

use serde::{Deserialize, Serialize};

/// A GPU configuration for the performance model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceConfig {
    /// Marketing name, e.g. `"NVIDIA TITAN Xp"`.
    pub name: String,
    /// Number of streaming multiprocessors.
    pub num_sms: u32,
    /// Threads per warp (32 on every NVIDIA architecture to date).
    pub warp_size: u32,
    /// Maximum resident threads per SM.
    pub max_threads_per_sm: u32,
    /// Maximum resident thread blocks per SM.
    pub max_blocks_per_sm: u32,
    /// Shared memory per SM in bytes.
    pub shared_mem_per_sm: u32,
    /// 32-bit registers per SM.
    pub registers_per_sm: u32,
    /// CUDA cores per SM (determines warp issue width).
    pub cores_per_sm: u32,
    /// Boost clock in MHz (Table I "MAX GPU Clock").
    pub core_clock_mhz: u32,
    /// L2 cache capacity in bytes.
    pub l2_bytes: u64,
    /// L2 cache line size in bytes.
    pub l2_line_bytes: u32,
    /// L2 associativity (ways).
    pub l2_assoc: u32,
    /// DRAM bandwidth in GB/s.
    pub dram_bandwidth_gbs: f64,
    /// Aggregate L2 bandwidth in GB/s (roughly 2–2.5× DRAM on these parts).
    pub l2_bandwidth_gbs: f64,
    /// DRAM access latency in core cycles.
    pub dram_latency_cycles: u32,
    /// L2 hit latency in core cycles.
    pub l2_latency_cycles: u32,
    /// Cost model knobs (see [`CostParams`]).
    pub cost: CostParams,
}

/// Tunable cost constants of the timing model. Defaults are calibrated once
/// against the paper's headline shapes (see `crates/bench` calibration test)
/// and then left alone.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CostParams {
    /// Cycles per multiply-accumulate including index arithmetic.
    pub cycles_per_mac: f64,
    /// Serialization cost of one L2 atomic RMW, in cycles.
    pub atomic_cycles: f64,
    /// Fixed per-block dispatch/launch overhead, in cycles.
    pub block_overhead_cycles: f64,
    /// Maximum memory-level parallelism one warp sustains (outstanding
    /// requests); hiding saturates at `mlp_per_warp × resident warps`.
    pub mlp_per_warp: f64,
    /// Cap on the total latency-hiding factor per SM.
    pub max_hiding: f64,
    /// Queueing knee: contention inflation activates as demanded bandwidth
    /// approaches this fraction of capacity.
    pub contention_knee: f64,
}

impl Default for CostParams {
    fn default() -> Self {
        CostParams {
            cycles_per_mac: 4.0,
            atomic_cycles: 16.0,
            block_overhead_cycles: 600.0,
            mlp_per_warp: 6.0,
            max_hiding: 64.0,
            contention_knee: 0.55,
        }
    }
}

impl DeviceConfig {
    /// NVIDIA TITAN Xp (Pascal, CUDA capability 6.1) — Table I System 1,
    /// the paper's primary evaluation target. 30 SMs.
    pub fn titan_xp() -> Self {
        DeviceConfig {
            name: "NVIDIA TITAN Xp".to_string(),
            num_sms: 30,
            warp_size: 32,
            max_threads_per_sm: 2048,
            max_blocks_per_sm: 32,
            shared_mem_per_sm: 96 * 1024,
            registers_per_sm: 65_536,
            cores_per_sm: 128,
            core_clock_mhz: 1582,
            l2_bytes: 3 * 1024 * 1024,
            l2_line_bytes: 128,
            l2_assoc: 16,
            dram_bandwidth_gbs: 547.6,
            l2_bandwidth_gbs: 1300.0,
            dram_latency_cycles: 440,
            l2_latency_cycles: 220,
            cost: CostParams::default(),
        }
    }

    /// NVIDIA Tesla V100 (Volta, 7.0) — Table I System 2 (DGX Station).
    /// 80 SMs.
    pub fn tesla_v100() -> Self {
        DeviceConfig {
            name: "NVIDIA Tesla V100".to_string(),
            num_sms: 80,
            warp_size: 32,
            max_threads_per_sm: 2048,
            max_blocks_per_sm: 32,
            shared_mem_per_sm: 96 * 1024,
            registers_per_sm: 65_536,
            cores_per_sm: 64,
            core_clock_mhz: 1380,
            l2_bytes: 6 * 1024 * 1024,
            l2_line_bytes: 128,
            l2_assoc: 16,
            dram_bandwidth_gbs: 900.0,
            l2_bandwidth_gbs: 2150.0,
            dram_latency_cycles: 400,
            l2_latency_cycles: 200,
            cost: CostParams::default(),
        }
    }

    /// NVIDIA GeForce RTX 2080 Ti (Turing, 7.5) — Table I System 3. 68 SMs.
    pub fn rtx_2080_ti() -> Self {
        DeviceConfig {
            name: "NVIDIA RTX 2080 Ti".to_string(),
            num_sms: 68,
            warp_size: 32,
            max_threads_per_sm: 1024,
            max_blocks_per_sm: 16,
            shared_mem_per_sm: 64 * 1024,
            registers_per_sm: 65_536,
            cores_per_sm: 64,
            core_clock_mhz: 1545,
            l2_bytes: 5_632 * 1024,
            l2_line_bytes: 128,
            l2_assoc: 16,
            dram_bandwidth_gbs: 616.0,
            l2_bandwidth_gbs: 1800.0,
            dram_latency_cycles: 420,
            l2_latency_cycles: 210,
            cost: CostParams::default(),
        }
    }

    /// The paper's three targets, in Table I / Figure 15 order.
    pub fn all_paper_targets() -> Vec<DeviceConfig> {
        vec![Self::titan_xp(), Self::tesla_v100(), Self::rtx_2080_ti()]
    }

    /// Warp issue width: warps the SM can issue per cycle.
    pub fn issue_width(&self) -> f64 {
        self.cores_per_sm as f64 / self.warp_size as f64
    }

    /// DRAM bandwidth share of one SM, in bytes per core cycle.
    pub fn dram_bytes_per_cycle_per_sm(&self) -> f64 {
        self.dram_bandwidth_gbs * 1e9 / (self.core_clock_mhz as f64 * 1e6) / self.num_sms as f64
    }

    /// L2 bandwidth share of one SM, in bytes per core cycle.
    pub fn l2_bytes_per_cycle_per_sm(&self) -> f64 {
        self.l2_bandwidth_gbs * 1e9 / (self.core_clock_mhz as f64 * 1e6) / self.num_sms as f64
    }

    /// Converts core cycles to milliseconds.
    pub fn cycles_to_ms(&self, cycles: f64) -> f64 {
        cycles / (self.core_clock_mhz as f64 * 1e3)
    }

    /// A stable 64-bit fingerprint of the full configuration (resources,
    /// bandwidths, cost-model knobs). Benchmark reports record it so a
    /// comparison can tell "the code regressed" apart from "the device
    /// model changed"; two configs fingerprint equal iff every modelled
    /// parameter is equal.
    pub fn fingerprint(&self) -> u64 {
        // FNV-1a over the Debug rendering: every field (including nested
        // `CostParams`) participates, and Rust's float formatting is the
        // shortest exact round-trip, so the text is canonical.
        let mut h = 0xcbf29ce484222325u64;
        for b in format!("{self:?}").bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        h
    }
}

/// CPU configuration for the MKL-like baseline, in the same simulated-time
/// domain as the GPUs (Table I CPU columns).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CpuConfig {
    /// Model name.
    pub name: String,
    /// Physical cores.
    pub cores: u32,
    /// Hardware threads.
    pub threads: u32,
    /// Max clock in MHz.
    pub clock_mhz: u32,
    /// Sustained MACs per core per cycle on sparse gather-heavy code
    /// (far below peak FMA throughput; dominated by indexing — measured
    /// spGEMM rates on server Xeons are a few percent of peak).
    pub macs_per_cycle: f64,
    /// Peak memory bandwidth in GB/s.
    pub mem_bandwidth_gbs: f64,
    /// Fraction of peak bandwidth achieved by the SPA's random scatters.
    pub scatter_efficiency: f64,
}

impl CpuConfig {
    /// Intel Xeon E5-2640 v4 — Table I System 1 (10C/20T, 3.40 GHz max).
    pub fn xeon_e5_2640v4() -> Self {
        CpuConfig {
            name: "Intel Xeon E5-2640 v4".to_string(),
            cores: 10,
            threads: 20,
            clock_mhz: 3400,
            macs_per_cycle: 0.12,
            mem_bandwidth_gbs: 68.3,
            scatter_efficiency: 0.35,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_sm_counts() {
        assert_eq!(DeviceConfig::titan_xp().num_sms, 30);
        assert_eq!(DeviceConfig::tesla_v100().num_sms, 80);
        assert_eq!(DeviceConfig::rtx_2080_ti().num_sms, 68);
    }

    #[test]
    fn table1_clocks() {
        assert_eq!(DeviceConfig::titan_xp().core_clock_mhz, 1582);
        assert_eq!(DeviceConfig::tesla_v100().core_clock_mhz, 1380);
        assert_eq!(DeviceConfig::rtx_2080_ti().core_clock_mhz, 1545);
    }

    #[test]
    fn issue_width_pascal_vs_volta() {
        assert_eq!(DeviceConfig::titan_xp().issue_width(), 4.0);
        assert_eq!(DeviceConfig::tesla_v100().issue_width(), 2.0);
    }

    #[test]
    fn bandwidth_shares_are_positive_and_v100_richest() {
        let xp = DeviceConfig::titan_xp();
        let v100 = DeviceConfig::tesla_v100();
        assert!(xp.dram_bytes_per_cycle_per_sm() > 0.0);
        // V100 has more SMs but also much more bandwidth; per-SM DRAM share
        // at its lower clock is still comparable.
        assert!(v100.dram_bytes_per_cycle_per_sm() > 0.5 * xp.dram_bytes_per_cycle_per_sm());
    }

    #[test]
    fn cycles_to_ms_inverts_clock() {
        let xp = DeviceConfig::titan_xp();
        let ms = xp.cycles_to_ms(1582e3);
        assert!((ms - 1.0).abs() < 1e-9);
    }

    #[test]
    fn paper_targets_are_three() {
        assert_eq!(DeviceConfig::all_paper_targets().len(), 3);
    }

    #[test]
    fn configs_are_serializable() {
        // serde_json lives only in the bench crate; here we just confirm the
        // Serialize/Deserialize impls exist via trait bounds.
        fn assert_serde<T: serde::Serialize + for<'de> serde::Deserialize<'de>>() {}
        assert_serde::<DeviceConfig>();
        assert_serde::<CpuConfig>();
    }
}
