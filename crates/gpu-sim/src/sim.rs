//! The simulator front-end: L2 pass → context derivation → two-pass timing
//! → scheduling → profile.

use std::collections::HashMap;

use crate::device::DeviceConfig;
use crate::l2cache::{BlockL2, L2Cache};
use crate::occupancy::{max_resident_blocks, warp_occupancy};
use crate::profiler::{KernelProfile, L2Stats};
use crate::scheduler::schedule;
use crate::timing::{block_timing, unfloored_duration, SmContext};
use crate::trace::{BlockTrace, KernelLaunch, MemoryLayout};
use br_sparse::par;

/// Fixed kernel launch latency in core cycles (driver + grid setup).
const KERNEL_LAUNCH_CYCLES: f64 = 4000.0;

/// Records one finished kernel profile into the global observability
/// registry. Launch counts and makespan histograms are deterministic
/// (commutative adds keyed by kernel name); the LBI / L2-hit-rate summary
/// gauges are last-write-wins and therefore registered as *timing*
/// instruments — concurrent jobs race on them, so they are excluded from
/// the byte-compared exposition.
fn record_profile(profile: &KernelProfile) {
    let reg = br_obs::global();
    let labels = &[("kernel", profile.name.as_str())][..];
    reg.counter(
        "br_sim_kernel_launches_total",
        "Simulated kernel launches per kernel name.",
        labels,
    )
    .inc();
    reg.histogram(
        "br_sim_makespan_cycles",
        "Simulated kernel makespan, core cycles.",
        labels,
    )
    .observe(profile.makespan_cycles as u64);
    reg.timing_gauge(
        "br_sim_lbi",
        "Load-balancing index of the most recent launch of this kernel.",
        labels,
    )
    .set(profile.lbi());
    reg.timing_gauge(
        "br_sim_l2_hit_rate",
        "L2 hit rate of the most recent launch of this kernel.",
        labels,
    )
    .set(profile.l2.hit_rate());
}

/// Below this block count the per-block passes run sequentially — spawn
/// overhead would dominate, and small launches are the common case inside
/// already-parallel benchmark grids.
const PAR_BLOCK_THRESHOLD: usize = 512;

/// Executes [`KernelLaunch`]es against one device configuration.
///
/// L2 state persists across a [`GpuSimulator::run_sequence`] — data produced
/// by the expansion kernel is still (partially) resident when the merge
/// kernel starts, as on real hardware.
///
/// The per-block timing passes distribute over scoped host threads (see
/// [`GpuSimulator::with_threads`]); profiles are bit-identical at any
/// thread count because every floating-point reduction is folded on the
/// calling thread in block launch order, and the stateful L2 streaming
/// pass always runs as a sequential pre-pass.
#[derive(Debug, Clone)]
pub struct GpuSimulator {
    device: DeviceConfig,
    threads: usize,
}

/// Key grouping blocks of identical resource shape: occupancy and hiding
/// are computed per group (homogeneous-residency approximation).
#[derive(PartialEq, Eq, Hash, Clone, Copy)]
struct ShapeKey {
    threads: u32,
    shared_mem: u32,
    regs: u32,
}

impl ShapeKey {
    fn of(b: &BlockTrace) -> Self {
        ShapeKey {
            threads: b.threads,
            shared_mem: b.shared_mem_bytes,
            regs: b.regs_per_thread,
        }
    }
}

impl GpuSimulator {
    /// Creates a simulator for the given device, with the host worker
    /// count resolved from the ambient `par` configuration (`--threads`
    /// override, `BR_THREADS`, else available cores).
    pub fn new(device: DeviceConfig) -> Self {
        GpuSimulator {
            device,
            threads: par::effective_threads(None),
        }
    }

    /// Overrides the host worker count for the per-block timing passes
    /// (`1` = exact sequential path). Profiles do not depend on it.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// The host worker count used for per-block passes.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The device being simulated.
    pub fn device(&self) -> &DeviceConfig {
        &self.device
    }

    /// Runs one kernel on a cold L2.
    pub fn run(&self, launch: &KernelLaunch, layout: &MemoryLayout) -> KernelProfile {
        let mut l2 = L2Cache::for_device(&self.device);
        self.run_with_cache(launch, layout, &mut l2)
    }

    /// Runs a sequence of kernels back-to-back, L2 state carried across.
    pub fn run_sequence(
        &self,
        launches: &[KernelLaunch],
        layout: &MemoryLayout,
    ) -> Vec<KernelProfile> {
        let mut l2 = L2Cache::for_device(&self.device);
        launches
            .iter()
            .map(|k| self.run_with_cache(k, layout, &mut l2))
            .collect()
    }

    /// Runs one kernel on a cold L2 and also returns the full scheduling
    /// timeline (per-block SM assignment with start/end cycles) — the raw
    /// material for Gantt-style analyses of Figure 3(a).
    pub fn run_detailed(
        &self,
        launch: &KernelLaunch,
        layout: &MemoryLayout,
    ) -> (KernelProfile, crate::scheduler::ScheduleResult) {
        let mut l2 = L2Cache::for_device(&self.device);
        self.run_with_cache_detailed(launch, layout, &mut l2)
    }

    /// Runs one kernel against an existing L2 state.
    pub fn run_with_cache(
        &self,
        launch: &KernelLaunch,
        layout: &MemoryLayout,
        l2: &mut L2Cache,
    ) -> KernelProfile {
        self.run_with_cache_detailed(launch, layout, l2).0
    }

    /// [`GpuSimulator::run_with_cache`], also returning the schedule.
    pub fn run_with_cache_detailed(
        &self,
        launch: &KernelLaunch,
        layout: &MemoryLayout,
        l2: &mut L2Cache,
    ) -> (KernelProfile, crate::scheduler::ScheduleResult) {
        let dev = &self.device;
        #[cfg(debug_assertions)]
        if let Err(e) = crate::validate::validate_launch(launch, layout, dev) {
            panic!("malformed kernel launch {:?}: {e}", launch.name);
        }
        if launch.blocks.is_empty() {
            let profile = KernelProfile {
                name: launch.name.clone(),
                makespan_cycles: KERNEL_LAUNCH_CYCLES,
                time_ms: dev.cycles_to_ms(KERNEL_LAUNCH_CYCLES),
                sm_busy: vec![0.0; dev.num_sms as usize],
                num_blocks: 0,
                busy_cycles: 0.0,
                sync_stall_cycles: 0.0,
                l2: L2Stats::default(),
                effective_thread_histogram: vec![],
                occupancy: 0.0,
                bandwidth_pressure: 0.0,
            };
            record_profile(&profile);
            return (profile, schedule(&[], dev.num_sms));
        }

        // Host worker count for the per-block passes. Everything reduced
        // across blocks is either assembled in block order or folded
        // sequentially on this thread, so the count never changes a
        // profile — it only changes wall-clock.
        let threads = if launch.blocks.len() < PAR_BLOCK_THRESHOLD {
            1
        } else {
            self.threads
        };

        // ---- per-shape contexts (occupancy, hiding) ----
        // The per-block warp fractions are computed in parallel; the float
        // sums are folded here in block launch order (bit-stable).
        let eff_warp_frac: Vec<f64> = par::ordered_map(&launch.blocks, threads, |_, b| {
            b.effective_warp_fraction(dev.warp_size)
        });
        let mut shape_stats: HashMap<ShapeKey, (u64, f64)> = HashMap::new(); // (blocks, eff_warp_frac_sum)
        for (b, &frac) in launch.blocks.iter().zip(&eff_warp_frac) {
            let e = shape_stats.entry(ShapeKey::of(b)).or_insert((0, 0.0));
            e.0 += 1;
            e.1 += frac;
        }

        // ---- concurrency-thrashing model ----
        //
        // The sequential L2 streaming below captures launch-order reuse
        // (split blocks re-hitting their shared dominator row) but is blind
        // to concurrent interference: on real silicon, `num_sms × resident`
        // blocks interleave their accesses, and every block's **private**
        // scatter working set (dense-accumulator slices, per-row chunks)
        // stays resident only for its share of the cache. We compute the
        // kernel's total concurrently-live private footprint and retain
        // scatter hits in proportion to how much of it fits — heavy-row
        // merge blocks inflate the footprint for *everyone*, which is
        // precisely the contention B-Limiting relieves by shrinking their
        // residency (Figure 7: "Large memory contention" → "Small memory
        // contention").
        // Only scattered accesses with *reuse* form a working set that
        // concurrency can evict: atomic RMW (accumulators) and random
        // reads. One-shot scatter writes (row relocation streams) have no
        // reuse to lose and are excluded.
        let is_working_set = |s: &crate::trace::MemSegment| {
            matches!(s.pattern, crate::trace::AccessPattern::Random { .. })
                && (s.atomic || !s.write)
        };
        let private_bytes = |b: &BlockTrace| -> u64 {
            b.segments
                .iter()
                .filter(|s| is_working_set(s))
                .map(|s| s.logical_bytes().min(s.bytes))
                .sum()
        };
        // Per group: Σ private, Σ private² (blocks' own scatter traffic is
        // the duration proxy — a block stays resident roughly in proportion
        // to it). Expected concurrently-live private bytes:
        //
        //   CP = num_sms × Σ_g timeshare_g × resident_g × E_time[private]_g
        //
        // with timeshare_g = Σ private_g / Σ private_all and
        // E_time[private]_g = Σ private²_g / Σ private_g (time-weighted mean
        // — long-running heavy blocks dominate the instantaneous picture).
        //
        // The per-block segment scans parallelize; the group fold and the
        // `live_blocks` sum run on this thread, the latter over groups in
        // first-appearance (launch) order so the float sum never depends on
        // hash-map iteration order.
        let private: Vec<u64> = par::ordered_map(&launch.blocks, threads, |_, b| private_bytes(b));
        let mut group_order: Vec<ShapeKey> = Vec::new();
        let mut group_private: HashMap<ShapeKey, (f64, f64)> = HashMap::new(); // (Σp, Σp²)
        for (b, &p) in launch.blocks.iter().zip(&private) {
            let p = p as f64;
            let key = ShapeKey::of(b);
            let e = group_private.entry(key).or_insert_with(|| {
                group_order.push(key);
                (0.0, 0.0)
            });
            e.0 += p;
            e.1 += p * p;
        }
        let total_private: f64 = group_order.iter().map(|k| group_private[k].0).sum();
        let mut live_blocks = 0.0f64;
        if total_private > 0.0 {
            for key in &group_order {
                let (sum_p, _sum_p2) = group_private[key];
                if sum_p <= 0.0 {
                    continue;
                }
                let sample = launch
                    .blocks
                    .iter()
                    .find(|b| ShapeKey::of(b) == *key)
                    .expect("group exists");
                let resident = max_resident_blocks(dev, sample) as f64;
                let timeshare = sum_p / total_private;
                live_blocks += dev.num_sms as f64 * timeshare * resident;
            }
        }
        // Each concurrently-live block gets an even share of (half) the L2
        // for its private data; a block retains its scatter hits only to the
        // extent its own working set fits in that share. Small accumulators
        // survive; hub-row giants thrash — and limiting the giants' residency
        // grows everyone's share.
        let per_block_share = if live_blocks > 0.0 {
            dev.l2_bytes as f64 * 0.5 / live_blocks
        } else {
            f64::INFINITY
        };
        let retention_of = |private: u64| -> f64 {
            if private == 0 {
                1.0
            } else {
                (per_block_share / private as f64).clamp(0.0, 1.0)
            }
        };

        // ---- L2 pass: stream every block's segments in launch order ----
        // The cache state is carried block to block (launch-order reuse is
        // the point), so this pass is inherently sequential and always runs
        // as an ordered pre-pass on this thread regardless of `threads`.
        let block_l2: Vec<BlockL2> = launch
            .blocks
            .iter()
            .zip(&private)
            .map(|(b, &private_b)| {
                let mut out = BlockL2::default();
                let mut scatter_hits = 0u64;
                for seg in &b.segments {
                    let (h, m) = l2.stream_segment(layout, seg);
                    if is_working_set(seg) {
                        scatter_hits += h;
                    }
                    out.hit_transactions += h;
                    out.miss_transactions += m;
                    if seg.write {
                        out.write_bytes += seg.logical_bytes();
                    } else {
                        out.read_bytes += seg.logical_bytes();
                    }
                }
                let retention = retention_of(private_b);
                let demoted = (scatter_hits as f64 * (1.0 - retention)).round() as u64;
                out.hit_transactions -= demoted;
                out.miss_transactions += demoted;
                out
            })
            .collect();
        let context_for = |b: &BlockTrace, rho: f64| -> SmContext {
            let key = ShapeKey::of(b);
            let (count, eff_warp_sum) = shape_stats[&key];
            let resident_limit = max_resident_blocks(dev, b);
            // Cannot be more resident than exist per SM on average.
            let avail = (count as f64 / dev.num_sms as f64).ceil().max(1.0);
            let resident = (resident_limit as f64).min(avail);
            let avg_eff_warps = eff_warp_sum / count as f64;
            SmContext {
                resident_blocks: resident as u32,
                hiding_warps: resident * avg_eff_warps,
                bandwidth_pressure: rho,
            }
        };

        // ---- pass 1: unthrottled durations to estimate bandwidth demand ----
        // Each block's timing depends only on its own trace and L2 summary,
        // so this fans out; the reductions below fold sequentially in launch
        // order on this thread, keeping the result bit-identical for any
        // thread count.
        let durations0: Vec<f64> = par::ordered_map(&launch.blocks, threads, |i, b| {
            unfloored_duration(&block_timing(dev, b, &block_l2[i], &context_for(b, 0.0)))
        });
        let total_bytes: u64 = block_l2.iter().map(|l| l.read_bytes + l.write_bytes).sum();
        let total_work: f64 = durations0.iter().sum();
        let longest: f64 = durations0.iter().copied().fold(0.0, f64::max);
        let parallel_sms = (launch.blocks.len() as f64)
            .min(dev.num_sms as f64)
            .max(1.0);
        let est_time = (total_work / parallel_sms).max(longest).max(1.0);
        let device_bytes_per_cycle = dev.l2_bandwidth_gbs * 1e9 / (dev.core_clock_mhz as f64 * 1e6);
        let rho = (total_bytes as f64 / est_time) / device_bytes_per_cycle;

        // ---- pass 2: final timings under contention, then schedule ----
        let timings: Vec<(f64, f64, f64)> = par::ordered_map(&launch.blocks, threads, |i, b| {
            let t = block_timing(dev, b, &block_l2[i], &context_for(b, rho));
            (t.duration, t.sync_stall_cycles, warp_occupancy(dev, b))
        });
        let mut sync_stall = 0.0;
        let mut occupancy_sum = 0.0;
        let mut durations = Vec::with_capacity(timings.len());
        for &(duration, stall, occ) in &timings {
            sync_stall += stall;
            occupancy_sum += occ;
            durations.push(duration);
        }
        let sched = schedule(&durations, dev.num_sms);

        let l2_stats = L2Stats {
            accesses: block_l2.iter().map(|l| l.transactions()).sum(),
            hits: block_l2.iter().map(|l| l.hit_transactions).sum(),
            read_bytes: block_l2.iter().map(|l| l.read_bytes).sum(),
            write_bytes: block_l2.iter().map(|l| l.write_bytes).sum(),
        };
        let makespan = sched.makespan + KERNEL_LAUNCH_CYCLES;
        let profile = KernelProfile {
            name: launch.name.clone(),
            makespan_cycles: makespan,
            time_ms: dev.cycles_to_ms(makespan),
            sm_busy: sched.sm_busy.clone(),
            num_blocks: launch.blocks.len(),
            busy_cycles: durations.iter().sum(),
            sync_stall_cycles: sync_stall,
            l2: l2_stats,
            effective_thread_histogram: launch.effective_thread_histogram(),
            occupancy: occupancy_sum / launch.blocks.len() as f64,
            bandwidth_pressure: rho,
        };
        record_profile(&profile);
        (profile, sched)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{RegionId, TraceBuilder};

    fn sim() -> GpuSimulator {
        GpuSimulator::new(DeviceConfig::titan_xp())
    }

    fn layout_with(bytes: u64) -> (MemoryLayout, RegionId) {
        let mut l = MemoryLayout::new();
        let r = l.alloc(bytes);
        (l, r)
    }

    #[test]
    fn empty_kernel_costs_launch_latency_only() {
        let p = sim().run(&KernelLaunch::new("empty", vec![]), &MemoryLayout::new());
        assert_eq!(p.num_blocks, 0);
        assert!((p.makespan_cycles - KERNEL_LAUNCH_CYCLES).abs() < 1e-9);
    }

    #[test]
    fn balanced_launch_has_high_lbi() {
        let (layout, r) = layout_with(1 << 24);
        let blocks: Vec<_> = (0..300)
            .map(|i| {
                TraceBuilder::new(256, 256)
                    .compute(5_000)
                    .read(r, (i * 4096) as u64, 4096)
                    .build()
            })
            .collect();
        let p = sim().run(&KernelLaunch::new("balanced", blocks), &layout);
        assert!(p.lbi() > 0.9, "LBI {}", p.lbi());
        assert_eq!(p.num_blocks, 300);
    }

    #[test]
    fn dominator_launch_has_low_lbi_and_splitting_fixes_it() {
        let (layout, r) = layout_with(1 << 24);
        // One 1M-MAC dominator + 100 tiny blocks.
        let mut blocks = vec![TraceBuilder::new(256, 256).compute(1_000_000).build()];
        blocks.extend((0..100).map(|_| TraceBuilder::new(256, 256).compute(100).build()));
        let p_skew = sim().run(&KernelLaunch::new("skewed", blocks), &layout);

        // Split the dominator into 64 equal parts.
        let mut split: Vec<_> = (0..64)
            .map(|_| TraceBuilder::new(256, 256).compute(1_000_000 / 64).build())
            .collect();
        split.extend((0..100).map(|_| TraceBuilder::new(256, 256).compute(100).build()));
        let p_split = sim().run(&KernelLaunch::new("split", split), &layout);

        assert!(p_skew.lbi() < 0.3, "skewed LBI {}", p_skew.lbi());
        assert!(p_split.lbi() > 0.6, "split LBI {}", p_split.lbi());
        assert!(p_split.makespan_cycles < p_skew.makespan_cycles / 2.0);
        let _ = r;
    }

    #[test]
    fn gathering_improves_underloaded_blocks() {
        let (layout, r) = layout_with(1 << 26);
        // The Section III-A.2 scenario: thousands of underloaded blocks
        // (2 effective of 256 launched threads), each touching a little
        // memory. No latency hiding, huge per-block overhead.
        let under: Vec<_> = (0..2048)
            .map(|i| {
                TraceBuilder::new(256, 2)
                    .compute(64)
                    .read(r, (i * 2048) as u64, 2048)
                    .barriers(1)
                    .build()
            })
            .collect();
        let p_before = sim().run(&KernelLaunch::new("under", under), &layout);

        // After B-Gathering with factor 16: 128 blocks of 32 threads, all
        // effective; same total traffic and per-thread compute.
        let gathered: Vec<_> = (0..128)
            .map(|i| {
                TraceBuilder::new(32, 32)
                    .compute(64)
                    .read(r, (i * 32768) as u64, 32768)
                    .barriers(1)
                    .build()
            })
            .collect();
        let p_after = sim().run(&KernelLaunch::new("gathered", gathered), &layout);

        assert!(
            p_after.makespan_cycles < p_before.makespan_cycles / 2.0,
            "gathering should clearly win: {} vs {}",
            p_after.makespan_cycles,
            p_before.makespan_cycles
        );
        assert!(p_after.sync_stall_ratio() < p_before.sync_stall_ratio());
    }

    #[test]
    fn l2_counters_accumulate() {
        let (layout, r) = layout_with(1 << 20);
        let blocks = vec![TraceBuilder::new(32, 32)
            .read(r, 0, 128 * 100)
            .write(r, 0, 128 * 50)
            .build()];
        let p = sim().run(&KernelLaunch::new("io", blocks), &layout);
        assert_eq!(p.l2.read_bytes, 12_800);
        assert_eq!(p.l2.write_bytes, 6_400);
        assert!(p.l2.accesses >= 150);
    }

    #[test]
    fn sequence_shares_l2_state() {
        let (layout, r) = layout_with(1 << 18); // 256 KiB, fits in 3 MiB L2
        let writer = KernelLaunch::new(
            "producer",
            vec![TraceBuilder::new(256, 256).write(r, 0, 1 << 18).build()],
        );
        let reader = KernelLaunch::new(
            "consumer",
            vec![TraceBuilder::new(256, 256).read(r, 0, 1 << 18).build()],
        );
        let profiles = sim().run_sequence(&[writer, reader.clone()], &layout);
        // Consumer should hit on lines the producer left resident…
        assert!(profiles[1].l2.hit_rate() > 0.9);
        // …whereas a cold run of the same consumer misses everywhere.
        let cold = sim().run(&reader, &layout);
        assert!(cold.l2.hit_rate() < 0.1);
    }

    #[test]
    fn run_detailed_timeline_matches_profile() {
        let (layout, r) = layout_with(1 << 22);
        let blocks: Vec<_> = (0..50)
            .map(|i| {
                TraceBuilder::new(256, 256)
                    .compute(1000 + i * 37)
                    .read(r, i * 8192, 4096)
                    .build()
            })
            .collect();
        let launch = KernelLaunch::new("timeline", blocks);
        let (profile, sched) = sim().run_detailed(&launch, &layout);
        assert_eq!(sched.placements.len(), 50);
        assert_eq!(profile.sm_busy, sched.sm_busy);
        // Makespan = schedule makespan + launch latency.
        assert!(profile.makespan_cycles > sched.makespan);
        // Every placement ends within the schedule makespan.
        assert!(sched
            .placements
            .iter()
            .all(|p| p.end <= sched.makespan + 1e-9));
    }

    #[test]
    fn bandwidth_pressure_rises_with_streaming_volume() {
        let (layout, r) = layout_with(1 << 30);
        let light = KernelLaunch::new(
            "light",
            (0..64)
                .map(|_| TraceBuilder::new(256, 256).compute(100_000).build())
                .collect(),
        );
        let heavy = KernelLaunch::new(
            "heavy",
            (0..64)
                .map(|i| {
                    TraceBuilder::new(256, 256)
                        .read(r, (i as u64) << 24, 1 << 24)
                        .build()
                })
                .collect(),
        );
        let p_light = sim().run(&light, &layout);
        let p_heavy = sim().run(&heavy, &layout);
        assert!(p_light.bandwidth_pressure < 0.1);
        assert!(p_heavy.bandwidth_pressure > 0.5);
    }

    /// A mixed-shape launch large enough to cross `PAR_BLOCK_THRESHOLD`,
    /// with scattered/atomic traffic so every model stage (shape stats,
    /// thrashing footprint, both timing passes) is exercised.
    fn mixed_launch(r: RegionId, n: usize) -> KernelLaunch {
        let blocks: Vec<_> = (0..n)
            .map(|i| {
                let base = (i as u64 % 64) << 16;
                match i % 3 {
                    0 => TraceBuilder::new(256, 256)
                        .compute(1_000 + (i as u64 * 37) % 5_000)
                        .read(r, base, 4096)
                        .atomic_scatter(r, base, 1 << 14, 200, 8, 1.5)
                        .barriers(1)
                        .build(),
                    1 => TraceBuilder::new(128, 96)
                        .compute(700 + (i as u64 * 13) % 900)
                        .gather(r, base, 1 << 16, 300, 4)
                        .build(),
                    _ => TraceBuilder::new(64, 64)
                        .scatter_write(r, base, 1 << 15, 100, 8)
                        .write(r, base, 2048)
                        .build(),
                }
            })
            .collect();
        KernelLaunch::new("mixed", blocks)
    }

    #[test]
    fn launches_are_tallied_in_the_global_registry() {
        let (layout, r) = layout_with(1 << 20);
        let launch = KernelLaunch::new(
            "obs-probe",
            vec![TraceBuilder::new(64, 64)
                .compute(500)
                .read(r, 0, 2048)
                .build()],
        );
        let counter = br_obs::global().counter(
            "br_sim_kernel_launches_total",
            "Simulated kernel launches per kernel name.",
            &[("kernel", "obs-probe")],
        );
        let before = counter.get();
        let _ = sim().run(&launch, &layout);
        let _ = sim().run(&launch, &layout);
        // Delta-based: other tests in this binary share the registry.
        assert!(counter.get() >= before + 2);
        let text = br_obs::global().render_prometheus(false);
        assert!(
            text.contains("br_sim_makespan_cycles_count{kernel=\"obs-probe\"}"),
            "makespan histogram missing:\n{text}"
        );
        // LBI / L2 gauges are timing instruments: absent from the
        // deterministic exposition, present in the timing one.
        assert!(!text.contains("br_sim_lbi"));
        assert!(br_obs::global()
            .render_prometheus(true)
            .contains("br_sim_lbi{kernel=\"obs-probe\"}"));
    }

    #[test]
    fn profiles_are_bit_identical_at_any_thread_count() {
        let (layout, r) = layout_with(1 << 24);
        let launch = mixed_launch(r, 700); // > PAR_BLOCK_THRESHOLD
        let dev = DeviceConfig::titan_xp();
        let baseline = GpuSimulator::new(dev.clone())
            .with_threads(1)
            .run_detailed(&launch, &layout);
        for threads in [2, 3, 8] {
            let parallel = GpuSimulator::new(dev.clone())
                .with_threads(threads)
                .run_detailed(&launch, &layout);
            // Every float must match exactly, not approximately: the
            // reductions are folded in launch order on the calling thread.
            assert_eq!(
                format!("{:?}", baseline),
                format!("{:?}", parallel),
                "threads={threads} diverged from sequential"
            );
        }
    }
}
