//! Trace validation: structural sanity checks on kernel launches.
//!
//! Launch traces are assembled by non-trivial code (splitting plans, gather
//! packing, offset prefix sums); a wrong offset silently corrupts the L2
//! simulation rather than crashing. The validator catches the common
//! construction bugs — segments escaping their region, effective threads
//! exceeding launched threads, resource requests beyond device limits —
//! and the simulator runs it under `debug_assertions`.

use std::fmt;

use crate::device::DeviceConfig;
use crate::trace::{KernelLaunch, MemoryLayout};

/// A structural defect found in a kernel launch trace.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceError {
    /// Index of the offending block within the launch.
    pub block: usize,
    /// What is wrong.
    pub message: String,
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "block {}: {}", self.block, self.message)
    }
}

impl std::error::Error for TraceError {}

/// Validates every block of a launch against the layout and device limits.
/// Returns the first defect found.
pub fn validate_launch(
    launch: &KernelLaunch,
    layout: &MemoryLayout,
    device: &DeviceConfig,
) -> Result<(), TraceError> {
    let err = |block: usize, message: String| Err(TraceError { block, message });
    for (i, b) in launch.blocks.iter().enumerate() {
        if b.threads == 0 {
            return err(i, "zero launched threads".into());
        }
        if b.threads > 1024 {
            return err(
                i,
                format!("{} threads exceeds the CUDA block limit", b.threads),
            );
        }
        if b.effective_threads > b.threads {
            return err(
                i,
                format!(
                    "effective threads {} > launched {}",
                    b.effective_threads, b.threads
                ),
            );
        }
        if b.shared_mem_bytes > device.shared_mem_per_sm {
            return err(
                i,
                format!(
                    "shared memory {} B exceeds the SM's {} B",
                    b.shared_mem_bytes, device.shared_mem_per_sm
                ),
            );
        }
        if b.lane_imbalance < 1.0 || !b.lane_imbalance.is_finite() {
            return err(
                i,
                format!("lane imbalance {} out of range", b.lane_imbalance),
            );
        }
        for seg in &b.segments {
            let size = layout.size(seg.region);
            let end = seg.offset.saturating_add(seg.bytes);
            if end > size {
                return err(
                    i,
                    format!(
                        "segment [{}, {}) escapes region {:?} of {} B",
                        seg.offset, end, seg.region, size
                    ),
                );
            }
            if seg.atomic && !seg.write {
                return err(i, "atomic segment must be a write".into());
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{MemSegment, TraceBuilder};

    fn dev() -> DeviceConfig {
        DeviceConfig::titan_xp()
    }

    fn layout() -> (MemoryLayout, crate::trace::RegionId) {
        let mut l = MemoryLayout::new();
        let r = l.alloc(4096);
        (l, r)
    }

    #[test]
    fn valid_launch_passes() {
        let (layout, r) = layout();
        let k = KernelLaunch::new(
            "ok",
            vec![TraceBuilder::new(256, 128).read(r, 0, 4096).build()],
        );
        assert!(validate_launch(&k, &layout, &dev()).is_ok());
    }

    #[test]
    fn segment_escaping_region_is_caught() {
        let (layout, r) = layout();
        let k = KernelLaunch::new(
            "bad",
            vec![TraceBuilder::new(256, 128).read(r, 4000, 1000).build()],
        );
        let e = validate_launch(&k, &layout, &dev()).unwrap_err();
        assert!(e.message.contains("escapes"));
        assert_eq!(e.block, 0);
    }

    #[test]
    fn oversized_block_and_smem_are_caught() {
        let (layout, _) = layout();
        let k = KernelLaunch::new("bad", vec![TraceBuilder::new(2048, 1).build()]);
        assert!(validate_launch(&k, &layout, &dev())
            .unwrap_err()
            .message
            .contains("block limit"));
        let k = KernelLaunch::new(
            "bad",
            vec![TraceBuilder::new(256, 1).shared_mem(200 * 1024).build()],
        );
        assert!(validate_launch(&k, &layout, &dev())
            .unwrap_err()
            .message
            .contains("shared memory"));
    }

    #[test]
    fn atomic_read_is_caught() {
        let (layout, r) = layout();
        let mut b = TraceBuilder::new(32, 32).build();
        b.segments.push(MemSegment {
            region: r,
            offset: 0,
            bytes: 64,
            pattern: crate::trace::AccessPattern::Coalesced,
            write: false,
            atomic: true,
        });
        let k = KernelLaunch::new("bad", vec![b]);
        assert!(validate_launch(&k, &layout, &dev())
            .unwrap_err()
            .message
            .contains("atomic"));
    }

    #[test]
    fn error_reports_offending_block_index() {
        let (layout, r) = layout();
        let good = TraceBuilder::new(32, 32).read(r, 0, 64).build();
        let bad = TraceBuilder::new(32, 64).build(); // eff > threads is clamped by builder…
                                                     // …so construct the defect directly.
        let mut bad = bad;
        bad.effective_threads = 64;
        let k = KernelLaunch::new("mix", vec![good, bad]);
        let e = validate_launch(&k, &layout, &dev()).unwrap_err();
        assert_eq!(e.block, 1);
    }
}
