//! The cost-trace vocabulary spoken by simulated kernels.
//!
//! A kernel's performance-relevant behaviour is summarised per thread block
//! as a [`BlockTrace`]: how much uniform per-thread compute it does, how
//! imbalanced its warp lanes are, which byte ranges of which logical memory
//! regions it touches and in what pattern, how many barriers and atomics it
//! issues, and what SM resources it occupies. Traces are O(#segments), not
//! O(nnz) — a block that streams ten million products records one segment.

use serde::{Deserialize, Serialize};

/// Identifier of a logical global-memory region (one array: `A.val`,
/// `B.idx`, `Ĉ`, …). Regions get non-overlapping base addresses from
/// [`MemoryLayout`]; the L2 simulator works on `base + offset`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct RegionId(pub u32);

/// How a segment's bytes are touched, which decides how many cache-line
/// transactions it generates.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum AccessPattern {
    /// Consecutive threads touch consecutive addresses: `bytes / line`
    /// transactions (perfectly coalesced).
    Coalesced,
    /// Fixed stride in bytes between consecutive accesses: one transaction
    /// per `max(1, line/stride)` accesses.
    Strided(u32),
    /// Data-dependent scatter/gather of `count` accesses of `width` bytes
    /// anywhere inside the segment's range: one transaction each.
    Random {
        /// Number of accesses.
        count: u64,
        /// Bytes per access.
        width: u32,
    },
}

/// One contiguous byte-range of one region, touched by one block.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MemSegment {
    /// Which logical array.
    pub region: RegionId,
    /// Byte offset of the range inside the region.
    pub offset: u64,
    /// Length of the range in bytes.
    pub bytes: u64,
    /// Access pattern within the range.
    pub pattern: AccessPattern,
    /// Write (true) or read (false).
    pub write: bool,
    /// Atomic read-modify-write (implies `write`).
    pub atomic: bool,
}

impl MemSegment {
    /// Number of cache-line transactions this segment generates.
    pub fn transactions(&self, line_bytes: u32) -> u64 {
        let line = line_bytes as u64;
        match self.pattern {
            AccessPattern::Coalesced => self.bytes.div_ceil(line).max(1),
            AccessPattern::Strided(stride) => {
                let stride = stride.max(1) as u64;
                let accesses = self.bytes.div_ceil(stride);
                let per_line = (line / stride).max(1);
                accesses.div_ceil(per_line).max(1)
            }
            AccessPattern::Random { count, width } => {
                // Each access is internally contiguous: wide accesses span
                // several lines (e.g. a row-chunk relocation write).
                count.max(1) * (width as u64).div_ceil(line).max(1)
            }
        }
    }
}

/// Per-block cost summary produced while the kernel executes functionally.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BlockTrace {
    /// Launched threads (the CUDA block size).
    pub threads: u32,
    /// Threads that perform useful work (`nnz(bᵢ₌)` for an outer-product
    /// block); drives sync-stall and latency-hiding behaviour.
    pub effective_threads: u32,
    /// Uniform per-thread compute, in MAC-equivalents.
    pub compute_per_thread: u64,
    /// Intra-warp lane imbalance: max-lane work over mean-lane work
    /// (1.0 = perfectly uniform, as in the outer product; the row product's
    /// divergence shows up here).
    pub lane_imbalance: f64,
    /// Memory segments touched.
    pub segments: Vec<MemSegment>,
    /// Block-wide `__syncthreads()` count.
    pub barriers: u32,
    /// Atomic RMW operations issued (also reflected in `segments` as
    /// `atomic` writes; this count drives serialization cost).
    pub atomics: u64,
    /// Average number of atomics contending for the same address
    /// (≥ 1; duplicates per output element during merge).
    pub atomic_conflict: f64,
    /// Static shared-memory allocation of the block, in bytes.
    pub shared_mem_bytes: u32,
    /// Registers per thread.
    pub regs_per_thread: u32,
}

impl BlockTrace {
    /// Warps launched by this block.
    pub fn warps(&self, warp_size: u32) -> u32 {
        self.threads.div_ceil(warp_size).max(1)
    }

    /// Warps containing at least one effective thread.
    pub fn effective_warps(&self, warp_size: u32) -> u32 {
        self.effective_threads.div_ceil(warp_size).max(1)
    }

    /// Effective warps as a fraction: `effective_threads / warp_size`.
    ///
    /// This is the latency-hiding currency — a warp with 2 of 32 lanes
    /// active sustains 1/16 of the outstanding requests of a full warp,
    /// which is why underloaded blocks cannot hide memory latency
    /// (Section III-A.2) and why B-Gathering works.
    pub fn effective_warp_fraction(&self, warp_size: u32) -> f64 {
        self.effective_threads as f64 / warp_size as f64
    }

    /// Fraction of launched threads that are effective.
    pub fn effective_ratio(&self) -> f64 {
        if self.threads == 0 {
            0.0
        } else {
            self.effective_threads as f64 / self.threads as f64
        }
    }

    /// Total bytes read by the block.
    pub fn bytes_read(&self) -> u64 {
        self.segments
            .iter()
            .filter(|s| !s.write)
            .map(|s| s.logical_bytes())
            .sum()
    }

    /// Total bytes written by the block.
    pub fn bytes_written(&self) -> u64 {
        self.segments
            .iter()
            .filter(|s| s.write)
            .map(|s| s.logical_bytes())
            .sum()
    }
}

impl MemSegment {
    /// Bytes actually moved (for Random patterns: `count × width`, which can
    /// differ from the range length).
    pub fn logical_bytes(&self) -> u64 {
        match self.pattern {
            AccessPattern::Random { count, width } => count * width as u64,
            _ => self.bytes,
        }
    }
}

/// Fluent builder for [`BlockTrace`]; kernels use it while executing.
#[derive(Debug, Clone)]
pub struct TraceBuilder {
    trace: BlockTrace,
}

impl TraceBuilder {
    /// Starts a trace for a block of `threads` launched threads, of which
    /// `effective` do useful work.
    pub fn new(threads: u32, effective: u32) -> Self {
        TraceBuilder {
            trace: BlockTrace {
                threads,
                effective_threads: effective.min(threads),
                compute_per_thread: 0,
                lane_imbalance: 1.0,
                segments: Vec::new(),
                barriers: 0,
                atomics: 0,
                atomic_conflict: 1.0,
                shared_mem_bytes: 0,
                regs_per_thread: 32,
            },
        }
    }

    /// Adds `n` MAC-equivalents of uniform per-thread compute.
    pub fn compute(mut self, macs_per_thread: u64) -> Self {
        self.trace.compute_per_thread += macs_per_thread;
        self
    }

    /// Sets the intra-warp lane-imbalance multiplier (≥ 1).
    pub fn lane_imbalance(mut self, factor: f64) -> Self {
        self.trace.lane_imbalance = factor.max(1.0);
        self
    }

    /// Records a coalesced read of `bytes` at `offset` in `region`.
    pub fn read(mut self, region: RegionId, offset: u64, bytes: u64) -> Self {
        self.trace.segments.push(MemSegment {
            region,
            offset,
            bytes,
            pattern: AccessPattern::Coalesced,
            write: false,
            atomic: false,
        });
        self
    }

    /// Records a coalesced write of `bytes` at `offset` in `region`.
    pub fn write(mut self, region: RegionId, offset: u64, bytes: u64) -> Self {
        self.trace.segments.push(MemSegment {
            region,
            offset,
            bytes,
            pattern: AccessPattern::Coalesced,
            write: true,
            atomic: false,
        });
        self
    }

    /// Records a data-dependent gather of `count × width` bytes anywhere in
    /// `[offset, offset + range)` of `region`.
    pub fn gather(
        mut self,
        region: RegionId,
        offset: u64,
        range: u64,
        count: u64,
        width: u32,
    ) -> Self {
        self.trace.segments.push(MemSegment {
            region,
            offset,
            bytes: range,
            pattern: AccessPattern::Random { count, width },
            write: false,
            atomic: false,
        });
        self
    }

    /// Records a non-atomic scattered write of `count` chunks of `width`
    /// bytes anywhere in `[offset, offset + range)` of `region` — e.g. the
    /// Block Reorganizer's row-wise relocation of outer-product results,
    /// whose destinations are precomputed (no atomics needed) but not
    /// contiguous.
    pub fn scatter_write(
        mut self,
        region: RegionId,
        offset: u64,
        range: u64,
        count: u64,
        width: u32,
    ) -> Self {
        self.trace.segments.push(MemSegment {
            region,
            offset,
            bytes: range,
            pattern: AccessPattern::Random { count, width },
            write: true,
            atomic: false,
        });
        self
    }

    /// Records `count` atomic RMWs of `width` bytes scattered over
    /// `[offset, offset + range)` of `region`, with the given mean number of
    /// conflicting atomics per address.
    pub fn atomic_scatter(
        mut self,
        region: RegionId,
        offset: u64,
        range: u64,
        count: u64,
        width: u32,
        conflict: f64,
    ) -> Self {
        self.trace.segments.push(MemSegment {
            region,
            offset,
            bytes: range,
            pattern: AccessPattern::Random { count, width },
            write: true,
            atomic: true,
        });
        self.trace.atomics += count;
        // Running weighted mean over all atomic segments of the block.
        let prev = self.trace.atomic_conflict;
        let total = self.trace.atomics.max(1) as f64;
        let w_new = count as f64 / total;
        self.trace.atomic_conflict = prev * (1.0 - w_new) + conflict.max(1.0) * w_new;
        self
    }

    /// Records `n` block-wide barriers.
    pub fn barriers(mut self, n: u32) -> Self {
        self.trace.barriers += n;
        self
    }

    /// Sets the block's static shared-memory allocation.
    pub fn shared_mem(mut self, bytes: u32) -> Self {
        self.trace.shared_mem_bytes = bytes;
        self
    }

    /// Sets registers per thread (default 32).
    pub fn regs(mut self, regs_per_thread: u32) -> Self {
        self.trace.regs_per_thread = regs_per_thread;
        self
    }

    /// Finishes the trace.
    pub fn build(self) -> BlockTrace {
        self.trace
    }
}

/// One kernel launch: a name (for profiles) and its blocks in launch order.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelLaunch {
    /// Kernel name, surfaced in profiles.
    pub name: String,
    /// Thread blocks in launch (= dispatch) order.
    pub blocks: Vec<BlockTrace>,
}

impl KernelLaunch {
    /// Creates a launch.
    pub fn new(name: impl Into<String>, blocks: Vec<BlockTrace>) -> Self {
        KernelLaunch {
            name: name.into(),
            blocks,
        }
    }

    /// Histogram of blocks by effective-thread count in log2 buckets
    /// (bucket `k` ⇔ `[2ᵏ, 2ᵏ⁺¹)`, bucket 0 holds 0 and 1) — Figure 3(b).
    pub fn effective_thread_histogram(&self) -> Vec<usize> {
        let mut hist = Vec::new();
        for b in &self.blocks {
            let e = b.effective_threads as usize;
            let bucket = if e <= 1 {
                0
            } else {
                (usize::BITS - e.leading_zeros()) as usize - 1
            };
            if hist.len() <= bucket {
                hist.resize(bucket + 1, 0);
            }
            hist[bucket] += 1;
        }
        hist
    }
}

/// Assigns non-overlapping base addresses to logical regions so the L2
/// simulator sees a consistent flat address space.
#[derive(Debug, Clone, Default)]
pub struct MemoryLayout {
    bases: Vec<(u64, u64)>, // (base, size)
    next: u64,
}

impl MemoryLayout {
    /// An empty layout starting at address 0.
    pub fn new() -> Self {
        MemoryLayout {
            bases: Vec::new(),
            next: 0,
        }
    }

    /// Allocates a region of `bytes`, aligned to 256 B like `cudaMalloc`.
    pub fn alloc(&mut self, bytes: u64) -> RegionId {
        let id = RegionId(self.bases.len() as u32);
        let base = self.next;
        self.bases.push((base, bytes));
        self.next = (base + bytes + 255) & !255u64;
        id
    }

    /// Base address of a region.
    pub fn base(&self, region: RegionId) -> u64 {
        self.bases[region.0 as usize].0
    }

    /// Declared size of a region.
    pub fn size(&self, region: RegionId) -> u64 {
        self.bases[region.0 as usize].1
    }

    /// Total allocated footprint in bytes.
    pub fn footprint(&self) -> u64 {
        self.next
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coalesced_transactions_round_up() {
        let seg = MemSegment {
            region: RegionId(0),
            offset: 0,
            bytes: 129,
            pattern: AccessPattern::Coalesced,
            write: false,
            atomic: false,
        };
        assert_eq!(seg.transactions(128), 2);
    }

    #[test]
    fn strided_transactions_account_for_line_sharing() {
        // stride 64 B inside 128 B lines: 2 accesses share a line.
        let seg = MemSegment {
            region: RegionId(0),
            offset: 0,
            bytes: 1024,
            pattern: AccessPattern::Strided(64),
            write: false,
            atomic: false,
        };
        assert_eq!(seg.transactions(128), 8);
        // stride 256 B: every access its own line.
        let seg = MemSegment {
            pattern: AccessPattern::Strided(256),
            ..seg
        };
        assert_eq!(seg.transactions(128), 4);
    }

    #[test]
    fn random_transactions_equal_count() {
        let seg = MemSegment {
            region: RegionId(0),
            offset: 0,
            bytes: 1 << 20,
            pattern: AccessPattern::Random {
                count: 1000,
                width: 8,
            },
            write: true,
            atomic: true,
        };
        assert_eq!(seg.transactions(128), 1000);
        assert_eq!(seg.logical_bytes(), 8000);
    }

    #[test]
    fn builder_accumulates() {
        let t = TraceBuilder::new(256, 40)
            .compute(100)
            .compute(50)
            .read(RegionId(1), 0, 4096)
            .write(RegionId(2), 128, 1024)
            .barriers(2)
            .shared_mem(8192)
            .build();
        assert_eq!(t.threads, 256);
        assert_eq!(t.effective_threads, 40);
        assert_eq!(t.compute_per_thread, 150);
        assert_eq!(t.segments.len(), 2);
        assert_eq!(t.barriers, 2);
        assert_eq!(t.bytes_read(), 4096);
        assert_eq!(t.bytes_written(), 1024);
        assert_eq!(t.warps(32), 8);
        assert_eq!(t.effective_warps(32), 2);
        assert!((t.effective_ratio() - 40.0 / 256.0).abs() < 1e-12);
    }

    #[test]
    fn effective_threads_clamped_to_launched() {
        let t = TraceBuilder::new(32, 100).build();
        assert_eq!(t.effective_threads, 32);
    }

    #[test]
    fn atomic_conflict_weighted_mean() {
        let t = TraceBuilder::new(32, 32)
            .atomic_scatter(RegionId(0), 0, 4096, 100, 8, 4.0)
            .atomic_scatter(RegionId(0), 0, 4096, 300, 8, 1.0)
            .build();
        assert_eq!(t.atomics, 400);
        // mean conflict = (100*4 + 300*1)/400 = 1.75
        assert!((t.atomic_conflict - 1.75).abs() < 1e-9);
    }

    #[test]
    fn layout_is_non_overlapping_and_aligned() {
        let mut layout = MemoryLayout::new();
        let a = layout.alloc(100);
        let b = layout.alloc(1000);
        assert_eq!(layout.base(a), 0);
        assert_eq!(layout.base(b) % 256, 0);
        assert!(layout.base(b) >= 100);
        assert_eq!(layout.size(b), 1000);
        assert!(layout.footprint() >= 1100);
    }

    #[test]
    fn histogram_buckets_blocks_by_effective_threads() {
        let blocks = vec![
            TraceBuilder::new(32, 1).build(),
            TraceBuilder::new(32, 2).build(),
            TraceBuilder::new(32, 3).build(),
            TraceBuilder::new(256, 200).build(),
        ];
        let k = KernelLaunch::new("k", blocks);
        let h = k.effective_thread_histogram();
        assert_eq!(h[0], 1); // eff=1
        assert_eq!(h[1], 2); // eff=2,3
        assert_eq!(h[7], 1); // eff=200 in [128,256)
    }
}
