//! Occupancy: how many blocks of a given shape fit on one SM.
//!
//! This is the CUDA occupancy calculator reduced to the three limits the
//! paper manipulates — block slots, threads, and shared memory (plus the
//! register file for completeness). B-Limiting works *entirely* through
//! this function: allocating `4 × 6144` extra bytes of shared memory per
//! merge block drops the resident-block count, which is what relieves L2
//! contention (Figure 7).

use crate::device::DeviceConfig;
use crate::trace::BlockTrace;

/// Resource-limited number of co-resident blocks of the given shape on one
/// SM. Always at least 1 (the hardware runs any launchable block).
pub fn max_resident_blocks(device: &DeviceConfig, block: &BlockTrace) -> u32 {
    let by_slots = device.max_blocks_per_sm;
    let by_threads = device.max_threads_per_sm / block.threads.max(1);
    let by_smem = device
        .shared_mem_per_sm
        .checked_div(block.shared_mem_bytes)
        .unwrap_or(u32::MAX);
    let regs_per_block = block.regs_per_thread.saturating_mul(block.threads);
    let by_regs = device
        .registers_per_sm
        .checked_div(regs_per_block)
        .unwrap_or(u32::MAX);
    by_slots.min(by_threads).min(by_smem).min(by_regs).max(1)
}

/// Achieved warp occupancy (resident warps over the SM's warp capacity) for
/// a homogeneous launch of this block shape.
pub fn warp_occupancy(device: &DeviceConfig, block: &BlockTrace) -> f64 {
    let resident = max_resident_blocks(device, block);
    let warps = resident * block.warps(device.warp_size);
    let capacity = device.max_threads_per_sm / device.warp_size;
    (warps as f64 / capacity as f64).min(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceBuilder;

    fn dev() -> DeviceConfig {
        DeviceConfig::titan_xp()
    }

    #[test]
    fn thread_limit_binds_for_large_blocks() {
        let block = TraceBuilder::new(1024, 1024).regs(16).build();
        // 2048 threads / 1024 per block = 2
        assert_eq!(max_resident_blocks(&dev(), &block), 2);
    }

    #[test]
    fn slot_limit_binds_for_small_blocks() {
        let block = TraceBuilder::new(32, 32).regs(16).build();
        // 2048/32 = 64 by threads, but 32 block slots cap it.
        assert_eq!(max_resident_blocks(&dev(), &block), 32);
    }

    #[test]
    fn shared_memory_limit_binds_with_extra_smem() {
        // The B-Limiting scenario: 256-thread merge blocks with
        // 4 × 6144 B of extra shared memory each.
        let plain = TraceBuilder::new(256, 256).regs(16).build();
        let limited = TraceBuilder::new(256, 256)
            .regs(16)
            .shared_mem(4 * 6144)
            .build();
        assert_eq!(max_resident_blocks(&dev(), &plain), 8);
        // 96 KiB / 24 KiB = 4
        assert_eq!(max_resident_blocks(&dev(), &limited), 4);
    }

    #[test]
    fn register_limit_binds_for_register_heavy_blocks() {
        let block = TraceBuilder::new(256, 256).regs(128).build();
        // 65536 / (128*256) = 2
        assert_eq!(max_resident_blocks(&dev(), &block), 2);
    }

    #[test]
    fn always_at_least_one_block() {
        let block = TraceBuilder::new(2048, 2048)
            .regs(255)
            .shared_mem(96 * 1024)
            .build();
        assert_eq!(max_resident_blocks(&dev(), &block), 1);
    }

    #[test]
    fn warp_occupancy_full_for_unconstrained_shape() {
        let block = TraceBuilder::new(256, 256).regs(16).build();
        assert!((warp_occupancy(&dev(), &block) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn warp_occupancy_drops_with_limiting() {
        let limited = TraceBuilder::new(256, 256)
            .regs(16)
            .shared_mem(4 * 6144)
            .build();
        let occ = warp_occupancy(&dev(), &limited);
        assert!((occ - 0.5).abs() < 1e-12, "4 blocks × 8 warps / 64 = {occ}");
    }
}
