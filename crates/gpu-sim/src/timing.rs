//! Block-duration model.
//!
//! One thread block's wall time on an SM is modelled as
//!
//! ```text
//! duration = max(compute, memory) + atomic_serialization + block_overhead
//! ```
//!
//! * `compute` — launched warps × per-thread MACs × lane-imbalance ×
//!   cycles/MAC ÷ issue width. Counting *launched* (not effective) warps is
//!   what makes lock-step waste visible: a 256-thread block with 3 effective
//!   threads still burns 8 warps of issue slots, which is exactly the
//!   inefficiency B-Gathering removes by compaction.
//! * `memory` — transaction latencies (L2 hits vs DRAM misses from the L2
//!   simulator), divided by the latency-hiding factor (outstanding requests
//!   across all *effective* warps resident on the SM — underloaded blocks
//!   hide almost nothing), floored by the block's bandwidth demand, and
//!   inflated by a queueing term when the kernel's aggregate demand
//!   approaches the device bandwidth (the contention B-Limiting relieves).
//! * `atomic_serialization` — atomics × per-op cost × mean conflict degree,
//!   over a fixed L2-bank parallelism.
//!
//! Sync-stall cycles (`(1 − effective_ratio) ×` busy time when the block
//! barriers) are tracked as a *counter* for Figure 13; the idle lanes run in
//! parallel with the effective ones, so they do not extend the block.

use crate::device::DeviceConfig;
use crate::l2cache::BlockL2;
use crate::trace::BlockTrace;

/// L2 atomic-unit parallelism (banks working independently).
const ATOMIC_BANKS: f64 = 8.0;

/// Fixed pipeline-drain cost of one `__syncthreads()`, in cycles.
const BARRIER_BASE_CYCLES: f64 = 20.0;
/// Per-warp reconvergence cost of one barrier, in cycles.
const BARRIER_PER_WARP_CYCLES: f64 = 4.0;

/// Execution context a block sees on its SM: how much co-resident work
/// exists to hide latency, and how contended the memory system is.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SmContext {
    /// Blocks of this shape co-resident on the SM (occupancy).
    pub resident_blocks: u32,
    /// Total effective warps resident on the SM (across all co-resident
    /// blocks) — the pool the warp scheduler can switch between.
    pub hiding_warps: f64,
    /// Kernel-aggregate bandwidth demand over capacity (ρ ≥ 0).
    pub bandwidth_pressure: f64,
}

impl SmContext {
    /// A context with no co-residency and no contention (single block on an
    /// otherwise idle device).
    pub fn solo(block_effective_warps: u32) -> Self {
        SmContext {
            resident_blocks: 1,
            hiding_warps: block_effective_warps as f64,
            bandwidth_pressure: 0.0,
        }
    }
}

/// Timing breakdown of one block.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct BlockTiming {
    /// Compute (issue-bound) cycles.
    pub compute_cycles: f64,
    /// Memory (latency/bandwidth-bound) cycles after hiding.
    pub memory_cycles: f64,
    /// The latency-bound component alone (no bandwidth floor) — used by the
    /// simulator's first pass to estimate unthrottled bandwidth demand.
    pub memory_latency_bound: f64,
    /// Atomic serialization cycles.
    pub atomic_cycles: f64,
    /// Fixed dispatch overhead cycles.
    pub overhead_cycles: f64,
    /// Sync-stall counter (not part of `duration`; see module docs).
    pub sync_stall_cycles: f64,
    /// Total block wall time in cycles.
    pub duration: f64,
}

/// Latency-inflation multiplier for aggregate bandwidth pressure `rho`:
/// 1 below the knee, then `1 / (1 − ρ̂)`-style queueing growth, capped so a
/// pathological kernel still terminates.
pub fn contention_factor(device: &DeviceConfig, rho: f64) -> f64 {
    let knee = device.cost.contention_knee;
    if rho <= knee {
        return 1.0;
    }
    // Map rho ∈ (knee, ∞) onto an M/M/1-ish utilization in (0, 0.95].
    let util = ((rho - knee) / (1.0 - knee)).min(4.0);
    let u = (util / (1.0 + util)) * 0.95;
    (1.0 / (1.0 - u)).min(12.0)
}

/// Computes the timing of one block given its L2 outcome and SM context.
pub fn block_timing(
    device: &DeviceConfig,
    block: &BlockTrace,
    l2: &BlockL2,
    ctx: &SmContext,
) -> BlockTiming {
    let cost = &device.cost;
    let warps = block.warps(device.warp_size) as f64;

    // --- compute: issue-bound, lock-step over launched warps ---
    let compute_cycles =
        warps * block.compute_per_thread as f64 * block.lane_imbalance * cost.cycles_per_mac
            / device.issue_width();

    // --- memory: latency / hiding, floored by bandwidth ---
    let inflation = contention_factor(device, ctx.bandwidth_pressure);
    let raw_latency = l2.hit_transactions as f64 * device.l2_latency_cycles as f64
        + l2.miss_transactions as f64 * device.dram_latency_cycles as f64;
    let hiding = (ctx.hiding_warps * cost.mlp_per_warp).clamp(1.0, cost.max_hiding);
    let latency_bound = raw_latency * inflation / hiding;
    let total_bytes = (l2.read_bytes + l2.write_bytes) as f64;
    let miss_fraction = if l2.transactions() == 0 {
        0.0
    } else {
        l2.miss_transactions as f64 / l2.transactions() as f64
    };
    let bandwidth_bound = total_bytes / device.l2_bytes_per_cycle_per_sm()
        + total_bytes * miss_fraction / device.dram_bytes_per_cycle_per_sm();
    let memory_cycles = latency_bound.max(bandwidth_bound);

    // --- atomics: throughput-bound across L2 banks, floored by the
    // serialization of the most contended address (conflict chain) ---
    let atomic_cycles = if block.atomics == 0 {
        0.0
    } else {
        let throughput = block.atomics as f64 * cost.atomic_cycles / ATOMIC_BANKS;
        let chain = block.atomic_conflict * cost.atomic_cycles;
        throughput.max(chain) * inflation
    };

    // Barriers drain the pipeline: kernels that synchronize per sort stage
    // (bitonic networks, multi-phase merges) pay for every one of them.
    let barrier_cycles =
        block.barriers as f64 * (BARRIER_BASE_CYCLES + warps * BARRIER_PER_WARP_CYCLES);

    let overhead_cycles = cost.block_overhead_cycles;
    let work = compute_cycles.max(memory_cycles) + atomic_cycles;
    let busy = work + barrier_cycles;
    let sync_stall_cycles = if block.barriers > 0 {
        (1.0 - block.effective_ratio()) * work
    } else {
        0.0
    };

    BlockTiming {
        compute_cycles,
        memory_cycles,
        memory_latency_bound: latency_bound,
        atomic_cycles,
        overhead_cycles,
        sync_stall_cycles,
        duration: busy + overhead_cycles,
    }
}

/// Unthrottled duration estimate (no bandwidth floor): what the block would
/// demand of the memory system if capacity were infinite. The simulator's
/// demand/capacity ratio ρ is computed from this.
pub fn unfloored_duration(t: &BlockTiming) -> f64 {
    t.compute_cycles.max(t.memory_latency_bound) + t.atomic_cycles + t.overhead_cycles
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceBuilder;

    fn dev() -> DeviceConfig {
        DeviceConfig::titan_xp()
    }

    fn no_mem_l2() -> BlockL2 {
        BlockL2::default()
    }

    #[test]
    fn compute_scales_with_launched_warps_not_effective() {
        let full = TraceBuilder::new(256, 256).compute(1000).build();
        let sparse = TraceBuilder::new(256, 3).compute(1000).build();
        let ctx = SmContext::solo(8);
        let t_full = block_timing(&dev(), &full, &no_mem_l2(), &ctx);
        let t_sparse = block_timing(&dev(), &sparse, &no_mem_l2(), &ctx);
        // Lock-step: same issue cost whether 3 or 256 lanes are useful.
        assert!((t_full.compute_cycles - t_sparse.compute_cycles).abs() < 1e-9);
    }

    #[test]
    fn lane_imbalance_multiplies_compute() {
        let base = TraceBuilder::new(32, 32).compute(1000).build();
        let skew = TraceBuilder::new(32, 32)
            .compute(1000)
            .lane_imbalance(4.0)
            .build();
        let ctx = SmContext::solo(1);
        let a = block_timing(&dev(), &base, &no_mem_l2(), &ctx);
        let b = block_timing(&dev(), &skew, &no_mem_l2(), &ctx);
        assert!((b.compute_cycles / a.compute_cycles - 4.0).abs() < 1e-9);
    }

    #[test]
    fn more_hiding_warps_shrink_memory_time() {
        let block = TraceBuilder::new(256, 256).build();
        let l2 = BlockL2 {
            hit_transactions: 0,
            miss_transactions: 1000,
            read_bytes: 128_000,
            write_bytes: 0,
        };
        let lonely = SmContext {
            resident_blocks: 1,
            hiding_warps: 1.0,
            bandwidth_pressure: 0.0,
        };
        let crowded = SmContext {
            resident_blocks: 8,
            hiding_warps: 8.0,
            bandwidth_pressure: 0.0,
        };
        let t1 = block_timing(&dev(), &block, &l2, &lonely);
        let t8 = block_timing(&dev(), &block, &l2, &crowded);
        assert!(
            t8.memory_cycles < t1.memory_cycles / 2.0,
            "8 warps must hide much more: {} vs {}",
            t8.memory_cycles,
            t1.memory_cycles
        );
    }

    #[test]
    fn bandwidth_floor_binds_for_huge_streaming_blocks() {
        let block = TraceBuilder::new(256, 256).build();
        let l2 = BlockL2 {
            hit_transactions: 0,
            miss_transactions: 1_000_000,
            read_bytes: 128_000_000,
            write_bytes: 0,
        };
        let ctx = SmContext {
            resident_blocks: 8,
            hiding_warps: 64.0,
            bandwidth_pressure: 0.0,
        };
        let t = block_timing(&dev(), &block, &l2, &ctx);
        let bw_cycles =
            128e6 / dev().l2_bytes_per_cycle_per_sm() + 128e6 / dev().dram_bytes_per_cycle_per_sm();
        assert!((t.memory_cycles - bw_cycles).abs() / bw_cycles < 1e-9);
    }

    #[test]
    fn contention_inflates_above_knee_only() {
        let d = dev();
        assert_eq!(contention_factor(&d, 0.0), 1.0);
        assert_eq!(contention_factor(&d, d.cost.contention_knee), 1.0);
        let mid = contention_factor(&d, 1.0);
        let high = contention_factor(&d, 2.0);
        assert!(mid > 1.0);
        assert!(high > mid);
        assert!(contention_factor(&d, 100.0) <= 12.0);
    }

    #[test]
    fn sync_stalls_proportional_to_ineffective_fraction() {
        let block = TraceBuilder::new(256, 8).compute(1000).barriers(1).build();
        let ctx = SmContext::solo(1);
        let t = block_timing(&dev(), &block, &no_mem_l2(), &ctx);
        let expect = (1.0 - 8.0 / 256.0) * t.compute_cycles.max(t.memory_cycles);
        assert!((t.sync_stall_cycles - expect).abs() < 1e-6);
        // without barriers, no sync stall is recorded
        let nb = TraceBuilder::new(256, 8).compute(1000).build();
        assert_eq!(
            block_timing(&dev(), &nb, &no_mem_l2(), &ctx).sync_stall_cycles,
            0.0
        );
    }

    #[test]
    fn atomics_add_serialization() {
        let none = TraceBuilder::new(256, 256).compute(10).build();
        let some = TraceBuilder::new(256, 256)
            .compute(10)
            .atomic_scatter(crate::trace::RegionId(0), 0, 1 << 20, 10_000, 8, 2.0)
            .build();
        let ctx = SmContext::solo(8);
        let a = block_timing(&dev(), &none, &no_mem_l2(), &ctx);
        let b = block_timing(&dev(), &some, &no_mem_l2(), &ctx);
        assert!(b.duration > a.duration);
        // throughput bound: 10k atomics / 8 banks; the conflict chain
        // (2 × cost) is far shorter here.
        let expect = 10_000.0 * dev().cost.atomic_cycles / 8.0;
        assert!((b.atomic_cycles - expect).abs() < 1e-6);
    }

    #[test]
    fn duration_includes_block_overhead() {
        let empty = TraceBuilder::new(32, 32).build();
        let ctx = SmContext::solo(1);
        let t = block_timing(&dev(), &empty, &no_mem_l2(), &ctx);
        assert!((t.duration - dev().cost.block_overhead_cycles).abs() < 1e-9);
    }
}
