//! Set-associative LRU model of the GPU's shared L2 cache.
//!
//! Fed by [`MemSegment`]s at cache-line granularity in block launch order —
//! an approximation of execution order that preserves the reuse pattern the
//! paper exploits: B-Splitting's sub-blocks are launched back-to-back and
//! re-read the same dominator vectors, so their lines hit; unsplit
//! monolithic traversals evict themselves before any reuse.
//!
//! The simulator returns per-block hit/miss transaction counts which the
//! timing model converts into latency, plus kernel-level byte counters for
//! the L2-throughput figures (12 and 14).

use crate::device::DeviceConfig;
use crate::trace::{AccessPattern, MemSegment, MemoryLayout};

/// Per-block outcome of the L2 pass.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct BlockL2 {
    /// Transactions that hit in L2.
    pub hit_transactions: u64,
    /// Transactions that missed to DRAM.
    pub miss_transactions: u64,
    /// Bytes read by the block (logical).
    pub read_bytes: u64,
    /// Bytes written by the block (logical).
    pub write_bytes: u64,
}

impl BlockL2 {
    /// All transactions.
    pub fn transactions(&self) -> u64 {
        self.hit_transactions + self.miss_transactions
    }

    /// Hit fraction in `[0, 1]` (1 when there were no transactions).
    pub fn hit_rate(&self) -> f64 {
        let t = self.transactions();
        if t == 0 {
            1.0
        } else {
            self.hit_transactions as f64 / t as f64
        }
    }
}

/// A set-associative LRU cache over 64-bit line addresses.
#[derive(Debug, Clone)]
pub struct L2Cache {
    line_bytes: u64,
    num_sets: u64,
    assoc: usize,
    /// `sets[s]` holds up to `assoc` tags, most-recently-used last.
    sets: Vec<Vec<u64>>,
    accesses: u64,
    hits: u64,
}

impl L2Cache {
    /// Builds the cache for a device configuration.
    pub fn for_device(device: &DeviceConfig) -> Self {
        Self::new(
            device.l2_bytes,
            device.l2_line_bytes as u64,
            device.l2_assoc as usize,
        )
    }

    /// Builds a cache of `capacity_bytes` with the given line size and
    /// associativity. Set count is rounded down to a power of two (≥ 1).
    pub fn new(capacity_bytes: u64, line_bytes: u64, assoc: usize) -> Self {
        assert!(line_bytes.is_power_of_two(), "line size must be 2^k");
        assert!(assoc >= 1);
        let lines = (capacity_bytes / line_bytes).max(1);
        let sets = (lines / assoc as u64).max(1);
        let num_sets = 1u64 << (63 - sets.leading_zeros()); // prev power of 2
        L2Cache {
            line_bytes,
            num_sets,
            assoc,
            sets: vec![Vec::with_capacity(assoc); num_sets as usize],
            accesses: 0,
            hits: 0,
        }
    }

    /// Effective capacity in bytes after rounding.
    pub fn capacity_bytes(&self) -> u64 {
        self.num_sets * self.assoc as u64 * self.line_bytes
    }

    /// Total accesses so far.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Total hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Touches one byte address; returns `true` on hit.
    pub fn access(&mut self, addr: u64) -> bool {
        let line = addr / self.line_bytes;
        let set_idx = (line & (self.num_sets - 1)) as usize;
        let set = &mut self.sets[set_idx];
        self.accesses += 1;
        if let Some(pos) = set.iter().position(|&t| t == line) {
            set.remove(pos);
            set.push(line);
            self.hits += 1;
            true
        } else {
            if set.len() == self.assoc {
                set.remove(0);
            }
            set.push(line);
            false
        }
    }

    /// Streams one segment through the cache, returning
    /// `(hit_transactions, miss_transactions)`.
    ///
    /// Coalesced/strided segments touch their exact line sequence. `Random`
    /// segments touch `count` lines pseudo-randomly spread over the range
    /// (deterministic low-discrepancy sequence, so runs are reproducible).
    pub fn stream_segment(&mut self, layout: &MemoryLayout, seg: &MemSegment) -> (u64, u64) {
        let base = layout.base(seg.region) + seg.offset;
        let (mut hits, mut misses) = (0u64, 0u64);
        match seg.pattern {
            AccessPattern::Coalesced => {
                let first = base / self.line_bytes;
                let last = (base + seg.bytes.max(1) - 1) / self.line_bytes;
                for line in first..=last {
                    if self.access(line * self.line_bytes) {
                        hits += 1;
                    } else {
                        misses += 1;
                    }
                }
            }
            AccessPattern::Strided(stride) => {
                let stride = stride.max(1) as u64;
                let mut addr = base;
                let end = base + seg.bytes;
                let mut prev_line = u64::MAX;
                while addr < end {
                    let line = addr / self.line_bytes;
                    if line != prev_line {
                        if self.access(addr) {
                            hits += 1;
                        } else {
                            misses += 1;
                        }
                        prev_line = line;
                    }
                    addr += stride;
                }
            }
            AccessPattern::Random { count, width } => {
                // Weyl sequence over the range: uniform, deterministic,
                // uncorrelated with set indexing. Very long scatters are
                // sampled and extrapolated to keep the pass O(1)-bounded.
                let range = seg.bytes.max(width as u64);
                let slots = (range / width.max(1) as u64).max(1);
                let lines_per_access = (width as u64).div_ceil(self.line_bytes).max(1);
                const SAMPLE_CAP: u64 = 4096;
                let simulated = count.min(SAMPLE_CAP);
                let mut x = 0.618_033_988_749_894_9_f64; // 1/φ
                for _ in 0..simulated {
                    x += 0.618_033_988_749_894_9;
                    x -= x.floor();
                    let slot = (x * slots as f64) as u64 % slots;
                    let first = base + slot * width as u64;
                    for l in 0..lines_per_access {
                        if self.access(first + l * self.line_bytes) {
                            hits += 1;
                        } else {
                            misses += 1;
                        }
                    }
                }
                if simulated < count {
                    // Extrapolate the sampled hit ratio to the full count,
                    // keeping the bookkeeping counters consistent.
                    let scale = count as f64 / simulated as f64;
                    let extra_h = (hits as f64 * (scale - 1.0)).round() as u64;
                    let extra_m = (misses as f64 * (scale - 1.0)).round() as u64;
                    hits += extra_h;
                    misses += extra_m;
                    self.hits += extra_h;
                    self.accesses += extra_h + extra_m;
                }
            }
        }
        (hits, misses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cache() -> L2Cache {
        // 8 lines of 128 B, 2-way → 4 sets.
        L2Cache::new(1024, 128, 2)
    }

    #[test]
    fn capacity_reflects_rounding() {
        let c = tiny_cache();
        assert_eq!(c.capacity_bytes(), 1024);
    }

    #[test]
    fn repeated_access_hits() {
        let mut c = tiny_cache();
        assert!(!c.access(0));
        assert!(c.access(64)); // same 128 B line
        assert!(c.access(0));
        assert_eq!(c.hits(), 2);
        assert_eq!(c.accesses(), 3);
    }

    #[test]
    fn lru_evicts_oldest_within_set() {
        let mut c = tiny_cache(); // 4 sets → addresses 0, 512, 1024 share set 0
        assert!(!c.access(0));
        assert!(!c.access(512));
        assert!(!c.access(1024)); // evicts line 0 (2-way)
        assert!(!c.access(0)); // miss again
        assert!(c.access(1024)); // still resident
    }

    #[test]
    fn working_set_within_capacity_fully_hits_on_second_pass() {
        let mut c = L2Cache::new(64 * 1024, 128, 16);
        let mut layout = MemoryLayout::new();
        let r = layout.alloc(32 * 1024);
        let seg = MemSegment {
            region: r,
            offset: 0,
            bytes: 32 * 1024,
            pattern: AccessPattern::Coalesced,
            write: false,
            atomic: false,
        };
        let (h1, m1) = c.stream_segment(&layout, &seg);
        assert_eq!(h1, 0);
        assert_eq!(m1, 256);
        let (h2, m2) = c.stream_segment(&layout, &seg);
        assert_eq!(h2, 256, "fits in cache → second pass all hits");
        assert_eq!(m2, 0);
    }

    #[test]
    fn working_set_beyond_capacity_thrashes() {
        let mut c = L2Cache::new(4 * 1024, 128, 4);
        let mut layout = MemoryLayout::new();
        let r = layout.alloc(64 * 1024);
        let seg = MemSegment {
            region: r,
            offset: 0,
            bytes: 64 * 1024,
            pattern: AccessPattern::Coalesced,
            write: false,
            atomic: false,
        };
        c.stream_segment(&layout, &seg);
        let (h2, _) = c.stream_segment(&layout, &seg);
        assert_eq!(h2, 0, "16× larger than cache → LRU streaming gets no reuse");
    }

    #[test]
    fn random_segment_generates_count_transactions() {
        let mut c = tiny_cache();
        let mut layout = MemoryLayout::new();
        let r = layout.alloc(1 << 20);
        let seg = MemSegment {
            region: r,
            offset: 0,
            bytes: 1 << 20,
            pattern: AccessPattern::Random {
                count: 500,
                width: 8,
            },
            write: true,
            atomic: true,
        };
        let (h, m) = c.stream_segment(&layout, &seg);
        assert_eq!(h + m, 500);
        // 1 MiB range through a 1 KiB cache: nearly everything misses.
        assert!(m > 400);
    }

    #[test]
    fn hit_rate_bounds() {
        let b = BlockL2 {
            hit_transactions: 3,
            miss_transactions: 1,
            read_bytes: 0,
            write_bytes: 0,
        };
        assert!((b.hit_rate() - 0.75).abs() < 1e-12);
        assert_eq!(BlockL2::default().hit_rate(), 1.0);
    }

    #[test]
    #[should_panic(expected = "line size must be 2^k")]
    fn non_power_of_two_line_rejected() {
        let _ = L2Cache::new(1024, 100, 2);
    }
}
