//! nvprof-style counters assembled from a simulated kernel run.

use serde::{Deserialize, Serialize};

/// Aggregate L2 statistics of one kernel.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct L2Stats {
    /// Line-granularity transactions issued to L2.
    pub accesses: u64,
    /// Transactions that hit.
    pub hits: u64,
    /// Logical bytes read.
    pub read_bytes: u64,
    /// Logical bytes written.
    pub write_bytes: u64,
}

impl L2Stats {
    /// Hit fraction in `[0, 1]` (1 for an access-free kernel).
    pub fn hit_rate(&self) -> f64 {
        if self.accesses == 0 {
            1.0
        } else {
            self.hits as f64 / self.accesses as f64
        }
    }
}

/// Full profile of one simulated kernel launch — the data source for
/// Figures 3, 11, 12, 13 and 14.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KernelProfile {
    /// Kernel name.
    pub name: String,
    /// Makespan in core cycles (including launch latency).
    pub makespan_cycles: f64,
    /// Wall time in milliseconds at the device clock.
    pub time_ms: f64,
    /// Busy cycles per SM.
    pub sm_busy: Vec<f64>,
    /// Number of thread blocks launched.
    pub num_blocks: usize,
    /// Σ of block durations (total SM work).
    pub busy_cycles: f64,
    /// Σ of sync-stall counters across blocks.
    pub sync_stall_cycles: f64,
    /// L2 aggregates.
    pub l2: L2Stats,
    /// Blocks bucketed by effective threads (log2 buckets) — Figure 3(b).
    pub effective_thread_histogram: Vec<usize>,
    /// Mean achieved warp occupancy in `[0, 1]`.
    pub occupancy: f64,
    /// Kernel-aggregate bandwidth demand over capacity (ρ) used in the
    /// final timing pass.
    pub bandwidth_pressure: f64,
}

impl KernelProfile {
    /// Load Balancing Index (paper Equation 3).
    pub fn lbi(&self) -> f64 {
        let max = self.sm_busy.iter().copied().fold(0.0f64, f64::max);
        if max <= 0.0 {
            return 1.0;
        }
        self.sm_busy.iter().map(|&c| c / max).sum::<f64>() / self.sm_busy.len() as f64
    }

    /// Fraction of all stall/busy cycles attributable to barrier waits —
    /// the Figure 13 metric.
    pub fn sync_stall_ratio(&self) -> f64 {
        let denom = self.busy_cycles + self.sync_stall_cycles;
        if denom <= 0.0 {
            0.0
        } else {
            self.sync_stall_cycles / denom
        }
    }

    /// L2 read throughput in GB/s over the kernel's wall time.
    pub fn l2_read_gbs(&self) -> f64 {
        if self.time_ms <= 0.0 {
            0.0
        } else {
            self.l2.read_bytes as f64 / (self.time_ms * 1e-3) / 1e9
        }
    }

    /// L2 write throughput in GB/s over the kernel's wall time.
    pub fn l2_write_gbs(&self) -> f64 {
        if self.time_ms <= 0.0 {
            0.0
        } else {
            self.l2.write_bytes as f64 / (self.time_ms * 1e-3) / 1e9
        }
    }

    /// Per-SM busy times sorted descending (Figure 3(a) presentation).
    pub fn sm_busy_descending(&self) -> Vec<f64> {
        let mut v = self.sm_busy.clone();
        v.sort_by(|a, b| b.partial_cmp(a).expect("finite"));
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile(sm_busy: Vec<f64>) -> KernelProfile {
        KernelProfile {
            name: "k".into(),
            makespan_cycles: 100.0,
            time_ms: 1.0,
            sm_busy,
            num_blocks: 4,
            busy_cycles: 100.0,
            sync_stall_cycles: 0.0,
            l2: L2Stats {
                accesses: 10,
                hits: 5,
                read_bytes: 2_000_000_000,
                write_bytes: 1_000_000_000,
            },
            effective_thread_histogram: vec![],
            occupancy: 1.0,
            bandwidth_pressure: 0.0,
        }
    }

    #[test]
    fn lbi_of_balanced_and_skewed() {
        assert!((profile(vec![10.0, 10.0]).lbi() - 1.0).abs() < 1e-12);
        let p = profile(vec![100.0, 0.0, 0.0, 0.0]);
        assert!((p.lbi() - 0.25).abs() < 1e-12);
        assert_eq!(profile(vec![0.0, 0.0]).lbi(), 1.0);
    }

    #[test]
    fn throughput_is_bytes_over_walltime() {
        let p = profile(vec![10.0]);
        assert!((p.l2_read_gbs() - 2000.0).abs() < 1e-9);
        assert!((p.l2_write_gbs() - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn stall_ratio_bounds() {
        let mut p = profile(vec![10.0]);
        p.sync_stall_cycles = 100.0;
        // 100 stall vs 100 busy → 50 %
        assert!((p.sync_stall_ratio() - 0.5).abs() < 1e-12);
        p.sync_stall_cycles = 0.0;
        assert_eq!(p.sync_stall_ratio(), 0.0);
    }

    #[test]
    fn hit_rate_no_accesses_is_one() {
        assert_eq!(L2Stats::default().hit_rate(), 1.0);
    }
}
