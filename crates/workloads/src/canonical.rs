//! The four canonical chained-multiplication workloads, as typed chain
//! programs plus their input builders.
//!
//! * **square-k-times** — `A^(2^k)` by iterated squaring: every step's
//!   operand structure is new (fill-in changes the sparsity pattern), so a
//!   plan cache misses on every step. This is the honest stress test for
//!   per-step plan keying and cache eviction.
//! * **triangle-count** — `A² ∘ A`: the masked square whose entry `(i,j)`
//!   counts the common neighbours of a stored edge; summing and dividing
//!   by 6 yields the triangle count of an undirected simple graph.
//! * **markov-cluster** — iterated squaring with column normalisation and
//!   threshold pruning after each step (the MCL expansion/inflation loop,
//!   pruning standing in for inflation); on a clustered graph the matrix
//!   converges to a block fixed point.
//! * **galerkin** — the AMG triple product `Pᵀ·A·P`, run twice with a
//!   value-refreshed `A'` (same structure, new values) exactly as a
//!   Newton/AMG outer loop re-assembles its operator: the refresh steps
//!   repeat the first pass's operand structures, so a structure-keyed plan
//!   cache *hits* on them — the counterpoint to iterated squaring.

use std::sync::Arc;

use br_sparse::ops::sparse_add;
use br_sparse::{CooMatrix, CsrMatrix};

use crate::chain::{ChainProgram, ChainStep, Operand, PostOp};

/// A canonical workload selection, parseable from a compact spec string
/// (`square:3`, `triangle`, `markov:4,0.001`, `galerkin`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Workload {
    /// Iterated squaring: `k` steps, producing `A^(2^k)`.
    Square {
        /// Number of squaring steps (≥ 1).
        k: usize,
    },
    /// Masked square `A² ∘ A`.
    Triangle,
    /// Markov clustering: `iters` expansion steps, each column-normalised
    /// then pruned at `tol`.
    Markov {
        /// Number of expansion iterations (≥ 1).
        iters: usize,
        /// Inflation-proxy prune tolerance.
        tol: f64,
    },
    /// Galerkin triple product `Pᵀ·A·P`, assembled twice (original and
    /// value-refreshed operator).
    Galerkin,
}

/// Scale applied to `A`'s values for the Galerkin refresh pass — any
/// non-unit factor works; the structure (and therefore the plan key) is
/// what matters.
const GALERKIN_REFRESH_SCALE: f64 = 1.5;

/// Aggregate size of the canonical Galerkin prolongator (2 fine nodes per
/// coarse aggregate).
const GALERKIN_GROUP: usize = 2;

impl Workload {
    /// Parses a workload spec: `square[:k]`, `triangle`,
    /// `markov[:iters[,tol]]`, `galerkin`.
    pub fn parse(spec: &str) -> Result<Workload, String> {
        let (head, args) = match spec.split_once(':') {
            Some((h, a)) => (h.trim(), Some(a.trim())),
            None => (spec.trim(), None),
        };
        let no_args = |w: Workload| match args {
            Some(a) => Err(format!("workload {head:?} takes no arguments, got {a:?}")),
            None => Ok(w),
        };
        match head {
            "square" => {
                let k = match args {
                    Some(a) => {
                        a.parse::<usize>().ok().filter(|&k| k >= 1).ok_or_else(|| {
                            format!("square:k needs a positive integer, got {a:?}")
                        })?
                    }
                    None => 3,
                };
                Ok(Workload::Square { k })
            }
            "triangle" => no_args(Workload::Triangle),
            "markov" => {
                let (iters, tol) = match args {
                    Some(a) => {
                        let (i, t) = match a.split_once(',') {
                            Some((i, t)) => (i.trim(), Some(t.trim())),
                            None => (a, None),
                        };
                        let iters =
                            i.parse::<usize>().ok().filter(|&n| n >= 1).ok_or_else(|| {
                                format!("markov:iters needs a positive integer, got {i:?}")
                            })?;
                        let tol = match t {
                            Some(t) => t
                                .parse::<f64>()
                                .ok()
                                .filter(|v| v.is_finite() && *v >= 0.0)
                                .ok_or_else(|| {
                                    format!(
                                        "markov tolerance must be a finite number ≥ 0, got {t:?}"
                                    )
                                })?,
                            None => 1e-3,
                        };
                        (iters, tol)
                    }
                    None => (4, 1e-3),
                };
                Ok(Workload::Markov { iters, tol })
            }
            "galerkin" => no_args(Workload::Galerkin),
            other => Err(format!(
                "unknown workload {other:?} (expected square, triangle, markov, or galerkin)"
            )),
        }
    }

    /// The workload family name (no parameters).
    pub fn name(&self) -> &'static str {
        match self {
            Workload::Square { .. } => "square",
            Workload::Triangle => "triangle",
            Workload::Markov { .. } => "markov",
            Workload::Galerkin => "galerkin",
        }
    }

    /// The compact spec string this workload parses back from.
    pub fn spec(&self) -> String {
        match self {
            Workload::Square { k } => format!("square:{k}"),
            Workload::Triangle => "triangle".into(),
            Workload::Markov { iters, tol } => format!("markov:{iters},{tol}"),
            Workload::Galerkin => "galerkin".into(),
        }
    }

    /// The four canonical instances the `chain` bench suite runs.
    pub fn canonical() -> Vec<Workload> {
        vec![
            Workload::Square { k: 3 },
            Workload::Triangle,
            Workload::Markov {
                iters: 3,
                tol: 1e-3,
            },
            Workload::Galerkin,
        ]
    }

    /// The typed chain program for this workload.
    pub fn program(&self) -> ChainProgram {
        match *self {
            Workload::Square { k } => square_k_times(k),
            Workload::Triangle => triangle_count(),
            Workload::Markov { iters, tol } => markov_cluster(iters, tol),
            Workload::Galerkin => galerkin(),
        }
    }

    /// Builds the program's input matrices from a single base matrix
    /// (adjacency-style, square). Every derivation is deterministic:
    /// Markov seeds with the column-normalised `|A| + I`, Galerkin pairs
    /// `A` with an aggregation prolongator and a value-refreshed copy.
    pub fn prepare_inputs(&self, a: &CsrMatrix<f64>) -> Vec<Arc<CsrMatrix<f64>>> {
        match self {
            Workload::Square { .. } | Workload::Triangle => vec![Arc::new(a.clone())],
            Workload::Markov { .. } => vec![Arc::new(markov_seed(a))],
            Workload::Galerkin => {
                let p = aggregation_prolongator(a.nrows(), GALERKIN_GROUP);
                let refreshed = a.map_values(|v| v * GALERKIN_REFRESH_SCALE);
                vec![Arc::new(a.clone()), Arc::new(p), Arc::new(refreshed)]
            }
        }
    }
}

/// `k` iterated-squaring steps: `S₀ = A·A`, `Sᵢ = Sᵢ₋₁·Sᵢ₋₁`, result
/// `A^(2^k)`. Every step multiplies a structure no earlier step saw.
pub fn square_k_times(k: usize) -> ChainProgram {
    let k = k.max(1);
    let steps = (0..k)
        .map(|i| {
            let src = if i == 0 {
                Operand::Input(0)
            } else {
                Operand::Step(i - 1)
            };
            ChainStep {
                label: format!("square{i}"),
                a: src,
                transpose_a: false,
                b: src,
                post: Vec::new(),
            }
        })
        .collect();
    ChainProgram {
        name: "square".into(),
        inputs: vec!["A".into()],
        steps,
    }
}

/// The masked square `A² ∘ A`: entry `(i,j)` counts paths of length two
/// between stored neighbours — the per-edge triangle incidence.
pub fn triangle_count() -> ChainProgram {
    ChainProgram {
        name: "triangle".into(),
        inputs: vec!["A".into()],
        steps: vec![ChainStep {
            label: "masked-square".into(),
            a: Operand::Input(0),
            transpose_a: false,
            b: Operand::Input(0),
            post: vec![PostOp::MaskBy(Operand::Input(0))],
        }],
    }
}

/// `iters` Markov-cluster expansion steps over a stochastic seed matrix:
/// each step squares the current matrix, column-normalises, and prunes at
/// `tol`. Feed it [`markov_seed`] of an adjacency matrix.
pub fn markov_cluster(iters: usize, tol: f64) -> ChainProgram {
    let iters = iters.max(1);
    let steps = (0..iters)
        .map(|i| {
            let src = if i == 0 {
                Operand::Input(0)
            } else {
                Operand::Step(i - 1)
            };
            ChainStep {
                label: format!("expand{i}"),
                a: src,
                transpose_a: false,
                b: src,
                post: vec![PostOp::ColumnNormalize, PostOp::ThresholdPrune(tol)],
            }
        })
        .collect();
    ChainProgram {
        name: "markov".into(),
        inputs: vec!["M".into()],
        steps,
    }
}

/// The Galerkin triple product `Pᵀ·A·P`, assembled twice: once for `A`
/// and once for the value-refreshed `A'` (inputs `A`, `P`, `A'`). The
/// refresh pass repeats the first pass's operand *structures* — `Pᵀ` is
/// unchanged and `Pᵀ·A'` has the structure of `Pᵀ·A` — so a
/// structure-keyed plan cache hits on both refresh steps.
pub fn galerkin() -> ChainProgram {
    ChainProgram {
        name: "galerkin".into(),
        inputs: vec!["A".into(), "P".into(), "A'".into()],
        steps: vec![
            ChainStep {
                label: "restrict".into(),
                a: Operand::Input(1),
                transpose_a: true,
                b: Operand::Input(0),
                post: Vec::new(),
            },
            ChainStep {
                label: "coarsen".into(),
                a: Operand::Step(0),
                transpose_a: false,
                b: Operand::Input(1),
                post: Vec::new(),
            },
            ChainStep {
                label: "restrict-refresh".into(),
                a: Operand::Input(1),
                transpose_a: true,
                b: Operand::Input(2),
                post: Vec::new(),
            },
            ChainStep {
                label: "coarsen-refresh".into(),
                a: Operand::Step(2),
                transpose_a: false,
                b: Operand::Input(1),
                post: Vec::new(),
            },
        ],
    }
}

/// The Markov-cluster seed: `|A| + I`, column-normalised — the standard
/// MCL preparation (self-loops keep the random walk aperiodic, absolute
/// values make it a transition matrix).
pub fn markov_seed(a: &CsrMatrix<f64>) -> CsrMatrix<f64> {
    let abs = a.map_values(|v| v.abs());
    let eye = CsrMatrix::identity(a.nrows());
    sparse_add(&abs, &eye)
        .expect("square adjacency plus identity cannot mismatch")
        .column_normalize()
}

/// A piecewise-constant aggregation prolongator: fine node `i` belongs to
/// coarse aggregate `i / group`, `P[i, i/group] = 1`. The canonical AMG
/// tentative prolongator for contiguous aggregates.
pub fn aggregation_prolongator(n: usize, group: usize) -> CsrMatrix<f64> {
    let group = group.max(1);
    let ncoarse = n.div_ceil(group);
    let ptr = (0..=n).collect();
    let idx = (0..n).map(|i| (i / group) as u32).collect();
    let val = vec![1.0; n];
    CsrMatrix::from_parts_unchecked(n, ncoarse, ptr, idx, val)
}

/// A deterministic planted-partition graph: `blocks` cliques of
/// `per_block` nodes each (self-loop-free, symmetric), plus `noise`
/// cross-block edges placed by a seeded xorshift. The ground-truth
/// clustering Markov clustering must converge to.
pub fn planted_partition(
    blocks: usize,
    per_block: usize,
    noise: usize,
    seed: u64,
) -> CsrMatrix<f64> {
    let n = blocks * per_block;
    let mut coo = CooMatrix::with_capacity(n, n, blocks * per_block * per_block + 2 * noise);
    for b in 0..blocks {
        let base = b * per_block;
        for i in 0..per_block {
            for j in 0..per_block {
                if i != j {
                    coo.push((base + i) as u32, (base + j) as u32, 1.0)
                        .expect("in-bounds clique edge");
                }
            }
        }
    }
    let mut state = seed | 1;
    let mut next = || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let mut placed = 0usize;
    while placed < noise && blocks > 1 {
        let u = (next() % n as u64) as usize;
        let v = (next() % n as u64) as usize;
        if u / per_block != v / per_block {
            coo.push(u as u32, v as u32, 1.0)
                .expect("in-bounds noise edge");
            coo.push(v as u32, u as u32, 1.0)
                .expect("in-bounds noise edge");
            placed += 1;
        }
    }
    coo.to_csr()
}

#[cfg(test)]
mod tests {
    use super::*;
    use br_sparse::ops::spgemm_gustavson;
    use br_sparse::DenseMatrix;

    fn ring(n: usize) -> CsrMatrix<f64> {
        let mut coo = CooMatrix::with_capacity(n, n, 2 * n);
        for i in 0..n {
            let j = (i + 1) % n;
            coo.push(i as u32, j as u32, 1.0).unwrap();
            coo.push(j as u32, i as u32, 1.0).unwrap();
        }
        coo.to_csr()
    }

    #[test]
    fn workload_spec_round_trips() {
        for spec in [
            "square:3",
            "triangle",
            "markov:4,0.001",
            "galerkin",
            "square:1",
            "markov:2,0",
        ] {
            let w = Workload::parse(spec).unwrap();
            assert_eq!(Workload::parse(&w.spec()).unwrap(), w, "{spec}");
        }
        assert_eq!(Workload::parse("square"), Ok(Workload::Square { k: 3 }));
        assert_eq!(
            Workload::parse("markov"),
            Ok(Workload::Markov {
                iters: 4,
                tol: 1e-3
            })
        );
        for bad in [
            "",
            "square:0",
            "square:x",
            "triangle:1",
            "markov:0",
            "markov:2,nan",
            "galerkin:2",
            "mystery",
        ] {
            assert!(Workload::parse(bad).is_err(), "{bad:?} must not parse");
        }
    }

    #[test]
    fn every_canonical_program_validates() {
        for w in Workload::canonical() {
            let p = w.program();
            p.validate().unwrap();
            assert_eq!(p.name, w.name());
            let inputs = w.prepare_inputs(&ring(8));
            assert_eq!(inputs.len(), p.inputs.len(), "{}", w.name());
            p.execute_reference(&inputs).unwrap();
        }
    }

    /// Dense SPA reference for the masked square: accumulate A² densely,
    /// then zero every position not stored in A.
    fn masked_square_dense(a: &CsrMatrix<f64>) -> DenseMatrix<f64> {
        let d = a.to_dense();
        let mut sq = d.matmul(&d);
        for r in 0..a.nrows() {
            for c in 0..a.ncols() {
                if !a.row(r).0.contains(&(c as u32)) {
                    *sq.get_mut(r, c) = 0.0;
                }
            }
        }
        sq
    }

    #[test]
    fn triangle_count_matches_the_dense_spa_reference() {
        // A ring plus one chord gives a single triangle (0,1,n-1)… build a
        // graph with known triangles instead: two cliques of 4 share no
        // nodes → each K4 has 4 triangles, 8 total.
        let g = planted_partition(2, 4, 0, 7);
        let run = triangle_count()
            .execute_reference(&Workload::Triangle.prepare_inputs(&g))
            .unwrap();
        let dense = masked_square_dense(&g);
        for r in 0..g.nrows() {
            for c in 0..g.ncols() {
                assert_eq!(run.result.get(r, c), dense.get(r, c), "({r},{c})");
            }
        }
        // Σ (A² ∘ A) = 6 · triangles.
        let total: f64 = run.result.val().iter().sum();
        assert_eq!(total, 6.0 * 8.0);
    }

    #[test]
    fn markov_cluster_converges_on_a_planted_partition() {
        let g = planted_partition(3, 5, 2, 42);
        let w = Workload::Markov {
            iters: 6,
            tol: 0.05,
        };
        let inputs = w.prepare_inputs(&g);
        let run = w.program().execute_reference(&inputs).unwrap();
        // Fixed point: the last two iterates agree (structure and values).
        let last = &run.steps[run.steps.len() - 1];
        let prev = &run.steps[run.steps.len() - 2];
        assert_eq!(last.output_nnz, prev.output_nnz, "structure converged");
        // And the converged matrix respects the planted blocks: every
        // surviving entry links two nodes of the same block.
        for (r, c, _) in run.result.iter() {
            assert_eq!(
                r as usize / 5,
                c as usize / 5,
                "entry ({r},{c}) crosses blocks"
            );
        }
    }

    #[test]
    fn galerkin_matches_the_two_step_reference() {
        let a = ring(10);
        let w = Workload::Galerkin;
        let inputs = w.prepare_inputs(&a);
        let run = w.program().execute_reference(&inputs).unwrap();
        // Two-step reference: T = Pᵀ·A', C = T·P (the chain result is the
        // refreshed operator, its last step).
        let p = aggregation_prolongator(a.nrows(), 2);
        let refreshed = a.map_values(|v| v * GALERKIN_REFRESH_SCALE);
        let t = spgemm_gustavson(&p.transpose(), &refreshed).unwrap();
        let c = spgemm_gustavson(&t, &p).unwrap();
        assert_eq!(*run.result, c, "bit-identical to the two-step reference");
        // The refresh pass repeats the first pass's structures.
        assert_eq!(run.steps.len(), 4);
        assert!(run.steps[0].fresh_structure);
        assert!(run.steps[1].fresh_structure);
        assert!(
            !run.steps[2].fresh_structure,
            "Pᵀ·A' repeats Pᵀ·A's structure"
        );
        assert!(
            !run.steps[3].fresh_structure,
            "T'·P repeats T·P's structure"
        );
    }

    #[test]
    fn iterated_squaring_is_fresh_on_every_step() {
        let g = planted_partition(2, 4, 3, 9);
        let w = Workload::Square { k: 3 };
        let run = w
            .program()
            .execute_reference(&w.prepare_inputs(&g))
            .unwrap();
        assert_eq!(run.fresh_structures(), run.steps.len());
        // And the result is A^(2^3).
        let mut oracle = g.clone();
        for _ in 0..3 {
            oracle = spgemm_gustavson(&oracle, &oracle).unwrap();
        }
        assert_eq!(*run.result, oracle);
    }

    #[test]
    fn prolongator_partitions_the_fine_nodes() {
        let p = aggregation_prolongator(7, 2);
        assert_eq!(p.nrows(), 7);
        assert_eq!(p.ncols(), 4);
        p.check_invariants().unwrap();
        // Each row has exactly one entry; column sums count aggregate sizes.
        assert!(p.row_degrees().iter().all(|&d| d == 1));
    }

    #[test]
    fn markov_seed_is_column_stochastic() {
        let g = ring(6);
        let m = markov_seed(&g);
        let mut colsum = vec![0.0f64; m.ncols()];
        for (_, c, v) in m.iter() {
            assert!(v > 0.0);
            colsum[c as usize] += v;
        }
        for s in colsum {
            assert!((s - 1.0).abs() < 1e-12);
        }
    }
}
