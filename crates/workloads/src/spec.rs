//! Text format for generic chain programs.
//!
//! A chain spec is line-oriented (`#` comments, blank lines ignored):
//!
//! ```text
//! chain my-workload
//! input A
//! input P
//! step restrict = P' * A
//! step coarsen  = restrict * P | normalize | prune 1e-4 | mask A
//! ```
//!
//! * `chain <name>` — optional program name (defaults to `chain`).
//! * `input <name>` — declares the next positional input matrix.
//! * `step <name> = <a>['] * <b> [| <post>]...` — one multiplication; a
//!   trailing `'` transposes the left operand; operand names resolve to
//!   inputs or *earlier* steps. Post-ops, applied in written order:
//!   `normalize`, `prune <tol>`, `mask <operand>`.
//!
//! [`parse_chain_spec`] and [`render_chain_spec`] round-trip: rendering a
//! parsed program and re-parsing yields the identical program, which keeps
//! chain specs usable as on-disk artifacts and CLI inputs.

use crate::chain::{ChainProgram, ChainStep, Operand, PostOp};

/// Parses the chain spec format; errors carry 1-based line numbers.
pub fn parse_chain_spec(text: &str) -> Result<ChainProgram, String> {
    let mut name: Option<String> = None;
    let mut inputs: Vec<String> = Vec::new();
    let mut steps: Vec<ChainStep> = Vec::new();
    let mut labels: Vec<String> = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let lineno = lineno + 1;
        let line = match raw.split_once('#') {
            Some((before, _)) => before.trim(),
            None => raw.trim(),
        };
        if line.is_empty() {
            continue;
        }
        let (keyword, rest) = line.split_once(char::is_whitespace).unwrap_or((line, ""));
        let rest = rest.trim();
        match keyword {
            "chain" => {
                if name.is_some() {
                    return Err(format!("line {lineno}: duplicate chain line"));
                }
                if rest.is_empty() {
                    return Err(format!("line {lineno}: chain needs a name"));
                }
                name = Some(rest.to_string());
            }
            "input" => {
                if rest.is_empty() || rest.contains(char::is_whitespace) {
                    return Err(format!("line {lineno}: input needs a single name"));
                }
                if !steps.is_empty() {
                    return Err(format!("line {lineno}: inputs must precede steps"));
                }
                if inputs.iter().any(|i| i == rest) {
                    return Err(format!("line {lineno}: duplicate input {rest:?}"));
                }
                inputs.push(rest.to_string());
            }
            "step" => {
                let step = parse_step(rest, &inputs, &labels, lineno)?;
                labels.push(step.label.clone());
                steps.push(step);
            }
            other => {
                return Err(format!(
                    "line {lineno}: unknown keyword {other:?} (expected chain, input, or step)"
                ))
            }
        }
    }
    let program = ChainProgram {
        name: name.unwrap_or_else(|| "chain".into()),
        inputs,
        steps,
    };
    program
        .validate()
        .map_err(|e| format!("invalid chain: {e}"))?;
    Ok(program)
}

/// Resolves an operand name (optionally `'`-suffixed for the caller to
/// strip first) against declared inputs and earlier step labels.
fn resolve_operand(name: &str, inputs: &[String], labels: &[String]) -> Option<Operand> {
    if let Some(k) = inputs.iter().position(|i| i == name) {
        return Some(Operand::Input(k));
    }
    labels.iter().position(|l| l == name).map(Operand::Step)
}

fn parse_step(
    rest: &str,
    inputs: &[String],
    labels: &[String],
    lineno: usize,
) -> Result<ChainStep, String> {
    let (label, expr) = rest
        .split_once('=')
        .ok_or_else(|| format!("line {lineno}: step needs the form `step name = a * b`"))?;
    let label = label.trim();
    if label.is_empty()
        || label.contains(char::is_whitespace) && label.split_whitespace().count() > 1
    {
        return Err(format!("line {lineno}: step needs a single-word name"));
    }
    let label = label.split_whitespace().next().expect("non-empty label");
    if inputs.iter().any(|i| i == label) || labels.iter().any(|l| l == label) {
        return Err(format!("line {lineno}: step name {label:?} already used"));
    }
    let mut pieces = expr.split('|');
    let product = pieces
        .next()
        .expect("split yields at least one piece")
        .trim();
    let (a_text, b_text) = product
        .split_once('*')
        .ok_or_else(|| format!("line {lineno}: step expression needs `a * b`"))?;
    let (a_text, b_text) = (a_text.trim(), b_text.trim());
    let (a_name, transpose_a) = match a_text.strip_suffix('\'') {
        Some(stripped) => (stripped.trim(), true),
        None => (a_text, false),
    };
    let a = resolve_operand(a_name, inputs, labels)
        .ok_or_else(|| format!("line {lineno}: unknown left operand {a_name:?}"))?;
    let b = resolve_operand(b_text, inputs, labels)
        .ok_or_else(|| format!("line {lineno}: unknown right operand {b_text:?}"))?;
    let mut post = Vec::new();
    for clause in pieces {
        let clause = clause.trim();
        let (op, arg) = clause
            .split_once(char::is_whitespace)
            .map(|(o, a)| (o, a.trim()))
            .unwrap_or((clause, ""));
        match op {
            "normalize" if arg.is_empty() => post.push(PostOp::ColumnNormalize),
            "prune" => {
                let tol = arg
                    .parse::<f64>()
                    .ok()
                    .filter(|v| v.is_finite() && *v >= 0.0)
                    .ok_or_else(|| {
                        format!("line {lineno}: prune needs a finite tolerance ≥ 0, got {arg:?}")
                    })?;
                post.push(PostOp::ThresholdPrune(tol));
            }
            "mask" => {
                let operand = resolve_operand(arg, inputs, labels)
                    .ok_or_else(|| format!("line {lineno}: unknown mask operand {arg:?}"))?;
                post.push(PostOp::MaskBy(operand));
            }
            other => {
                return Err(format!(
                    "line {lineno}: unknown post-op {other:?} (expected normalize, prune, or mask)"
                ))
            }
        }
    }
    Ok(ChainStep {
        label: label.to_string(),
        a,
        transpose_a,
        b,
        post,
    })
}

/// Renders a program back into the spec format parsed by
/// [`parse_chain_spec`]; round-trips exactly.
pub fn render_chain_spec(program: &ChainProgram) -> String {
    let operand_name = |op: Operand| -> String {
        match op {
            Operand::Input(k) => program.inputs[k].clone(),
            Operand::Step(j) => program.steps[j].label.clone(),
        }
    };
    let mut out = format!("chain {}\n", program.name);
    for input in &program.inputs {
        out.push_str(&format!("input {input}\n"));
    }
    for step in &program.steps {
        let tick = if step.transpose_a { "'" } else { "" };
        out.push_str(&format!(
            "step {} = {}{tick} * {}",
            step.label,
            operand_name(step.a),
            operand_name(step.b)
        ));
        for post in &step.post {
            match post {
                PostOp::ColumnNormalize => out.push_str(" | normalize"),
                PostOp::ThresholdPrune(tol) => out.push_str(&format!(" | prune {tol}")),
                PostOp::MaskBy(op) => out.push_str(&format!(" | mask {}", operand_name(*op))),
            }
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::canonical::Workload;

    #[test]
    fn canonical_programs_round_trip_through_the_spec_format() {
        for w in Workload::canonical() {
            let p = w.program();
            let text = render_chain_spec(&p);
            let back =
                parse_chain_spec(&text).unwrap_or_else(|e| panic!("{}: {e}\n{text}", w.name()));
            assert_eq!(back, p, "{}", w.name());
        }
    }

    #[test]
    fn parses_the_documented_example() {
        let text = "\
# a Galerkin-ish chain
chain my-workload
input A
input P
step restrict = P' * A
step coarsen  = restrict * P | normalize | prune 1e-4 | mask A
";
        let p = parse_chain_spec(text).unwrap();
        assert_eq!(p.name, "my-workload");
        assert_eq!(p.inputs, vec!["A".to_string(), "P".to_string()]);
        assert_eq!(p.steps.len(), 2);
        assert!(p.steps[0].transpose_a);
        assert_eq!(p.steps[0].a, Operand::Input(1));
        assert_eq!(p.steps[1].a, Operand::Step(0));
        assert_eq!(
            p.steps[1].post,
            vec![
                PostOp::ColumnNormalize,
                PostOp::ThresholdPrune(1e-4),
                PostOp::MaskBy(Operand::Input(0)),
            ]
        );
        // Round trip.
        assert_eq!(parse_chain_spec(&render_chain_spec(&p)).unwrap(), p);
    }

    #[test]
    fn errors_carry_line_numbers() {
        for (text, needle) in [
            ("step s = A * A", "line 1"),                    // unknown operand
            ("input A\ninput A", "line 2"),                  // duplicate input
            ("input A\nstep s = A * A\ninput B", "line 3"),  // input after step
            ("input A\nstep s = A + A", "line 2"),           // not a product
            ("input A\nstep s = A * A | explode", "line 2"), // unknown post-op
            ("input A\nstep s = A * A | prune x", "line 2"), // bad tolerance
            ("input A\nstep s = A * A | mask Q", "line 2"),  // unknown mask
            ("banana", "line 1"),                            // unknown keyword
            ("chain a\nchain b", "line 2"),                  // duplicate chain
            ("input A\nstep A = A * A", "line 2"),           // name collision
        ] {
            let err = parse_chain_spec(text).unwrap_err();
            assert!(err.contains(needle), "{text:?} → {err}");
        }
        // No steps at all fails validation.
        assert!(parse_chain_spec("input A\n").is_err());
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let p = parse_chain_spec("\n# intro\ninput A # the matrix\n\nstep s = A * A\n").unwrap();
        assert_eq!(p.inputs, vec!["A".to_string()]);
        assert_eq!(p.steps.len(), 1);
    }
}
