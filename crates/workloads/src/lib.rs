//! # br-workloads — chained & iterated multiplication workloads
//!
//! The large sparse networks the source paper targets are consumed through
//! *chains* of multiplications, not single products: `A²` reachability,
//! triangle counting (`A² ∘ A`), Markov clustering (iterated squaring with
//! column normalisation and pruning), and the AMG Galerkin triple product
//! `Pᵀ·A·P`. This crate models such chains as data — a [`ChainProgram`]
//! of [`ChainStep`]s over `Arc`-shared CSR matrices, each step one SpGEMM
//! plus deterministic element-wise [`PostOp`]s — and executes them through
//! an *injected* per-step runner, so the same program runs against the
//! sequential Gustavson oracle (tests), the plan-cached `br-service`
//! executor (per-step `PlanKey` lookup), or anything else.
//!
//! The four canonical workloads ship as typed programs
//! ([`Workload::canonical`]); generic chains parse from a line-oriented
//! text format ([`parse_chain_spec`]). Determinism contract: every
//! post-op is bit-identical at any `BR_THREADS` count, and the executor
//! adds no float reductions of its own, so chain results are byte-stable
//! across thread counts and reruns.

#![warn(missing_docs)]

pub mod canonical;
pub mod chain;
pub mod spec;

pub use canonical::{
    aggregation_prolongator, galerkin, markov_cluster, markov_seed, planted_partition,
    square_k_times, triangle_count, Workload,
};
pub use chain::{ChainError, ChainProgram, ChainRun, ChainStep, Operand, PostOp, StepRecord};
pub use spec::{parse_chain_spec, render_chain_spec};
