//! Chain programs and their step-by-step executor.
//!
//! A [`ChainProgram`] is a straight-line DAG over named input matrices:
//! each [`ChainStep`] multiplies two operands (an input or a previous
//! step's output, the left one optionally transposed) and then applies a
//! sequence of deterministic element-wise [`PostOp`]s. The output of step
//! `i` is [`Arc`]-shared — later steps and post-op masks reference it
//! without deep-cloning, and the executor hands the same `Arc`s to the
//! injected runner so a plan-cached service can key each step's plan on
//! the operands' structure.
//!
//! The executor is deliberately generic over *how* a single SpGEMM runs:
//! [`ChainProgram::execute_with`] takes a runner closure returning the
//! product plus runner-specific metadata (a plan-cache hit flag, makespan,
//! …), and [`ChainProgram::execute_reference`] plugs in the sequential
//! Gustavson oracle — the correctness reference every simulated execution
//! is compared against.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use br_sparse::ops::spgemm_gustavson;
use br_sparse::{CsrMatrix, SparseError};

/// A reference to one matrix in a chain: a named input or the output of
/// an earlier step.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Operand {
    /// The `k`-th input matrix of the program.
    Input(usize),
    /// The output of step `j` (which must precede the referencing step).
    Step(usize),
}

/// A deterministic element-wise operator applied to a step's product.
///
/// Every post-op is value-deterministic and bit-identical at any
/// `BR_THREADS` count (see `br_sparse::eltwise`), so chains report
/// byte-identical results regardless of host parallelism.
#[derive(Debug, Clone, PartialEq)]
pub enum PostOp {
    /// Keep only entries whose position is stored in the operand's
    /// pattern (triangle counting's `A² ∘ A`).
    MaskBy(Operand),
    /// Divide every entry by its column sum (Markov expansion).
    ColumnNormalize,
    /// Drop entries of magnitude ≤ the tolerance (Markov inflation proxy).
    ThresholdPrune(f64),
}

/// One chain step: `out = op(a [ᵀ] · b)` followed by post-ops in order.
#[derive(Debug, Clone, PartialEq)]
pub struct ChainStep {
    /// Human-readable step name, unique within the program.
    pub label: String,
    /// Left operand.
    pub a: Operand,
    /// Whether the left operand is transposed before multiplying.
    pub transpose_a: bool,
    /// Right operand.
    pub b: Operand,
    /// Element-wise post-ops, applied to the product in order.
    pub post: Vec<PostOp>,
}

/// A straight-line chain program; the last step's output is the result.
#[derive(Debug, Clone, PartialEq)]
pub struct ChainProgram {
    /// Workload name (`square`, `triangle`, `markov`, `galerkin`, or a
    /// caller-chosen name for generic chains).
    pub name: String,
    /// Names of the input matrices, in positional order.
    pub inputs: Vec<String>,
    /// The steps, in execution order.
    pub steps: Vec<ChainStep>,
}

/// Why a chain failed: a malformed program, a failed post-op, or the
/// injected runner failing on one step.
#[derive(Debug)]
pub enum ChainError<E> {
    /// The program itself is invalid (dangling operand, no steps, …).
    Program(String),
    /// An element-wise post-op failed (e.g. mask shape mismatch).
    Post(SparseError),
    /// The runner failed executing the step at `index`.
    Step {
        /// Index of the failing step.
        index: usize,
        /// The runner's error.
        source: E,
    },
}

impl<E: fmt::Display> fmt::Display for ChainError<E> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChainError::Program(msg) => write!(f, "invalid chain program: {msg}"),
            ChainError::Post(e) => write!(f, "chain post-op failed: {e}"),
            ChainError::Step { index, source } => {
                write!(f, "chain step {index} failed: {source}")
            }
        }
    }
}

impl<E: fmt::Debug + fmt::Display> std::error::Error for ChainError<E> {}

/// Per-step record of one chain execution, carrying the runner's metadata
/// `M` (e.g. a plan-cache hit flag and makespan for plan-cached runs, or
/// `()` for the reference executor).
#[derive(Debug, Clone, PartialEq)]
pub struct StepRecord<M> {
    /// Step index within the program.
    pub index: usize,
    /// Step label, copied from the program.
    pub label: String,
    /// Stored entries of the (possibly transposed) left operand.
    pub a_nnz: usize,
    /// Stored entries of the right operand.
    pub b_nnz: usize,
    /// Stored entries of the raw product, before post-ops.
    pub product_nnz: usize,
    /// Stored entries of the step output, after post-ops.
    pub output_nnz: usize,
    /// Fill-in of the multiply in permille: `product_nnz * 1000 / a_nnz`
    /// (0 for an empty left operand) — the integer the chain fill-in
    /// histogram observes.
    pub fill_in_permille: u64,
    /// `true` when this step's operand-pair *structure* had not appeared
    /// earlier in the chain — the structure-churn signal. Iterated
    /// squaring is fresh on every step; a Galerkin value-refresh repeats
    /// structures and re-uses cached plans.
    pub fresh_structure: bool,
    /// Runner-specific metadata.
    pub meta: M,
}

/// The outcome of executing a chain: per-step records plus the final
/// output (the last step's post-op result), `Arc`-shared with the
/// executor's internal table.
#[derive(Debug, Clone)]
pub struct ChainRun<M> {
    /// One record per executed step, in program order.
    pub steps: Vec<StepRecord<M>>,
    /// The last step's output.
    pub result: Arc<CsrMatrix<f64>>,
}

impl<M> ChainRun<M> {
    /// Number of steps whose operand structure was fresh (not seen
    /// earlier in the chain) — the chain's structure churn.
    pub fn fresh_structures(&self) -> usize {
        self.steps.iter().filter(|s| s.fresh_structure).count()
    }
}

/// Value-independent FNV-1a fingerprint of an operand pair's sparsity
/// structure — the chain-local analogue of the plan cache's problem
/// signature, used to flag structure churn without depending on the
/// planning stack.
fn structure_fingerprint(a: &CsrMatrix<f64>, b: &CsrMatrix<f64>) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    let mut eat = |v: u64| {
        for byte in v.to_le_bytes() {
            h ^= byte as u64;
            h = h.wrapping_mul(PRIME);
        }
    };
    for m in [a, b] {
        eat(m.nrows() as u64);
        eat(m.ncols() as u64);
        for &p in m.ptr() {
            eat(p as u64);
        }
        for &c in m.idx() {
            eat(c as u64);
        }
    }
    h
}

impl ChainProgram {
    /// Checks structural validity: at least one step, every operand
    /// reference resolvable (inputs in range, steps strictly earlier),
    /// prune tolerances finite and non-negative, labels unique.
    pub fn validate(&self) -> Result<(), String> {
        if self.steps.is_empty() {
            return Err("chain has no steps".into());
        }
        let check = |op: Operand, at: usize, role: &str| -> Result<(), String> {
            match op {
                Operand::Input(k) if k >= self.inputs.len() => Err(format!(
                    "step {at} references {role} input #{k} but the chain has {} inputs",
                    self.inputs.len()
                )),
                Operand::Step(j) if j >= at => Err(format!(
                    "step {at} references {role} step #{j}, which does not precede it"
                )),
                _ => Ok(()),
            }
        };
        for (i, step) in self.steps.iter().enumerate() {
            check(step.a, i, "left")?;
            check(step.b, i, "right")?;
            for post in &step.post {
                match post {
                    PostOp::MaskBy(op) => check(*op, i, "mask")?,
                    PostOp::ThresholdPrune(tol) => {
                        if !tol.is_finite() || *tol < 0.0 {
                            return Err(format!("step {i} prunes with invalid tolerance {tol}"));
                        }
                    }
                    PostOp::ColumnNormalize => {}
                }
            }
            if self.steps[..i].iter().any(|s| s.label == step.label) {
                return Err(format!("duplicate step label {:?}", step.label));
            }
        }
        Ok(())
    }

    /// Executes the chain, one injected-runner call per step.
    ///
    /// `run(index, label, a, b)` performs the single SpGEMM `a · b` (the
    /// left operand already transposed when the step asked for it) and
    /// returns the product plus metadata; the executor applies the step's
    /// post-ops, records fill-in and structure churn, and feeds the
    /// `Arc`-shared output forward. Transposed inputs are memoized per
    /// operand, so a Galerkin chain transposes `P` once regardless of how
    /// many steps read `Pᵀ`.
    pub fn execute_with<M, E, F>(
        &self,
        inputs: &[Arc<CsrMatrix<f64>>],
        mut run: F,
    ) -> Result<ChainRun<M>, ChainError<E>>
    where
        F: FnMut(
            usize,
            &str,
            &Arc<CsrMatrix<f64>>,
            &Arc<CsrMatrix<f64>>,
        ) -> Result<(CsrMatrix<f64>, M), E>,
    {
        self.validate().map_err(ChainError::Program)?;
        if inputs.len() != self.inputs.len() {
            return Err(ChainError::Program(format!(
                "chain {:?} expects {} inputs ({}), got {}",
                self.name,
                self.inputs.len(),
                self.inputs.join(", "),
                inputs.len()
            )));
        }
        let mut outputs: Vec<Arc<CsrMatrix<f64>>> = Vec::with_capacity(self.steps.len());
        let mut transposed: HashMap<Operand, Arc<CsrMatrix<f64>>> = HashMap::new();
        let mut seen: Vec<u64> = Vec::new();
        let mut records = Vec::with_capacity(self.steps.len());
        for (i, step) in self.steps.iter().enumerate() {
            let resolve = |op: Operand| -> Arc<CsrMatrix<f64>> {
                match op {
                    Operand::Input(k) => inputs[k].clone(),
                    Operand::Step(j) => outputs[j].clone(),
                }
            };
            let a = if step.transpose_a {
                transposed
                    .entry(step.a)
                    .or_insert_with(|| Arc::new(resolve(step.a).transpose()))
                    .clone()
            } else {
                resolve(step.a)
            };
            let b = resolve(step.b);
            let fp = structure_fingerprint(&a, &b);
            let fresh_structure = !seen.contains(&fp);
            if fresh_structure {
                seen.push(fp);
            }
            let (product, meta) = run(i, &step.label, &a, &b)
                .map_err(|source| ChainError::Step { index: i, source })?;
            let product_nnz = product.nnz();
            let mut out = product;
            for post in &step.post {
                out = match post {
                    PostOp::MaskBy(op) => out
                        .mask_by_pattern(&resolve(*op))
                        .map_err(ChainError::Post)?,
                    PostOp::ColumnNormalize => out.column_normalize(),
                    PostOp::ThresholdPrune(tol) => out.threshold_prune(*tol),
                };
            }
            records.push(StepRecord {
                index: i,
                label: step.label.clone(),
                a_nnz: a.nnz(),
                b_nnz: b.nnz(),
                product_nnz,
                output_nnz: out.nnz(),
                fill_in_permille: if a.nnz() == 0 {
                    0
                } else {
                    (product_nnz as u64 * 1000) / a.nnz() as u64
                },
                fresh_structure,
                meta,
            });
            outputs.push(Arc::new(out));
        }
        let result = outputs.last().expect("validated chains have steps").clone();
        Ok(ChainRun {
            steps: records,
            result,
        })
    }

    /// Executes the chain through the sequential Gustavson oracle — the
    /// reference every plan-cached execution must match bit-for-bit.
    pub fn execute_reference(
        &self,
        inputs: &[Arc<CsrMatrix<f64>>],
    ) -> Result<ChainRun<()>, ChainError<SparseError>> {
        self.execute_with(inputs, |_, _, a, b| spgemm_gustavson(a, b).map(|c| (c, ())))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path_graph(n: usize) -> Arc<CsrMatrix<f64>> {
        let mut coo = br_sparse::CooMatrix::with_capacity(n, n, 2 * n);
        for i in 0..n - 1 {
            coo.push(i as u32, i as u32 + 1, 1.0).unwrap();
            coo.push(i as u32 + 1, i as u32, 1.0).unwrap();
        }
        Arc::new(coo.to_csr())
    }

    fn square_once() -> ChainProgram {
        ChainProgram {
            name: "square".into(),
            inputs: vec!["A".into()],
            steps: vec![ChainStep {
                label: "s0".into(),
                a: Operand::Input(0),
                transpose_a: false,
                b: Operand::Input(0),
                post: Vec::new(),
            }],
        }
    }

    #[test]
    fn validate_rejects_dangling_references() {
        let mut p = square_once();
        p.steps[0].b = Operand::Input(3);
        assert!(p.validate().is_err());
        let mut p = square_once();
        p.steps[0].a = Operand::Step(0); // self-reference
        assert!(p.validate().is_err());
        let mut p = square_once();
        p.steps[0].post = vec![PostOp::ThresholdPrune(f64::NAN)];
        assert!(p.validate().is_err());
        let mut p = square_once();
        p.steps.clear();
        assert!(p.validate().is_err());
    }

    #[test]
    fn reference_execution_squares() {
        let a = path_graph(6);
        let run = square_once()
            .execute_reference(std::slice::from_ref(&a))
            .unwrap();
        let oracle = spgemm_gustavson(&a, &a).unwrap();
        assert_eq!(*run.result, oracle);
        assert_eq!(run.steps.len(), 1);
        assert!(run.steps[0].fresh_structure);
        assert_eq!(run.steps[0].product_nnz, oracle.nnz());
        assert_eq!(run.steps[0].output_nnz, oracle.nnz());
    }

    #[test]
    fn wrong_input_arity_is_a_program_error() {
        let err = square_once().execute_reference(&[]).unwrap_err();
        assert!(matches!(err, ChainError::Program(_)));
    }

    #[test]
    fn transposes_are_memoized_and_structure_churn_is_tracked() {
        // Two steps that both read Aᵀ with identical operands: the second
        // re-uses both the memoized transpose and the seen structure.
        let a = path_graph(5);
        let p = ChainProgram {
            name: "t".into(),
            inputs: vec!["A".into()],
            steps: vec![
                ChainStep {
                    label: "first".into(),
                    a: Operand::Input(0),
                    transpose_a: true,
                    b: Operand::Input(0),
                    post: Vec::new(),
                },
                ChainStep {
                    label: "second".into(),
                    a: Operand::Input(0),
                    transpose_a: true,
                    b: Operand::Input(0),
                    post: Vec::new(),
                },
            ],
        };
        let run = p.execute_reference(&[a]).unwrap();
        assert!(run.steps[0].fresh_structure);
        assert!(!run.steps[1].fresh_structure);
        assert_eq!(run.fresh_structures(), 1);
    }

    #[test]
    fn post_ops_apply_in_order() {
        // Square a path graph, mask by the original pattern, then prune
        // with a huge tolerance: everything dies.
        let a = path_graph(6);
        let mut p = square_once();
        p.steps[0].post = vec![
            PostOp::MaskBy(Operand::Input(0)),
            PostOp::ThresholdPrune(1e9),
        ];
        let run = p.execute_reference(std::slice::from_ref(&a)).unwrap();
        assert_eq!(run.result.nnz(), 0);
        // product_nnz still reports the raw square.
        assert_eq!(
            run.steps[0].product_nnz,
            spgemm_gustavson(&a, &a).unwrap().nnz()
        );
    }

    #[test]
    fn runner_errors_carry_the_step_index() {
        let a = path_graph(4);
        let p = ChainProgram {
            name: "two".into(),
            inputs: vec!["A".into()],
            steps: vec![
                ChainStep {
                    label: "ok".into(),
                    a: Operand::Input(0),
                    transpose_a: false,
                    b: Operand::Input(0),
                    post: Vec::new(),
                },
                ChainStep {
                    label: "boom".into(),
                    a: Operand::Step(0),
                    transpose_a: false,
                    b: Operand::Step(0),
                    post: Vec::new(),
                },
            ],
        };
        let err = p
            .execute_with::<(), _, _>(&[a], |i, _, a, b| {
                if i == 1 {
                    Err("kaput".to_string())
                } else {
                    spgemm_gustavson(a, b)
                        .map(|c| (c, ()))
                        .map_err(|e| e.to_string())
                }
            })
            .unwrap_err();
        match err {
            ChainError::Step { index, source } => {
                assert_eq!(index, 1);
                assert_eq!(source, "kaput");
            }
            other => panic!("expected step error, got {other:?}"),
        }
    }
}
