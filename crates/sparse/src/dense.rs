//! Minimal row-major dense matrix, used as a test oracle.
//!
//! All simulated spGEMM kernels are checked against the CPU Gustavson
//! reference, and the Gustavson reference itself is checked against plain
//! O(n³) dense multiplication on small inputs — this type exists for that
//! second link of the chain.

use crate::scalar::Scalar;

/// A row-major dense matrix; test-oracle quality, not a compute kernel.
#[derive(Debug, Clone, PartialEq)]
pub struct DenseMatrix<T> {
    nrows: usize,
    ncols: usize,
    data: Vec<T>,
}

impl<T: Scalar> DenseMatrix<T> {
    /// An all-zero matrix.
    pub fn zeros(nrows: usize, ncols: usize) -> Self {
        DenseMatrix {
            nrows,
            ncols,
            data: vec![T::ZERO; nrows * ncols],
        }
    }

    /// Builds from a row-major slice; `data.len()` must equal `nrows*ncols`.
    pub fn from_rows(nrows: usize, ncols: usize, data: Vec<T>) -> Self {
        assert_eq!(data.len(), nrows * ncols, "row-major data length mismatch");
        DenseMatrix { nrows, ncols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Element at `(r, c)`.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> T {
        self.data[r * self.ncols + c]
    }

    /// Mutable element at `(r, c)`.
    #[inline]
    pub fn get_mut(&mut self, r: usize, c: usize) -> &mut T {
        &mut self.data[r * self.ncols + c]
    }

    /// Classic O(n³) matrix product; the ground-truth oracle.
    pub fn matmul(&self, rhs: &DenseMatrix<T>) -> DenseMatrix<T> {
        assert_eq!(self.ncols, rhs.nrows, "inner dimensions must agree");
        let mut out = DenseMatrix::zeros(self.nrows, rhs.ncols);
        for i in 0..self.nrows {
            for k in 0..self.ncols {
                let a = self.get(i, k);
                if a == T::ZERO {
                    continue;
                }
                for j in 0..rhs.ncols {
                    *out.get_mut(i, j) += a * rhs.get(k, j);
                }
            }
        }
        out
    }

    /// `true` when all elements match within `tol`.
    pub fn approx_eq(&self, other: &DenseMatrix<T>, tol: f64) -> bool {
        self.nrows == other.nrows
            && self.ncols == other.ncols
            && self
                .data
                .iter()
                .zip(&other.data)
                .all(|(&a, &b)| a.approx_eq(b, tol))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_known_product() {
        // [[1,2],[3,4]] * [[5,6],[7,8]] = [[19,22],[43,50]]
        let a = DenseMatrix::from_rows(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let b = DenseMatrix::from_rows(2, 2, vec![5.0, 6.0, 7.0, 8.0]);
        let c = a.matmul(&b);
        assert_eq!(c.get(0, 0), 19.0);
        assert_eq!(c.get(0, 1), 22.0);
        assert_eq!(c.get(1, 0), 43.0);
        assert_eq!(c.get(1, 1), 50.0);
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = DenseMatrix::from_rows(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let mut i = DenseMatrix::zeros(3, 3);
        for k in 0..3 {
            *i.get_mut(k, k) = 1.0;
        }
        assert_eq!(a.matmul(&i), a);
    }

    #[test]
    fn rectangular_shapes() {
        let a = DenseMatrix::from_rows(1, 3, vec![1.0, 0.0, 2.0]);
        let b = DenseMatrix::from_rows(3, 2, vec![1.0, 1.0, 1.0, 1.0, 1.0, 1.0]);
        let c = a.matmul(&b);
        assert_eq!(c.nrows(), 1);
        assert_eq!(c.ncols(), 2);
        assert_eq!(c.get(0, 0), 3.0);
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn matmul_rejects_shape_mismatch() {
        let a = DenseMatrix::<f64>::zeros(2, 3);
        let b = DenseMatrix::<f64>::zeros(2, 3);
        let _ = a.matmul(&b);
    }
}
