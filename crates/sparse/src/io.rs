//! Matrix Market (`.mtx`) exchange-format I/O.
//!
//! The paper evaluates on SuiteSparse and SNAP matrices distributed in this
//! format. The reader supports the `matrix coordinate` variants actually
//! present in those collections: `real` / `integer` / `pattern` values with
//! `general` / `symmetric` / `skew-symmetric` symmetry. Pattern entries get
//! value `1`; symmetric entries are mirrored (diagonal not duplicated).

use std::fs::File;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

use crate::error::SparseError;
use crate::scalar::Scalar;
use crate::{CooMatrix, CsrMatrix, Result};

/// Value field of the Matrix Market header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MmField {
    Real,
    Integer,
    Pattern,
}

/// Symmetry field of the Matrix Market header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MmSymmetry {
    General,
    Symmetric,
    SkewSymmetric,
}

/// Reads a Matrix Market *coordinate* matrix from any reader.
pub fn read_matrix_market<T: Scalar, R: Read>(reader: R) -> Result<CooMatrix<T>> {
    let mut lines = BufReader::new(reader).lines().enumerate();

    // Header: %%MatrixMarket matrix coordinate <field> <symmetry>
    let (line_no, header) = loop {
        match lines.next() {
            Some((n, line)) => {
                let line = line?;
                if !line.trim().is_empty() {
                    break (n + 1, line);
                }
            }
            None => {
                return Err(SparseError::ParseError {
                    line: 0,
                    message: "empty stream".to_string(),
                })
            }
        }
    };
    let tokens: Vec<String> = header
        .split_whitespace()
        .map(|t| t.to_ascii_lowercase())
        .collect();
    if tokens.len() < 5 || tokens[0] != "%%matrixmarket" || tokens[1] != "matrix" {
        return Err(SparseError::ParseError {
            line: line_no,
            message: format!("not a MatrixMarket matrix header: {header:?}"),
        });
    }
    if tokens[2] != "coordinate" {
        return Err(SparseError::ParseError {
            line: line_no,
            message: format!("unsupported format {:?} (only coordinate)", tokens[2]),
        });
    }
    let field = match tokens[3].as_str() {
        "real" => MmField::Real,
        "integer" => MmField::Integer,
        "pattern" => MmField::Pattern,
        other => {
            return Err(SparseError::ParseError {
                line: line_no,
                message: format!("unsupported value field {other:?}"),
            })
        }
    };
    let symmetry = match tokens[4].as_str() {
        "general" => MmSymmetry::General,
        "symmetric" => MmSymmetry::Symmetric,
        "skew-symmetric" => MmSymmetry::SkewSymmetric,
        other => {
            return Err(SparseError::ParseError {
                line: line_no,
                message: format!("unsupported symmetry {other:?}"),
            })
        }
    };

    // Size line: first non-comment, non-blank line after the header.
    let (size_line_no, size_line) = loop {
        match lines.next() {
            Some((n, line)) => {
                let line = line?;
                let t = line.trim();
                if !t.is_empty() && !t.starts_with('%') {
                    break (n + 1, line);
                }
            }
            None => {
                return Err(SparseError::ParseError {
                    line: line_no,
                    message: "missing size line".to_string(),
                })
            }
        }
    };
    let dims: Vec<usize> = size_line
        .split_whitespace()
        .map(|t| {
            t.parse::<usize>().map_err(|e| SparseError::ParseError {
                line: size_line_no,
                message: format!("bad size token {t:?}: {e}"),
            })
        })
        .collect::<Result<_>>()?;
    if dims.len() != 3 {
        return Err(SparseError::ParseError {
            line: size_line_no,
            message: format!("size line must have 3 fields, got {}", dims.len()),
        });
    }
    let (nrows, ncols, declared_nnz) = (dims[0], dims[1], dims[2]);

    let cap = match symmetry {
        MmSymmetry::General => declared_nnz,
        _ => declared_nnz * 2,
    };
    let mut coo = CooMatrix::with_capacity(nrows, ncols, cap);
    let mut seen = 0usize;
    for (n, line) in lines {
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        let mut it = t.split_whitespace();
        let parse_idx = |tok: Option<&str>, n: usize| -> Result<usize> {
            let tok = tok.ok_or(SparseError::ParseError {
                line: n + 1,
                message: "missing index".to_string(),
            })?;
            tok.parse::<usize>().map_err(|e| SparseError::ParseError {
                line: n + 1,
                message: format!("bad index {tok:?}: {e}"),
            })
        };
        let r1 = parse_idx(it.next(), n)?;
        let c1 = parse_idx(it.next(), n)?;
        if r1 == 0 || c1 == 0 {
            return Err(SparseError::ParseError {
                line: n + 1,
                message: "MatrixMarket indices are 1-based; found 0".to_string(),
            });
        }
        let v = match field {
            MmField::Pattern => T::ONE,
            MmField::Real | MmField::Integer => {
                let tok = it.next().ok_or(SparseError::ParseError {
                    line: n + 1,
                    message: "missing value".to_string(),
                })?;
                let f = tok.parse::<f64>().map_err(|e| SparseError::ParseError {
                    line: n + 1,
                    message: format!("bad value {tok:?}: {e}"),
                })?;
                T::from_f64(f)
            }
        };
        let (r, c) = (r1 - 1, c1 - 1);
        coo.push(r as u32, c as u32, v)?;
        match symmetry {
            MmSymmetry::General => {}
            MmSymmetry::Symmetric if r != c => coo.push(c as u32, r as u32, v)?,
            MmSymmetry::SkewSymmetric if r != c => coo.push(c as u32, r as u32, -v)?,
            _ => {}
        }
        seen += 1;
    }
    if seen != declared_nnz {
        return Err(SparseError::ParseError {
            line: 0,
            message: format!("header declares {declared_nnz} entries, found {seen}"),
        });
    }
    Ok(coo)
}

/// Reads a Matrix Market file from disk and compresses it to CSR.
pub fn read_matrix_market_file<T: Scalar, P: AsRef<Path>>(path: P) -> Result<CsrMatrix<T>> {
    let file = File::open(path.as_ref())?;
    Ok(read_matrix_market::<T, _>(file)?.to_csr())
}

/// Writes a CSR matrix as `matrix coordinate real general`.
pub fn write_matrix_market<T: Scalar, W: Write>(m: &CsrMatrix<T>, writer: W) -> Result<()> {
    let mut w = BufWriter::new(writer);
    writeln!(w, "%%MatrixMarket matrix coordinate real general")?;
    writeln!(w, "% written by blockreorg/br-sparse")?;
    writeln!(w, "{} {} {}", m.nrows(), m.ncols(), m.nnz())?;
    for (r, c, v) in m.iter() {
        writeln!(w, "{} {} {:e}", r + 1, c + 1, v.to_f64())?;
    }
    w.flush()?;
    Ok(())
}

/// Writes a CSR matrix to a `.mtx` file on disk.
pub fn write_matrix_market_file<T: Scalar, P: AsRef<Path>>(
    m: &CsrMatrix<T>,
    path: P,
) -> Result<()> {
    let file = File::create(path.as_ref())?;
    write_matrix_market(m, file)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reads_general_real() {
        let text =
            "%%MatrixMarket matrix coordinate real general\n% comment\n3 3 2\n1 1 2.5\n3 2 -1.0\n";
        let m = read_matrix_market::<f64, _>(text.as_bytes())
            .unwrap()
            .to_csr();
        assert_eq!(m.nnz(), 2);
        assert_eq!(m.get(0, 0), 2.5);
        assert_eq!(m.get(2, 1), -1.0);
    }

    #[test]
    fn reads_pattern_as_ones() {
        let text = "%%MatrixMarket matrix coordinate pattern general\n2 2 2\n1 2\n2 1\n";
        let m = read_matrix_market::<f64, _>(text.as_bytes())
            .unwrap()
            .to_csr();
        assert_eq!(m.get(0, 1), 1.0);
        assert_eq!(m.get(1, 0), 1.0);
    }

    #[test]
    fn symmetric_mirrors_off_diagonal_only() {
        let text =
            "%%MatrixMarket matrix coordinate real symmetric\n3 3 3\n1 1 1.0\n2 1 2.0\n3 2 3.0\n";
        let m = read_matrix_market::<f64, _>(text.as_bytes())
            .unwrap()
            .to_csr();
        assert_eq!(m.nnz(), 5); // diagonal once, off-diagonals mirrored
        assert_eq!(m.get(0, 1), 2.0);
        assert_eq!(m.get(1, 0), 2.0);
        assert_eq!(m.get(0, 0), 1.0);
    }

    #[test]
    fn skew_symmetric_negates_mirror() {
        let text = "%%MatrixMarket matrix coordinate real skew-symmetric\n2 2 1\n2 1 4.0\n";
        let m = read_matrix_market::<f64, _>(text.as_bytes())
            .unwrap()
            .to_csr();
        assert_eq!(m.get(1, 0), 4.0);
        assert_eq!(m.get(0, 1), -4.0);
    }

    #[test]
    fn rejects_wrong_header() {
        assert!(read_matrix_market::<f64, _>(
            "%%MatrixMarket matrix array real general\n1 1\n".as_bytes()
        )
        .is_err());
        assert!(read_matrix_market::<f64, _>("garbage\n".as_bytes()).is_err());
    }

    #[test]
    fn rejects_nnz_mismatch() {
        let text = "%%MatrixMarket matrix coordinate real general\n2 2 3\n1 1 1.0\n";
        assert!(read_matrix_market::<f64, _>(text.as_bytes()).is_err());
    }

    #[test]
    fn rejects_zero_based_indices() {
        let text = "%%MatrixMarket matrix coordinate real general\n2 2 1\n0 1 1.0\n";
        assert!(read_matrix_market::<f64, _>(text.as_bytes()).is_err());
    }

    #[test]
    fn write_read_roundtrip() {
        let m =
            CsrMatrix::try_new(2, 3, vec![0, 2, 3], vec![0, 2, 1], vec![1.5, -2.0, 0.25]).unwrap();
        let mut buf = Vec::new();
        write_matrix_market(&m, &mut buf).unwrap();
        let back = read_matrix_market::<f64, _>(buf.as_slice())
            .unwrap()
            .to_csr();
        assert!(m.approx_eq(&back, 1e-12));
    }

    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    use std::collections::BTreeSet;

    /// Random COO with possibly-duplicate coordinates (CSR compression
    /// sums them, which is exactly what the round trip must preserve).
    fn random_coo(rng: &mut SmallRng) -> CooMatrix<f64> {
        let nrows = rng.gen_range(1usize..32);
        let ncols = rng.gen_range(1usize..32);
        let entries = rng.gen_range(0usize..160);
        let mut coo = CooMatrix::with_capacity(nrows, ncols, entries);
        for _ in 0..entries {
            let r = rng.gen_range(0..nrows) as u32;
            let c = rng.gen_range(0..ncols) as u32;
            coo.push(r, c, rng.gen_range(-8.0f64..8.0)).unwrap();
        }
        coo
    }

    /// Random distinct coordinates on or below the diagonal of an n×n
    /// matrix — the storable half of a symmetric/skew-symmetric file.
    fn random_lower_triangle(rng: &mut SmallRng, strict: bool) -> (usize, BTreeSet<(u32, u32)>) {
        let n = rng.gen_range(2usize..24);
        let entries = rng.gen_range(1usize..64);
        let mut coords = BTreeSet::new();
        for _ in 0..entries {
            let r = rng.gen_range(0..n) as u32;
            let c = rng.gen_range(0..r + 1);
            if !(strict && r == c) {
                coords.insert((r, c));
            }
        }
        (n, coords)
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(24))]
        /// Property: write → read is lossless for arbitrary COO matrices.
        /// The writer prints `{:e}`, which in Rust is shortest-round-trip,
        /// so equality is exact — not approximate.
        #[test]
        fn prop_write_read_roundtrip_is_exact(seed in 0u64..10_000) {
            let mut rng = SmallRng::seed_from_u64(seed);
            let m = random_coo(&mut rng).to_csr();
            let mut buf = Vec::new();
            write_matrix_market(&m, &mut buf).unwrap();
            let back = read_matrix_market::<f64, _>(buf.as_slice()).unwrap().to_csr();
            proptest::prop_assert_eq!(back, m);
        }

        /// Property: a `symmetric` file expands to exactly the matrix its
        /// explicit `general` form describes, for random lower triangles.
        #[test]
        fn prop_symmetric_matches_explicit_general(seed in 0u64..10_000) {
            let mut rng = SmallRng::seed_from_u64(seed);
            let (n, coords) = random_lower_triangle(&mut rng, false);
            let mut sym = format!(
                "%%MatrixMarket matrix coordinate real symmetric\n{n} {n} {}\n",
                coords.len()
            );
            let mut gen = CooMatrix::with_capacity(n, n, coords.len() * 2);
            for &(r, c) in &coords {
                let v = rng.gen_range(-4.0f64..4.0);
                sym.push_str(&format!("{} {} {v:e}\n", r + 1, c + 1));
                gen.push(r, c, v).unwrap();
                if r != c {
                    gen.push(c, r, v).unwrap();
                }
            }
            let m = read_matrix_market::<f64, _>(sym.as_bytes()).unwrap().to_csr();
            proptest::prop_assert_eq!(m, gen.to_csr());
        }

        /// Property: a `skew-symmetric` file mirrors with negated values;
        /// strictly-lower storage only.
        #[test]
        fn prop_skew_symmetric_negates_mirror(seed in 0u64..10_000) {
            let mut rng = SmallRng::seed_from_u64(seed);
            let (n, coords) = random_lower_triangle(&mut rng, true);
            let mut skew = format!(
                "%%MatrixMarket matrix coordinate real skew-symmetric\n{n} {n} {}\n",
                coords.len()
            );
            let mut gen = CooMatrix::with_capacity(n, n, coords.len() * 2);
            for &(r, c) in &coords {
                let v = rng.gen_range(-4.0f64..4.0);
                skew.push_str(&format!("{} {} {v:e}\n", r + 1, c + 1));
                gen.push(r, c, v).unwrap();
                gen.push(c, r, -v).unwrap();
            }
            let m = read_matrix_market::<f64, _>(skew.as_bytes()).unwrap().to_csr();
            proptest::prop_assert_eq!(m, gen.to_csr());
        }

        /// Property: a `pattern` file reads as ones at exactly the listed
        /// (distinct) coordinates.
        #[test]
        fn prop_pattern_reads_as_ones(seed in 0u64..10_000) {
            let mut rng = SmallRng::seed_from_u64(seed);
            let nrows = rng.gen_range(1usize..24);
            let ncols = rng.gen_range(1usize..24);
            let mut coords = BTreeSet::new();
            for _ in 0..rng.gen_range(0usize..80) {
                coords.insert((
                    rng.gen_range(0..nrows) as u32,
                    rng.gen_range(0..ncols) as u32,
                ));
            }
            let mut text = format!(
                "%%MatrixMarket matrix coordinate pattern general\n{nrows} {ncols} {}\n",
                coords.len()
            );
            let mut gen = CooMatrix::with_capacity(nrows, ncols, coords.len());
            for &(r, c) in &coords {
                text.push_str(&format!("{} {}\n", r + 1, c + 1));
                gen.push(r, c, 1.0f64).unwrap();
            }
            let m = read_matrix_market::<f64, _>(text.as_bytes()).unwrap().to_csr();
            proptest::prop_assert_eq!(m, gen.to_csr());
        }
    }
}
