//! CPU reference kernels: spGEMM oracle, symbolic analysis, spMV, addition,
//! and flop accounting.
//!
//! Everything here is *sequential reference* code. The simulated GPU kernels
//! in `br-spgemm` and the Block Reorganizer pass are all validated against
//! these implementations, and these in turn are validated against dense
//! oracles on small inputs.

pub mod flops;
pub mod spgemm_ref;
pub mod symbolic;
pub mod vecops;

pub use flops::{compression_factor, multiply_flops, multiply_ops};
pub use spgemm_ref::{sparse_add, spgemm_gustavson};
pub use symbolic::{
    block_products, intermediate_nnz, row_intermediate_nnz, row_intermediate_nnz_threaded,
    symbolic_nnz,
};
pub use vecops::{spmv, spmv_transpose};
