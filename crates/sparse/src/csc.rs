//! Compressed Sparse Column format.
//!
//! The outer-product expansion walks *columns* of the left operand `A`
//! (each thread block multiplies column `a₌ᵢ` by row `bᵢ₌`), so `A` is held
//! in CSC during expansion while `B` stays in CSR. The arrays of `CSC(A)`
//! are exactly those of `CSR(Aᵀ)`; this type keeps the column-oriented
//! labelling explicit instead of forcing callers to reason about transposes.

use crate::scalar::Scalar;
use crate::{CsrMatrix, Result};

/// A sparse matrix in Compressed Sparse Column form.
///
/// Invariants mirror [`CsrMatrix`] with rows ↔ columns exchanged: `ptr` has
/// `ncols + 1` entries and row indices within each column are strictly
/// increasing.
#[derive(Debug, Clone, PartialEq)]
pub struct CscMatrix<T> {
    nrows: usize,
    ncols: usize,
    ptr: Vec<usize>,
    idx: Vec<u32>,
    val: Vec<T>,
}

impl<T: Scalar> CscMatrix<T> {
    /// Builds a CSC matrix, validating all invariants.
    pub fn try_new(
        nrows: usize,
        ncols: usize,
        ptr: Vec<usize>,
        idx: Vec<u32>,
        val: Vec<T>,
    ) -> Result<Self> {
        // Reuse the CSR validator on the transposed labelling.
        let as_csr = CsrMatrix::try_new(ncols, nrows, ptr, idx, val)?;
        Ok(as_csr.into_csc_of_transpose())
    }

    /// Builds from parts the caller guarantees to be canonical.
    pub fn from_parts_unchecked(
        nrows: usize,
        ncols: usize,
        ptr: Vec<usize>,
        idx: Vec<u32>,
        val: Vec<T>,
    ) -> Self {
        let m = CscMatrix {
            nrows,
            ncols,
            ptr,
            idx,
            val,
        };
        debug_assert!(
            m.clone().to_csr_of_transpose().check_invariants().is_ok(),
            "CSC invariants violated"
        );
        m
    }

    /// Number of rows.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored entries.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.idx.len()
    }

    /// Column pointer array (`ncols + 1` entries).
    #[inline]
    pub fn ptr(&self) -> &[usize] {
        &self.ptr
    }

    /// Row index array.
    #[inline]
    pub fn idx(&self) -> &[u32] {
        &self.idx
    }

    /// Value array.
    #[inline]
    pub fn val(&self) -> &[T] {
        &self.val
    }

    /// Row indices and values of column `c`.
    #[inline]
    pub fn col(&self, c: usize) -> (&[u32], &[T]) {
        let (s, e) = (self.ptr[c], self.ptr[c + 1]);
        (&self.idx[s..e], &self.val[s..e])
    }

    /// Number of stored entries in column `c`.
    #[inline]
    pub fn col_nnz(&self, c: usize) -> usize {
        self.ptr[c + 1] - self.ptr[c]
    }

    /// Per-column nnz — the column degree sequence.
    pub fn col_degrees(&self) -> Vec<usize> {
        self.ptr.windows(2).map(|w| w[1] - w[0]).collect()
    }

    /// Reinterprets `self` as the CSR of `Aᵀ` (zero-copy relabelling).
    pub fn to_csr_of_transpose(self) -> CsrMatrix<T> {
        CsrMatrix::from_parts_unchecked(self.ncols, self.nrows, self.ptr, self.idx, self.val)
    }

    /// Converts to CSR form of the *same* matrix.
    pub fn to_csr(&self) -> CsrMatrix<T> {
        self.clone().to_csr_of_transpose().transpose()
    }

    /// Validates canonical-form invariants.
    pub fn check_invariants(&self) -> Result<()> {
        self.clone().to_csr_of_transpose().check_invariants()
    }

    /// Applies the same row gather as [`CsrMatrix::permute_rows`] on the
    /// column-oriented layout: row `i` of the result is row `order[i]` of
    /// `self`. The column pointer array is reused as-is (column nnz never
    /// changes under a row permutation); each stored row index `r` is
    /// relabelled to its position in `order` and the entries of every
    /// column are re-sorted to restore the strictly-increasing invariant.
    /// An identity order returns a plain clone.
    pub fn permute_rows(&self, order: &[u32]) -> CscMatrix<T> {
        assert_eq!(order.len(), self.nrows, "order must cover every row");
        if order.iter().enumerate().all(|(i, &r)| r as usize == i) {
            return self.clone();
        }
        let mut position = vec![u32::MAX; self.nrows];
        for (i, &r) in order.iter().enumerate() {
            position[r as usize] = i as u32;
        }
        let mut idx = Vec::with_capacity(self.nnz());
        let mut val = Vec::with_capacity(self.nnz());
        let mut entries: Vec<(u32, T)> = Vec::new();
        for c in 0..self.ncols {
            let (rows, vals) = self.col(c);
            entries.clear();
            entries.extend(
                rows.iter()
                    .zip(vals)
                    .map(|(&r, &v)| (position[r as usize], v)),
            );
            entries.sort_unstable_by_key(|&(r, _)| r);
            idx.extend(entries.iter().map(|&(r, _)| r));
            val.extend(entries.iter().map(|&(_, v)| v));
        }
        CscMatrix::from_parts_unchecked(self.nrows, self.ncols, self.ptr.clone(), idx, val)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// [[1, 0, 2], [0, 0, 0], [3, 4, 0]] in CSC.
    fn sample() -> CscMatrix<f64> {
        CscMatrix::try_new(
            3,
            3,
            vec![0, 2, 3, 4],
            vec![0, 2, 2, 0],
            vec![1.0, 3.0, 4.0, 2.0],
        )
        .unwrap()
    }

    #[test]
    fn col_access() {
        let m = sample();
        assert_eq!(m.col_nnz(0), 2);
        assert_eq!(m.col_nnz(1), 1);
        let (rows, vals) = m.col(0);
        assert_eq!(rows, &[0, 2]);
        assert_eq!(vals, &[1.0, 3.0]);
        assert_eq!(m.col_degrees(), vec![2, 1, 1]);
    }

    #[test]
    fn try_new_rejects_unsorted_rows_within_column() {
        assert!(CscMatrix::<f64>::try_new(3, 1, vec![0, 2], vec![2, 0], vec![1.0, 2.0]).is_err());
    }

    #[test]
    fn csr_csc_roundtrip() {
        let m = sample();
        let csr = m.to_csr();
        assert_eq!(csr.get(2, 1), 4.0);
        assert_eq!(csr.to_csc(), m);
    }

    #[test]
    fn transpose_relabelling_is_consistent() {
        let m = sample();
        let csr_t = m.clone().to_csr_of_transpose();
        // (r, c) of Aᵀ equals (c, r) of A.
        assert_eq!(csr_t.get(0, 2), 3.0);
        assert_eq!(csr_t.get(1, 2), 4.0);
    }

    #[test]
    fn permute_rows_agrees_with_the_csr_side() {
        let m = sample();
        let order = [2u32, 0, 1];
        let permuted = m.permute_rows(&order);
        permuted.check_invariants().unwrap();
        assert_eq!(permuted, m.to_csr().permute_rows(&order).to_csc());
        // Column nnz is invariant under row permutation; the pointer
        // array is reused untouched.
        assert_eq!(permuted.col_degrees(), m.col_degrees());
        assert_eq!(permuted.ptr(), m.ptr());
        // Identity order is a plain clone.
        assert_eq!(m.permute_rows(&[0, 1, 2]), m);
    }
}
