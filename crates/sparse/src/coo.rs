//! Coordinate (triplet) format — the assembly format.
//!
//! Generators and the Matrix Market reader produce [`CooMatrix`]; it permits
//! unsorted and duplicate entries (duplicates are summed on compression),
//! which is exactly the contract of the Matrix Market exchange format and of
//! R-MAT style edge samplers.

use crate::error::SparseError;
use crate::scalar::Scalar;
use crate::{CscMatrix, CsrMatrix, Result};

/// A sparse matrix in coordinate (COO / triplet) form.
///
/// Entries may appear in any order and coordinates may repeat; repeated
/// coordinates are *summed* when converting to a compressed format, matching
/// Matrix Market semantics.
#[derive(Debug, Clone, PartialEq)]
pub struct CooMatrix<T> {
    nrows: usize,
    ncols: usize,
    rows: Vec<u32>,
    cols: Vec<u32>,
    vals: Vec<T>,
}

impl<T: Scalar> CooMatrix<T> {
    /// Creates an empty matrix of the given shape.
    ///
    /// # Panics
    /// Panics if either dimension exceeds `u32::MAX` (indices are `u32`).
    pub fn new(nrows: usize, ncols: usize) -> Self {
        assert!(
            nrows <= u32::MAX as usize && ncols <= u32::MAX as usize,
            "matrix dimensions must fit in u32 indices"
        );
        CooMatrix {
            nrows,
            ncols,
            rows: Vec::new(),
            cols: Vec::new(),
            vals: Vec::new(),
        }
    }

    /// Creates an empty matrix with capacity for `cap` entries.
    pub fn with_capacity(nrows: usize, ncols: usize, cap: usize) -> Self {
        let mut m = Self::new(nrows, ncols);
        m.rows.reserve(cap);
        m.cols.reserve(cap);
        m.vals.reserve(cap);
        m
    }

    /// Builds a COO matrix from parallel triplet arrays, validating bounds.
    pub fn from_triplets(
        nrows: usize,
        ncols: usize,
        rows: Vec<u32>,
        cols: Vec<u32>,
        vals: Vec<T>,
    ) -> Result<Self> {
        if rows.len() != cols.len() || rows.len() != vals.len() {
            return Err(SparseError::InvalidStructure(format!(
                "triplet arrays must have equal length: rows={}, cols={}, vals={}",
                rows.len(),
                cols.len(),
                vals.len()
            )));
        }
        for (&r, &c) in rows.iter().zip(&cols) {
            if r as usize >= nrows || c as usize >= ncols {
                return Err(SparseError::IndexOutOfBounds {
                    row: r as usize,
                    col: c as usize,
                    nrows,
                    ncols,
                });
            }
        }
        Ok(CooMatrix {
            nrows,
            ncols,
            rows,
            cols,
            vals,
        })
    }

    /// Appends one entry. Out-of-bounds coordinates are an error.
    pub fn push(&mut self, row: u32, col: u32, val: T) -> Result<()> {
        if row as usize >= self.nrows || col as usize >= self.ncols {
            return Err(SparseError::IndexOutOfBounds {
                row: row as usize,
                col: col as usize,
                nrows: self.nrows,
                ncols: self.ncols,
            });
        }
        self.rows.push(row);
        self.cols.push(col);
        self.vals.push(val);
        Ok(())
    }

    /// Number of rows.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored entries *including* duplicates.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// Iterates over `(row, col, value)` triplets in storage order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, u32, T)> + '_ {
        self.rows
            .iter()
            .zip(&self.cols)
            .zip(&self.vals)
            .map(|((&r, &c), &v)| (r, c, v))
    }

    /// Converts to CSR, summing duplicate coordinates and dropping entries
    /// whose accumulated value is exactly zero? — **no**: explicit zeros are
    /// kept, because sparsity *structure* (not numeric value) drives every
    /// workload model in this workspace, and Matrix Market files may contain
    /// explicit zeros that the paper's preprocessing would still count.
    pub fn to_csr(&self) -> CsrMatrix<T> {
        // Counting sort on rows: O(nnz + nrows), no comparison sort needed.
        let mut counts = vec![0usize; self.nrows + 1];
        for &r in &self.rows {
            counts[r as usize + 1] += 1;
        }
        for i in 0..self.nrows {
            counts[i + 1] += counts[i];
        }
        let ptr = counts.clone();
        let mut idx = vec![0u32; self.nnz()];
        let mut val = vec![T::ZERO; self.nnz()];
        let mut cursor = counts;
        for ((&r, &c), &v) in self.rows.iter().zip(&self.cols).zip(&self.vals) {
            let p = cursor[r as usize];
            idx[p] = c;
            val[p] = v;
            cursor[r as usize] += 1;
        }
        // Sort columns within each row and sum duplicates.
        let mut out_ptr = Vec::with_capacity(self.nrows + 1);
        let mut out_idx = Vec::with_capacity(self.nnz());
        let mut out_val = Vec::with_capacity(self.nnz());
        out_ptr.push(0usize);
        let mut scratch: Vec<(u32, T)> = Vec::new();
        for r in 0..self.nrows {
            let (s, e) = (ptr[r], ptr[r + 1]);
            scratch.clear();
            scratch.extend(idx[s..e].iter().copied().zip(val[s..e].iter().copied()));
            scratch.sort_unstable_by_key(|&(c, _)| c);
            let mut i = 0;
            while i < scratch.len() {
                let (c, mut v) = scratch[i];
                let mut j = i + 1;
                while j < scratch.len() && scratch[j].0 == c {
                    v += scratch[j].1;
                    j += 1;
                }
                out_idx.push(c);
                out_val.push(v);
                i = j;
            }
            out_ptr.push(out_idx.len());
        }
        CsrMatrix::from_parts_unchecked(self.nrows, self.ncols, out_ptr, out_idx, out_val)
    }

    /// Converts to CSC, summing duplicate coordinates (explicit zeros kept).
    pub fn to_csc(&self) -> CscMatrix<T> {
        self.transposed_view_coo().to_csr().into_csc_of_transpose()
    }

    /// Returns the COO of the transpose (swaps coordinate arrays; cheap).
    pub fn transposed_view_coo(&self) -> CooMatrix<T> {
        CooMatrix {
            nrows: self.ncols,
            ncols: self.nrows,
            rows: self.cols.clone(),
            cols: self.rows.clone(),
            vals: self.vals.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CooMatrix<f64> {
        let mut m = CooMatrix::new(3, 4);
        m.push(0, 1, 1.0).unwrap();
        m.push(2, 3, 2.0).unwrap();
        m.push(0, 1, 3.0).unwrap(); // duplicate, sums to 4.0
        m.push(1, 0, 5.0).unwrap();
        m
    }

    #[test]
    fn push_and_len() {
        let m = sample();
        assert_eq!(m.nnz(), 4);
        assert_eq!(m.nrows(), 3);
        assert_eq!(m.ncols(), 4);
    }

    #[test]
    fn push_out_of_bounds_is_rejected() {
        let mut m = CooMatrix::<f64>::new(2, 2);
        assert!(m.push(2, 0, 1.0).is_err());
        assert!(m.push(0, 2, 1.0).is_err());
        assert_eq!(m.nnz(), 0);
    }

    #[test]
    fn from_triplets_validates_lengths_and_bounds() {
        assert!(CooMatrix::<f64>::from_triplets(2, 2, vec![0], vec![0, 1], vec![1.0]).is_err());
        assert!(
            CooMatrix::<f64>::from_triplets(2, 2, vec![0, 5], vec![0, 1], vec![1.0, 2.0]).is_err()
        );
        assert!(
            CooMatrix::<f64>::from_triplets(2, 2, vec![0, 1], vec![0, 1], vec![1.0, 2.0]).is_ok()
        );
    }

    #[test]
    fn to_csr_sums_duplicates_and_sorts_columns() {
        let csr = sample().to_csr();
        assert_eq!(csr.nnz(), 3);
        let (idx, val) = csr.row(0);
        assert_eq!(idx, &[1]);
        assert_eq!(val, &[4.0]);
        let (idx, _) = csr.row(1);
        assert_eq!(idx, &[0]);
        let (idx, val) = csr.row(2);
        assert_eq!(idx, &[3]);
        assert_eq!(val, &[2.0]);
        csr.check_invariants().unwrap();
    }

    #[test]
    fn empty_rows_are_preserved() {
        let mut m = CooMatrix::<f64>::new(5, 5);
        m.push(4, 0, 1.0).unwrap();
        let csr = m.to_csr();
        assert_eq!(csr.row_nnz(0), 0);
        assert_eq!(csr.row_nnz(4), 1);
    }

    #[test]
    fn explicit_zero_entries_are_kept() {
        let mut m = CooMatrix::<f64>::new(2, 2);
        m.push(0, 0, 0.0).unwrap();
        let csr = m.to_csr();
        assert_eq!(csr.nnz(), 1);
    }

    #[test]
    fn transposed_coo_swaps_shape() {
        let t = sample().transposed_view_coo();
        assert_eq!(t.nrows(), 4);
        assert_eq!(t.ncols(), 3);
        assert_eq!(t.nnz(), 4);
    }
}
