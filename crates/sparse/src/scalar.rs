//! Numeric element trait.
//!
//! The workspace only ever needs real floating-point elements (the paper
//! multiplies edge-weight matrices), so [`Scalar`] is deliberately small:
//! enough arithmetic for expansion/merge kernels plus conversions used by
//! generators and test oracles.

use std::fmt::Debug;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub};

/// A real scalar usable as a sparse-matrix element.
///
/// Implemented for `f32` and `f64`. All simulated GPU kernels and CPU
/// references are generic over this trait so that results can be checked in
/// `f64` while kernels may run in GPU-realistic `f32`.
pub trait Scalar:
    Copy
    + Debug
    + Default
    + PartialEq
    + PartialOrd
    + Send
    + Sync
    + 'static
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
    + AddAssign
    + MulAssign
    + Sum
{
    /// Additive identity.
    const ZERO: Self;
    /// Multiplicative identity.
    const ONE: Self;

    /// Lossy conversion from `f64` (used by generators and I/O).
    fn from_f64(v: f64) -> Self;
    /// Widening conversion to `f64` (used by oracles and statistics).
    fn to_f64(self) -> f64;
    /// Absolute value.
    fn abs(self) -> Self;

    /// `true` when `|self - other| <= tol` in `f64` arithmetic.
    fn approx_eq(self, other: Self, tol: f64) -> bool {
        (self.to_f64() - other.to_f64()).abs() <= tol
    }
}

macro_rules! impl_scalar {
    ($t:ty) => {
        impl Scalar for $t {
            const ZERO: Self = 0.0;
            const ONE: Self = 1.0;

            #[inline]
            fn from_f64(v: f64) -> Self {
                v as $t
            }
            #[inline]
            fn to_f64(self) -> f64 {
                self as f64
            }
            #[inline]
            fn abs(self) -> Self {
                <$t>::abs(self)
            }
        }
    };
}

impl_scalar!(f32);
impl_scalar!(f64);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identities() {
        assert_eq!(f64::ZERO + f64::ONE, 1.0);
        assert_eq!(f32::ONE * f32::ONE, 1.0);
    }

    #[test]
    fn conversions_roundtrip_for_small_integers() {
        for v in [-3.0, 0.0, 1.0, 1024.0] {
            assert_eq!(f32::from_f64(v).to_f64(), v);
            assert_eq!(f64::from_f64(v).to_f64(), v);
        }
    }

    #[test]
    fn approx_eq_respects_tolerance() {
        assert!(1.0f64.approx_eq(1.0 + 1e-12, 1e-9));
        assert!(!1.0f64.approx_eq(1.1, 1e-9));
    }

    #[test]
    fn abs_matches_std() {
        assert_eq!(Scalar::abs(-2.5f64), 2.5);
        assert_eq!(Scalar::abs(2.5f32), 2.5);
    }
}
