//! # br-sparse — sparse matrix substrate
//!
//! Sparse matrix formats and reference algorithms used throughout the
//! Block Reorganizer reproduction:
//!
//! * [`CooMatrix`] — coordinate (triplet) format, the assembly format.
//! * [`CsrMatrix`] — compressed sparse row, the canonical compute format.
//! * [`CscMatrix`] — compressed sparse column; the outer-product scheme reads
//!   columns of `A`, so `A` is held in CSC during expansion.
//! * Matrix Market I/O ([`io`]) so genuine SuiteSparse/SNAP files can be used
//!   where available.
//! * CPU reference kernels ([`ops`]) — most importantly a sequential
//!   Gustavson spGEMM that acts as the correctness oracle for every simulated
//!   GPU kernel in the workspace.
//! * Distribution statistics ([`stats`]) — degree skew metrics used for
//!   dataset characterisation (regular vs power-law, Table II).
//! * Deterministic host parallelism ([`par`]) — fixed-chunk scoped-thread
//!   helpers whose results are bit-identical at any thread count, used by
//!   the simulator, the numeric mergers, and the benchmark runner.
//! * Element-wise chain operators ([`eltwise`]) — pattern masking, column
//!   normalisation, and threshold pruning, the deterministic post-ops of
//!   the `br-workloads` chain executor.
//!
//! Index convention: column indices are `u32` (matching what the paper's
//! CUDA kernels would use on-device); row/column pointer arrays are `usize`.
//! Values are generic over [`Scalar`] (`f32` or `f64`).

#![warn(missing_docs)]

pub mod coo;
pub mod csc;
pub mod csr;
pub mod dense;
pub mod eltwise;
pub mod error;
pub mod io;
pub mod ops;
pub mod par;
pub mod scalar;
pub mod stats;

pub use coo::CooMatrix;
pub use csc::CscMatrix;
pub use csr::CsrMatrix;
pub use dense::DenseMatrix;
pub use error::SparseError;
pub use scalar::Scalar;

/// Result alias for fallible sparse-matrix operations.
pub type Result<T> = std::result::Result<T, SparseError>;
