//! Sparse matrix–vector products, used by the graph-analytics examples
//! (PageRank-style ranking is one of the motivating applications in the
//! paper's introduction).

use crate::error::SparseError;
use crate::scalar::Scalar;
use crate::{CsrMatrix, Result};

/// `y = A · x`.
pub fn spmv<T: Scalar>(a: &CsrMatrix<T>, x: &[T]) -> Result<Vec<T>> {
    if x.len() != a.ncols() {
        return Err(SparseError::ShapeMismatch {
            op: "spmv",
            lhs: (a.nrows(), a.ncols()),
            rhs: (x.len(), 1),
        });
    }
    Ok((0..a.nrows())
        .map(|r| {
            let (cols, vals) = a.row(r);
            cols.iter()
                .zip(vals)
                .map(|(&c, &v)| v * x[c as usize])
                .sum()
        })
        .collect())
}

/// `y = Aᵀ · x` without materialising the transpose (scatter formulation).
#[allow(clippy::needless_range_loop)] // r indexes both the matrix rows and x
pub fn spmv_transpose<T: Scalar>(a: &CsrMatrix<T>, x: &[T]) -> Result<Vec<T>> {
    if x.len() != a.nrows() {
        return Err(SparseError::ShapeMismatch {
            op: "spmv_transpose",
            lhs: (a.ncols(), a.nrows()),
            rhs: (x.len(), 1),
        });
    }
    let mut y = vec![T::ZERO; a.ncols()];
    for r in 0..a.nrows() {
        let (cols, vals) = a.row(r);
        let xr = x[r];
        for (&c, &v) in cols.iter().zip(vals) {
            y[c as usize] += v * xr;
        }
    }
    Ok(y)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m() -> CsrMatrix<f64> {
        // [[1, 0, 2], [0, 3, 0]]
        CsrMatrix::try_new(2, 3, vec![0, 2, 3], vec![0, 2, 1], vec![1.0, 2.0, 3.0]).unwrap()
    }

    #[test]
    fn spmv_matches_dense() {
        let y = spmv(&m(), &[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(y, vec![7.0, 6.0]);
    }

    #[test]
    fn spmv_transpose_matches_explicit_transpose() {
        let a = m();
        let x = vec![5.0, 7.0];
        let via_scatter = spmv_transpose(&a, &x).unwrap();
        let via_t = spmv(&a.transpose(), &x).unwrap();
        assert_eq!(via_scatter, via_t);
    }

    #[test]
    fn wrong_vector_length_rejected() {
        assert!(spmv(&m(), &[1.0]).is_err());
        assert!(spmv_transpose(&m(), &[1.0, 2.0, 3.0]).is_err());
    }
}
