//! Symbolic analysis of `C = A · B` — the quantities the Block Reorganizer's
//! *precalculation* step computes before launching any numeric kernel.
//!
//! Three distinct numbers matter (Section IV-B of the paper):
//!
//! * **block-wise nnz** — for outer-product pair `i`, the number of
//!   intermediate products `nnz(a₌ᵢ) · nnz(bᵢ₌)`: the workload of thread
//!   block `i`, used to classify dominators / low performers.
//! * **row-wise intermediate nnz** — for output row `r`, the number of
//!   intermediate products landing in row `r` (duplicates counted): the
//!   merge workload of row `r`, used by B-Limiting.
//! * **exact symbolic nnz(C)** — the number of *unique* output positions,
//!   needed to size the final matrix.

use crate::error::SparseError;
use crate::par;
use crate::scalar::Scalar;
use crate::{CsrMatrix, Result};

/// Total number of intermediate products `nnz(Ĉ) = Σᵢ nnz(a₌ᵢ)·nnz(bᵢ₌)`.
///
/// Equals the number of multiply operations of any product-expansion scheme,
/// and the size of the intermediate matrix before merging.
pub fn intermediate_nnz<T: Scalar>(a: &CsrMatrix<T>, b: &CsrMatrix<T>) -> Result<u64> {
    Ok(block_products(a, b)?.iter().sum())
}

/// Per-pair workloads: `out[i] = nnz(a₌ᵢ) · nnz(bᵢ₌)` for every inner index.
///
/// `a` is given in CSR; its column degrees are obtained via a counting pass
/// (no transpose materialisation needed).
pub fn block_products<T: Scalar>(a: &CsrMatrix<T>, b: &CsrMatrix<T>) -> Result<Vec<u64>> {
    if a.ncols() != b.nrows() {
        return Err(SparseError::ShapeMismatch {
            op: "block_products",
            lhs: (a.nrows(), a.ncols()),
            rhs: (b.nrows(), b.ncols()),
        });
    }
    let mut col_deg = vec![0u64; a.ncols()];
    for &c in a.idx() {
        col_deg[c as usize] += 1;
    }
    Ok((0..a.ncols())
        .map(|i| col_deg[i] * b.row_nnz(i) as u64)
        .collect())
}

/// Per-output-row intermediate product counts (duplicates included):
/// `out[r] = Σ_{k ∈ row r of A} nnz(b_k*)`.
pub fn row_intermediate_nnz<T: Scalar>(a: &CsrMatrix<T>, b: &CsrMatrix<T>) -> Result<Vec<u64>> {
    if a.ncols() != b.nrows() {
        return Err(SparseError::ShapeMismatch {
            op: "row_intermediate_nnz",
            lhs: (a.nrows(), a.ncols()),
            rhs: (b.nrows(), b.ncols()),
        });
    }
    Ok((0..a.nrows())
        .map(|r| {
            let (cols, _) = a.row(r);
            cols.iter().map(|&k| b.row_nnz(k as usize) as u64).sum()
        })
        .collect())
}

/// [`row_intermediate_nnz`] distributed over `threads` scoped workers.
///
/// Rows are independent and assembled in index order, so the output is
/// bit-identical to the sequential scan at any thread count. This is the
/// weights pass every row-partitioned numeric merger and the adaptive
/// engine's row binning share.
pub fn row_intermediate_nnz_threaded<T: Scalar>(
    a: &CsrMatrix<T>,
    b: &CsrMatrix<T>,
    threads: usize,
) -> Result<Vec<u64>> {
    if a.ncols() != b.nrows() {
        return Err(SparseError::ShapeMismatch {
            op: "row_intermediate_nnz",
            lhs: (a.nrows(), a.ncols()),
            rhs: (b.nrows(), b.ncols()),
        });
    }
    Ok(par::ordered_index_map(a.nrows(), threads, |r| {
        let (cols, _) = a.row(r);
        cols.iter().map(|&k| b.row_nnz(k as usize) as u64).sum()
    }))
}

/// Exact `nnz(C)` per row, via a symbolic SPA (boolean accumulator).
///
/// Returns the per-row unique-column counts; `sum` gives `nnz(C)`.
pub fn symbolic_nnz<T: Scalar>(a: &CsrMatrix<T>, b: &CsrMatrix<T>) -> Result<Vec<usize>> {
    if a.ncols() != b.nrows() {
        return Err(SparseError::ShapeMismatch {
            op: "symbolic_nnz",
            lhs: (a.nrows(), a.ncols()),
            rhs: (b.nrows(), b.ncols()),
        });
    }
    let mut mark = vec![u32::MAX; b.ncols()];
    let mut counts = Vec::with_capacity(a.nrows());
    for r in 0..a.nrows() {
        let stamp = r as u32;
        let mut count = 0usize;
        let (cols, _) = a.row(r);
        for &k in cols {
            let (bcols, _) = b.row(k as usize);
            for &j in bcols {
                if mark[j as usize] != stamp {
                    mark[j as usize] = stamp;
                    count += 1;
                }
            }
        }
        counts.push(count);
    }
    Ok(counts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::spgemm_gustavson;

    fn a() -> CsrMatrix<f64> {
        // [[1, 0, 2], [0, 3, 0], [4, 5, 0]]
        CsrMatrix::try_new(
            3,
            3,
            vec![0, 2, 3, 5],
            vec![0, 2, 1, 0, 1],
            vec![1.0, 2.0, 3.0, 4.0, 5.0],
        )
        .unwrap()
    }

    #[test]
    fn block_products_match_definition() {
        let m = a();
        // col degrees of A: col0 -> 2, col1 -> 2, col2 -> 1
        // row nnz of A (as B): row0 -> 2, row1 -> 1, row2 -> 2
        assert_eq!(block_products(&m, &m).unwrap(), vec![4, 2, 2]);
    }

    #[test]
    fn intermediate_equals_sum_of_blocks() {
        let m = a();
        assert_eq!(intermediate_nnz(&m, &m).unwrap(), 8);
    }

    #[test]
    fn row_intermediate_counts() {
        let m = a();
        // row0 of A hits cols {0,2}: nnz(b0*)+nnz(b2*) = 2+2 = 4
        // row1 hits col {1}: 1; row2 hits {0,1}: 2+1 = 3
        assert_eq!(row_intermediate_nnz(&m, &m).unwrap(), vec![4, 1, 3]);
    }

    #[test]
    fn row_intermediate_sums_to_total() {
        let m = a();
        let rows = row_intermediate_nnz(&m, &m).unwrap();
        assert_eq!(rows.iter().sum::<u64>(), intermediate_nnz(&m, &m).unwrap());
    }

    #[test]
    fn threaded_row_intermediate_matches_sequential() {
        let m = a();
        let seq = row_intermediate_nnz(&m, &m).unwrap();
        for threads in [1, 2, 8] {
            assert_eq!(row_intermediate_nnz_threaded(&m, &m, threads).unwrap(), seq);
        }
        let bad = CsrMatrix::<f64>::zeros(2, 3);
        assert!(row_intermediate_nnz_threaded(&bad, &bad, 4).is_err());
    }

    #[test]
    fn symbolic_matches_numeric_structure() {
        let m = a();
        let counts = symbolic_nnz(&m, &m).unwrap();
        let c = spgemm_gustavson(&m, &m).unwrap();
        let numeric: Vec<usize> = (0..3).map(|r| c.row_nnz(r)).collect();
        assert_eq!(counts, numeric);
    }

    #[test]
    fn symbolic_at_most_intermediate() {
        let m = a();
        let sym: u64 = symbolic_nnz(&m, &m)
            .unwrap()
            .iter()
            .map(|&x| x as u64)
            .sum();
        assert!(sym <= intermediate_nnz(&m, &m).unwrap());
    }

    #[test]
    fn shape_mismatch_rejected_everywhere() {
        let a = CsrMatrix::<f64>::zeros(2, 3);
        let b = CsrMatrix::<f64>::zeros(2, 3);
        assert!(block_products(&a, &b).is_err());
        assert!(intermediate_nnz(&a, &b).is_err());
        assert!(row_intermediate_nnz(&a, &b).is_err());
        assert!(symbolic_nnz(&a, &b).is_err());
    }
}
