//! Sequential Gustavson spGEMM — the correctness oracle.
//!
//! Gustavson's row-wise algorithm (TOMS 1978) with a dense accumulator
//! ("SPA"): for each row `i` of `A`, accumulate `a_ik · b_k*` into a dense
//! scratch row, then gather the touched columns. This is the same
//! accumulation scheme the paper's merge phase uses on the GPU, which makes
//! it the natural oracle: every simulated kernel must reproduce its output
//! exactly (up to row ordering and floating-point association tolerance).

use crate::error::SparseError;
use crate::scalar::Scalar;
use crate::{CsrMatrix, Result};

/// Computes `C = A · B` with sequential Gustavson + dense accumulator.
///
/// Output is canonical CSR (sorted rows). Numerically, products for one
/// output element are added in `B`-row order.
pub fn spgemm_gustavson<T: Scalar>(a: &CsrMatrix<T>, b: &CsrMatrix<T>) -> Result<CsrMatrix<T>> {
    if a.ncols() != b.nrows() {
        return Err(SparseError::ShapeMismatch {
            op: "spgemm",
            lhs: (a.nrows(), a.ncols()),
            rhs: (b.nrows(), b.ncols()),
        });
    }
    let n_out_cols = b.ncols();
    let mut accumulator = vec![T::ZERO; n_out_cols];
    // `occupied[c]` marks whether column c holds live data for the current
    // row; `touched` lists those columns so the accumulator is cleared in
    // O(row nnz), not O(ncols). The flag (rather than a zero-value test)
    // keeps numerically-cancelled entries in the symbolic structure.
    let mut occupied = vec![false; n_out_cols];
    let mut touched: Vec<u32> = Vec::new();

    let mut ptr = Vec::with_capacity(a.nrows() + 1);
    let mut idx: Vec<u32> = Vec::new();
    let mut val: Vec<T> = Vec::new();
    ptr.push(0usize);

    for i in 0..a.nrows() {
        let (a_cols, a_vals) = a.row(i);
        for (&k, &a_ik) in a_cols.iter().zip(a_vals) {
            let (b_cols, b_vals) = b.row(k as usize);
            for (&j, &b_kj) in b_cols.iter().zip(b_vals) {
                if !occupied[j as usize] {
                    occupied[j as usize] = true;
                    touched.push(j);
                }
                accumulator[j as usize] += a_ik * b_kj;
            }
        }
        touched.sort_unstable();
        for &j in &touched {
            idx.push(j);
            val.push(accumulator[j as usize]);
            accumulator[j as usize] = T::ZERO;
            occupied[j as usize] = false;
        }
        touched.clear();
        ptr.push(idx.len());
    }
    Ok(CsrMatrix::from_parts_unchecked(
        a.nrows(),
        n_out_cols,
        ptr,
        idx,
        val,
    ))
}

/// Computes `C = A + B` for same-shape CSR matrices (canonical output).
///
/// Used by example applications (e.g. combining 1-hop and 2-hop reachability)
/// and by tests.
pub fn sparse_add<T: Scalar>(a: &CsrMatrix<T>, b: &CsrMatrix<T>) -> Result<CsrMatrix<T>> {
    if a.nrows() != b.nrows() || a.ncols() != b.ncols() {
        return Err(SparseError::ShapeMismatch {
            op: "sparse_add",
            lhs: (a.nrows(), a.ncols()),
            rhs: (b.nrows(), b.ncols()),
        });
    }
    let mut ptr = Vec::with_capacity(a.nrows() + 1);
    let mut idx = Vec::with_capacity(a.nnz() + b.nnz());
    let mut val = Vec::with_capacity(a.nnz() + b.nnz());
    ptr.push(0usize);
    for r in 0..a.nrows() {
        let (ac, av) = a.row(r);
        let (bc, bv) = b.row(r);
        let (mut i, mut j) = (0, 0);
        while i < ac.len() || j < bc.len() {
            let take_a = j >= bc.len() || (i < ac.len() && ac[i] < bc[j]);
            let take_both = i < ac.len() && j < bc.len() && ac[i] == bc[j];
            if take_both {
                idx.push(ac[i]);
                val.push(av[i] + bv[j]);
                i += 1;
                j += 1;
            } else if take_a {
                idx.push(ac[i]);
                val.push(av[i]);
                i += 1;
            } else {
                idx.push(bc[j]);
                val.push(bv[j]);
                j += 1;
            }
        }
        ptr.push(idx.len());
    }
    Ok(CsrMatrix::from_parts_unchecked(
        a.nrows(),
        a.ncols(),
        ptr,
        idx,
        val,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CooMatrix;

    fn small_a() -> CsrMatrix<f64> {
        // [[1, 0, 2], [0, 3, 0], [4, 0, 0]]
        CsrMatrix::try_new(
            3,
            3,
            vec![0, 2, 3, 4],
            vec![0, 2, 1, 0],
            vec![1.0, 2.0, 3.0, 4.0],
        )
        .unwrap()
    }

    #[test]
    fn square_matches_dense_oracle() {
        let a = small_a();
        let c = spgemm_gustavson(&a, &a).unwrap();
        let expect = a.to_dense().matmul(&a.to_dense());
        assert!(c.to_dense().approx_eq(&expect, 1e-12));
        c.check_invariants().unwrap();
    }

    #[test]
    fn rectangular_product() {
        // (2x3) * (3x2)
        let a =
            CsrMatrix::try_new(2, 3, vec![0, 2, 3], vec![0, 2, 1], vec![1.0, 2.0, 3.0]).unwrap();
        let b =
            CsrMatrix::try_new(3, 2, vec![0, 1, 2, 3], vec![1, 0, 0], vec![5.0, 6.0, 7.0]).unwrap();
        let c = spgemm_gustavson(&a, &b).unwrap();
        let expect = a.to_dense().matmul(&b.to_dense());
        assert!(c.to_dense().approx_eq(&expect, 1e-12));
    }

    #[test]
    fn shape_mismatch_rejected() {
        let a = CsrMatrix::<f64>::zeros(2, 3);
        let b = CsrMatrix::<f64>::zeros(2, 3);
        assert!(matches!(
            spgemm_gustavson(&a, &b),
            Err(SparseError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn identity_is_multiplicative_unit() {
        let a = small_a();
        let i = CsrMatrix::identity(3);
        assert!(spgemm_gustavson(&a, &i).unwrap().approx_eq(&a, 1e-12));
        assert!(spgemm_gustavson(&i, &a).unwrap().approx_eq(&a, 1e-12));
    }

    #[test]
    fn zero_matrix_annihilates() {
        let a = small_a();
        let z = CsrMatrix::zeros(3, 3);
        assert_eq!(spgemm_gustavson(&a, &z).unwrap().nnz(), 0);
        assert_eq!(spgemm_gustavson(&z, &a).unwrap().nnz(), 0);
    }

    #[test]
    fn numeric_cancellation_keeps_explicit_zero() {
        // Row products that sum to zero stay as stored entries: structure
        // is decided symbolically, as on the GPU where the merge cannot
        // cheaply prune numerically-cancelled entries.
        let a = CsrMatrix::try_new(1, 2, vec![0, 2], vec![0, 1], vec![1.0, -1.0]).unwrap();
        let b = CsrMatrix::try_new(2, 1, vec![0, 1, 2], vec![0, 0], vec![1.0, 1.0]).unwrap();
        let c = spgemm_gustavson(&a, &b).unwrap();
        assert_eq!(c.nnz(), 1);
        assert_eq!(c.get(0, 0), 0.0);
    }

    #[test]
    fn random_product_matches_dense() {
        // Deterministic pseudo-random fill, no external RNG needed here.
        let mut coo_a = CooMatrix::<f64>::new(17, 23);
        let mut coo_b = CooMatrix::<f64>::new(23, 11);
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..120 {
            let r = (next() % 17) as u32;
            let c = (next() % 23) as u32;
            coo_a.push(r, c, (next() % 7) as f64 - 3.0).unwrap();
        }
        for _ in 0..90 {
            let r = (next() % 23) as u32;
            let c = (next() % 11) as u32;
            coo_b.push(r, c, (next() % 5) as f64 - 2.0).unwrap();
        }
        let a = coo_a.to_csr();
        let b = coo_b.to_csr();
        let c = spgemm_gustavson(&a, &b).unwrap();
        assert!(c
            .to_dense()
            .approx_eq(&a.to_dense().matmul(&b.to_dense()), 1e-9));
    }

    #[test]
    fn sparse_add_merges_disjoint_and_overlapping() {
        let a = small_a();
        let b = CsrMatrix::try_new(3, 3, vec![0, 1, 1, 2], vec![1, 2], vec![10.0, 20.0]).unwrap();
        let c = sparse_add(&a, &b).unwrap();
        assert_eq!(c.get(0, 0), 1.0);
        assert_eq!(c.get(0, 1), 10.0);
        assert_eq!(c.get(2, 2), 20.0);
        assert_eq!(c.get(2, 0), 4.0);
        c.check_invariants().unwrap();
    }

    #[test]
    fn sparse_add_shape_mismatch_rejected() {
        let a = CsrMatrix::<f64>::zeros(2, 2);
        let b = CsrMatrix::<f64>::zeros(3, 3);
        assert!(sparse_add(&a, &b).is_err());
    }
}
