//! Floating-point operation accounting.
//!
//! The paper reports absolute performance in GFLOPS (Figure 9). The
//! convention — shared by cuSPARSE and the spGEMM literature — counts one
//! multiply and one add per intermediate product: `flops = 2 · nnz(Ĉ)`.

use crate::ops::symbolic::intermediate_nnz;
use crate::scalar::Scalar;
use crate::{CsrMatrix, Result};

/// Number of multiply operations in `A · B` (`= nnz(Ĉ)`).
pub fn multiply_ops<T: Scalar>(a: &CsrMatrix<T>, b: &CsrMatrix<T>) -> Result<u64> {
    intermediate_nnz(a, b)
}

/// FLOP count of `A · B` under the `2 · nnz(Ĉ)` convention.
pub fn multiply_flops<T: Scalar>(a: &CsrMatrix<T>, b: &CsrMatrix<T>) -> Result<u64> {
    Ok(2 * intermediate_nnz(a, b)?)
}

/// Compression factor `nnz(Ĉ) / nnz(C)`: how many intermediate products
/// merge into each output entry. Graph-squaring workloads (`C = A²` on
/// power-law graphs) have high compression; `C = AB` on independent R-MAT
/// pairs is close to 1 (Section VI-D of the paper).
pub fn compression_factor<T: Scalar>(
    a: &CsrMatrix<T>,
    b: &CsrMatrix<T>,
    c: &CsrMatrix<T>,
) -> Result<f64> {
    let inter = intermediate_nnz(a, b)? as f64;
    let out = c.nnz().max(1) as f64;
    Ok(inter / out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::spgemm_gustavson;

    fn dense2() -> CsrMatrix<f64> {
        CsrMatrix::try_new(
            2,
            2,
            vec![0, 2, 4],
            vec![0, 1, 0, 1],
            vec![1.0, 2.0, 3.0, 4.0],
        )
        .unwrap()
    }

    #[test]
    fn flops_of_full_2x2_is_16() {
        let m = dense2();
        // 4 inner products of 2 terms: 8 multiplies, 8 adds.
        assert_eq!(multiply_ops(&m, &m).unwrap(), 8);
        assert_eq!(multiply_flops(&m, &m).unwrap(), 16);
    }

    #[test]
    fn compression_factor_dense_square() {
        let m = dense2();
        let c = spgemm_gustavson(&m, &m).unwrap();
        // 8 intermediates merge into 4 outputs → factor 2.
        assert_eq!(compression_factor(&m, &m, &c).unwrap(), 2.0);
    }

    #[test]
    fn diagonal_has_unit_compression() {
        let i = CsrMatrix::<f64>::identity(5);
        let c = spgemm_gustavson(&i, &i).unwrap();
        assert_eq!(compression_factor(&i, &i, &c).unwrap(), 1.0);
        assert_eq!(multiply_flops(&i, &i).unwrap(), 10);
    }

    #[test]
    fn empty_product_has_zero_flops() {
        let z = CsrMatrix::<f64>::zeros(4, 4);
        assert_eq!(multiply_flops(&z, &z).unwrap(), 0);
    }
}
