//! Compressed Sparse Row format — the canonical compute format.
//!
//! Invariants (checked by [`CsrMatrix::try_new`] / [`CsrMatrix::check_invariants`]):
//!
//! 1. `ptr.len() == nrows + 1`, `ptr[0] == 0`, `ptr` non-decreasing,
//!    `ptr[nrows] == idx.len() == val.len()`.
//! 2. Within each row, column indices are strictly increasing (sorted, no
//!    duplicates) and `< ncols`.
//!
//! Kernels that produce *unordered* CSR (the paper's merge outputs unordered
//! rows, like Gustavson's) use [`CsrMatrix::from_parts_unsorted`] followed by
//! [`CsrMatrix::sort_rows`] when a canonical form is required for comparison.

use crate::error::SparseError;
use crate::scalar::Scalar;
use crate::{CscMatrix, DenseMatrix, Result};

/// A sparse matrix in Compressed Sparse Row form.
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix<T> {
    nrows: usize,
    ncols: usize,
    ptr: Vec<usize>,
    idx: Vec<u32>,
    val: Vec<T>,
}

impl<T: Scalar> CsrMatrix<T> {
    /// Builds a CSR matrix, validating every invariant listed at module level.
    pub fn try_new(
        nrows: usize,
        ncols: usize,
        ptr: Vec<usize>,
        idx: Vec<u32>,
        val: Vec<T>,
    ) -> Result<Self> {
        let m = CsrMatrix {
            nrows,
            ncols,
            ptr,
            idx,
            val,
        };
        m.check_invariants()?;
        Ok(m)
    }

    /// Builds a CSR matrix from parts the caller guarantees to be canonical.
    ///
    /// Used on hot paths (conversions, kernel outputs) where invariants hold
    /// by construction. Debug builds still verify them.
    pub fn from_parts_unchecked(
        nrows: usize,
        ncols: usize,
        ptr: Vec<usize>,
        idx: Vec<u32>,
        val: Vec<T>,
    ) -> Self {
        let m = CsrMatrix {
            nrows,
            ncols,
            ptr,
            idx,
            val,
        };
        debug_assert!(m.check_invariants().is_ok(), "CSR invariants violated");
        m
    }

    /// Builds a CSR matrix whose rows may be *unsorted* (but duplicate-free).
    ///
    /// This is the output contract of the paper's merge phase ("unordered CSR
    /// format similar to the Gustavson merge algorithm"). Only structural
    /// pointer invariants and index bounds are validated.
    pub fn from_parts_unsorted(
        nrows: usize,
        ncols: usize,
        ptr: Vec<usize>,
        idx: Vec<u32>,
        val: Vec<T>,
    ) -> Result<Self> {
        let m = CsrMatrix {
            nrows,
            ncols,
            ptr,
            idx,
            val,
        };
        m.check_pointer_invariants()?;
        for &c in &m.idx {
            if c as usize >= ncols {
                return Err(SparseError::InvalidStructure(format!(
                    "column index {c} out of bounds for {ncols} columns"
                )));
            }
        }
        Ok(m)
    }

    /// An empty (all-zero) matrix of the given shape.
    pub fn zeros(nrows: usize, ncols: usize) -> Self {
        CsrMatrix {
            nrows,
            ncols,
            ptr: vec![0; nrows + 1],
            idx: Vec::new(),
            val: Vec::new(),
        }
    }

    /// The `n × n` identity.
    pub fn identity(n: usize) -> Self {
        CsrMatrix {
            nrows: n,
            ncols: n,
            ptr: (0..=n).collect(),
            idx: (0..n as u32).collect(),
            val: vec![T::ONE; n],
        }
    }

    fn check_pointer_invariants(&self) -> Result<()> {
        if self.ptr.len() != self.nrows + 1 {
            return Err(SparseError::InvalidStructure(format!(
                "ptr length {} != nrows + 1 = {}",
                self.ptr.len(),
                self.nrows + 1
            )));
        }
        if self.ptr[0] != 0 {
            return Err(SparseError::InvalidStructure(
                "ptr[0] must be 0".to_string(),
            ));
        }
        if self.ptr.windows(2).any(|w| w[0] > w[1]) {
            return Err(SparseError::InvalidStructure(
                "ptr must be non-decreasing".to_string(),
            ));
        }
        if *self.ptr.last().expect("ptr non-empty") != self.idx.len() {
            return Err(SparseError::InvalidStructure(format!(
                "ptr[nrows] = {} != idx.len() = {}",
                self.ptr.last().unwrap(),
                self.idx.len()
            )));
        }
        if self.idx.len() != self.val.len() {
            return Err(SparseError::InvalidStructure(format!(
                "idx.len() = {} != val.len() = {}",
                self.idx.len(),
                self.val.len()
            )));
        }
        Ok(())
    }

    /// Verifies every canonical-form invariant; `Ok(())` when valid.
    pub fn check_invariants(&self) -> Result<()> {
        self.check_pointer_invariants()?;
        for r in 0..self.nrows {
            let row = &self.idx[self.ptr[r]..self.ptr[r + 1]];
            for w in row.windows(2) {
                if w[0] >= w[1] {
                    return Err(SparseError::InvalidStructure(format!(
                        "row {r} column indices not strictly increasing"
                    )));
                }
            }
            if let Some(&last) = row.last() {
                if last as usize >= self.ncols {
                    return Err(SparseError::InvalidStructure(format!(
                        "row {r} has column index {last} >= ncols {}",
                        self.ncols
                    )));
                }
            }
        }
        Ok(())
    }

    /// Number of rows.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored entries.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.idx.len()
    }

    /// Row pointer array (`nrows + 1` entries).
    #[inline]
    pub fn ptr(&self) -> &[usize] {
        &self.ptr
    }

    /// Column index array.
    #[inline]
    pub fn idx(&self) -> &[u32] {
        &self.idx
    }

    /// Value array.
    #[inline]
    pub fn val(&self) -> &[T] {
        &self.val
    }

    /// Column indices and values of row `r`.
    #[inline]
    pub fn row(&self, r: usize) -> (&[u32], &[T]) {
        let (s, e) = (self.ptr[r], self.ptr[r + 1]);
        (&self.idx[s..e], &self.val[s..e])
    }

    /// Number of stored entries in row `r`.
    #[inline]
    pub fn row_nnz(&self, r: usize) -> usize {
        self.ptr[r + 1] - self.ptr[r]
    }

    /// Iterates over `(row, col, value)` triplets in row-major order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, u32, T)> + '_ {
        (0..self.nrows).flat_map(move |r| {
            let (idx, val) = self.row(r);
            idx.iter().zip(val).map(move |(&c, &v)| (r as u32, c, v))
        })
    }

    /// Value at `(r, c)`, or zero when the entry is not stored.
    ///
    /// Canonical form required; binary-searches the row.
    pub fn get(&self, r: usize, c: usize) -> T {
        let (idx, val) = self.row(r);
        match idx.binary_search(&(c as u32)) {
            Ok(p) => val[p],
            Err(_) => T::ZERO,
        }
    }

    /// Sorts every row by column index in place (stable for distinct keys),
    /// turning an unordered-CSR kernel output into canonical form.
    pub fn sort_rows(&mut self) {
        let mut scratch: Vec<(u32, T)> = Vec::new();
        for r in 0..self.nrows {
            let (s, e) = (self.ptr[r], self.ptr[r + 1]);
            if self.idx[s..e].windows(2).all(|w| w[0] < w[1]) {
                continue;
            }
            scratch.clear();
            scratch.extend(
                self.idx[s..e]
                    .iter()
                    .copied()
                    .zip(self.val[s..e].iter().copied()),
            );
            scratch.sort_unstable_by_key(|&(c, _)| c);
            for (k, &(c, v)) in scratch.iter().enumerate() {
                self.idx[s + k] = c;
                self.val[s + k] = v;
            }
        }
    }

    /// Transposes the matrix via a counting sort — O(nnz + dims).
    pub fn transpose(&self) -> CsrMatrix<T> {
        let mut counts = vec![0usize; self.ncols + 1];
        for &c in &self.idx {
            counts[c as usize + 1] += 1;
        }
        for i in 0..self.ncols {
            counts[i + 1] += counts[i];
        }
        let ptr = counts.clone();
        let mut idx = vec![0u32; self.nnz()];
        let mut val = vec![T::ZERO; self.nnz()];
        let mut cursor = counts;
        for r in 0..self.nrows {
            let (cols, vals) = self.row(r);
            for (&c, &v) in cols.iter().zip(vals) {
                let p = cursor[c as usize];
                idx[p] = r as u32;
                val[p] = v;
                cursor[c as usize] += 1;
            }
        }
        // Row-major traversal writes row indices in increasing order per
        // column, so the result is canonical by construction.
        CsrMatrix::from_parts_unchecked(self.ncols, self.nrows, ptr, idx, val)
    }

    /// Reinterprets `self` (which must hold the CSR of `Aᵀ`) as the CSC of
    /// `A` — the arrays are identical, only the labelling changes.
    pub fn into_csc_of_transpose(self) -> CscMatrix<T> {
        CscMatrix::from_parts_unchecked(self.ncols, self.nrows, self.ptr, self.idx, self.val)
    }

    /// Converts to CSC (column-compressed) form.
    pub fn to_csc(&self) -> CscMatrix<T> {
        self.transpose().into_csc_of_transpose()
    }

    /// Materialises the matrix densely; intended for small test oracles.
    pub fn to_dense(&self) -> DenseMatrix<T> {
        let mut d = DenseMatrix::zeros(self.nrows, self.ncols);
        for (r, c, v) in self.iter() {
            *d.get_mut(r as usize, c as usize) += v;
        }
        d
    }

    /// `true` when both matrices have identical structure and all values
    /// match within `tol` (canonicalise first for unordered outputs).
    pub fn approx_eq(&self, other: &CsrMatrix<T>, tol: f64) -> bool {
        self.nrows == other.nrows
            && self.ncols == other.ncols
            && self.ptr == other.ptr
            && self.idx == other.idx
            && self
                .val
                .iter()
                .zip(&other.val)
                .all(|(&a, &b)| a.approx_eq(b, tol))
    }

    /// Per-row nnz histogram — the degree sequence used by workload
    /// classification and by dataset statistics.
    pub fn row_degrees(&self) -> Vec<usize> {
        self.ptr.windows(2).map(|w| w[1] - w[0]).collect()
    }

    /// Decomposes into `(nrows, ncols, ptr, idx, val)`.
    pub fn into_parts(self) -> (usize, usize, Vec<usize>, Vec<u32>, Vec<T>) {
        (self.nrows, self.ncols, self.ptr, self.idx, self.val)
    }

    /// Returns a copy with every stored value transformed by `f`
    /// (structure unchanged — `f` returning zero keeps an explicit zero).
    pub fn map_values(&self, f: impl Fn(T) -> T) -> CsrMatrix<T> {
        CsrMatrix {
            nrows: self.nrows,
            ncols: self.ncols,
            ptr: self.ptr.clone(),
            idx: self.idx.clone(),
            val: self.val.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Returns a copy with entries of magnitude ≤ `tol` removed — including
    /// the explicit zeros the multiplication kernels may produce through
    /// numeric cancellation.
    pub fn prune(&self, tol: f64) -> CsrMatrix<T> {
        let mut ptr = Vec::with_capacity(self.nrows + 1);
        let mut idx = Vec::with_capacity(self.nnz());
        let mut val = Vec::with_capacity(self.nnz());
        ptr.push(0usize);
        for r in 0..self.nrows {
            let (cols, vals) = self.row(r);
            for (&c, &v) in cols.iter().zip(vals) {
                if v.abs().to_f64() > tol {
                    idx.push(c);
                    val.push(v);
                }
            }
            ptr.push(idx.len());
        }
        CsrMatrix {
            nrows: self.nrows,
            ncols: self.ncols,
            ptr,
            idx,
            val,
        }
    }

    /// Extracts the submatrix of rows `rows.start..rows.end` (all columns).
    pub fn row_slice(&self, rows: std::ops::Range<usize>) -> CsrMatrix<T> {
        assert!(rows.end <= self.nrows, "row range out of bounds");
        let base = self.ptr[rows.start];
        let ptr: Vec<usize> = self.ptr[rows.start..=rows.end]
            .iter()
            .map(|&p| p - base)
            .collect();
        let idx = self.idx[base..self.ptr[rows.end]].to_vec();
        let val = self.val[base..self.ptr[rows.end]].to_vec();
        CsrMatrix {
            nrows: rows.len(),
            ncols: self.ncols,
            ptr,
            idx,
            val,
        }
    }

    /// Gathers rows into a new order: row `i` of the result is row
    /// `order[i]` of `self`, so `order` must be a permutation of
    /// `0..nrows`. Within-row entries are copied verbatim — column order
    /// (and therefore any accumulation order downstream) is untouched,
    /// which is what keeps a permute → multiply → unpermute round trip
    /// bit-identical. An identity order returns a plain clone without
    /// rebuilding the arrays.
    pub fn permute_rows(&self, order: &[u32]) -> CsrMatrix<T> {
        assert_eq!(order.len(), self.nrows, "order must cover every row");
        if order.iter().enumerate().all(|(i, &r)| r as usize == i) {
            return self.clone();
        }
        let mut ptr = Vec::with_capacity(self.nrows + 1);
        let mut idx = Vec::with_capacity(self.nnz());
        let mut val = Vec::with_capacity(self.nnz());
        ptr.push(0);
        for &r in order {
            let (cols, vals) = self.row(r as usize);
            idx.extend_from_slice(cols);
            val.extend_from_slice(vals);
            ptr.push(idx.len());
        }
        CsrMatrix::from_parts_unchecked(self.nrows, self.ncols, ptr, idx, val)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// [[1, 0, 2], [0, 0, 0], [3, 4, 0]]
    fn sample() -> CsrMatrix<f64> {
        CsrMatrix::try_new(
            3,
            3,
            vec![0, 2, 2, 4],
            vec![0, 2, 0, 1],
            vec![1.0, 2.0, 3.0, 4.0],
        )
        .unwrap()
    }

    #[test]
    fn accessors() {
        let m = sample();
        assert_eq!(m.nnz(), 4);
        assert_eq!(m.row_nnz(1), 0);
        assert_eq!(m.get(0, 2), 2.0);
        assert_eq!(m.get(1, 1), 0.0);
        assert_eq!(m.row_degrees(), vec![2, 0, 2]);
    }

    #[test]
    fn try_new_rejects_bad_ptr() {
        assert!(CsrMatrix::<f64>::try_new(2, 2, vec![0, 1], vec![0], vec![1.0]).is_err());
        assert!(CsrMatrix::<f64>::try_new(2, 2, vec![1, 1, 1], vec![0], vec![1.0]).is_err());
        assert!(
            CsrMatrix::<f64>::try_new(2, 2, vec![0, 2, 1], vec![0, 1], vec![1.0, 2.0]).is_err()
        );
        assert!(
            CsrMatrix::<f64>::try_new(2, 2, vec![0, 1, 3], vec![0, 1], vec![1.0, 2.0]).is_err()
        );
    }

    #[test]
    fn try_new_rejects_unsorted_or_duplicate_columns() {
        assert!(CsrMatrix::<f64>::try_new(1, 3, vec![0, 2], vec![2, 0], vec![1.0, 2.0]).is_err());
        assert!(CsrMatrix::<f64>::try_new(1, 3, vec![0, 2], vec![1, 1], vec![1.0, 2.0]).is_err());
    }

    #[test]
    fn try_new_rejects_out_of_bounds_column() {
        assert!(CsrMatrix::<f64>::try_new(1, 2, vec![0, 1], vec![5], vec![1.0]).is_err());
    }

    #[test]
    fn from_parts_unsorted_accepts_unordered_rows() {
        let m = CsrMatrix::<f64>::from_parts_unsorted(1, 3, vec![0, 2], vec![2, 0], vec![1.0, 2.0])
            .unwrap();
        assert!(m.check_invariants().is_err());
        let mut m = m;
        m.sort_rows();
        m.check_invariants().unwrap();
        assert_eq!(m.idx(), &[0, 2]);
        assert_eq!(m.val(), &[2.0, 1.0]);
    }

    #[test]
    fn transpose_roundtrip() {
        let m = sample();
        let t = m.transpose();
        assert_eq!(t.get(0, 2), 3.0);
        assert_eq!(t.get(2, 0), 2.0);
        assert_eq!(t.transpose(), m);
        t.check_invariants().unwrap();
    }

    #[test]
    fn identity_multiplicative_shape() {
        let i = CsrMatrix::<f64>::identity(4);
        assert_eq!(i.nnz(), 4);
        assert_eq!(i.get(2, 2), 1.0);
        assert_eq!(i.get(2, 3), 0.0);
        i.check_invariants().unwrap();
    }

    #[test]
    fn zeros_has_no_entries_but_valid_ptr() {
        let z = CsrMatrix::<f64>::zeros(3, 5);
        assert_eq!(z.nnz(), 0);
        z.check_invariants().unwrap();
    }

    #[test]
    fn iter_yields_row_major_triplets() {
        let m = sample();
        let trips: Vec<_> = m.iter().collect();
        assert_eq!(
            trips,
            vec![(0, 0, 1.0), (0, 2, 2.0), (2, 0, 3.0), (2, 1, 4.0)]
        );
    }

    #[test]
    fn to_dense_matches_get() {
        let m = sample();
        let d = m.to_dense();
        for r in 0..3 {
            for c in 0..3 {
                assert_eq!(d.get(r, c), m.get(r, c));
            }
        }
    }

    #[test]
    fn map_values_preserves_structure() {
        let m = sample();
        let doubled = m.map_values(|v| v * 2.0);
        assert_eq!(doubled.ptr(), m.ptr());
        assert_eq!(doubled.idx(), m.idx());
        assert_eq!(doubled.get(0, 2), 4.0);
        doubled.check_invariants().unwrap();
    }

    #[test]
    fn prune_drops_small_entries_and_keeps_shape() {
        let m = CsrMatrix::try_new(
            2,
            3,
            vec![0, 3, 4],
            vec![0, 1, 2, 0],
            vec![1.0, 1e-12, -2.0, 0.0],
        )
        .unwrap();
        let p = m.prune(1e-9);
        assert_eq!(p.nnz(), 2);
        assert_eq!(p.get(0, 0), 1.0);
        assert_eq!(p.get(0, 2), -2.0);
        assert_eq!(p.nrows(), 2);
        assert_eq!(p.ncols(), 3);
        p.check_invariants().unwrap();
    }

    #[test]
    fn row_slice_extracts_contiguous_rows() {
        let m = sample();
        let s = m.row_slice(1..3);
        assert_eq!(s.nrows(), 2);
        assert_eq!(s.ncols(), 3);
        assert_eq!(s.row_nnz(0), 0); // original row 1 was empty
        assert_eq!(s.get(1, 1), 4.0); // original (2,1)
        s.check_invariants().unwrap();
        // full slice is identity
        assert_eq!(m.row_slice(0..3), m);
    }

    #[test]
    #[should_panic(expected = "row range out of bounds")]
    fn row_slice_rejects_overflow() {
        let _ = sample().row_slice(1..9);
    }

    #[test]
    fn csc_roundtrip_preserves_entries() {
        let m = sample();
        let csc = m.to_csc();
        assert_eq!(csc.nrows(), 3);
        assert_eq!(csc.ncols(), 3);
        assert_eq!(csc.to_csr(), m);
    }

    #[test]
    fn permute_rows_gathers_in_order() {
        let m = sample();
        let p = m.permute_rows(&[2, 0, 1]);
        p.check_invariants().unwrap();
        // Row 0 of the result is row 2 of the original, entries verbatim.
        assert_eq!(p.row(0), m.row(2));
        assert_eq!(p.row(1), m.row(0));
        assert_eq!(p.row(2), m.row(1));
        // Inverse of [2,0,1] is [1,2,0]: applying it restores the input.
        assert_eq!(p.permute_rows(&[1, 2, 0]), m);
        // Identity order is a plain clone; zero-row matrices work.
        assert_eq!(m.permute_rows(&[0, 1, 2]), m);
        let empty = CsrMatrix::<f64>::zeros(0, 4);
        assert_eq!(empty.permute_rows(&[]), empty);
    }

    #[test]
    #[should_panic(expected = "order must cover every row")]
    fn permute_rows_rejects_wrong_length() {
        let _ = sample().permute_rows(&[0, 1]);
    }
}
