//! Error type shared by all sparse-matrix constructors and I/O.

use std::fmt;

/// Errors produced by sparse-matrix construction, conversion, and I/O.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SparseError {
    /// A structural invariant of a compressed format was violated.
    ///
    /// The string names the invariant (e.g. "ptr must be non-decreasing").
    InvalidStructure(String),
    /// An entry's coordinates lie outside the declared matrix shape.
    IndexOutOfBounds {
        /// Row coordinate of the offending entry.
        row: usize,
        /// Column coordinate of the offending entry.
        col: usize,
        /// Number of matrix rows.
        nrows: usize,
        /// Number of matrix columns.
        ncols: usize,
    },
    /// Two operands have incompatible shapes for the requested operation.
    ShapeMismatch {
        /// Human-readable name of the operation.
        op: &'static str,
        /// Shape of the left operand.
        lhs: (usize, usize),
        /// Shape of the right operand.
        rhs: (usize, usize),
    },
    /// A Matrix Market stream could not be parsed.
    ParseError {
        /// 1-based line number where parsing failed.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// An underlying I/O error, carried as a string to keep the type `Clone`.
    Io(String),
}

impl fmt::Display for SparseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SparseError::InvalidStructure(msg) => write!(f, "invalid sparse structure: {msg}"),
            SparseError::IndexOutOfBounds {
                row,
                col,
                nrows,
                ncols,
            } => write!(
                f,
                "entry ({row}, {col}) out of bounds for {nrows}x{ncols} matrix"
            ),
            SparseError::ShapeMismatch { op, lhs, rhs } => write!(
                f,
                "shape mismatch in {op}: {}x{} vs {}x{}",
                lhs.0, lhs.1, rhs.0, rhs.1
            ),
            SparseError::ParseError { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
            SparseError::Io(msg) => write!(f, "i/o error: {msg}"),
        }
    }
}

impl std::error::Error for SparseError {}

impl From<std::io::Error> for SparseError {
    fn from(e: std::io::Error) -> Self {
        SparseError::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = SparseError::IndexOutOfBounds {
            row: 5,
            col: 7,
            nrows: 4,
            ncols: 4,
        };
        assert!(e.to_string().contains("(5, 7)"));
        assert!(e.to_string().contains("4x4"));

        let e = SparseError::ShapeMismatch {
            op: "spgemm",
            lhs: (3, 4),
            rhs: (5, 6),
        };
        assert!(e.to_string().contains("spgemm"));
        assert!(e.to_string().contains("3x4"));
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "missing.mtx");
        let e: SparseError = io.into();
        assert!(matches!(e, SparseError::Io(_)));
        assert!(e.to_string().contains("missing.mtx"));
    }
}
