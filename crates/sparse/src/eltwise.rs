//! Deterministic element-wise operators for chained multiplication
//! workloads (`br-workloads` post-ops).
//!
//! Each operator here is the host-side kernel behind one chain post-op:
//!
//! * [`CsrMatrix::mask_by_pattern`] — keep only the entries of `self`
//!   whose position is stored in a pattern matrix (triangle counting's
//!   `A² ∘ A`).
//! * [`CsrMatrix::column_normalize`] — divide every entry by its column
//!   sum, the Markov-cluster expansion normalisation.
//! * [`CsrMatrix::threshold_prune`] — drop entries of magnitude ≤ `tol`,
//!   the Markov-cluster inflation proxy (parallel twin of
//!   [`CsrMatrix::prune`]).
//!
//! All three parallelise over contiguous row ranges with
//! [`par::ordered_bounds_map`], and every float reduction (the column
//! sums) runs **sequentially in row-major entry order** — so results are
//! bit-identical at any `BR_THREADS` count, which the proptests below
//! check against the sequential twins. Outputs are canonical CSR by
//! construction (per-row filtering preserves column order).

use crate::csr::CsrMatrix;
use crate::error::SparseError;
use crate::scalar::Scalar;
use crate::{par, Result};

/// Per-chunk filtered rows: locally-offset pointers plus the surviving
/// entries, stitched back together in chunk order.
type RowChunk<T> = (Vec<usize>, Vec<u32>, Vec<T>);

/// Applies a per-row filter `keep(row, col, val)` over row chunks and
/// stitches the chunks in order — the shared engine behind masking and
/// pruning. Bit-identical at any thread count because the filter is
/// row-local and assembly order is fixed by the chunk bounds.
fn filter_rows<T: Scalar>(
    m: &CsrMatrix<T>,
    keep: impl Fn(usize, u32, T) -> bool + Sync,
) -> CsrMatrix<T> {
    let threads = par::effective_threads(None);
    let bounds = par::chunk_bounds(m.nrows(), threads);
    let chunks: Vec<RowChunk<T>> = par::ordered_bounds_map(&bounds, |range| {
        let mut ptr = Vec::with_capacity(range.len());
        let mut idx = Vec::new();
        let mut val = Vec::new();
        for r in range {
            let (cols, vals) = m.row(r);
            for (&c, &v) in cols.iter().zip(vals) {
                if keep(r, c, v) {
                    idx.push(c);
                    val.push(v);
                }
            }
            ptr.push(idx.len());
        }
        (ptr, idx, val)
    });
    let nnz: usize = chunks.iter().map(|(_, idx, _)| idx.len()).sum();
    let mut ptr = Vec::with_capacity(m.nrows() + 1);
    let mut idx = Vec::with_capacity(nnz);
    let mut val = Vec::with_capacity(nnz);
    ptr.push(0usize);
    for (local_ptr, local_idx, local_val) in chunks {
        let base = idx.len();
        ptr.extend(local_ptr.iter().map(|&p| base + p));
        idx.extend(local_idx);
        val.extend(local_val);
    }
    CsrMatrix::from_parts_unchecked(m.nrows(), m.ncols(), ptr, idx, val)
}

impl<T: Scalar> CsrMatrix<T> {
    /// Keeps only the entries of `self` whose `(row, col)` position is
    /// stored in `pattern` (values of `pattern` are ignored — an explicit
    /// zero still selects). This is the Hadamard-mask `self ∘ spy(pattern)`
    /// used by triangle counting (`A² ∘ A`).
    ///
    /// Fails with [`SparseError::ShapeMismatch`] when the shapes differ.
    /// Both operands must be canonical CSR; each output row is the sorted
    /// intersection of the two rows, so the result is canonical by
    /// construction and bit-identical at any thread count.
    pub fn mask_by_pattern(&self, pattern: &CsrMatrix<T>) -> Result<CsrMatrix<T>> {
        if self.nrows() != pattern.nrows() || self.ncols() != pattern.ncols() {
            return Err(SparseError::ShapeMismatch {
                op: "mask_by_pattern",
                lhs: (self.nrows(), self.ncols()),
                rhs: (pattern.nrows(), pattern.ncols()),
            });
        }
        Ok(filter_rows(self, |r, c, _| {
            let (cols, _) = pattern.row(r);
            cols.binary_search(&c).is_ok()
        }))
    }

    /// Divides every entry by its column's sum, making each non-degenerate
    /// column sum to one — the Markov-cluster expansion step. Columns whose
    /// sum is exactly zero (empty, or fully cancelled) are left untouched:
    /// there is no finite normaliser for them.
    ///
    /// The column sums are accumulated **sequentially in row-major entry
    /// order** (the documented float-reduction rule of [`par`]), then the
    /// per-entry divide — which needs no reduction — runs over parallel row
    /// chunks; structure is unchanged and values are bit-identical at any
    /// thread count.
    pub fn column_normalize(&self) -> CsrMatrix<T> {
        let mut colsum = vec![T::ZERO; self.ncols()];
        for r in 0..self.nrows() {
            let (cols, vals) = self.row(r);
            for (&c, &v) in cols.iter().zip(vals) {
                colsum[c as usize] += v;
            }
        }
        let threads = par::effective_threads(None);
        let bounds = par::chunk_bounds(self.nrows(), threads);
        let chunks: Vec<Vec<T>> = par::ordered_bounds_map(&bounds, |range| {
            let mut out = Vec::new();
            for r in range {
                let (cols, vals) = self.row(r);
                for (&c, &v) in cols.iter().zip(vals) {
                    let s = colsum[c as usize];
                    out.push(if s == T::ZERO { v } else { v / s });
                }
            }
            out
        });
        let mut val = Vec::with_capacity(self.nnz());
        for chunk in chunks {
            val.extend(chunk);
        }
        CsrMatrix::from_parts_unchecked(
            self.nrows(),
            self.ncols(),
            self.ptr().to_vec(),
            self.idx().to_vec(),
            val,
        )
    }

    /// Drops entries of magnitude ≤ `tol` — the parallel twin of
    /// [`CsrMatrix::prune`], bit-identical to it at any thread count
    /// because the filter is per-entry and assembly order is fixed.
    pub fn threshold_prune(&self, tol: f64) -> CsrMatrix<T> {
        filter_rows(self, |_, _, v| v.abs().to_f64() > tol)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// [[1, 0, 2], [0, 0, 0], [3, 4, 0]]
    fn sample() -> CsrMatrix<f64> {
        CsrMatrix::try_new(
            3,
            3,
            vec![0, 2, 2, 4],
            vec![0, 2, 0, 1],
            vec![1.0, 2.0, 3.0, 4.0],
        )
        .unwrap()
    }

    #[test]
    fn mask_keeps_only_pattern_positions() {
        let m = sample();
        // Pattern: {(0,0), (2,1), (1,1)} — (1,1) selects nothing in m.
        let pat =
            CsrMatrix::try_new(3, 3, vec![0, 1, 2, 3], vec![0, 1, 1], vec![9.0, 0.0, 9.0]).unwrap();
        let masked = m.mask_by_pattern(&pat).unwrap();
        masked.check_invariants().unwrap();
        assert_eq!(masked.nnz(), 2);
        assert_eq!(masked.get(0, 0), 1.0);
        assert_eq!(masked.get(2, 1), 4.0);
        assert_eq!(masked.get(0, 2), 0.0);
        // Self-mask is the identity on structure and values.
        assert_eq!(m.mask_by_pattern(&m).unwrap(), m);
    }

    #[test]
    fn mask_rejects_shape_mismatch() {
        let m = sample();
        let narrow = CsrMatrix::<f64>::zeros(3, 2);
        assert!(m.mask_by_pattern(&narrow).is_err());
    }

    #[test]
    fn column_normalize_makes_columns_stochastic() {
        let m = sample();
        let n = m.column_normalize();
        n.check_invariants().unwrap();
        assert_eq!(n.ptr(), m.ptr());
        assert_eq!(n.idx(), m.idx());
        // Column sums: c0 = 4, c1 = 4, c2 = 2.
        assert_eq!(n.get(0, 0), 0.25);
        assert_eq!(n.get(2, 0), 0.75);
        assert_eq!(n.get(2, 1), 1.0);
        assert_eq!(n.get(0, 2), 1.0);
        // Already-stochastic matrices are a fixed point.
        assert_eq!(n.column_normalize(), n);
    }

    #[test]
    fn column_normalize_leaves_zero_sum_columns_alone() {
        // Column 0 sums to exactly zero through cancellation.
        let m = CsrMatrix::try_new(2, 2, vec![0, 1, 2], vec![0, 0], vec![2.0, -2.0]).unwrap();
        let n = m.column_normalize();
        assert_eq!(n, m);
    }

    #[test]
    fn threshold_prune_matches_sequential_prune() {
        let m = CsrMatrix::try_new(
            2,
            3,
            vec![0, 3, 4],
            vec![0, 1, 2, 0],
            vec![1.0, 1e-12, -2.0, 0.0],
        )
        .unwrap();
        let p = m.threshold_prune(1e-9);
        assert_eq!(p, m.prune(1e-9));
        assert_eq!(p.nnz(), 2);
        p.check_invariants().unwrap();
    }

    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn random_csr(rng: &mut SmallRng, nrows: usize, ncols: usize) -> CsrMatrix<f64> {
        let mut coo = crate::CooMatrix::with_capacity(nrows, ncols, 4 * nrows);
        for _ in 0..rng.gen_range(0..4 * nrows.max(1)) {
            coo.push(
                rng.gen_range(0..nrows) as u32,
                rng.gen_range(0..ncols) as u32,
                rng.gen_range(-4.0f64..4.0),
            )
            .unwrap();
        }
        coo.to_csr()
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(24))]
        /// Property: every element-wise op is bit-identical to its
        /// sequential twin at any thread count — the determinism contract
        /// the chain executor relies on. The sequential twins are computed
        /// under a forced single-thread override.
        #[test]
        fn prop_eltwise_ops_are_thread_count_invariant(seed in 0u64..10_000) {
            let mut rng = SmallRng::seed_from_u64(seed);
            let nrows = rng.gen_range(1usize..40);
            let ncols = rng.gen_range(1usize..40);
            let m = random_csr(&mut rng, nrows, ncols);
            let pat = random_csr(&mut rng, nrows, ncols);
            par::set_global_threads(1);
            let masked1 = m.mask_by_pattern(&pat).unwrap();
            let norm1 = m.column_normalize();
            let pruned1 = m.threshold_prune(0.5);
            for threads in [2usize, 3, 8] {
                par::set_global_threads(threads);
                proptest::prop_assert_eq!(&m.mask_by_pattern(&pat).unwrap(), &masked1);
                proptest::prop_assert_eq!(&m.column_normalize(), &norm1);
                proptest::prop_assert_eq!(&m.threshold_prune(0.5), &pruned1);
            }
            par::set_global_threads(0);
            // And the parallel prune is bit-identical to the sequential
            // csr::prune at every tolerance.
            proptest::prop_assert_eq!(m.threshold_prune(0.5), m.prune(0.5));
        }

        /// Property: masking by a pattern is idempotent and never grows
        /// the entry set; normalising a strictly positive matrix makes
        /// every occupied column sum to one (within rounding).
        #[test]
        fn prop_mask_idempotent_and_normalize_stochastic(seed in 0u64..10_000) {
            let mut rng = SmallRng::seed_from_u64(seed);
            let nrows = rng.gen_range(1usize..24);
            let ncols = rng.gen_range(1usize..24);
            let m = random_csr(&mut rng, nrows, ncols);
            let pat = random_csr(&mut rng, nrows, ncols);
            let once = m.mask_by_pattern(&pat).unwrap();
            proptest::prop_assert_eq!(once.mask_by_pattern(&pat).unwrap(), once.clone());
            proptest::prop_assert!(once.nnz() <= m.nnz().min(pat.nnz()));
            let pos = m.map_values(|v| v.abs() + 1.0e-3);
            let n = pos.column_normalize();
            let mut colsum = vec![0.0f64; n.ncols()];
            let mut occupied = vec![false; n.ncols()];
            for (_, c, v) in n.iter() {
                colsum[c as usize] += v;
                occupied[c as usize] = true;
            }
            for (c, &s) in colsum.iter().enumerate() {
                if occupied[c] {
                    proptest::prop_assert!((s - 1.0).abs() < 1e-12, "column {} sums to {}", c, s);
                }
            }
        }
    }
}
