//! Deterministic scoped-thread parallelism for host-side hot paths.
//!
//! Every parallel construct in this workspace must satisfy one contract:
//! **the result is a pure function of the input, independent of the thread
//! count** — `BENCH_*.json` reports are byte-compared across machines and
//! thread counts, and every numeric kernel is checked bit-for-bit against
//! its sequential twin. The helpers here make that contract easy to keep:
//!
//! * **Fixed index-based chunking** — [`chunk_bounds`] / [`weighted_bounds`]
//!   partition an index space into contiguous ranges as a deterministic
//!   function of `(len, parts)` (or the weights), never of runtime timing.
//! * **Ordered assembly** — [`ordered_map`], [`ordered_index_map`] and
//!   [`ordered_bounds_map`] hand each worker a contiguous range and join
//!   the results back **in index order**, so concatenation-style reductions
//!   (CSR stitching, report rows) see exactly the sequential layout;
//!   [`ordered_bounds_map_with`] additionally gives each worker private,
//!   reusable scratch state (and returns it for pooling).
//! * **Sequential float reductions** — none of these helpers reduce
//!   floating-point values across threads. Callers that need a float sum
//!   map each element to its value in parallel and fold the resulting
//!   vector **on the calling thread in index order**, which reproduces the
//!   sequential rounding bit-for-bit at any thread count.
//!
//! The worker count is resolved by [`effective_threads`] from, in priority
//! order: an explicit argument (e.g. `blockreorg-cli --threads`), the
//! process-wide override set by [`set_global_threads`], the `BR_THREADS`
//! environment variable, and finally [`available_threads`]. A count of `1`
//! always takes the exact sequential code path (no scope, no spawn).

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Process-wide thread-count override; `0` means "unset".
static GLOBAL_THREADS: AtomicUsize = AtomicUsize::new(0);

/// Name of the environment variable consulted by [`effective_threads`].
pub const THREADS_ENV_VAR: &str = "BR_THREADS";

/// Parses a thread-count spelling: a positive integer. Returns `None` for
/// anything else (empty, zero, garbage) so callers fall through to the
/// next configuration source.
pub fn parse_threads(text: &str) -> Option<usize> {
    text.trim().parse::<usize>().ok().filter(|&n| n > 0)
}

/// The `BR_THREADS` environment variable, if set to a positive integer.
pub fn env_threads() -> Option<usize> {
    std::env::var(THREADS_ENV_VAR)
        .ok()
        .and_then(|v| parse_threads(&v))
}

/// The machine's available parallelism (≥ 1).
pub fn available_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Sets (or with `0` clears) the process-wide thread-count override. Takes
/// precedence over `BR_THREADS`; an explicit per-call argument still wins.
pub fn set_global_threads(threads: usize) {
    GLOBAL_THREADS.store(threads, Ordering::Relaxed);
}

/// The process-wide override installed by [`set_global_threads`], if any.
pub fn global_threads() -> Option<usize> {
    match GLOBAL_THREADS.load(Ordering::Relaxed) {
        0 => None,
        n => Some(n),
    }
}

/// Resolves the worker count: `explicit` > [`set_global_threads`] >
/// `BR_THREADS` > [`available_threads`]; always ≥ 1.
pub fn effective_threads(explicit: Option<usize>) -> usize {
    explicit
        .filter(|&n| n > 0)
        .or_else(global_threads)
        .or_else(env_threads)
        .unwrap_or_else(available_threads)
        .max(1)
}

/// Even contiguous partition of `0..len` into at most `parts` chunks:
/// returns ascending boundaries `b` with `b[0] = 0`, `b.last() = len`, and
/// chunk `i` being `b[i]..b[i+1]`. A pure function of `(len, parts)` —
/// never of timing — with chunk sizes differing by at most one.
pub fn chunk_bounds(len: usize, parts: usize) -> Vec<usize> {
    let parts = parts.clamp(1, len.max(1));
    let base = len / parts;
    let extra = len % parts;
    let mut bounds = Vec::with_capacity(parts + 1);
    let mut at = 0;
    bounds.push(at);
    for i in 0..parts {
        at += base + usize::from(i < extra);
        bounds.push(at);
    }
    bounds
}

/// Contiguous partition of `0..weights.len()` into at most `parts` chunks
/// of roughly equal total weight (greedy prefix cut at `total/parts`), so
/// one heavy region does not serialize a parallel pass. Deterministic in
/// the weights alone. Returns boundaries like [`chunk_bounds`].
pub fn weighted_bounds(weights: &[u64], parts: usize) -> Vec<usize> {
    let len = weights.len();
    let parts = parts.clamp(1, len.max(1));
    if parts == 1 {
        return vec![0, len];
    }
    let total: u64 = weights.iter().sum();
    let per_part = total / parts as u64 + 1;
    let mut bounds = vec![0usize];
    let mut acc = 0u64;
    for (i, &w) in weights.iter().enumerate() {
        acc += w;
        if acc >= per_part && bounds.len() < parts {
            bounds.push(i + 1);
            acc = 0;
        }
    }
    bounds.push(len);
    bounds
}

/// Applies `f` to every item, distributing contiguous index chunks over at
/// most `threads` scoped workers, and returns the results **in item
/// order**. Because `f` is applied per item and the output is assembled by
/// index, the result is bit-identical at any thread count; `threads = 1`
/// runs the plain sequential loop.
pub fn ordered_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let threads = threads.clamp(1, items.len().max(1));
    if threads == 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let bounds = chunk_bounds(items.len(), threads);
    let chunks = ordered_bounds_map(&bounds, |range| {
        range.map(|i| f(i, &items[i])).collect::<Vec<R>>()
    });
    let mut out = Vec::with_capacity(items.len());
    for chunk in chunks {
        out.extend(chunk);
    }
    out
}

/// [`ordered_map`] over a bare index space `0..len` (no backing slice).
pub fn ordered_index_map<R, F>(len: usize, threads: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let threads = threads.clamp(1, len.max(1));
    if threads == 1 {
        return (0..len).map(f).collect();
    }
    let bounds = chunk_bounds(len, threads);
    let chunks = ordered_bounds_map(&bounds, |range| range.map(&f).collect::<Vec<R>>());
    let mut out = Vec::with_capacity(len);
    for chunk in chunks {
        out.extend(chunk);
    }
    out
}

/// Runs `f` once per boundary window (`bounds[i]..bounds[i+1]`), one scoped
/// worker per window, and returns the per-window results **in window
/// order**. The caller owns the chunking (e.g. [`weighted_bounds`]), so
/// this is for chunk-composable work — per-row-independent computations
/// whose outputs concatenate, like CSR row-range stitching. A single
/// window runs on the calling thread.
pub fn ordered_bounds_map<R, F>(bounds: &[usize], f: F) -> Vec<R>
where
    R: Send,
    F: Fn(Range<usize>) -> R + Sync,
{
    let windows = bounds.len().saturating_sub(1);
    if windows == 0 {
        return Vec::new();
    }
    if windows == 1 {
        return vec![f(bounds[0]..bounds[1])];
    }
    let mut out: Vec<Option<R>> = Vec::new();
    out.resize_with(windows, || None);
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(windows);
        for w in 0..windows {
            let range = bounds[w]..bounds[w + 1];
            let f = &f;
            handles.push(scope.spawn(move || f(range)));
        }
        for (slot, handle) in out.iter_mut().zip(handles) {
            *slot = Some(handle.join().expect("parallel worker must not panic"));
        }
    });
    out.into_iter()
        .map(|slot| slot.expect("every window produced a result"))
        .collect()
}

/// [`ordered_bounds_map`] with per-worker scratch state: each window's
/// worker first builds its own state with `init` (e.g. pulling a reusable
/// merge scratch from a pool), then runs `f(&mut state, range)`. Results
/// come back **in window order**, and the final per-window states are
/// returned alongside them so callers can recycle scratch (return it to a
/// pool) instead of dropping it. Determinism is unchanged from
/// [`ordered_bounds_map`]: state is private to one worker and the output
/// order is fixed by the bounds, never by timing.
pub fn ordered_bounds_map_with<S, R, I, F>(bounds: &[usize], init: I, f: F) -> (Vec<R>, Vec<S>)
where
    S: Send,
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, Range<usize>) -> R + Sync,
{
    let windows = bounds.len().saturating_sub(1);
    if windows == 0 {
        return (Vec::new(), Vec::new());
    }
    if windows == 1 {
        let mut state = init();
        let out = f(&mut state, bounds[0]..bounds[1]);
        return (vec![out], vec![state]);
    }
    let mut out: Vec<Option<(R, S)>> = Vec::new();
    out.resize_with(windows, || None);
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(windows);
        for w in 0..windows {
            let range = bounds[w]..bounds[w + 1];
            let init = &init;
            let f = &f;
            handles.push(scope.spawn(move || {
                let mut state = init();
                let r = f(&mut state, range);
                (r, state)
            }));
        }
        for (slot, handle) in out.iter_mut().zip(handles) {
            *slot = Some(handle.join().expect("parallel worker must not panic"));
        }
    });
    let mut results = Vec::with_capacity(windows);
    let mut states = Vec::with_capacity(windows);
    for slot in out {
        let (r, s) = slot.expect("every window produced a result");
        results.push(r);
        states.push(s);
    }
    (results, states)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_bounds_cover_the_range_exactly_once() {
        for len in [0usize, 1, 2, 7, 100, 101] {
            for parts in [1usize, 2, 3, 8, 200] {
                let b = chunk_bounds(len, parts);
                assert_eq!(*b.first().unwrap(), 0, "len={len} parts={parts}");
                assert_eq!(*b.last().unwrap(), len, "len={len} parts={parts}");
                assert!(b.windows(2).all(|w| w[0] <= w[1]));
                assert!(b.len() <= parts.max(1) + 1);
                // Even split: sizes differ by at most one.
                let sizes: Vec<usize> = b.windows(2).map(|w| w[1] - w[0]).collect();
                if let (Some(&min), Some(&max)) = (sizes.iter().min(), sizes.iter().max()) {
                    assert!(max - min <= 1, "len={len} parts={parts}: {sizes:?}");
                }
            }
        }
    }

    #[test]
    fn weighted_bounds_cover_the_range_and_respect_parts() {
        let weights = [100u64, 1, 1, 1, 1, 1, 1, 100];
        for parts in [1usize, 2, 4, 16] {
            let b = weighted_bounds(&weights, parts);
            assert_eq!(*b.first().unwrap(), 0);
            assert_eq!(*b.last().unwrap(), weights.len());
            assert!(b.len() <= parts + 1);
            assert!(b.windows(2).all(|w| w[0] <= w[1]));
        }
        assert_eq!(weighted_bounds(&[], 4), vec![0, 0]);
    }

    #[test]
    fn ordered_map_matches_sequential_at_every_thread_count() {
        let items: Vec<u64> = (0..1000).collect();
        let seq: Vec<u64> = items
            .iter()
            .enumerate()
            .map(|(i, v)| v * 3 + i as u64)
            .collect();
        for threads in [1, 2, 3, 7, 64, 5000] {
            let par = ordered_map(&items, threads, |i, v| v * 3 + i as u64);
            assert_eq!(par, seq, "threads={threads}");
        }
    }

    #[test]
    fn ordered_index_map_matches_sequential() {
        let seq: Vec<usize> = (0..257).map(|i| i * i).collect();
        for threads in [1, 4, 13] {
            assert_eq!(ordered_index_map(257, threads, |i| i * i), seq);
        }
    }

    #[test]
    fn ordered_bounds_map_preserves_window_order() {
        let bounds = chunk_bounds(100, 7);
        let ranges = ordered_bounds_map(&bounds, |r| (r.start, r.end));
        let expected: Vec<(usize, usize)> = bounds.windows(2).map(|w| (w[0], w[1])).collect();
        assert_eq!(ranges, expected);
    }

    #[test]
    fn empty_inputs_are_fine() {
        assert!(ordered_map(&[] as &[u8], 8, |_, &b| b).is_empty());
        assert!(ordered_index_map(0, 8, |i| i).is_empty());
        assert!(ordered_bounds_map(&[0], |r| r.len()).is_empty());
        assert!(ordered_bounds_map(&[], |r| r.len()).is_empty());
        let (r, s) = ordered_bounds_map_with(&[], Vec::<u8>::new, |_, r| r.len());
        assert!(r.is_empty() && s.is_empty());
    }

    #[test]
    fn ordered_bounds_map_with_threads_scratch_and_returns_it() {
        // Each worker accumulates into its own scratch; results stay in
        // window order and one state per window comes back for recycling.
        let bounds = chunk_bounds(100, 5);
        let (results, states) =
            ordered_bounds_map_with(&bounds, Vec::<usize>::new, |scratch, range| {
                scratch.extend(range.clone());
                range.sum::<usize>()
            });
        let expected: Vec<usize> = bounds.windows(2).map(|w| (w[0]..w[1]).sum()).collect();
        assert_eq!(results, expected);
        assert_eq!(states.len(), bounds.len() - 1);
        let mut all: Vec<usize> = states.into_iter().flatten().collect();
        all.sort_unstable();
        assert_eq!(all, (0..100).collect::<Vec<usize>>());
    }

    #[test]
    fn ordered_bounds_map_with_single_window_runs_inline() {
        let (r, s) = ordered_bounds_map_with(&[0, 10], || 7usize, |st, range| *st + range.len());
        assert_eq!(r, vec![17]);
        assert_eq!(s, vec![7]);
    }

    #[test]
    fn float_fold_over_ordered_map_is_bit_identical() {
        // The pattern every caller uses for float reductions: map in
        // parallel, fold sequentially in index order on this thread.
        let items: Vec<f64> = (0..10_000).map(|i| 1.0 / (i as f64 + 1.0)).collect();
        let seq: f64 = items.iter().map(|v| v.sin()).sum();
        for threads in [2, 5, 32] {
            let mapped = ordered_map(&items, threads, |_, v| v.sin());
            let par: f64 = mapped.iter().sum();
            assert_eq!(par.to_bits(), seq.to_bits(), "threads={threads}");
        }
    }

    #[test]
    fn explicit_beats_global_beats_default() {
        // Explicit argument always wins; `0` explicit means "unset".
        assert_eq!(effective_threads(Some(3)), 3);
        assert!(effective_threads(None) >= 1);
        assert!(effective_threads(Some(0)) >= 1);
    }

    #[test]
    fn parse_threads_accepts_positive_integers_only() {
        assert_eq!(parse_threads("4"), Some(4));
        assert_eq!(parse_threads(" 16 "), Some(16));
        assert_eq!(parse_threads("0"), None);
        assert_eq!(parse_threads(""), None);
        assert_eq!(parse_threads("-2"), None);
        assert_eq!(parse_threads("many"), None);
    }
}
