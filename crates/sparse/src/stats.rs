//! Degree-distribution statistics for sparse networks.
//!
//! The paper's whole premise is that sparse networks have *power-law* degree
//! distributions — "a few rows with large numbers of non-zero elements while
//! a large number of rows have a few". These metrics quantify that skew so
//! the dataset registry can verify its surrogates fall in the intended
//! distribution class (regular Florida-style vs skewed SNAP-style).

use crate::scalar::Scalar;
use crate::CsrMatrix;
use serde::{Deserialize, Serialize};

/// Summary statistics of a matrix's row-degree distribution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DegreeStats {
    /// Number of rows.
    pub n: usize,
    /// Total nnz.
    pub nnz: usize,
    /// Mean row degree.
    pub mean: f64,
    /// Maximum row degree.
    pub max: usize,
    /// Ratio `max / mean` — the paper's skew in its crudest form.
    pub max_over_mean: f64,
    /// Gini coefficient of the degree sequence in `[0, 1)`;
    /// 0 = perfectly regular, → 1 = all edges on one hub.
    pub gini: f64,
    /// Coefficient of variation (stddev / mean).
    pub cv: f64,
    /// Fraction of rows with degree < 32 (the warp size) — precisely the
    /// rows that make outer-product blocks *underloaded* (Fig. 3(b)).
    pub frac_below_warp: f64,
}

impl DegreeStats {
    /// Computes statistics from an explicit degree sequence.
    pub fn from_degrees(degrees: &[usize]) -> DegreeStats {
        let n = degrees.len();
        let nnz: usize = degrees.iter().sum();
        if n == 0 {
            return DegreeStats {
                n: 0,
                nnz: 0,
                mean: 0.0,
                max: 0,
                max_over_mean: 0.0,
                gini: 0.0,
                cv: 0.0,
                frac_below_warp: 0.0,
            };
        }
        let mean = nnz as f64 / n as f64;
        let max = degrees.iter().copied().max().unwrap_or(0);
        let var = degrees
            .iter()
            .map(|&d| {
                let diff = d as f64 - mean;
                diff * diff
            })
            .sum::<f64>()
            / n as f64;
        let cv = if mean > 0.0 { var.sqrt() / mean } else { 0.0 };

        // Gini via the sorted-rank formula: G = (2·Σ i·xᵢ)/(n·Σ xᵢ) − (n+1)/n.
        let mut sorted: Vec<usize> = degrees.to_vec();
        sorted.sort_unstable();
        let gini = if nnz == 0 {
            0.0
        } else {
            let weighted: f64 = sorted
                .iter()
                .enumerate()
                .map(|(i, &x)| (i as f64 + 1.0) * x as f64)
                .sum();
            (2.0 * weighted) / (n as f64 * nnz as f64) - (n as f64 + 1.0) / n as f64
        };
        let below = degrees.iter().filter(|&&d| d < 32).count();
        DegreeStats {
            n,
            nnz,
            mean,
            max,
            max_over_mean: if mean > 0.0 { max as f64 / mean } else { 0.0 },
            gini,
            cv,
            frac_below_warp: below as f64 / n as f64,
        }
    }

    /// Row-degree statistics of a CSR matrix.
    pub fn of_rows<T: Scalar>(m: &CsrMatrix<T>) -> DegreeStats {
        Self::from_degrees(&m.row_degrees())
    }

    /// Column-degree statistics of a CSR matrix (single counting pass).
    pub fn of_cols<T: Scalar>(m: &CsrMatrix<T>) -> DegreeStats {
        let mut deg = vec![0usize; m.ncols()];
        for &c in m.idx() {
            deg[c as usize] += 1;
        }
        Self::from_degrees(&deg)
    }

    /// Heuristic classification used by the dataset registry: a matrix is
    /// "skewed" when its degree Gini exceeds 0.5 or max/mean exceeds 50 —
    /// thresholds that cleanly separate the paper's SNAP sets (youtube,
    /// loc-gowalla, as-caida, …) from its Florida mesh matrices.
    pub fn is_skewed(&self) -> bool {
        self.gini > 0.5 || self.max_over_mean > 50.0
    }
}

/// Maximum-likelihood estimate of a discrete power-law exponent `γ` for
/// degrees ≥ `xmin` (Clauset–Shalizi–Newman continuous approximation:
/// `γ̂ = 1 + n / Σ ln(xᵢ / (xmin − ½))`).
///
/// Returns `None` when fewer than 10 degrees reach `xmin` — too few tail
/// samples for the estimate to mean anything. Social networks land around
/// `γ ∈ (2, 3)`; regular meshes have no meaningful fit (huge γ̂).
pub fn power_law_exponent(degrees: &[usize], xmin: usize) -> Option<f64> {
    let xmin = xmin.max(1);
    let tail: Vec<f64> = degrees
        .iter()
        .filter(|&&d| d >= xmin)
        .map(|&d| d as f64)
        .collect();
    if tail.len() < 10 {
        return None;
    }
    let denom: f64 = tail.iter().map(|&x| (x / (xmin as f64 - 0.5)).ln()).sum();
    if denom <= 0.0 {
        return None;
    }
    Some(1.0 + tail.len() as f64 / denom)
}

/// Log-binned degree histogram: bucket `k` counts rows with degree in
/// `[2ᵏ, 2ᵏ⁺¹)` (bucket 0 holds degrees 0 and 1). This is the paper's
/// Figure 3(b) axis.
pub fn log2_degree_histogram(degrees: &[usize]) -> Vec<usize> {
    let mut hist = Vec::new();
    for &d in degrees {
        let bucket = if d <= 1 {
            0
        } else {
            (usize::BITS - d.leading_zeros()) as usize - 1
        };
        if hist.len() <= bucket {
            hist.resize(bucket + 1, 0);
        }
        hist[bucket] += 1;
    }
    hist
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regular_sequence_has_zero_gini() {
        let s = DegreeStats::from_degrees(&[4, 4, 4, 4]);
        assert!(s.gini.abs() < 1e-12);
        assert_eq!(s.mean, 4.0);
        assert_eq!(s.max_over_mean, 1.0);
        assert!(!s.is_skewed());
    }

    #[test]
    fn hub_sequence_is_skewed() {
        let mut deg = vec![1usize; 999];
        deg.push(100_000);
        let s = DegreeStats::from_degrees(&deg);
        assert!(s.gini > 0.9);
        assert!(s.is_skewed());
        assert!(s.frac_below_warp > 0.99);
    }

    #[test]
    fn empty_input_is_all_zero() {
        let s = DegreeStats::from_degrees(&[]);
        assert_eq!(s.n, 0);
        assert_eq!(s.gini, 0.0);
    }

    #[test]
    fn gini_is_scale_invariant() {
        let a = DegreeStats::from_degrees(&[1, 2, 3, 4]);
        let b = DegreeStats::from_degrees(&[10, 20, 30, 40]);
        assert!((a.gini - b.gini).abs() < 1e-12);
    }

    #[test]
    fn row_and_col_stats_of_symmetric_matrix_agree() {
        let m =
            CsrMatrix::<f64>::try_new(3, 3, vec![0, 2, 4, 6], vec![1, 2, 0, 2, 0, 1], vec![1.0; 6])
                .unwrap();
        assert_eq!(DegreeStats::of_rows(&m), DegreeStats::of_cols(&m));
    }

    #[test]
    fn log_histogram_buckets() {
        // degrees: 0,1 -> bucket 0; 2,3 -> bucket 1; 4..7 -> bucket 2; 32 -> bucket 5
        let h = log2_degree_histogram(&[0, 1, 2, 3, 4, 7, 32]);
        assert_eq!(h[0], 2);
        assert_eq!(h[1], 2);
        assert_eq!(h[2], 2);
        assert_eq!(h[5], 1);
        assert_eq!(h.len(), 6);
    }

    #[test]
    fn power_law_mle_recovers_known_exponent() {
        // Sample a discrete power law with gamma = 2.5 via inverse CDF.
        let gamma: f64 = 2.5;
        let xmin = 2usize;
        let mut degrees = Vec::new();
        let mut u = 0.05f64;
        for _ in 0..20_000 {
            u = (u * 69.069 + 0.3819) % 1.0; // deterministic LCG-ish stream
            let x = (xmin as f64 - 0.5) * (1.0 - u).powf(-1.0 / (gamma - 1.0));
            degrees.push(x.round() as usize);
        }
        let est = power_law_exponent(&degrees, xmin).expect("plenty of samples");
        assert!(
            (est - gamma).abs() < 0.15,
            "MLE should recover gamma=2.5: got {est}"
        );
    }

    #[test]
    fn power_law_mle_needs_enough_tail() {
        assert!(power_law_exponent(&[1, 1, 2, 50], 10).is_none());
        assert!(power_law_exponent(&[], 1).is_none());
    }

    #[test]
    fn frac_below_warp_counts_strictly_less_than_32() {
        let s = DegreeStats::from_degrees(&[31, 32, 33]);
        assert!((s.frac_below_warp - 1.0 / 3.0).abs() < 1e-12);
    }
}
