//! Exposition renderers: Prometheus text format and a JSONL event log.
//!
//! Both renderers walk the registry snapshot in sorted (name, label-set)
//! order, so output bytes are a pure function of registry content. With
//! `include_timing == false` every timing-flagged family — and the
//! scheduling-dependent per-thread span event streams — are omitted, which is
//! what makes the deterministic exposition byte-identical across
//! `BR_THREADS=1` and `8` for the same work.

use std::fmt::Write as _;

use crate::registry::{FamilySnapshot, LabelSet, Registry, SampleValue};
use crate::span::SpanEventKind;

/// Render `reg` in Prometheus text exposition format.
pub(crate) fn render_prometheus(reg: &Registry, include_timing: bool) -> String {
    let mut out = String::new();
    for fam in visible(reg, include_timing) {
        let _ = writeln!(out, "# HELP {} {}", fam.name, escape_help(&fam.help));
        let _ = writeln!(out, "# TYPE {} {}", fam.name, fam.kind.as_str());
        for (labels, value) in &fam.samples {
            match value {
                SampleValue::Counter(v) => {
                    let _ = writeln!(out, "{}{} {}", fam.name, label_block(labels, None), v);
                }
                SampleValue::Gauge(v) => {
                    let _ = writeln!(
                        out,
                        "{}{} {}",
                        fam.name,
                        label_block(labels, None),
                        fmt_f64(*v)
                    );
                }
                SampleValue::Histogram {
                    bounds,
                    counts,
                    sum,
                    count,
                } => {
                    let mut cumulative = 0u64;
                    for (bound, n) in bounds.iter().zip(counts.iter()) {
                        cumulative += n;
                        let _ = writeln!(
                            out,
                            "{}_bucket{} {}",
                            fam.name,
                            label_block(labels, Some(&bound.to_string())),
                            cumulative
                        );
                    }
                    let _ = writeln!(
                        out,
                        "{}_bucket{} {}",
                        fam.name,
                        label_block(labels, Some("+Inf")),
                        count
                    );
                    let _ = writeln!(out, "{}_sum{} {}", fam.name, label_block(labels, None), sum);
                    let _ = writeln!(
                        out,
                        "{}_count{} {}",
                        fam.name,
                        label_block(labels, None),
                        count
                    );
                }
            }
        }
    }
    out
}

/// Render `reg` as a JSONL event log: one JSON object per metric sample, in
/// the same deterministic order as the Prometheus renderer, followed (in
/// timing mode only) by one object per thread-ordered span event buffer.
pub(crate) fn render_jsonl(reg: &Registry, include_timing: bool) -> String {
    let mut out = String::new();
    for fam in visible(reg, include_timing) {
        for (labels, value) in &fam.samples {
            out.push_str("{\"type\":\"metric\",\"name\":");
            push_json_str(&mut out, &fam.name);
            let _ = write!(out, ",\"kind\":\"{}\",\"labels\":", fam.kind.as_str());
            push_json_labels(&mut out, labels);
            match value {
                SampleValue::Counter(v) => {
                    let _ = write!(out, ",\"value\":{v}");
                }
                SampleValue::Gauge(v) => {
                    out.push_str(",\"value\":");
                    push_json_f64(&mut out, *v);
                }
                SampleValue::Histogram {
                    bounds,
                    counts,
                    sum,
                    count,
                } => {
                    out.push_str(",\"le\":[");
                    for (i, b) in bounds.iter().enumerate() {
                        if i > 0 {
                            out.push(',');
                        }
                        let _ = write!(out, "{b}");
                    }
                    out.push_str("],\"counts\":[");
                    for (i, c) in counts.iter().enumerate() {
                        if i > 0 {
                            out.push(',');
                        }
                        let _ = write!(out, "{c}");
                    }
                    let _ = write!(out, "],\"sum\":{sum},\"count\":{count}");
                }
            }
            out.push_str("}\n");
        }
    }
    if include_timing {
        for (thread, events) in reg.span_store().events().iter().enumerate() {
            let _ = write!(
                out,
                "{{\"type\":\"span_events\",\"thread\":{thread},\"events\":["
            );
            for (i, ev) in events.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let kind = match ev.kind {
                    SpanEventKind::Enter => "enter",
                    SpanEventKind::Exit => "exit",
                };
                let _ = write!(out, "{{\"kind\":\"{kind}\",\"path\":");
                push_json_str(&mut out, &ev.path);
                if let Some(ns) = ev.duration_ns {
                    let _ = write!(out, ",\"duration_ns\":{ns}");
                }
                out.push('}');
            }
            out.push_str("]}\n");
        }
    }
    out
}

fn visible(reg: &Registry, include_timing: bool) -> Vec<FamilySnapshot> {
    reg.snapshot()
        .into_iter()
        .filter(|fam| include_timing || !fam.timing)
        .collect()
}

/// Format a `{label="value",...}` block, optionally with a trailing `le`
/// label (histogram buckets). Empty when there are no labels at all.
fn label_block(labels: &LabelSet, le: Option<&str>) -> String {
    if labels.is_empty() && le.is_none() {
        return String::new();
    }
    let mut out = String::from("{");
    let mut first = true;
    for (k, v) in labels {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(out, "{k}=\"{}\"", escape_label(v));
    }
    if let Some(le) = le {
        if !first {
            out.push(',');
        }
        let _ = write!(out, "le=\"{le}\"");
    }
    out.push('}');
    out
}

/// Deterministic float text: Rust's shortest-roundtrip formatting, with an
/// explicit spelling for the non-finite values Prometheus accepts.
fn fmt_f64(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v.is_infinite() {
        if v > 0.0 { "+Inf" } else { "-Inf" }.to_string()
    } else {
        format!("{v}")
    }
}

fn escape_help(s: &str) -> String {
    s.replace('\\', "\\\\").replace('\n', "\\n")
}

fn escape_label(s: &str) -> String {
    s.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn push_json_labels(out: &mut String, labels: &LabelSet) {
    out.push('{');
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_json_str(out, k);
        out.push(':');
        push_json_str(out, v);
    }
    out.push('}');
}

/// JSON has no NaN/Inf literals; represent non-finite gauges as null so the
/// log stays parseable.
fn push_json_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        out.push_str("null");
    }
}
