//! # br-obs — deterministic observability
//!
//! A zero-dependency instrumentation layer for the Block Reorganizer stack:
//! a [`Registry`] of typed instruments (monotonic [`Counter`]s, [`Gauge`]s,
//! fixed power-of-two-bucket [`Histogram`]s, and nested spans with per-thread
//! ordered event buffers) plus two exposition formats — Prometheus text and a
//! JSONL event log — whose non-timing output is **byte-deterministic**:
//! sorted label sets, `BTreeMap`-ordered families, and no timestamps unless a
//! caller supplies a [`Clock`], so `BR_THREADS=1` and `BR_THREADS=8` runs of
//! the same work render identical bytes.
//!
//! ## Determinism contract
//!
//! Instruments come in two flavors:
//!
//! - **Deterministic** (default): values are pure functions of the work
//!   performed — cache hit/miss counters under single-flight, per-bin row
//!   counts, simulated cycle histograms. Updates are commutative integer
//!   atomics (or order-independent `max`), so thread interleaving cannot
//!   change the final value.
//! - **Timing-flagged** (`timing_*` constructors): values depend on
//!   scheduling or wall clocks — queue depth over time, scratch-pool
//!   high-water marks, span durations. Renderers exclude these families
//!   unless asked for them with `include_timing = true`.
//!
//! Components register instruments against either a local registry (e.g. one
//! per service, so tests don't interfere) or the process-wide [`global`]
//! registry used by library internals that have no registry to thread
//! through.

#![warn(missing_docs)]

mod registry;
mod render;
mod span;

pub use registry::{
    lock_recover, Counter, FamilySnapshot, Gauge, Histogram, HistogramSpec, Kind, LabelSet,
    Registry, RegistryTotals, SampleValue,
};
pub use span::{SpanEvent, SpanEventKind, SpanGuard};

use std::sync::{Arc, OnceLock};
use std::time::Instant;

/// A monotonic nanosecond clock. Installing one on a registry (via
/// [`Registry::set_clock`]) is the *only* way timestamps enter the system;
/// without it spans record order but never durations.
pub trait Clock: Send + Sync {
    /// Nanoseconds since an arbitrary fixed origin.
    fn now_ns(&self) -> u64;
}

/// Wall clock anchored at construction time.
pub struct WallClock {
    anchor: Instant,
}

impl Default for WallClock {
    fn default() -> Self {
        WallClock::new()
    }
}

impl WallClock {
    /// Create a wall clock anchored at "now".
    pub fn new() -> Self {
        WallClock {
            anchor: Instant::now(),
        }
    }
}

impl Clock for WallClock {
    fn now_ns(&self) -> u64 {
        self.anchor.elapsed().as_nanos() as u64
    }
}

/// The process-wide registry. Library internals (spgemm merge bins, gpu-sim
/// pass histograms) record here; binaries snapshot it on exit.
pub fn global() -> &'static Registry {
    global_cell().as_ref()
}

/// The process-wide registry as a shared handle, for injection into
/// components that hold an `Arc<Registry>` (e.g. a service config).
pub fn global_arc() -> Arc<Registry> {
    global_cell().clone()
}

fn global_cell() -> &'static Arc<Registry> {
    static GLOBAL: OnceLock<Arc<Registry>> = OnceLock::new();
    GLOBAL.get_or_init(|| Arc::new(Registry::new()))
}

/// Convenience: install a [`WallClock`] on `reg`.
pub fn install_wall_clock(reg: &Registry) {
    reg.set_clock(Arc::new(WallClock::new()));
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn counter_accumulates_and_shares_cells() {
        let reg = Registry::new();
        let a = reg.counter("hits_total", "Hits.", &[("device", "gpu0")]);
        let b = reg.counter("hits_total", "Hits.", &[("device", "gpu0")]);
        a.add(3);
        b.inc();
        assert_eq!(a.get(), 4);
        assert_eq!(b.get(), 4);
        let other = reg.counter("hits_total", "Hits.", &[("device", "gpu1")]);
        assert_eq!(other.get(), 0);
    }

    #[test]
    fn gauge_set_and_max() {
        let reg = Registry::new();
        let g = reg.gauge("depth", "Depth.", &[]);
        g.set(2.5);
        assert_eq!(g.get(), 2.5);
        g.set_max(1.0);
        assert_eq!(g.get(), 2.5);
        g.set_max(7.0);
        assert_eq!(g.get(), 7.0);
        g.set_u64(3);
        assert_eq!(g.get(), 3.0);
    }

    #[test]
    fn histogram_bucket_edges() {
        let reg = Registry::new();
        // Default spec: le = 2^0, 2^2, ..., 2^32.
        let h = reg.histogram("cycles", "Cycles.", &[]);
        h.observe(0); // le=1
        h.observe(1); // le=1 (le semantics: v <= bound)
        h.observe(2); // le=4
        h.observe(4); // le=4
        h.observe(5); // le=16
        h.observe(u64::MAX); // overflow (+Inf)
        assert_eq!(h.count(), 6);
        let snap = reg.snapshot();
        let fam = snap.iter().find(|f| f.name == "cycles").unwrap();
        match &fam.samples[0].1 {
            SampleValue::Histogram { counts, bounds, .. } => {
                assert_eq!(bounds[0], 1);
                assert_eq!(bounds[1], 4);
                assert_eq!(counts[0], 2);
                assert_eq!(counts[1], 2);
                assert_eq!(counts[2], 1);
                assert_eq!(*counts.last().unwrap(), 1);
            }
            other => panic!("expected histogram, got {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "re-registered")]
    fn kind_mismatch_panics() {
        let reg = Registry::new();
        let _ = reg.counter("x_total", "X.", &[]);
        let _ = reg.gauge("x_total", "X.", &[]);
    }

    #[test]
    #[should_panic(expected = "invalid metric name")]
    fn invalid_name_panics() {
        let reg = Registry::new();
        let _ = reg.counter("bad name", "X.", &[]);
    }

    #[test]
    fn label_order_does_not_matter() {
        let reg = Registry::new();
        let a = reg.counter("m_total", "M.", &[("a", "1"), ("b", "2")]);
        let b = reg.counter("m_total", "M.", &[("b", "2"), ("a", "1")]);
        a.inc();
        assert_eq!(b.get(), 1);
    }

    #[test]
    fn spans_nest_per_thread_and_count_deterministically() {
        let reg = Registry::new();
        {
            let _job = reg.span("job");
            {
                let plan = reg.span("plan");
                assert_eq!(plan.path(), "job/plan");
            }
            let exec = reg.span("execute");
            assert_eq!(exec.path(), "job/execute");
        }
        let events = reg.span_store().events();
        assert_eq!(events.len(), 1);
        let paths: Vec<(SpanEventKind, &str)> = events[0]
            .iter()
            .map(|e| (e.kind, e.path.as_str()))
            .collect();
        assert_eq!(
            paths,
            vec![
                (SpanEventKind::Enter, "job"),
                (SpanEventKind::Enter, "job/plan"),
                (SpanEventKind::Exit, "job/plan"),
                (SpanEventKind::Enter, "job/execute"),
                (SpanEventKind::Exit, "job/execute"),
                (SpanEventKind::Exit, "job"),
            ]
        );
        // No clock: no durations anywhere, and no timing histogram family.
        assert!(events[0].iter().all(|e| e.duration_ns.is_none()));
        assert!(reg
            .snapshot()
            .iter()
            .all(|f| f.name != "br_span_duration_ns"));
        let count = reg
            .counter(
                "br_span_total",
                "Completed spans by path.",
                &[("path", "job/plan")],
            )
            .get();
        assert_eq!(count, 1);
    }

    #[test]
    fn clock_enables_durations_in_timing_output_only() {
        let reg = Registry::new();
        install_wall_clock(&reg);
        {
            let _s = reg.span("work");
        }
        let events = reg.span_store().events();
        let exit = events[0]
            .iter()
            .find(|e| e.kind == SpanEventKind::Exit)
            .unwrap();
        assert!(exit.duration_ns.is_some());
        let strict = reg.render_prometheus(false);
        assert!(!strict.contains("br_span_duration_ns"));
        assert!(strict.contains("br_span_total"));
        let full = reg.render_prometheus(true);
        assert!(full.contains("br_span_duration_ns_bucket"));
    }

    #[test]
    fn exposition_is_independent_of_registration_order_and_threads() {
        let build = |flip: bool| {
            let reg = Registry::new();
            let names = if flip {
                ["b_total", "a_total"]
            } else {
                ["a_total", "b_total"]
            };
            for n in names {
                reg.counter(n, "N.", &[("k", "v")]).add(2);
            }
            reg.gauge("g", "G.", &[]).set(1.5);
            reg.histogram("h", "H.", &[]).observe(10);
            (reg.render_prometheus(false), reg.render_jsonl(false))
        };
        assert_eq!(build(false), build(true));

        // Concurrent updates from many threads land on identical bytes.
        let reg = std::sync::Arc::new(Registry::new());
        std::thread::scope(|s| {
            for _ in 0..8 {
                let reg = std::sync::Arc::clone(&reg);
                s.spawn(move || {
                    for i in 0..100u64 {
                        reg.counter("n_total", "N.", &[]).inc();
                        reg.histogram("h", "H.", &[]).observe(i);
                    }
                });
            }
        });
        let seq = Registry::new();
        for _ in 0..8 {
            for i in 0..100u64 {
                seq.counter("n_total", "N.", &[]).inc();
                seq.histogram("h", "H.", &[]).observe(i);
            }
        }
        assert_eq!(reg.render_prometheus(false), seq.render_prometheus(false));
        assert_eq!(reg.render_jsonl(false), seq.render_jsonl(false));
    }

    #[test]
    fn timing_families_are_filtered() {
        let reg = Registry::new();
        reg.counter("work_total", "Work.", &[]).inc();
        reg.timing_gauge("queue_depth", "Depth.", &[]).set(3.0);
        let strict = reg.render_prometheus(false);
        assert!(strict.contains("work_total"));
        assert!(!strict.contains("queue_depth"));
        let full = reg.render_prometheus(true);
        assert!(full.contains("queue_depth 3"));
        let strict_jsonl = reg.render_jsonl(false);
        assert!(!strict_jsonl.contains("queue_depth"));
        for line in strict_jsonl.lines() {
            assert!(line.starts_with('{') && line.ends_with('}'));
        }
    }

    /// Golden-file test for the Prometheus text renderer: a fixed registry
    /// must render these exact bytes. If the format changes intentionally,
    /// update the expectation *and* DESIGN.md §11.
    #[test]
    fn prometheus_golden() {
        let reg = Registry::new();
        reg.counter(
            "br_cache_hits_total",
            "Plan cache hits.",
            &[("device", "default")],
        )
        .add(42);
        reg.counter(
            "br_cache_hits_total",
            "Plan cache hits.",
            &[("device", "edge\"1")],
        )
        .add(7);
        reg.gauge(
            "br_lbi",
            "Load balancing inefficiency.",
            &[("kernel", "spgemm")],
        )
        .set(1.25);
        let h = reg.histogram_with(
            "br_rows",
            "Rows per merge call.",
            &[],
            HistogramSpec {
                start_exp: 0,
                step_exp: 1,
                buckets: 3,
            },
            false,
        );
        h.observe(1);
        h.observe(2);
        h.observe(100);
        let expected = "\
# HELP br_cache_hits_total Plan cache hits.
# TYPE br_cache_hits_total counter
br_cache_hits_total{device=\"default\"} 42
br_cache_hits_total{device=\"edge\\\"1\"} 7
# HELP br_lbi Load balancing inefficiency.
# TYPE br_lbi gauge
br_lbi{kernel=\"spgemm\"} 1.25
# HELP br_rows Rows per merge call.
# TYPE br_rows histogram
br_rows_bucket{le=\"1\"} 1
br_rows_bucket{le=\"2\"} 2
br_rows_bucket{le=\"4\"} 2
br_rows_bucket{le=\"+Inf\"} 3
br_rows_sum 103
br_rows_count 3
";
        assert_eq!(reg.render_prometheus(false), expected);
    }

    #[test]
    fn jsonl_shape_is_stable() {
        let reg = Registry::new();
        reg.counter("c_total", "C.", &[("k", "v")]).add(5);
        reg.gauge("g", "G.", &[]).set(0.5);
        let jsonl = reg.render_jsonl(false);
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(
            lines[0],
            "{\"type\":\"metric\",\"name\":\"c_total\",\"kind\":\"counter\",\"labels\":{\"k\":\"v\"},\"value\":5}"
        );
        assert_eq!(
            lines[1],
            "{\"type\":\"metric\",\"name\":\"g\",\"kind\":\"gauge\",\"labels\":{},\"value\":0.5}"
        );
    }

    #[test]
    fn lock_recover_survives_poison() {
        let m = std::sync::Mutex::new(1u32);
        let res = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _g = m.lock().unwrap();
            panic!("poison it");
        }));
        assert!(res.is_err());
        assert!(m.is_poisoned());
        *lock_recover(&m) += 1;
        assert_eq!(*lock_recover(&m), 2);
    }

    #[test]
    fn totals_count_families_samples_events() {
        let reg = Registry::new();
        reg.counter("a_total", "A.", &[]).inc();
        reg.counter("a_total", "A.", &[("k", "v")]).inc();
        reg.gauge("g", "G.", &[]).set(1.0);
        {
            let _s = reg.span("x");
        }
        let t = reg.totals();
        // Families: a_total, g, br_span_total.
        assert_eq!(t.families, 3);
        assert_eq!(t.samples, 4);
        assert_eq!(t.span_events, 2);
    }

    #[test]
    fn global_registry_is_shared() {
        static ONCE: AtomicU64 = AtomicU64::new(0);
        if ONCE.fetch_add(1, Ordering::Relaxed) == 0 {
            let before = global()
                .counter("br_obs_selftest_total", "Self test.", &[])
                .get();
            global()
                .counter("br_obs_selftest_total", "Self test.", &[])
                .add(3);
            let after = global()
                .counter("br_obs_selftest_total", "Self test.", &[])
                .get();
            assert_eq!(after, before + 3);
        }
    }
}
