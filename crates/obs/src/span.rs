//! Lightweight nested spans with per-thread ordered event buffers.
//!
//! A span is opened with [`crate::Registry::span`] and closed when the
//! returned [`SpanGuard`] drops. Nesting is tracked per thread: a span opened
//! while another is live on the same thread gets a `/`-joined path
//! (`job/plan`). Every enter/exit is appended to that thread's ordered event
//! buffer, so within one thread the event stream reconstructs the exact call
//! tree; buffers from different threads have no defined relative order and
//! are therefore only exposed through timing-mode output.
//!
//! Closing a span increments the deterministic counter `br_span_total{path=}`
//! (one per completed span, independent of scheduling). If — and only if —
//! the registry has a [`crate::Clock`], the span duration is also observed
//! into the timing-flagged histogram `br_span_duration_ns{path=}`.

use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use crate::registry::{lock_recover, Registry};

/// Whether a [`SpanEvent`] marks a span opening or closing.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SpanEventKind {
    /// The span was opened.
    Enter,
    /// The span was closed.
    Exit,
}

/// One entry in a thread's ordered span event buffer.
#[derive(Clone, Debug)]
pub struct SpanEvent {
    /// Enter or exit.
    pub kind: SpanEventKind,
    /// Full `/`-joined span path (e.g. `job/plan`).
    pub path: String,
    /// Wall-clock duration, present only on `Exit` events and only when the
    /// registry has a clock installed.
    pub duration_ns: Option<u64>,
}

/// Per-registry store of every thread's event buffer.
pub(crate) struct SpanStore {
    buffers: Mutex<Vec<Arc<Mutex<Vec<SpanEvent>>>>>,
}

impl SpanStore {
    pub(crate) fn new() -> Self {
        SpanStore {
            buffers: Mutex::new(Vec::new()),
        }
    }

    fn register_thread(&self) -> Arc<Mutex<Vec<SpanEvent>>> {
        let buf = Arc::new(Mutex::new(Vec::new()));
        lock_recover(&self.buffers).push(Arc::clone(&buf));
        buf
    }

    /// Snapshot every thread's event buffer. Buffer order is thread
    /// first-use order and thus scheduling-dependent; callers must treat it
    /// as timing data.
    pub(crate) fn events(&self) -> Vec<Vec<SpanEvent>> {
        lock_recover(&self.buffers)
            .iter()
            .map(|b| lock_recover(b).clone())
            .collect()
    }
}

struct ThreadSpanState {
    buffer: Arc<Mutex<Vec<SpanEvent>>>,
    /// Stack of (path, enter timestamp) for the spans open on this thread.
    stack: Vec<(String, Option<u64>)>,
}

thread_local! {
    /// Keyed by registry id: span state is per (thread, registry).
    static SPAN_STATE: RefCell<HashMap<u64, ThreadSpanState>> = RefCell::new(HashMap::new());
}

/// RAII guard for an open span; closes the span on drop.
#[must_use = "a span closes when its guard drops; binding it to _ closes it immediately"]
pub struct SpanGuard<'a> {
    registry: &'a Registry,
    path: String,
}

impl<'a> SpanGuard<'a> {
    pub(crate) fn enter(registry: &'a Registry, name: &str) -> SpanGuard<'a> {
        let start = registry.clock().map(|c| c.now_ns());
        let path = SPAN_STATE.with(|state| {
            let mut state = state.borrow_mut();
            let slot = state
                .entry(registry.id())
                .or_insert_with(|| ThreadSpanState {
                    buffer: registry.span_store().register_thread(),
                    stack: Vec::new(),
                });
            let path = match slot.stack.last() {
                Some((parent, _)) => format!("{parent}/{name}"),
                None => name.to_string(),
            };
            lock_recover(&slot.buffer).push(SpanEvent {
                kind: SpanEventKind::Enter,
                path: path.clone(),
                duration_ns: None,
            });
            slot.stack.push((path.clone(), start));
            path
        });
        SpanGuard { registry, path }
    }

    /// Full `/`-joined path of this span.
    pub fn path(&self) -> &str {
        &self.path
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        let end = self.registry.clock().map(|c| c.now_ns());
        let duration = SPAN_STATE.with(|state| {
            let mut state = state.borrow_mut();
            let slot = match state.get_mut(&self.registry.id()) {
                Some(slot) => slot,
                None => return None,
            };
            // Guards normally drop in LIFO order; tolerate out-of-order drops
            // by removing the matching entry wherever it sits.
            let idx = slot.stack.iter().rposition(|(p, _)| p == &self.path);
            let start = match idx {
                Some(i) => slot.stack.remove(i).1,
                None => None,
            };
            let duration = match (start, end) {
                (Some(s), Some(e)) => Some(e.saturating_sub(s)),
                _ => None,
            };
            lock_recover(&slot.buffer).push(SpanEvent {
                kind: SpanEventKind::Exit,
                path: self.path.clone(),
                duration_ns: duration,
            });
            duration
        });
        self.registry
            .counter(
                "br_span_total",
                "Completed spans by path.",
                &[("path", &self.path)],
            )
            .inc();
        if let Some(ns) = duration {
            self.registry
                .timing_histogram(
                    "br_span_duration_ns",
                    "Wall-clock span durations (present only when a clock is installed).",
                    &[("path", &self.path)],
                )
                .observe(ns);
        }
    }
}
