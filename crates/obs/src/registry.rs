//! Typed instrument registry.
//!
//! A [`Registry`] owns a set of metric *families* (one per metric name), each
//! holding one instrument per distinct label set. Handles returned by the
//! registration methods ([`Counter`], [`Gauge`], [`Histogram`]) are cheap
//! clones of shared atomic cells: hot paths update them without touching the
//! registry lock, and re-registering the same `(name, labels)` pair returns a
//! handle to the *same* cell, so independent call sites accumulate into one
//! sample.
//!
//! Determinism contract: families are stored in a `BTreeMap` keyed by name and
//! samples in a `BTreeMap` keyed by the sorted label set, so exposition order
//! is a pure function of registry *content*, never of registration order or
//! thread interleaving. Instruments whose values depend on scheduling or wall
//! clocks (queue depths over time, durations, pool high-water marks) must be
//! registered through the `timing_*` variants; renderers exclude those
//! families unless explicitly asked for them.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

use crate::span::{SpanGuard, SpanStore};
use crate::Clock;

/// Acquire a mutex guard, recovering the inner data if a previous holder
/// panicked and poisoned the lock.
///
/// Instrument cells are plain atomics and the registry maps are only held for
/// short, panic-free critical sections, so recovering from poison is always
/// safe here; the helper is public because dependents (notably `br-service`)
/// reuse it for the same discipline on their own locks.
pub fn lock_recover<T: ?Sized>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// The kind of a metric family.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Kind {
    /// Monotonically increasing `u64`.
    Counter,
    /// Arbitrary `f64` that can go up and down.
    Gauge,
    /// Fixed-bucket distribution of `u64` observations.
    Histogram,
}

impl Kind {
    /// Prometheus `# TYPE` spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            Kind::Counter => "counter",
            Kind::Gauge => "gauge",
            Kind::Histogram => "histogram",
        }
    }
}

/// A sorted, owned label set identifying one sample within a family.
pub type LabelSet = Vec<(String, String)>;

/// Monotonic counter handle.
#[derive(Clone)]
pub struct Counter {
    cell: Arc<AtomicU64>,
}

impl Counter {
    /// Increment by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increment by `n`. Additions commute, so concurrent updates from any
    /// thread interleaving yield the same final value.
    pub fn add(&self, n: u64) {
        self.cell.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// Gauge handle storing an `f64` as atomic bits.
#[derive(Clone)]
pub struct Gauge {
    bits: Arc<AtomicU64>,
}

impl Gauge {
    /// Set the gauge to `v` (last write wins).
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Convenience for integer-valued gauges.
    pub fn set_u64(&self, v: u64) {
        self.set(v as f64);
    }

    /// Raise the gauge to `v` if `v` exceeds the current value (high-water
    /// mark semantics). The max operation commutes, so concurrent updates are
    /// order-independent.
    pub fn set_max(&self, v: f64) {
        let mut cur = self.bits.load(Ordering::Relaxed);
        loop {
            if f64::from_bits(cur) >= v {
                return;
            }
            match self.bits.compare_exchange_weak(
                cur,
                v.to_bits(),
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// Bucket layout for a [`Histogram`]: upper bounds at
/// `2^(start_exp + i*step_exp)` for `i` in `0..buckets`, plus an implicit
/// `+Inf` overflow bucket.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HistogramSpec {
    /// Exponent of the first bucket's upper bound.
    pub start_exp: u32,
    /// Exponent stride between consecutive bounds.
    pub step_exp: u32,
    /// Number of finite buckets.
    pub buckets: usize,
}

impl Default for HistogramSpec {
    /// `le = 2^0, 2^2, ..., 2^32` — 17 finite buckets spanning one to ~4e9,
    /// wide enough for row counts and simulated cycle totals alike.
    fn default() -> Self {
        HistogramSpec {
            start_exp: 0,
            step_exp: 2,
            buckets: 17,
        }
    }
}

impl HistogramSpec {
    /// The finite upper bounds described by this spec.
    pub fn bounds(&self) -> Vec<u64> {
        (0..self.buckets)
            .map(|i| 1u64 << (self.start_exp + (i as u32) * self.step_exp))
            .collect()
    }
}

struct HistogramCore {
    bounds: Vec<u64>,
    /// `bounds.len() + 1` cells; the last one is the `+Inf` overflow bucket.
    counts: Vec<AtomicU64>,
    sum: AtomicU64,
    total: AtomicU64,
}

/// Fixed-bucket histogram handle over `u64` observations.
///
/// Observations, sums, and counts are all integers updated with commutative
/// atomic additions, so the final state is independent of thread interleaving.
#[derive(Clone)]
pub struct Histogram {
    core: Arc<HistogramCore>,
}

impl Histogram {
    /// Record one observation.
    pub fn observe(&self, v: u64) {
        let idx = self.core.bounds.partition_point(|b| *b < v);
        self.core.counts[idx].fetch_add(1, Ordering::Relaxed);
        self.core.sum.fetch_add(v, Ordering::Relaxed);
        self.core.total.fetch_add(1, Ordering::Relaxed);
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.core.total.load(Ordering::Relaxed)
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> u64 {
        self.core.sum.load(Ordering::Relaxed)
    }
}

#[derive(Clone)]
enum Cell {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

struct Family {
    help: String,
    kind: Kind,
    timing: bool,
    samples: BTreeMap<LabelSet, Cell>,
}

/// Snapshot of one sample's value, decoupled from the live atomics.
#[derive(Clone, Debug)]
pub enum SampleValue {
    /// Counter value.
    Counter(u64),
    /// Gauge value.
    Gauge(f64),
    /// Histogram state: finite bounds, per-bucket (non-cumulative) counts
    /// including the trailing overflow bucket, sum, and total count.
    Histogram {
        /// Finite bucket upper bounds.
        bounds: Vec<u64>,
        /// Per-bucket counts; `bounds.len() + 1` entries.
        counts: Vec<u64>,
        /// Sum of observations.
        sum: u64,
        /// Number of observations.
        count: u64,
    },
}

/// Snapshot of a whole family for rendering.
#[derive(Clone, Debug)]
pub struct FamilySnapshot {
    /// Metric name.
    pub name: String,
    /// Help text.
    pub help: String,
    /// Family kind.
    pub kind: Kind,
    /// Whether values depend on scheduling / wall clocks.
    pub timing: bool,
    /// Samples in sorted label-set order.
    pub samples: Vec<(LabelSet, SampleValue)>,
}

/// Coarse totals over a registry, for informational report sections.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RegistryTotals {
    /// Number of metric families.
    pub families: u64,
    /// Number of samples across all families.
    pub samples: u64,
    /// Number of recorded span enter/exit events.
    pub span_events: u64,
}

static NEXT_REGISTRY_ID: AtomicU64 = AtomicU64::new(1);

/// A process- or component-scoped collection of instruments and spans.
pub struct Registry {
    id: u64,
    families: Mutex<BTreeMap<String, Family>>,
    spans: SpanStore,
    clock: Mutex<Option<Arc<dyn Clock>>>,
}

impl Default for Registry {
    fn default() -> Self {
        Registry::new()
    }
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let totals = self.totals();
        f.debug_struct("Registry")
            .field("families", &totals.families)
            .field("samples", &totals.samples)
            .field("span_events", &totals.span_events)
            .finish()
    }
}

impl Registry {
    /// Create an empty registry with no clock (all output timestamp-free).
    pub fn new() -> Self {
        Registry {
            id: NEXT_REGISTRY_ID.fetch_add(1, Ordering::Relaxed),
            families: Mutex::new(BTreeMap::new()),
            spans: SpanStore::new(),
            clock: Mutex::new(None),
        }
    }

    pub(crate) fn id(&self) -> u64 {
        self.id
    }

    pub(crate) fn span_store(&self) -> &SpanStore {
        &self.spans
    }

    /// Install a clock. Span guards start recording durations (into the
    /// timing-flagged `br_span_duration_ns` histogram) from this point on;
    /// without a clock no instrument ever sees a timestamp.
    pub fn set_clock(&self, clock: Arc<dyn Clock>) {
        *lock_recover(&self.clock) = Some(clock);
    }

    pub(crate) fn clock(&self) -> Option<Arc<dyn Clock>> {
        lock_recover(&self.clock).clone()
    }

    /// Register (or look up) a deterministic counter.
    pub fn counter(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Counter {
        match self.instrument(name, help, labels, Kind::Counter, false) {
            Cell::Counter(c) => c,
            _ => unreachable!(),
        }
    }

    /// Register (or look up) a counter whose value depends on scheduling.
    pub fn timing_counter(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Counter {
        match self.instrument(name, help, labels, Kind::Counter, true) {
            Cell::Counter(c) => c,
            _ => unreachable!(),
        }
    }

    /// Register (or look up) a deterministic gauge.
    pub fn gauge(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Gauge {
        match self.instrument(name, help, labels, Kind::Gauge, false) {
            Cell::Gauge(g) => g,
            _ => unreachable!(),
        }
    }

    /// Register (or look up) a gauge whose value depends on scheduling or
    /// wall clocks (queue depth over time, pool high-water marks).
    pub fn timing_gauge(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Gauge {
        match self.instrument(name, help, labels, Kind::Gauge, true) {
            Cell::Gauge(g) => g,
            _ => unreachable!(),
        }
    }

    /// Register (or look up) a deterministic histogram with default
    /// power-of-two buckets.
    pub fn histogram(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Histogram {
        self.histogram_with(name, help, labels, HistogramSpec::default(), false)
    }

    /// Register (or look up) a timing-flagged histogram (wall-clock
    /// durations) with default power-of-two buckets.
    pub fn timing_histogram(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Histogram {
        self.histogram_with(name, help, labels, HistogramSpec::default(), true)
    }

    /// Register (or look up) a histogram with an explicit bucket layout. If
    /// the sample already exists, the existing cell (and its original bucket
    /// layout) is returned.
    pub fn histogram_with(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        spec: HistogramSpec,
        timing: bool,
    ) -> Histogram {
        let cell = self.instrument_with(name, help, labels, Kind::Histogram, timing, || {
            let bounds = spec.bounds();
            let counts = (0..bounds.len() + 1).map(|_| AtomicU64::new(0)).collect();
            Cell::Histogram(Histogram {
                core: Arc::new(HistogramCore {
                    bounds,
                    counts,
                    sum: AtomicU64::new(0),
                    total: AtomicU64::new(0),
                }),
            })
        });
        match cell {
            Cell::Histogram(h) => h,
            _ => unreachable!(),
        }
    }

    fn instrument(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        kind: Kind,
        timing: bool,
    ) -> Cell {
        self.instrument_with(name, help, labels, kind, timing, || match kind {
            Kind::Counter => Cell::Counter(Counter {
                cell: Arc::new(AtomicU64::new(0)),
            }),
            Kind::Gauge => Cell::Gauge(Gauge {
                bits: Arc::new(AtomicU64::new(0f64.to_bits())),
            }),
            Kind::Histogram => unreachable!("histograms go through histogram_with"),
        })
    }

    fn instrument_with(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        kind: Kind,
        timing: bool,
        make: impl FnOnce() -> Cell,
    ) -> Cell {
        validate_name(name);
        let key = sorted_labels(labels);
        let mut families = lock_recover(&self.families);
        let family = families.entry(name.to_string()).or_insert_with(|| Family {
            help: help.to_string(),
            kind,
            timing,
            samples: BTreeMap::new(),
        });
        assert!(
            family.kind == kind,
            "metric {name:?} re-registered as {:?} but is {:?}",
            kind,
            family.kind
        );
        assert!(
            family.timing == timing,
            "metric {name:?} re-registered with timing={timing} but was timing={}",
            family.timing
        );
        family.samples.entry(key).or_insert_with(make).clone()
    }

    /// Open a span named `name`, nested under this thread's innermost open
    /// span. Dropping the returned guard closes it.
    pub fn span(&self, name: &str) -> SpanGuard<'_> {
        SpanGuard::enter(self, name)
    }

    /// Snapshot all families (and their current values) in deterministic
    /// name / label-set order.
    pub fn snapshot(&self) -> Vec<FamilySnapshot> {
        let families = lock_recover(&self.families);
        families
            .iter()
            .map(|(name, fam)| FamilySnapshot {
                name: name.clone(),
                help: fam.help.clone(),
                kind: fam.kind,
                timing: fam.timing,
                samples: fam
                    .samples
                    .iter()
                    .map(|(labels, cell)| (labels.clone(), sample_value(cell)))
                    .collect(),
            })
            .collect()
    }

    /// Coarse totals for informational report sections.
    pub fn totals(&self) -> RegistryTotals {
        let snap = self.snapshot();
        RegistryTotals {
            families: snap.len() as u64,
            samples: snap.iter().map(|f| f.samples.len() as u64).sum(),
            span_events: self.spans.events().iter().map(|buf| buf.len() as u64).sum(),
        }
    }

    /// Render the registry in Prometheus text exposition format. With
    /// `include_timing == false` (the deterministic mode), timing-flagged
    /// families are omitted and the output is byte-identical across thread
    /// counts and repeated runs over the same work.
    pub fn render_prometheus(&self, include_timing: bool) -> String {
        crate::render::render_prometheus(self, include_timing)
    }

    /// Render the registry as a JSONL event log (one JSON object per line),
    /// with the same timing-family filtering and determinism contract as
    /// [`Registry::render_prometheus`].
    pub fn render_jsonl(&self, include_timing: bool) -> String {
        crate::render::render_jsonl(self, include_timing)
    }
}

fn sample_value(cell: &Cell) -> SampleValue {
    match cell {
        Cell::Counter(c) => SampleValue::Counter(c.get()),
        Cell::Gauge(g) => SampleValue::Gauge(g.get()),
        Cell::Histogram(h) => SampleValue::Histogram {
            bounds: h.core.bounds.clone(),
            counts: h
                .core
                .counts
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
            sum: h.sum(),
            count: h.count(),
        },
    }
}

fn validate_name(name: &str) {
    let mut chars = name.chars();
    let ok = match chars.next() {
        Some(c) => {
            (c.is_ascii_alphabetic() || c == '_')
                && chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
        }
        None => false,
    };
    assert!(
        ok,
        "invalid metric name {name:?}: want [a-zA-Z_][a-zA-Z0-9_]*"
    );
}

fn sorted_labels(labels: &[(&str, &str)]) -> LabelSet {
    let mut out: LabelSet = labels
        .iter()
        .map(|(k, v)| {
            validate_name(k);
            (k.to_string(), v.to_string())
        })
        .collect();
    out.sort();
    for pair in out.windows(2) {
        assert!(
            pair[0].0 != pair[1].0,
            "duplicate label key {:?}",
            pair[0].0
        );
    }
    out
}
