//! Property tests for the wire codec: every frame round-trips through
//! `encode`/`decode` and `write_frame`/`read_frame`, and **no** byte
//! sequence — truncated, oversized, or arbitrary garbage — ever panics
//! the decoder; malformed input always surfaces as a typed
//! [`ProtocolError`] / [`FrameError`].

use std::io;

use br_net::frame::{
    read_frame, Frame, FrameError, Lane, ProtocolError, RejectCode, HEADER_LEN, MAGIC, MAX_PAYLOAD,
    VERSION,
};
use proptest::prelude::*;

/// Deterministically expands a handful of drawn scalars into one frame of
/// any type. ASCII-only strings keep the generator simple; dedicated unit
/// tests in `frame.rs` cover UTF-8 and boundary lengths.
fn build_frame(kind: u8, a: u64, b: u32, flag: bool, bytes: &[u8]) -> Frame {
    let text: String = bytes.iter().map(|&c| (b' ' + (c % 94)) as char).collect();
    let lane = if flag { Lane::Interactive } else { Lane::Batch };
    match kind % 11 {
        0 => Frame::Hello { client_id: text },
        1 => Frame::HelloAck {
            version: VERSION,
            held: flag,
            shed_threshold: b,
            quota: b.wrapping_add(1),
        },
        2 => Frame::Submit {
            request_id: a,
            lane,
            deadline_ms: b,
            spec: text,
        },
        3 => Frame::Result {
            request_id: a,
            label: text,
            worker: b,
            cache_hit: flag,
            total_ms: (a % 1_000_000) as f64 / 64.0,
            gflops: (b % 100_000) as f64 / 128.0,
            nnz_c: a.wrapping_mul(3),
        },
        4 => Frame::Shed {
            request_id: a,
            lane,
            depth: b,
            threshold: b.wrapping_add(7),
        },
        5 => {
            let codes = [
                RejectCode::QuotaExceeded,
                RejectCode::BadSpec,
                RejectCode::Draining,
                RejectCode::DeadlineExpired,
                RejectCode::NotReady,
                RejectCode::Failed,
            ];
            Frame::Reject {
                request_id: a,
                code: codes[(b as usize) % codes.len()],
                message: text,
            }
        }
        6 => Frame::Release,
        7 => Frame::Shutdown,
        8 => Frame::DrainNotice { message: text },
        9 => Frame::Goodbye,
        _ => Frame::Error { message: text },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn every_frame_round_trips(
        kind in 0u8..22,
        a in any::<u64>(),
        b in any::<u32>(),
        flag in any::<bool>(),
        bytes in proptest::collection::vec(any::<u8>(), 0..48),
    ) {
        let frame = build_frame(kind, a, b, flag, &bytes);
        let wire = frame.encode();
        prop_assert_eq!(Frame::decode(&wire).unwrap(), frame.clone());
        let mut cursor = io::Cursor::new(&wire);
        prop_assert_eq!(read_frame(&mut cursor).unwrap(), Some(frame));
        prop_assert!(read_frame(&mut cursor).unwrap().is_none(), "clean EOF after one frame");
    }

    #[test]
    fn truncation_at_any_cut_is_a_typed_error(
        kind in 0u8..22,
        a in any::<u64>(),
        b in any::<u32>(),
        flag in any::<bool>(),
        bytes in proptest::collection::vec(any::<u8>(), 0..48),
        cut_seed in any::<u64>(),
    ) {
        let wire = build_frame(kind, a, b, flag, &bytes).encode();
        let cut = (cut_seed as usize) % wire.len();
        // A strict prefix must never decode (every payload byte is load-
        // bearing) and must never panic.
        prop_assert!(Frame::decode(&wire[..cut]).is_err());
        // Off a stream: a cut inside the header of the *first* read is a
        // clean EOF only at offset zero; everywhere else it is mid-frame.
        let mut cursor = io::Cursor::new(&wire[..cut]);
        match read_frame(&mut cursor) {
            Ok(None) => prop_assert_eq!(cut, 0, "Ok(None) only at a frame boundary"),
            Ok(Some(_)) => prop_assert!(false, "decoded a truncated frame"),
            Err(FrameError::UnexpectedEof) | Err(FrameError::Protocol(_)) => {}
            Err(FrameError::Io(e)) => prop_assert!(false, "unexpected i/o error: {e}"),
        }
    }

    #[test]
    fn trailing_bytes_are_rejected(
        kind in 0u8..22,
        a in any::<u64>(),
        b in any::<u32>(),
        flag in any::<bool>(),
        extra in proptest::collection::vec(any::<u8>(), 1..16),
    ) {
        let mut wire = build_frame(kind, a, b, flag, b"x").encode();
        let expect = extra.len();
        wire.extend_from_slice(&extra);
        prop_assert_eq!(
            Frame::decode(&wire),
            Err(ProtocolError::TrailingBytes { extra: expect })
        );
    }

    #[test]
    fn garbage_bytes_never_panic(
        bytes in proptest::collection::vec(any::<u8>(), 0..256),
    ) {
        // Whatever the bytes, decode returns; a success must re-encode to
        // exactly the input (the codec is a bijection on valid frames).
        if let Ok(frame) = Frame::decode(&bytes) {
            prop_assert_eq!(frame.encode(), bytes.clone());
        }
        let mut cursor = io::Cursor::new(&bytes);
        let _ = read_frame(&mut cursor);
    }

    #[test]
    fn garbage_payload_under_valid_header_never_panics(
        kind in 0u8..16,
        payload in proptest::collection::vec(any::<u8>(), 0..128),
    ) {
        // A well-formed header over arbitrary payload bytes: the payload
        // cursor must fail typed (or round-trip) without panicking.
        let mut wire = Vec::with_capacity(HEADER_LEN + payload.len());
        wire.extend_from_slice(&MAGIC);
        wire.push(VERSION);
        wire.push(kind);
        wire.extend_from_slice(&[0, 0]);
        wire.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        wire.extend_from_slice(&payload);
        if let Ok(frame) = Frame::decode(&wire) {
            prop_assert_eq!(frame.encode(), wire.clone());
        }
    }

    #[test]
    fn oversized_declared_length_is_rejected_before_allocation(
        kind in 0u8..16,
        over in 1u32..1024,
    ) {
        let len = MAX_PAYLOAD as u32 + over;
        let mut wire = Vec::with_capacity(HEADER_LEN);
        wire.extend_from_slice(&MAGIC);
        wire.push(VERSION);
        wire.push(kind);
        wire.extend_from_slice(&[0, 0]);
        wire.extend_from_slice(&len.to_le_bytes());
        prop_assert_eq!(Frame::decode(&wire), Err(ProtocolError::Oversized { len }));
        // The streaming reader must refuse from the header alone — it never
        // allocates or waits for an over-limit payload.
        let mut cursor = io::Cursor::new(&wire);
        match read_frame(&mut cursor) {
            Err(FrameError::Protocol(ProtocolError::Oversized { len: l })) => {
                prop_assert_eq!(l, len)
            }
            other => prop_assert!(false, "expected Oversized, got {other:?}"),
        }
    }

    #[test]
    fn bad_magic_version_and_reserved_are_typed(
        corrupt_at in 0u64..8,
        value in 1u8..255,
    ) {
        let mut wire = Frame::Goodbye.encode();
        let at = corrupt_at as usize;
        wire[at] = wire[at].wrapping_add(value);
        match (at, Frame::decode(&wire)) {
            (0..=3, Err(ProtocolError::BadMagic(_))) => {}
            (4, Err(ProtocolError::UnsupportedVersion(_))) => {}
            // The type byte may mutate into another no-payload frame —
            // still a valid wire frame — or any typed payload error.
            (5, Ok(Frame::Release | Frame::Shutdown)) => {}
            (5, Err(_)) => {}
            (6..=7, Err(ProtocolError::NonzeroReserved)) => {}
            (at, other) => prop_assert!(false, "byte {at}: unexpected {other:?}"),
        }
    }
}
