//! End-to-end loopback tests for the TCP front end: flood a held server
//! and check that admission accounting (shed, quota, saturation) is a
//! pure function of the offered load — byte-identical metric exports at
//! any worker count — plus lane priority, graceful drain, and the
//! exactly-one-response-per-request guarantee.

use std::net::{TcpListener, TcpStream};
use std::thread;

use br_gpu_sim::device::DeviceConfig;
use br_net::client::NetClient;
use br_net::frame::{read_frame, write_frame, Frame, Lane, RejectCode};
use br_net::server::{NetServer, ServeReport, ServerConfig};

const SPEC: &str = "rmat=6,4";

fn held_config(workers: usize, shed_threshold: usize, quota: u64) -> ServerConfig {
    ServerConfig {
        devices: vec![DeviceConfig::titan_xp(); workers],
        cache_capacity: 8,
        shed_threshold,
        quota,
        hold: true,
        ..ServerConfig::default()
    }
}

/// One deterministic flood against a held server: client "a" overruns its
/// quota, client "b" overruns the shed threshold, then the gate opens and
/// everything admitted executes. Returns the serve report and the strict
/// (deterministic-only) metrics export.
fn run_flood(workers: usize) -> (ServeReport, String) {
    let server = NetServer::bind("127.0.0.1:0", held_config(workers, 8, 6)).unwrap();
    let addr = server.local_addr().to_string();
    let registry = server.registry().clone();
    let server = thread::spawn(move || server.run());

    let mut a = NetClient::connect(&addr, "client-a").unwrap();
    assert!(a.server_info().held, "HelloAck advertises the held gate");
    assert_eq!(a.server_info().shed_threshold, 8);
    assert_eq!(a.server_info().quota, 6);
    // 20 submissions on alternating lanes: 6 admitted (quota), 14 quota-
    // rejected. The gate is held, so the 14 rejections are the only
    // responses available yet — collecting them is also a barrier proving
    // the server processed all 20 before client "b" starts.
    for id in 0..20u64 {
        let lane = if id.is_multiple_of(2) {
            Lane::Interactive
        } else {
            Lane::Batch
        };
        a.submit(id, lane, 0, SPEC).unwrap();
    }
    let a_rejects = a.collect_responses(14).unwrap();
    assert_eq!(a_rejects.rejected.len(), 14);
    assert!(a_rejects.rejected.iter().all(|(_, r)| *r == "quota"));
    assert_eq!(
        a_rejects
            .rejected
            .iter()
            .map(|(id, _)| *id)
            .collect::<Vec<_>>(),
        (6..20).collect::<Vec<_>>(),
        "first 6 submissions hold the quota; the rest reject in order"
    );

    let mut b = NetClient::connect(&addr, "client-b").unwrap();
    // Depth is 6; two more admissions saturate the queue at the threshold
    // of 8, then 18 submissions shed.
    for id in 0..20u64 {
        b.submit(id, Lane::Batch, 0, SPEC).unwrap();
    }
    let b_shed = b.collect_responses(18).unwrap();
    assert_eq!(b_shed.shed.len(), 18);
    assert_eq!(b_shed.shed, (2..20).collect::<Vec<u64>>());

    // Open the gate: the 8 admitted jobs execute and answer.
    a.release().unwrap();
    let a_results = a.collect_responses(6).unwrap();
    let a_ids: Vec<u64> = a_results.results.iter().map(|(id, _)| *id).collect();
    if workers == 1 {
        assert_eq!(
            a_ids,
            vec![0, 2, 4, 1, 3, 5],
            "interactive submissions answer before batch ones"
        );
    } else {
        // Completion order races across workers; the admitted *set* is
        // still exact.
        let mut sorted = a_ids;
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, 3, 4, 5]);
    }
    let b_results = b.collect_responses(2).unwrap();
    let mut b_ids: Vec<u64> = b_results.results.iter().map(|(id, _)| *id).collect();
    b_ids.sort_unstable();
    assert_eq!(b_ids, vec![0, 1]);

    // Same operands throughout: exactly one cold build, every other
    // execution reuses the cached plan (single-flight keeps this true at
    // any worker count).
    let hits = a_results.results.iter().chain(&b_results.results);
    assert_eq!(hits.filter(|(_, hit)| *hit).count(), 7);

    let mut summary = b_results;
    b.shutdown().unwrap();
    b.drain_to_eof(&mut summary).unwrap();
    let mut a_summary = a_results;
    a.drain_to_eof(&mut a_summary).unwrap();
    assert!(summary.drain_notice || a_summary.drain_notice);

    let report = server.join().unwrap();
    (report, registry.render_prometheus(false))
}

#[test]
fn flood_accounting_is_deterministic_across_worker_counts() {
    let (report1, metrics1) = run_flood(1);
    let (report4, metrics4) = run_flood(4);
    let (rerun, metrics_rerun) = run_flood(4);

    assert_eq!(report1.connections, 2);
    assert_eq!(report1.requests, 40);
    assert_eq!(report1.admitted, 8);
    assert_eq!(report1.results, 8);
    assert_eq!(report1.shed, 18);
    assert_eq!(report1.quota_rejected, 14);
    assert_eq!(report1.other_rejected, 0);
    assert_eq!(report1.protocol_errors, 0);
    assert_eq!(
        report1.queue_depth_max, 8,
        "bounded lanes cap the depth at the shed threshold"
    );
    assert_eq!(
        report1.requests,
        report1.admitted + report1.shed + report1.quota_rejected + report1.other_rejected,
        "every request is accounted for exactly once"
    );

    for other in [&report4, &rerun] {
        assert_eq!(report1.requests, other.requests);
        assert_eq!(report1.admitted, other.admitted);
        assert_eq!(report1.results, other.results);
        assert_eq!(report1.shed, other.shed);
        assert_eq!(report1.quota_rejected, other.quota_rejected);
        assert_eq!(report1.queue_depth_max, other.queue_depth_max);
    }

    assert!(metrics1.contains("br_net_shed_total"));
    assert!(metrics1.contains("br_net_saturation_total"));
    assert!(metrics1.contains("br_net_rejects_total{reason=\"quota\"} 14"));
    assert!(
        !metrics1.contains("br_net_lane_depth"),
        "strict export omits timing-flagged gauges"
    );
    assert_eq!(
        metrics1, metrics4,
        "admission accounting must not depend on worker count"
    );
    assert_eq!(metrics4, metrics_rerun, "and must be stable across reruns");
}

#[test]
fn drain_finishes_queued_jobs_before_exit() {
    let server = NetServer::bind("127.0.0.1:0", held_config(1, 8, 8)).unwrap();
    let addr = server.local_addr().to_string();
    let server = thread::spawn(move || server.run());

    let mut c = NetClient::connect(&addr, "drainer").unwrap();
    for id in 0..3u64 {
        c.submit(id, Lane::Batch, 0, SPEC).unwrap();
    }
    // Shutdown without ever releasing: the drain opens the held gate, so
    // the queued jobs still execute and answer before the server exits.
    c.shutdown().unwrap();
    let summary = c.collect_responses(3).unwrap();
    assert_eq!(summary.results.len(), 3);
    assert!(summary.drain_notice, "drain notice precedes the results");
    let mut summary = summary;
    c.drain_to_eof(&mut summary).unwrap();

    let report = server.join().unwrap();
    assert_eq!(report.admitted, 3);
    assert_eq!(report.results, 3);
    assert_eq!(report.shed, 0);
}

#[test]
fn submissions_after_drain_are_rejected_and_late_connects_refused() {
    use std::io::Write;

    let server = NetServer::bind("127.0.0.1:0", held_config(1, 8, 8)).unwrap();
    let addr = server.local_addr().to_string();
    let server = thread::spawn(move || server.run());

    let stream = TcpStream::connect(&addr).unwrap();
    let mut w = stream.try_clone().unwrap();
    let mut r = std::io::BufReader::new(stream);
    write_frame(
        &mut w,
        &Frame::Hello {
            client_id: "late".to_string(),
        },
    )
    .unwrap();
    assert!(matches!(
        read_frame(&mut r).unwrap(),
        Some(Frame::HelloAck { .. })
    ));
    // One write carrying Shutdown + Submit: the reader pulls both frames
    // into its buffer together, so the Submit is guaranteed to be
    // processed after the draining flag flips (same-connection ordering)
    // and before the drain closes the read side.
    let mut bytes = Frame::Shutdown.encode();
    bytes.extend_from_slice(
        &Frame::Submit {
            request_id: 99,
            lane: Lane::Interactive,
            deadline_ms: 0,
            spec: SPEC.to_string(),
        }
        .encode(),
    );
    w.write_all(&bytes).unwrap();
    w.flush().unwrap();
    match read_frame(&mut r).unwrap() {
        Some(Frame::DrainNotice { .. }) => {}
        other => panic!("expected DrainNotice first, got {other:?}"),
    }
    match read_frame(&mut r).unwrap() {
        Some(Frame::Reject {
            request_id, code, ..
        }) => {
            assert_eq!(request_id, 99);
            assert_eq!(code, RejectCode::Draining);
        }
        other => panic!("expected Reject(Draining), got {other:?}"),
    }
    let report = server.join().unwrap();
    assert_eq!(report.other_rejected, 1, "the draining reject is counted");

    // The listener is gone; a fresh connect (or handshake) must fail
    // rather than hang.
    assert!(NetClient::connect(&addr, "too-late").is_err());
}

#[test]
fn submit_before_hello_is_not_ready() {
    let server = NetServer::bind("127.0.0.1:0", held_config(1, 4, 4)).unwrap();
    let addr = server.local_addr();
    let server = thread::spawn(move || server.run());

    let stream = TcpStream::connect(addr).unwrap();
    let mut w = stream.try_clone().unwrap();
    let mut r = std::io::BufReader::new(stream);
    write_frame(
        &mut w,
        &Frame::Submit {
            request_id: 7,
            lane: Lane::Interactive,
            deadline_ms: 0,
            spec: SPEC.to_string(),
        },
    )
    .unwrap();
    match read_frame(&mut r).unwrap() {
        Some(Frame::Reject {
            request_id, code, ..
        }) => {
            assert_eq!(request_id, 7);
            assert_eq!(code, RejectCode::NotReady);
        }
        other => panic!("expected Reject(NotReady), got {other:?}"),
    }

    // An unparseable spec after the handshake rejects as BadSpec.
    write_frame(
        &mut w,
        &Frame::Hello {
            client_id: "raw".to_string(),
        },
    )
    .unwrap();
    assert!(matches!(
        read_frame(&mut r).unwrap(),
        Some(Frame::HelloAck { .. })
    ));
    write_frame(
        &mut w,
        &Frame::Submit {
            request_id: 8,
            lane: Lane::Interactive,
            deadline_ms: 0,
            spec: "no-such-key=1".to_string(),
        },
    )
    .unwrap();
    match read_frame(&mut r).unwrap() {
        Some(Frame::Reject { code, .. }) => assert_eq!(code, RejectCode::BadSpec),
        other => panic!("expected Reject(BadSpec), got {other:?}"),
    }

    write_frame(&mut w, &Frame::Shutdown).unwrap();
    server.join().unwrap();
}

#[test]
fn garbage_on_the_wire_gets_a_typed_error_frame() {
    let server = NetServer::bind("127.0.0.1:0", held_config(1, 4, 4)).unwrap();
    let addr = server.local_addr();
    let handle = thread::spawn(move || server.run());

    {
        use std::io::Write;
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(b"GET / HTTP/1.1\r\n\r\n").unwrap();
        stream.flush().unwrap();
        let mut r = std::io::BufReader::new(stream.try_clone().unwrap());
        match read_frame(&mut r).unwrap() {
            Some(Frame::Error { message }) => {
                assert!(message.contains("bad magic"), "got: {message}")
            }
            other => panic!("expected Error frame, got {other:?}"),
        }
        // The server closes the connection after a protocol error.
        assert!(read_frame(&mut r).unwrap().is_none());
    }

    let mut c = NetClient::connect(&addr.to_string(), "closer").unwrap();
    c.shutdown().unwrap();
    let report = handle.join().unwrap();
    assert_eq!(report.protocol_errors, 1);
}

#[test]
fn chains_round_trip_with_per_step_cache_accounting() {
    let server = NetServer::bind("127.0.0.1:0", ServerConfig::default()).unwrap();
    let addr = server.local_addr().to_string();
    let registry = server.registry().clone();
    let server = thread::spawn(move || server.run());

    let mut c = NetClient::connect(&addr, "chains").unwrap();
    // The Galerkin triple product: restrict/coarsen build plans, the two
    // refresh steps (same structures, new values) reuse them.
    c.submit_chain(0, Lane::Batch, 0, "chain=galerkin rmat=7,6 seed=11")
        .unwrap();
    match c.next_response().unwrap() {
        Some(Frame::ChainResult {
            request_id,
            label,
            steps,
            nnz_c,
            total_ms,
            ..
        }) => {
            assert_eq!(request_id, 0);
            assert!(label.contains("galerkin"), "got label {label:?}");
            assert_eq!(steps.len(), 4);
            let hits: Vec<bool> = steps.iter().map(|s| s.cache_hit).collect();
            assert_eq!(
                hits,
                [false, false, true, true],
                "the refresh products reuse the restrict/coarsen plans"
            );
            let fresh: Vec<bool> = steps.iter().map(|s| s.fresh_structure).collect();
            assert_eq!(fresh, [true, true, false, false]);
            assert_eq!(steps.last().unwrap().output_nnz, nnz_c);
            assert!(nnz_c > 0);
            assert!(total_ms > 0.0);
            assert!(steps.iter().all(|s| s.fill_in_permille > 0));
        }
        other => panic!("expected ChainResult, got {other:?}"),
    }

    // Iterated squaring churns structure: every step builds a new plan.
    c.submit_chain(1, Lane::Interactive, 0, "chain=square:3 rmat=7,6 seed=12")
        .unwrap();
    match c.next_response().unwrap() {
        Some(Frame::ChainResult { steps, .. }) => {
            assert_eq!(steps.len(), 3);
            assert!(steps.iter().all(|s| !s.cache_hit && s.fresh_structure));
        }
        other => panic!("expected ChainResult, got {other:?}"),
    }

    // A spec must ride the matching frame type, and repeat stays 1.
    c.submit(2, Lane::Batch, 0, "chain=square:2 rmat=6,4")
        .unwrap();
    c.submit_chain(3, Lane::Batch, 0, "rmat=6,4").unwrap();
    c.submit_chain(4, Lane::Batch, 0, "chain=galerkin rmat=6,4 repeat=2")
        .unwrap();
    let rejects = c.collect_responses(3).unwrap();
    assert_eq!(rejects.rejected.len(), 3);
    assert!(rejects.rejected.iter().all(|(_, r)| *r == "bad_spec"));

    let mut summary = rejects;
    c.shutdown().unwrap();
    c.drain_to_eof(&mut summary).unwrap();
    let report = server.join().unwrap();
    assert_eq!(report.requests, 5);
    assert_eq!(report.admitted, 2);
    assert_eq!(report.results, 2, "chain results count as results");
    assert_eq!(report.other_rejected, 3);

    let metrics = registry.render_prometheus(false);
    assert!(
        metrics.contains("br_chain_steps_total 7"),
        "4 + 3 steps ran"
    );
    assert!(metrics.contains("br_chain_step_cache_hits_total 2"));
    assert!(metrics.contains("br_chain_step_cache_misses_total 5"));
    assert!(metrics.contains("br_chain_structure_churn_total 5"));
}

#[test]
fn chain_families_export_at_zero_before_any_chain_runs() {
    let server = NetServer::bind("127.0.0.1:0", held_config(1, 4, 4)).unwrap();
    let addr = server.local_addr().to_string();
    let registry = server.registry().clone();
    let server = thread::spawn(move || server.run());

    let metrics = registry.render_prometheus(false);
    for family in [
        "br_chain_steps_total 0",
        "br_chain_step_cache_hits_total 0",
        "br_chain_step_cache_misses_total 0",
        "br_chain_structure_churn_total 0",
        "br_chain_fill_in_permille_count 0",
    ] {
        assert!(metrics.contains(family), "missing {family:?} in export");
    }

    let mut c = NetClient::connect(&addr, "idle").unwrap();
    c.shutdown().unwrap();
    server.join().unwrap();
}

#[test]
fn chain_deadline_expires_while_queued() {
    let server = NetServer::bind("127.0.0.1:0", held_config(1, 4, 4)).unwrap();
    let addr = server.local_addr().to_string();
    let server = thread::spawn(move || server.run());

    let mut c = NetClient::connect(&addr, "deadline").unwrap();
    // The gate is held, so the chain sits queued past its 1 ms deadline;
    // the worker refuses it without executing any step.
    c.submit_chain(9, Lane::Batch, 1, "chain=square:2 rmat=6,4")
        .unwrap();
    std::thread::sleep(std::time::Duration::from_millis(30));
    c.release().unwrap();
    let summary = c.collect_responses(1).unwrap();
    assert_eq!(summary.rejected, vec![(9, "deadline")]);

    let mut summary = summary;
    c.shutdown().unwrap();
    c.drain_to_eof(&mut summary).unwrap();
    let report = server.join().unwrap();
    assert_eq!(report.admitted, 1);
    assert_eq!(report.results, 0);
}

#[test]
fn bind_failure_is_an_error_not_a_panic() {
    let taken = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = taken.local_addr().unwrap().to_string();
    assert!(NetServer::bind(&addr, ServerConfig::default()).is_err());
}
