//! The TCP serving front end: listener, connection state machine,
//! admission control, worker pool, and graceful drain.
//!
//! ## Connection state machine
//!
//! ```text
//! accept ── ExpectHello ──Hello──► Ready ──Shutdown──► (drain initiated)
//!              │                    │ Submit → Result | Shed | Reject
//!              │ anything else      │ Release → open the worker gate
//!              ▼                    │ Goodbye / EOF → close
//!           Error + close           ▼
//!                                 closed
//! ```
//!
//! ## Admission decision (per `Submit`, in arrival order per connection)
//!
//! 1. no `Hello` yet → `Reject(NotReady)`
//! 2. draining → `Reject(Draining)`
//! 3. spec unparseable / unloadable / `repeat != 1` → `Reject(BadSpec)`
//! 4. client already has `quota` in-flight jobs → `Reject(QuotaExceeded)`
//! 5. combined lane depth at the shed threshold → `Shed`
//! 6. otherwise → enqueue; exactly one `Result` (or `Reject(Failed)` /
//!    `Reject(DeadlineExpired)`) follows later.
//!
//! With the worker gate held (`ServerConfig::hold`), steps 1–6 are a pure
//! function of the offered load: nothing leaves the queue, so the
//! shed/quota/saturation counters are byte-identical across reruns and
//! any `BR_THREADS` setting — the property `scripts/bench_gate.sh` checks.
//!
//! ## Drain protocol
//!
//! A `Shutdown` frame (from any authenticated connection) flips the
//! draining flag once: every open connection gets a `DrainNotice`, the
//! lane queue closes (queued jobs still execute; the gate opens if held),
//! the listener stops accepting, workers finish and exit, remaining
//! connections are flushed and closed, and [`NetServer::run`] returns.

use std::collections::HashMap;
use std::io::BufReader;
use std::net::{Shutdown as SockShutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use block_reorganizer::plan::{PlanMode, ReorgPlan};
use block_reorganizer::reorder::ReorderStrategy;
use block_reorganizer::ReorganizerConfig;
use br_gpu_sim::device::DeviceConfig;
use br_gpu_sim::sim::GpuSimulator;
use br_obs::{lock_recover, Counter, Gauge, Histogram, Registry};
use br_service::cache::{PlanCache, PlanKey};
use br_service::chain::{self, ChainInstruments, ChainRequest};
use br_service::job::parse_job_file;
use br_sparse::CsrMatrix;
use br_spgemm::accum::ScratchPool;
use br_spgemm::context::ProblemContext;
use br_spgemm::estimate::EstimatorConfig;

use crate::frame::{
    read_frame, write_frame, ChainStepSummary, Frame, FrameError, Lane, RejectCode, VERSION,
};
use crate::lane::{LanePushError, LaneQueue};

/// How to provision the serving front end.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// One worker per entry (duplicates = several workers on one model).
    pub devices: Vec<DeviceConfig>,
    /// Plan-cache capacity (entries).
    pub cache_capacity: usize,
    /// Combined lane-queue capacity; submissions beyond it are shed.
    pub shed_threshold: usize,
    /// Max admitted-but-unfinished jobs per client id.
    pub quota: u64,
    /// Start with the worker gate held: admission decisions become a pure
    /// function of arrival order until a `Release` frame opens the gate.
    pub hold: bool,
    /// Reorganizer configuration applied to every job.
    pub config: ReorganizerConfig,
    /// Metrics registry; `None` gives the server a private one.
    pub registry: Option<Arc<Registry>>,
    /// Estimation-based planning: `None` (default) builds plans with the
    /// exact symbolic precalc, `Some(cfg)` builds them from a seeded sample
    /// (method auto-selection + estimated bin thresholds, exact fallback
    /// when the confidence band exceeds `cfg.tolerance`). Part of the plan
    /// cache key, so flipping it never aliases cached plans.
    pub estimator: Option<EstimatorConfig>,
    /// Row-reordering strategy applied to every plan the server builds
    /// ([`ReorderStrategy::None`], the default, is the historical
    /// pipeline). Part of the plan cache key; results are bit-identical
    /// either way because plans un-permute their output.
    pub reorder: ReorderStrategy,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            devices: vec![DeviceConfig::titan_xp()],
            cache_capacity: 32,
            shed_threshold: 64,
            quota: 256,
            hold: false,
            config: ReorganizerConfig::default(),
            registry: None,
            estimator: None,
            reorder: ReorderStrategy::None,
        }
    }
}

/// Final accounting of one serve run, read off the deterministic counters.
#[derive(Debug, Clone, Default)]
pub struct ServeReport {
    /// Connections accepted (excluding ones refused during drain).
    pub connections: u64,
    /// `Submit` frames received.
    pub requests: u64,
    /// Requests admitted into a lane.
    pub admitted: u64,
    /// `Result` responses sent.
    pub results: u64,
    /// Requests shed at the queue threshold.
    pub shed: u64,
    /// Requests refused by the per-client quota.
    pub quota_rejected: u64,
    /// Requests refused for other typed reasons (bad spec, draining, …).
    pub other_rejected: u64,
    /// Protocol errors observed across all connections.
    pub protocol_errors: u64,
    /// Highest combined queue depth observed (≤ the shed threshold).
    pub queue_depth_max: usize,
}

impl std::fmt::Display for ServeReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "serve: {} connections, {} requests ({} admitted, {} shed, {} quota-rejected, {} other-rejected)",
            self.connections,
            self.requests,
            self.admitted,
            self.shed,
            self.quota_rejected,
            self.other_rejected
        )?;
        writeln!(
            f,
            "       {} results, queue depth max {}, {} protocol errors",
            self.results, self.queue_depth_max, self.protocol_errors
        )
    }
}

/// Per-lane + per-reason instrument handles. Every cell is registered at
/// server start, so the exposition's family set is identical no matter
/// which events actually occur.
struct NetInstruments {
    registry: Arc<Registry>,
    connections: Counter,
    requests: [Counter; 2],
    admitted: [Counter; 2],
    shed: [Counter; 2],
    saturation: [Counter; 2],
    results: [Counter; 2],
    reject_quota: Counter,
    reject_bad_spec: Counter,
    reject_draining: Counter,
    reject_not_ready: Counter,
    reject_failed: Counter,
    drain_notices: Counter,
    protocol_errors: Counter,
    /// Wall-clock dependent, hence timing-flagged (strict dumps omit it).
    deadline_expired: Counter,
    lane_depth: [Gauge; 2],
    lane_depth_max: [Gauge; 2],
    queue_wait: [Histogram; 2],
    /// Pre-registered `br_chain_*` families, updated by chain steps.
    chain: ChainInstruments,
}

impl NetInstruments {
    fn new(registry: Arc<Registry>) -> Self {
        let per_lane = |name: &str, help: &str| {
            [Lane::Interactive, Lane::Batch]
                .map(|l| registry.counter(name, help, &[("lane", l.name())]))
        };
        let reject = |reason: &str| {
            registry.counter(
                "br_net_rejects_total",
                "Requests refused with a typed Reject response.",
                &[("reason", reason)],
            )
        };
        NetInstruments {
            connections: registry.counter(
                "br_net_connections_total",
                "Connections accepted by the listener.",
                &[],
            ),
            requests: per_lane("br_net_requests_total", "Submit frames received."),
            admitted: per_lane("br_net_admitted_total", "Requests admitted into a lane."),
            shed: per_lane(
                "br_net_shed_total",
                "Requests shed because the queue was at the shed threshold.",
            ),
            saturation: per_lane(
                "br_net_saturation_total",
                "Admissions that filled the queue to the shed threshold.",
            ),
            results: per_lane("br_net_results_total", "Result responses sent."),
            reject_quota: reject("quota"),
            reject_bad_spec: reject("bad_spec"),
            reject_draining: reject("draining"),
            reject_not_ready: reject("not_ready"),
            reject_failed: reject("failed"),
            drain_notices: registry.counter(
                "br_net_drain_notices_total",
                "DrainNotice frames sent at drain start.",
                &[],
            ),
            protocol_errors: registry.counter(
                "br_net_protocol_errors_total",
                "Malformed or unexpected frames received.",
                &[],
            ),
            deadline_expired: registry.timing_counter(
                "br_net_deadline_expired_total",
                "Admitted requests whose deadline passed before execution (wall-clock dependent).",
                &[],
            ),
            lane_depth: [Lane::Interactive, Lane::Batch].map(|l| {
                registry.timing_gauge(
                    "br_net_lane_depth",
                    "Queued jobs per lane, sampled at push/pop (scheduling-dependent).",
                    &[("lane", l.name())],
                )
            }),
            lane_depth_max: [Lane::Interactive, Lane::Batch].map(|l| {
                registry.timing_gauge(
                    "br_net_lane_depth_max",
                    "Highest per-lane depth observed (scheduling-dependent).",
                    &[("lane", l.name())],
                )
            }),
            queue_wait: [Lane::Interactive, Lane::Batch].map(|l| {
                registry.timing_histogram(
                    "br_net_queue_wait_ns",
                    "Wall-clock nanoseconds a request waited in its lane.",
                    &[("lane", l.name())],
                )
            }),
            chain: chain::register_chain_instruments(&registry),
            registry,
        }
    }

    fn reject_counter(&self, code: RejectCode) -> Option<&Counter> {
        match code {
            RejectCode::QuotaExceeded => Some(&self.reject_quota),
            RejectCode::BadSpec => Some(&self.reject_bad_spec),
            RejectCode::Draining => Some(&self.reject_draining),
            RejectCode::NotReady => Some(&self.reject_not_ready),
            RejectCode::Failed => Some(&self.reject_failed),
            // Wall-clock dependent: counted by the timing-flagged
            // deadline_expired counter instead, so strict metric dumps
            // stay a pure function of the offered load.
            RejectCode::DeadlineExpired => None,
        }
    }
}

/// Per-client in-flight accounting for quota enforcement.
struct Admission {
    quota: u64,
    inflight: Mutex<HashMap<String, u64>>,
}

impl Admission {
    fn new(quota: u64) -> Self {
        Admission {
            quota: quota.max(1),
            inflight: Mutex::new(HashMap::new()),
        }
    }

    /// Reserves one in-flight slot for `client`; `false` if at quota.
    fn try_acquire(&self, client: &str) -> bool {
        let mut map = lock_recover(&self.inflight);
        let n = map.entry(client.to_string()).or_insert(0);
        if *n >= self.quota {
            return false;
        }
        *n += 1;
        true
    }

    /// Returns `client`'s slot after its job finished (or expired).
    fn release(&self, client: &str) {
        let mut map = lock_recover(&self.inflight);
        if let Some(n) = map.get_mut(client) {
            *n = n.saturating_sub(1);
        }
    }
}

/// The work an admitted request carries: one multiplication (`Submit`) or
/// a whole chain program (`SubmitChain`). Both ride the same lanes, quota,
/// shed threshold, and deadline check.
enum NetWork {
    Single {
        a: Arc<CsrMatrix<f64>>,
        b: Arc<CsrMatrix<f64>>,
    },
    Chain(Box<ChainRequest>),
}

/// An admitted request waiting for (or being executed by) a worker.
struct NetJob {
    request_id: u64,
    client_id: String,
    label: String,
    deadline: Option<Instant>,
    work: NetWork,
    config: ReorganizerConfig,
    reply: mpsc::Sender<Frame>,
    enqueued: Instant,
}

struct ConnHandle {
    tx: mpsc::Sender<Frame>,
    stream: TcpStream,
}

struct Shared {
    queue: LaneQueue<NetJob>,
    cache: PlanCache,
    admission: Admission,
    instruments: NetInstruments,
    draining: AtomicBool,
    conns: Mutex<HashMap<u64, ConnHandle>>,
    next_conn_id: AtomicU64,
    local_addr: SocketAddr,
    reorg_config: ReorganizerConfig,
    estimator: Option<EstimatorConfig>,
    reorder: ReorderStrategy,
    shed_threshold: usize,
    quota: u64,
}

impl Shared {
    fn initiate_drain(&self) {
        if self.draining.swap(true, Ordering::SeqCst) {
            return;
        }
        let conns = lock_recover(&self.conns);
        for handle in conns.values() {
            if handle
                .tx
                .send(Frame::DrainNotice {
                    message: "server draining: finishing in-flight jobs, accepting no new work"
                        .to_string(),
                })
                .is_ok()
            {
                self.instruments.drain_notices.inc();
            }
        }
        drop(conns);
        // Queued jobs still run (close also opens a held gate); workers
        // exit once the backlog is gone.
        self.queue.close();
        // Wake the accept loop so `run` can move on to joining workers.
        let _ = TcpStream::connect(self.local_addr);
    }

    fn set_depth_gauges(&self) {
        for lane in Lane::ALL {
            let depth = self.queue.lane_depth(lane) as u64;
            let g = &self.instruments.lane_depth[lane.index()];
            g.set_u64(depth);
            self.instruments.lane_depth_max[lane.index()].set_max(depth as f64);
        }
    }
}

/// A bound, not-yet-running server. [`bind`](Self::bind) separates listener
/// setup (whose failure the CLI maps to exit code 3) from serving.
pub struct NetServer {
    listener: TcpListener,
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl NetServer {
    /// Binds the listener and spawns the worker pool. The returned server
    /// does not accept connections until [`run`](Self::run).
    pub fn bind(addr: &str, config: ServerConfig) -> std::io::Result<NetServer> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let registry = config
            .registry
            .clone()
            .unwrap_or_else(|| Arc::new(Registry::new()));
        let shared = Arc::new(Shared {
            queue: LaneQueue::new(config.shed_threshold, config.hold),
            cache: PlanCache::with_registry(config.cache_capacity, registry.clone()),
            admission: Admission::new(config.quota),
            instruments: NetInstruments::new(registry),
            draining: AtomicBool::new(false),
            conns: Mutex::new(HashMap::new()),
            next_conn_id: AtomicU64::new(0),
            local_addr,
            reorg_config: config.config,
            estimator: config.estimator,
            reorder: config.reorder,
            shed_threshold: config.shed_threshold.max(1),
            quota: config.quota.max(1),
        });
        let workers = config
            .devices
            .into_iter()
            .enumerate()
            .map(|(index, device)| {
                let shared = shared.clone();
                thread::Builder::new()
                    .name(format!("br-net-worker-{index}"))
                    .spawn(move || worker_loop(index, device, shared))
                    .expect("failed to spawn net worker")
            })
            .collect();
        Ok(NetServer {
            listener,
            shared,
            workers,
        })
    }

    /// The bound address (useful with `--listen 127.0.0.1:0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.local_addr
    }

    /// The registry holding this server's instruments.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.shared.instruments.registry
    }

    /// Serves until a `Shutdown` frame completes the drain, then reports.
    pub fn run(self) -> ServeReport {
        let NetServer {
            listener,
            shared,
            workers,
        } = self;
        let mut conn_threads: Vec<JoinHandle<()>> = Vec::new();
        for stream in listener.incoming() {
            let Ok(stream) = stream else { continue };
            if shared.draining.load(Ordering::SeqCst) {
                // Refuse late arrivals (including the drain wake-up
                // connection) with a best-effort notice.
                let mut s = stream;
                let _ = write_frame(
                    &mut s,
                    &Frame::DrainNotice {
                        message: "server draining: connection refused".to_string(),
                    },
                );
                let _ = s.shutdown(SockShutdown::Both);
                break;
            }
            shared.instruments.connections.inc();
            let conn_id = shared.next_conn_id.fetch_add(1, Ordering::SeqCst);
            let shared = Arc::clone(&shared);
            conn_threads.push(
                thread::Builder::new()
                    .name(format!("br-net-conn-{conn_id}"))
                    .spawn(move || connection_loop(conn_id, stream, shared))
                    .expect("failed to spawn connection thread"),
            );
        }
        // Drain: workers finish the closed queue's backlog, then exit.
        for w in workers {
            w.join().expect("net worker panicked");
        }
        // Every result is now in its connection's write channel. Close the
        // read side of surviving connections; each reader exits, its
        // writer flushes the channel backlog, and the thread finishes.
        let leftovers: Vec<ConnHandle> = {
            let mut conns = lock_recover(&shared.conns);
            conns.drain().map(|(_, h)| h).collect()
        };
        for handle in leftovers {
            let _ = handle.stream.shutdown(SockShutdown::Read);
        }
        for t in conn_threads {
            t.join().expect("connection thread panicked");
        }
        let i = &shared.instruments;
        let lane_sum = |c: &[Counter; 2]| c[0].get() + c[1].get();
        ServeReport {
            connections: i.connections.get(),
            requests: lane_sum(&i.requests),
            admitted: lane_sum(&i.admitted),
            results: lane_sum(&i.results),
            shed: lane_sum(&i.shed),
            quota_rejected: i.reject_quota.get(),
            other_rejected: i.reject_bad_spec.get()
                + i.reject_draining.get()
                + i.reject_not_ready.get()
                + i.reject_failed.get(),
            protocol_errors: i.protocol_errors.get(),
            queue_depth_max: shared.queue.max_depth(),
        }
    }
}

fn connection_loop(conn_id: u64, stream: TcpStream, shared: Arc<Shared>) {
    let _ = stream.set_nodelay(true);
    let (tx, rx) = mpsc::channel::<Frame>();
    let Ok(write_stream) = stream.try_clone() else {
        return;
    };
    let Ok(registry_stream) = stream.try_clone() else {
        return;
    };
    let writer = thread::Builder::new()
        .name(format!("br-net-writer-{conn_id}"))
        .spawn(move || {
            let mut w = write_stream;
            for frame in rx {
                if write_frame(&mut w, &frame).is_err() {
                    break;
                }
            }
            let _ = w.shutdown(SockShutdown::Write);
        })
        .expect("failed to spawn writer thread");
    lock_recover(&shared.conns).insert(
        conn_id,
        ConnHandle {
            tx: tx.clone(),
            stream: registry_stream,
        },
    );

    let mut reader = BufReader::new(stream);
    let mut client_id: Option<String> = None;
    loop {
        match read_frame(&mut reader) {
            Ok(None) => break,
            Ok(Some(frame)) => match frame {
                Frame::Hello { client_id: id } => {
                    if client_id.is_some() {
                        shared.instruments.protocol_errors.inc();
                        let _ = tx.send(Frame::Error {
                            message: "duplicate Hello".to_string(),
                        });
                        break;
                    }
                    client_id = Some(id);
                    let _ = tx.send(Frame::HelloAck {
                        version: VERSION,
                        held: shared.queue.is_held(),
                        shed_threshold: shared.shed_threshold as u32,
                        quota: shared.quota.min(u32::MAX as u64) as u32,
                    });
                }
                Frame::Submit {
                    request_id,
                    lane,
                    deadline_ms,
                    spec,
                } => handle_submit(
                    &shared,
                    &tx,
                    client_id.as_deref(),
                    request_id,
                    lane,
                    deadline_ms,
                    &spec,
                    SubmitKind::Single,
                ),
                Frame::SubmitChain {
                    request_id,
                    lane,
                    deadline_ms,
                    spec,
                } => handle_submit(
                    &shared,
                    &tx,
                    client_id.as_deref(),
                    request_id,
                    lane,
                    deadline_ms,
                    &spec,
                    SubmitKind::Chain,
                ),
                Frame::Release => {
                    shared.queue.release();
                }
                Frame::Shutdown => shared.initiate_drain(),
                Frame::Goodbye => break,
                unexpected => {
                    shared.instruments.protocol_errors.inc();
                    let _ = tx.send(Frame::Error {
                        message: format!("unexpected {} frame from client", unexpected.name()),
                    });
                    break;
                }
            },
            Err(FrameError::Protocol(e)) => {
                shared.instruments.protocol_errors.inc();
                let _ = tx.send(Frame::Error {
                    message: e.to_string(),
                });
                break;
            }
            Err(_) => break, // transport error or mid-frame EOF
        }
    }
    lock_recover(&shared.conns).remove(&conn_id);
    drop(tx);
    let _ = writer.join();
}

/// Which frame type carried a submission — decides how its spec is
/// materialized (and which shape of result answers it).
#[derive(Clone, Copy, PartialEq, Eq)]
enum SubmitKind {
    Single,
    Chain,
}

#[allow(clippy::too_many_arguments)]
fn handle_submit(
    shared: &Shared,
    tx: &mpsc::Sender<Frame>,
    client_id: Option<&str>,
    request_id: u64,
    lane: Lane,
    deadline_ms: u32,
    spec: &str,
    kind: SubmitKind,
) {
    let i = &shared.instruments;
    i.requests[lane.index()].inc();
    let reject = |code: RejectCode, message: String| {
        if let Some(counter) = i.reject_counter(code) {
            counter.inc();
        }
        let _ = tx.send(Frame::Reject {
            request_id,
            code,
            message,
        });
    };
    let Some(client) = client_id else {
        reject(
            RejectCode::NotReady,
            "Submit before Hello handshake".to_string(),
        );
        return;
    };
    if shared.draining.load(Ordering::SeqCst) {
        reject(
            RejectCode::Draining,
            "server is draining; no new work accepted".to_string(),
        );
        return;
    }
    let (label, work) = match materialize_spec(spec, kind, request_id, &shared.reorg_config) {
        Ok(job) => job,
        Err(message) => {
            reject(RejectCode::BadSpec, message);
            return;
        }
    };
    if !shared.admission.try_acquire(client) {
        reject(
            RejectCode::QuotaExceeded,
            format!(
                "client {client:?} already has {} jobs in flight",
                shared.quota
            ),
        );
        return;
    }
    let deadline =
        (deadline_ms > 0).then(|| Instant::now() + Duration::from_millis(deadline_ms as u64));
    let job = NetJob {
        request_id,
        client_id: client.to_string(),
        label,
        deadline,
        work,
        config: shared.reorg_config,
        reply: tx.clone(),
        enqueued: Instant::now(),
    };
    match shared.queue.try_push(lane, job) {
        Ok(depth) => {
            i.admitted[lane.index()].inc();
            if depth == shared.shed_threshold {
                i.saturation[lane.index()].inc();
            }
            shared.set_depth_gauges();
        }
        Err(LanePushError::Full { depth }) => {
            shared.admission.release(client);
            i.shed[lane.index()].inc();
            let _ = tx.send(Frame::Shed {
                request_id,
                lane,
                depth: depth as u32,
                threshold: shared.shed_threshold as u32,
            });
        }
        Err(LanePushError::Closed) => {
            shared.admission.release(client);
            reject(
                RejectCode::Draining,
                "server is draining; no new work accepted".to_string(),
            );
        }
    }
}

/// Parses a one-line job spec and loads its operands (or builds the chain
/// request, for `SubmitChain`). The spec's `chain=` key must agree with
/// the frame type that carried it.
fn materialize_spec(
    spec: &str,
    kind: SubmitKind,
    request_id: u64,
    config: &ReorganizerConfig,
) -> Result<(String, NetWork), String> {
    let specs = parse_job_file(spec)?;
    let [one] = specs.as_slice() else {
        return Err("a Submit frame carries exactly one job line".to_string());
    };
    if one.repeat != 1 {
        return Err("repeat must be 1 over the wire (send one Submit per job)".to_string());
    }
    match (kind, one.chain) {
        (SubmitKind::Single, Some(_)) => {
            Err("chain= specs travel in SubmitChain frames, not Submit".to_string())
        }
        (SubmitKind::Chain, None) => Err(
            "a SubmitChain spec needs a chain= key (use Submit for one multiplication)".to_string(),
        ),
        (SubmitKind::Single, None) => {
            let a = Arc::new(one.source.load()?);
            let b = match &one.pair {
                Some(src) => Arc::new(src.load()?),
                None => a.clone(),
            };
            Ok((one.source.label(), NetWork::Single { a, b }))
        }
        (SubmitKind::Chain, Some(workload)) => {
            let base = one.source.load()?;
            let label = format!("{}:{}", one.source.label(), workload.spec());
            let request = ChainRequest::workload(request_id, workload, &base)
                .with_label(label.clone())
                .with_config(*config);
            Ok((label, NetWork::Chain(Box::new(request))))
        }
    }
}

fn worker_loop(index: usize, device: DeviceConfig, shared: Arc<Shared>) {
    let sim = GpuSimulator::new(device.clone());
    let pool = ScratchPool::new();
    let i = &shared.instruments;
    while let Some((lane, job)) = shared.queue.pop() {
        shared.set_depth_gauges();
        i.queue_wait[lane.index()].observe(job.enqueued.elapsed().as_nanos() as u64);
        if let Some(deadline) = job.deadline {
            if Instant::now() > deadline {
                i.deadline_expired.inc();
                let _ = job.reply.send(Frame::Reject {
                    request_id: job.request_id,
                    code: RejectCode::DeadlineExpired,
                    message: "deadline passed while queued".to_string(),
                });
                shared.admission.release(&job.client_id);
                continue;
            }
        }
        let response = match &job.work {
            NetWork::Single { a, b } => execute_job(
                index,
                &device,
                &sim,
                &shared.cache,
                &pool,
                shared.estimator,
                shared.reorder,
                &job,
                a,
                b,
            ),
            NetWork::Chain(request) => execute_chain_job(
                index,
                &device,
                &sim,
                &shared,
                &pool,
                job.request_id,
                request.as_ref().clone(),
                job.enqueued,
            ),
        };
        match &response {
            Frame::Result { .. } | Frame::ChainResult { .. } => i.results[lane.index()].inc(),
            Frame::Reject { .. } => i.reject_failed.inc(),
            _ => unreachable!("workers only produce Result, ChainResult, or Reject"),
        }
        let _ = job.reply.send(response);
        shared.admission.release(&job.client_id);
    }
}

#[allow(clippy::too_many_arguments)]
fn execute_job(
    worker: usize,
    device: &DeviceConfig,
    sim: &GpuSimulator,
    cache: &PlanCache,
    pool: &ScratchPool<f64>,
    estimator: Option<EstimatorConfig>,
    reorder: ReorderStrategy,
    job: &NetJob,
    a: &Arc<CsrMatrix<f64>>,
    b: &Arc<CsrMatrix<f64>>,
) -> Frame {
    let fail = |message: String| Frame::Reject {
        request_id: job.request_id,
        code: RejectCode::Failed,
        message,
    };
    let ctx = match ProblemContext::from_shared(a.clone(), b.clone()) {
        Ok(ctx) => ctx,
        Err(e) => return fail(format!("invalid operands: {e}")),
    };
    let key = PlanKey::with_options(
        ctx.signature(),
        &device.name,
        &job.config,
        estimator.as_ref(),
        reorder,
    );
    // Single-flight get_or_build keeps hit/miss counters a pure function
    // of the admitted job multiset, independent of worker count.
    let (plan, cache_hit) = cache.get_or_build(&key, || {
        Arc::new(match estimator {
            Some(est) => {
                ReorgPlan::build_estimated_with_reorder(&ctx, &job.config, device, &est, reorder)
            }
            None => ReorgPlan::build_with_reorder(&ctx, &job.config, device, reorder),
        })
    });
    let mode = if cache_hit {
        PlanMode::Cached
    } else {
        PlanMode::Cold
    };
    match plan.execute_with_scratch(sim, &ctx, mode, Some(pool)) {
        Ok(run) => Frame::Result {
            request_id: job.request_id,
            label: job.label.clone(),
            worker: worker as u32,
            cache_hit,
            total_ms: run.total_ms,
            gflops: run.gflops(),
            nnz_c: run.result.nnz() as u64,
        },
        Err(e) => fail(format!("execution failed: {e}")),
    }
}

/// Runs one chain through [`br_service::chain::execute_chain`] — every
/// step goes through the same plan cache the single jobs use, and the
/// `br_chain_*` instruments registered at server start pick up the
/// per-step counters. A failed step answers with `Reject(Failed)` naming
/// the step.
#[allow(clippy::too_many_arguments)]
fn execute_chain_job(
    worker: usize,
    device: &DeviceConfig,
    sim: &GpuSimulator,
    shared: &Shared,
    pool: &ScratchPool<f64>,
    request_id: u64,
    request: ChainRequest,
    enqueued: Instant,
) -> Frame {
    let queue_ms = enqueued.elapsed().as_secs_f64() * 1e3;
    match chain::execute_chain(
        worker,
        device,
        sim,
        &shared.cache,
        pool,
        shared.estimator,
        shared.reorder,
        &shared.instruments.chain,
        &shared.instruments.registry,
        request,
        queue_ms,
    ) {
        Ok(outcome) => Frame::ChainResult {
            request_id,
            label: outcome.label.clone(),
            worker: worker as u32,
            total_ms: outcome.total_ms,
            nnz_c: outcome.result.nnz() as u64,
            steps: outcome
                .steps
                .iter()
                .map(|s| ChainStepSummary {
                    label: s.label.clone(),
                    cache_hit: s.cache_hit,
                    fresh_structure: s.fresh_structure,
                    total_ms: s.total_ms,
                    fill_in_permille: s.fill_in_permille,
                    output_nnz: s.output_nnz as u64,
                })
                .collect(),
        },
        Err(e) => Frame::Reject {
            request_id,
            code: RejectCode::Failed,
            message: e.message,
        },
    }
}
