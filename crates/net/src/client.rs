//! A small synchronous client for the `br-net` wire protocol.
//!
//! [`NetClient::connect`] performs the `Hello`/`HelloAck` handshake, then
//! submissions can be pipelined freely: the server answers `Shed`/`Reject`
//! immediately and `Result` when a worker finishes, so
//! [`next_response`](NetClient::next_response) interleaves them in server
//! order. [`collect_responses`](NetClient::collect_responses) gathers
//! exactly one response per outstanding request (drain notices are folded
//! into the summary, not counted as responses).

use std::collections::BTreeMap;
use std::fmt;
use std::io::{self, BufReader};
use std::net::TcpStream;

use crate::frame::{read_frame, write_frame, Frame, FrameError, Lane, ProtocolError};

/// A client-side failure.
#[derive(Debug)]
pub enum ClientError {
    /// Transport error.
    Io(io::Error),
    /// The server's bytes violated the protocol.
    Protocol(ProtocolError),
    /// The server refused the connection (draining or handshake error).
    Refused(String),
    /// The server closed before answering everything outstanding.
    ServerClosed,
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "i/o error: {e}"),
            ClientError::Protocol(e) => write!(f, "protocol error: {e}"),
            ClientError::Refused(m) => write!(f, "connection refused: {m}"),
            ClientError::ServerClosed => write!(f, "server closed the connection early"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<FrameError> for ClientError {
    fn from(e: FrameError) -> Self {
        match e {
            FrameError::Io(e) => ClientError::Io(e),
            FrameError::Protocol(e) => ClientError::Protocol(e),
            FrameError::UnexpectedEof => ClientError::ServerClosed,
        }
    }
}

/// What the server advertised in its `HelloAck`.
#[derive(Debug, Clone, Copy)]
pub struct ServerInfo {
    /// Server protocol version.
    pub version: u8,
    /// Whether the worker gate is held (send `Release` to open it).
    pub held: bool,
    /// The server's shed threshold.
    pub shed_threshold: u32,
    /// The server's per-client quota.
    pub quota: u32,
}

/// Tally of one [`NetClient::collect_responses`] call.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ResponseSummary {
    /// `Result` responses, in arrival order, as `(request_id, cache_hit)`.
    pub results: Vec<(u64, bool)>,
    /// `ChainResult` responses, in arrival order, as
    /// `(request_id, steps executed, steps served from the plan cache)`.
    pub chain_results: Vec<(u64, usize, usize)>,
    /// `Shed` responses (request ids, arrival order).
    pub shed: Vec<u64>,
    /// `Reject` responses as `(request_id, reason name)`.
    pub rejected: Vec<(u64, &'static str)>,
    /// Whether a `DrainNotice` arrived while collecting.
    pub drain_notice: bool,
}

impl ResponseSummary {
    /// Total per-request responses collected.
    pub fn total(&self) -> usize {
        self.results.len() + self.chain_results.len() + self.shed.len() + self.rejected.len()
    }

    /// Response counts keyed by kind name (deterministic ordering).
    pub fn counts(&self) -> BTreeMap<&'static str, usize> {
        let mut m = BTreeMap::new();
        m.insert("result", self.results.len());
        m.insert("chain_result", self.chain_results.len());
        m.insert("shed", self.shed.len());
        for (_, reason) in &self.rejected {
            *m.entry(reason).or_insert(0) += 1;
        }
        m
    }
}

/// A connected, handshaken client.
pub struct NetClient {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
    info: ServerInfo,
}

impl NetClient {
    /// Connects, sends `Hello`, and waits for the `HelloAck`.
    pub fn connect(addr: &str, client_id: &str) -> Result<NetClient, ClientError> {
        let writer = TcpStream::connect(addr)?;
        writer.set_nodelay(true).ok();
        let mut reader = BufReader::new(writer.try_clone()?);
        let mut w = writer.try_clone()?;
        write_frame(
            &mut w,
            &Frame::Hello {
                client_id: client_id.to_string(),
            },
        )?;
        match read_frame(&mut reader)? {
            Some(Frame::HelloAck {
                version,
                held,
                shed_threshold,
                quota,
            }) => Ok(NetClient {
                writer,
                reader,
                info: ServerInfo {
                    version,
                    held,
                    shed_threshold,
                    quota,
                },
            }),
            Some(Frame::DrainNotice { message }) | Some(Frame::Error { message }) => {
                Err(ClientError::Refused(message))
            }
            Some(other) => Err(ClientError::Refused(format!(
                "expected HelloAck, got {}",
                other.name()
            ))),
            None => Err(ClientError::ServerClosed),
        }
    }

    /// What the server advertised at handshake time.
    pub fn server_info(&self) -> ServerInfo {
        self.info
    }

    /// Fire-and-forget submission; the response arrives via
    /// [`next_response`](Self::next_response).
    pub fn submit(
        &mut self,
        request_id: u64,
        lane: Lane,
        deadline_ms: u32,
        spec: &str,
    ) -> Result<(), ClientError> {
        write_frame(
            &mut self.writer,
            &Frame::Submit {
                request_id,
                lane,
                deadline_ms,
                spec: spec.to_string(),
            },
        )?;
        Ok(())
    }

    /// Fire-and-forget chain submission (the spec needs a `chain=` key);
    /// the server answers with one `ChainResult`, `Shed`, or `Reject`.
    pub fn submit_chain(
        &mut self,
        request_id: u64,
        lane: Lane,
        deadline_ms: u32,
        spec: &str,
    ) -> Result<(), ClientError> {
        write_frame(
            &mut self.writer,
            &Frame::SubmitChain {
                request_id,
                lane,
                deadline_ms,
                spec: spec.to_string(),
            },
        )?;
        Ok(())
    }

    /// Opens a held server's worker gate.
    pub fn release(&mut self) -> Result<(), ClientError> {
        write_frame(&mut self.writer, &Frame::Release)?;
        Ok(())
    }

    /// Asks the server to drain and exit.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        write_frame(&mut self.writer, &Frame::Shutdown)?;
        Ok(())
    }

    /// Announces a clean close.
    pub fn goodbye(&mut self) -> Result<(), ClientError> {
        write_frame(&mut self.writer, &Frame::Goodbye)?;
        Ok(())
    }

    /// Next server frame; `None` on clean EOF.
    pub fn next_response(&mut self) -> Result<Option<Frame>, ClientError> {
        Ok(read_frame(&mut self.reader)?)
    }

    /// Collects exactly `expected` per-request responses (`Result`,
    /// `ChainResult`, `Shed`, or `Reject`). `DrainNotice` is recorded but
    /// not counted; any other
    /// frame or an early close is an error.
    pub fn collect_responses(&mut self, expected: usize) -> Result<ResponseSummary, ClientError> {
        let mut summary = ResponseSummary::default();
        while summary.total() < expected {
            match self.next_response()? {
                Some(Frame::Result {
                    request_id,
                    cache_hit,
                    ..
                }) => summary.results.push((request_id, cache_hit)),
                Some(Frame::ChainResult {
                    request_id, steps, ..
                }) => summary.chain_results.push((
                    request_id,
                    steps.len(),
                    steps.iter().filter(|s| s.cache_hit).count(),
                )),
                Some(Frame::Shed { request_id, .. }) => summary.shed.push(request_id),
                Some(Frame::Reject {
                    request_id, code, ..
                }) => summary.rejected.push((request_id, code.name())),
                Some(Frame::DrainNotice { .. }) => summary.drain_notice = true,
                Some(Frame::Error { message }) => return Err(ClientError::Refused(message)),
                Some(other) => {
                    return Err(ClientError::Refused(format!(
                        "unexpected {} frame",
                        other.name()
                    )))
                }
                None => return Err(ClientError::ServerClosed),
            }
        }
        Ok(summary)
    }

    /// Reads frames until EOF, recording any late `DrainNotice` into
    /// `summary`. Useful after `shutdown` to witness the drain.
    pub fn drain_to_eof(&mut self, summary: &mut ResponseSummary) -> Result<(), ClientError> {
        loop {
            match self.next_response() {
                Ok(Some(Frame::DrainNotice { .. })) => summary.drain_notice = true,
                Ok(Some(_)) => {}
                Ok(None) => return Ok(()),
                // The server may RST after drain; treat as closed.
                Err(ClientError::Io(_)) | Err(ClientError::ServerClosed) => return Ok(()),
                Err(e) => return Err(e),
            }
        }
    }
}
