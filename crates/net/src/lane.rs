//! Two-lane bounded job queue with a worker gate.
//!
//! The admission controller pushes into one of two priority lanes; workers
//! pop interactive work strictly before batch work. The queue is bounded —
//! [`LaneQueue::try_push`] never blocks and returns a typed
//! [`LanePushError::Full`] once the *combined* depth reaches capacity,
//! which is exactly the serving layer's shed decision: capacity == shed
//! threshold, so `max_depth() <= threshold` holds structurally.
//!
//! The gate (`held`) exists for deterministic admission accounting: a held
//! queue accepts pushes but delivers nothing, so a test (or the bench
//! gate's loopback flood) can submit its whole load, observe shed/quota
//! decisions that are a pure function of arrival order, then
//! [`release`](LaneQueue::release) the workers. [`close`](LaneQueue::close)
//! also releases, so a drain started while held still finishes every
//! queued job.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

use br_obs::lock_recover;

use crate::frame::Lane;

/// Why a push was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LanePushError {
    /// Combined depth is at capacity — the shed condition.
    Full {
        /// Depth observed at the decision.
        depth: usize,
    },
    /// The queue is closed (server draining).
    Closed,
}

struct Inner<T> {
    lanes: [VecDeque<T>; 2],
    capacity: usize,
    closed: bool,
    held: bool,
    max_depth: usize,
}

impl<T> Inner<T> {
    fn depth(&self) -> usize {
        self.lanes[0].len() + self.lanes[1].len()
    }
}

/// Bounded two-lane MPMC queue (see module docs).
pub struct LaneQueue<T> {
    inner: Mutex<Inner<T>>,
    ready: Condvar,
}

impl<T> LaneQueue<T> {
    /// A queue shedding at `capacity` (clamped to ≥ 1), optionally starting
    /// with the worker gate held.
    pub fn new(capacity: usize, held: bool) -> Self {
        LaneQueue {
            inner: Mutex::new(Inner {
                lanes: [VecDeque::new(), VecDeque::new()],
                capacity: capacity.max(1),
                closed: false,
                held,
                max_depth: 0,
            }),
            ready: Condvar::new(),
        }
    }

    /// Non-blocking admission: enqueues onto `lane` and returns the
    /// combined depth after the push, or a typed rejection.
    pub fn try_push(&self, lane: Lane, item: T) -> Result<usize, LanePushError> {
        let mut inner = lock_recover(&self.inner);
        if inner.closed {
            return Err(LanePushError::Closed);
        }
        let depth = inner.depth();
        if depth >= inner.capacity {
            return Err(LanePushError::Full { depth });
        }
        inner.lanes[lane.index()].push_back(item);
        let depth = depth + 1;
        inner.max_depth = inner.max_depth.max(depth);
        drop(inner);
        self.ready.notify_one();
        Ok(depth)
    }

    /// Blocks for the next item, draining interactive before batch.
    /// `None` once the queue is closed *and* empty.
    pub fn pop(&self) -> Option<(Lane, T)> {
        let mut inner = lock_recover(&self.inner);
        loop {
            if !inner.held {
                for lane in Lane::ALL {
                    if let Some(item) = inner.lanes[lane.index()].pop_front() {
                        return Some((lane, item));
                    }
                }
            }
            if inner.closed {
                return None;
            }
            inner = self
                .ready
                .wait(inner)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
        }
    }

    /// Opens the worker gate; returns whether it was held.
    pub fn release(&self) -> bool {
        let mut inner = lock_recover(&self.inner);
        let was_held = inner.held;
        inner.held = false;
        drop(inner);
        self.ready.notify_all();
        was_held
    }

    /// Closes the queue (new pushes rejected, queued items still
    /// delivered) and opens the gate so a held drain finishes.
    pub fn close(&self) {
        let mut inner = lock_recover(&self.inner);
        inner.closed = true;
        inner.held = false;
        drop(inner);
        self.ready.notify_all();
    }

    /// Combined depth across both lanes.
    pub fn depth(&self) -> usize {
        lock_recover(&self.inner).depth()
    }

    /// Depth of one lane.
    pub fn lane_depth(&self, lane: Lane) -> usize {
        lock_recover(&self.inner).lanes[lane.index()].len()
    }

    /// Highest combined depth ever observed (never exceeds capacity).
    pub fn max_depth(&self) -> usize {
        lock_recover(&self.inner).max_depth
    }

    /// The shed threshold.
    pub fn capacity(&self) -> usize {
        lock_recover(&self.inner).capacity
    }

    /// Whether the gate is currently held.
    pub fn is_held(&self) -> bool {
        lock_recover(&self.inner).held
    }

    /// Whether the queue has been closed.
    pub fn is_closed(&self) -> bool {
        lock_recover(&self.inner).closed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn sheds_exactly_at_capacity_and_tracks_high_water() {
        let q = LaneQueue::new(3, true);
        assert_eq!(q.try_push(Lane::Batch, 1), Ok(1));
        assert_eq!(q.try_push(Lane::Interactive, 2), Ok(2));
        assert_eq!(q.try_push(Lane::Batch, 3), Ok(3));
        assert_eq!(
            q.try_push(Lane::Interactive, 4),
            Err(LanePushError::Full { depth: 3 })
        );
        assert_eq!(q.max_depth(), 3);
        assert_eq!(q.lane_depth(Lane::Interactive), 1);
        assert_eq!(q.lane_depth(Lane::Batch), 2);
    }

    #[test]
    fn interactive_drains_before_batch() {
        let q = LaneQueue::new(8, false);
        q.try_push(Lane::Batch, "b1").unwrap();
        q.try_push(Lane::Batch, "b2").unwrap();
        q.try_push(Lane::Interactive, "i1").unwrap();
        q.try_push(Lane::Interactive, "i2").unwrap();
        let order: Vec<&str> = std::iter::from_fn(|| {
            if q.depth() > 0 {
                q.pop().map(|(_, v)| v)
            } else {
                None
            }
        })
        .collect();
        assert_eq!(order, vec!["i1", "i2", "b1", "b2"]);
    }

    #[test]
    fn held_queue_delivers_nothing_until_release() {
        let q: Arc<LaneQueue<u32>> = Arc::new(LaneQueue::new(4, true));
        q.try_push(Lane::Interactive, 7).unwrap();
        let popper = {
            let q = q.clone();
            thread::spawn(move || q.pop())
        };
        // The gate is held: the popper must still be blocked.
        thread::sleep(std::time::Duration::from_millis(30));
        assert!(!popper.is_finished(), "pop must block while held");
        assert!(q.release());
        assert_eq!(popper.join().unwrap(), Some((Lane::Interactive, 7)));
    }

    #[test]
    fn close_releases_gate_and_drains_queued_items() {
        let q: LaneQueue<u32> = LaneQueue::new(4, true);
        q.try_push(Lane::Batch, 1).unwrap();
        q.close();
        assert_eq!(q.pop(), Some((Lane::Batch, 1)), "held drain still runs");
        assert_eq!(q.pop(), None);
        assert_eq!(q.try_push(Lane::Batch, 2), Err(LanePushError::Closed));
    }

    #[test]
    fn capacity_is_clamped_to_one() {
        let q: LaneQueue<u32> = LaneQueue::new(0, false);
        assert_eq!(q.capacity(), 1);
        assert_eq!(q.try_push(Lane::Batch, 1), Ok(1));
        assert!(matches!(
            q.try_push(Lane::Batch, 2),
            Err(LanePushError::Full { depth: 1 })
        ));
    }
}
