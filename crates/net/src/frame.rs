//! The `br-net` wire format: length-prefixed binary frames.
//!
//! Every frame is a fixed 12-byte header followed by a payload:
//!
//! ```text
//! offset  size  field
//! 0       4     magic  = b"BRN1"
//! 4       1     version = 1
//! 5       1     frame type (see [`Frame`])
//! 6       2     reserved, must be zero
//! 8       4     payload length, little-endian (max 1 MiB)
//! 12      N     payload
//! ```
//!
//! Payload primitives are little-endian integers, `f64` as its IEEE-754
//! bit pattern, and strings as a `u32` length prefix followed by UTF-8
//! bytes (max 64 KiB). Decoding is total: any byte sequence produces
//! either a [`Frame`] or a typed [`ProtocolError`] — never a panic and
//! never a partial read past a declared length.

use std::fmt;
use std::io::{self, Read, Write};

/// First four bytes of every frame.
pub const MAGIC: [u8; 4] = *b"BRN1";
/// Protocol version carried in byte 4.
pub const VERSION: u8 = 1;
/// Header size in bytes (magic + version + type + reserved + length).
pub const HEADER_LEN: usize = 12;
/// Hard cap on the payload length field.
pub const MAX_PAYLOAD: usize = 1 << 20;
/// Hard cap on any length-prefixed string inside a payload.
pub const MAX_STRING: usize = 1 << 16;

/// Which queue a request is admitted into.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Lane {
    /// Low-latency lane, always drained before batch work.
    Interactive,
    /// Throughput lane.
    Batch,
}

impl Lane {
    /// Both lanes, in drain-priority order.
    pub const ALL: [Lane; 2] = [Lane::Interactive, Lane::Batch];

    /// Dense index (0 = interactive, 1 = batch).
    pub fn index(self) -> usize {
        match self {
            Lane::Interactive => 0,
            Lane::Batch => 1,
        }
    }

    /// Metric-label name.
    pub fn name(self) -> &'static str {
        match self {
            Lane::Interactive => "interactive",
            Lane::Batch => "batch",
        }
    }

    fn code(self) -> u8 {
        self.index() as u8
    }

    fn from_code(code: u8) -> Result<Lane, ProtocolError> {
        match code {
            0 => Ok(Lane::Interactive),
            1 => Ok(Lane::Batch),
            v => Err(ProtocolError::BadEnum {
                what: "lane",
                value: v,
            }),
        }
    }
}

/// Why a request was refused with [`Frame::Reject`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectCode {
    /// The client already has `quota` admitted-but-unfinished jobs.
    QuotaExceeded,
    /// The job spec failed to parse or to materialize.
    BadSpec,
    /// The server is draining and accepts no new work.
    Draining,
    /// The request's deadline passed before a worker picked it up.
    DeadlineExpired,
    /// A `Submit` arrived before the `Hello` handshake.
    NotReady,
    /// The job was admitted but execution failed.
    Failed,
}

impl RejectCode {
    /// Metric-label / display name.
    pub fn name(self) -> &'static str {
        match self {
            RejectCode::QuotaExceeded => "quota",
            RejectCode::BadSpec => "bad_spec",
            RejectCode::Draining => "draining",
            RejectCode::DeadlineExpired => "deadline",
            RejectCode::NotReady => "not_ready",
            RejectCode::Failed => "failed",
        }
    }

    fn code(self) -> u8 {
        match self {
            RejectCode::QuotaExceeded => 1,
            RejectCode::BadSpec => 2,
            RejectCode::Draining => 3,
            RejectCode::DeadlineExpired => 4,
            RejectCode::NotReady => 5,
            RejectCode::Failed => 6,
        }
    }

    fn from_code(code: u8) -> Result<RejectCode, ProtocolError> {
        match code {
            1 => Ok(RejectCode::QuotaExceeded),
            2 => Ok(RejectCode::BadSpec),
            3 => Ok(RejectCode::Draining),
            4 => Ok(RejectCode::DeadlineExpired),
            5 => Ok(RejectCode::NotReady),
            6 => Ok(RejectCode::Failed),
            v => Err(ProtocolError::BadEnum {
                what: "reject code",
                value: v,
            }),
        }
    }
}

/// Per-step summary carried by [`Frame::ChainResult`].
#[derive(Debug, Clone, PartialEq)]
pub struct ChainStepSummary {
    /// Step label from the chain program.
    pub label: String,
    /// Whether the step's reorganization plan came from the cache.
    pub cache_hit: bool,
    /// Whether the step's operand structures were first seen within the
    /// chain.
    pub fresh_structure: bool,
    /// Simulated end-to-end latency of the step, ms.
    pub total_ms: f64,
    /// Fill-in of the multiply: product nnz relative to the left operand,
    /// in permille.
    pub fill_in_permille: u64,
    /// `nnz` of the step output after post-ops.
    pub output_nnz: u64,
}

/// One protocol message. Client→server: `Hello`, `Submit`, `SubmitChain`,
/// `Release`, `Shutdown`, `Goodbye`. Server→client: everything else.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// First frame on every connection: identifies the client for quotas.
    Hello {
        /// Quota key; free-form, at most [`MAX_STRING`] bytes.
        client_id: String,
    },
    /// Handshake answer, echoing the server's admission parameters.
    HelloAck {
        /// Server protocol version.
        version: u8,
        /// Whether the worker gate is currently held (see `Release`).
        held: bool,
        /// Queue capacity above which submissions are shed.
        shed_threshold: u32,
        /// Per-client in-flight quota.
        quota: u32,
    },
    /// One job request. Exactly one response frame (`Result`, `Shed`, or
    /// `Reject`) answers each `Submit`.
    Submit {
        /// Client-chosen id, echoed in the response.
        request_id: u64,
        /// Priority lane.
        lane: Lane,
        /// Relative deadline in milliseconds; 0 = none.
        deadline_ms: u32,
        /// Job description in the job-file line format
        /// (e.g. `rmat=8,6 seed=1`); `repeat` must be 1.
        spec: String,
    },
    /// Successful completion of an admitted request.
    Result {
        /// Id from the `Submit`.
        request_id: u64,
        /// Job label derived from the spec.
        label: String,
        /// Index of the worker that executed the job.
        worker: u32,
        /// Whether the reorganization plan came from the cache.
        cache_hit: bool,
        /// Simulated end-to-end latency, ms.
        total_ms: f64,
        /// Achieved simulated GFLOPS.
        gflops: f64,
        /// `nnz(C)`.
        nnz_c: u64,
    },
    /// The request was load-shed: the queue was at the shed threshold.
    Shed {
        /// Id from the `Submit`.
        request_id: u64,
        /// Lane the request targeted.
        lane: Lane,
        /// Total queue depth observed at the admission decision.
        depth: u32,
        /// The configured shed threshold.
        threshold: u32,
    },
    /// The request was refused for a typed reason.
    Reject {
        /// Id from the `Submit`.
        request_id: u64,
        /// Why.
        code: RejectCode,
        /// Human-readable detail.
        message: String,
    },
    /// Opens the worker gate of a server started with `hold` (admission
    /// decisions before the release are a pure function of arrival order).
    Release,
    /// Begin graceful drain: stop accepting, finish queued and in-flight
    /// jobs, notify every connection, then exit.
    Shutdown,
    /// Broadcast to every open connection when a drain begins.
    DrainNotice {
        /// Human-readable detail.
        message: String,
    },
    /// Clean client-side close.
    Goodbye,
    /// Protocol-level failure; the server closes the connection after it.
    Error {
        /// What went wrong.
        message: String,
    },
    /// One chain request (a whole multi-step workload in one queue slot).
    /// Exactly one response frame (`ChainResult`, `Shed`, or `Reject`)
    /// answers each `SubmitChain`; the deadline covers the whole chain.
    SubmitChain {
        /// Client-chosen id, echoed in the response.
        request_id: u64,
        /// Priority lane.
        lane: Lane,
        /// Relative deadline in milliseconds for the *whole chain*; 0 =
        /// none.
        deadline_ms: u32,
        /// Chain description in the job-file line format
        /// (e.g. `chain=galerkin rmat=8,6 seed=1`); `repeat` must be 1.
        spec: String,
    },
    /// Successful completion of an admitted chain, with the per-step
    /// roll-up.
    ChainResult {
        /// Id from the `SubmitChain`.
        request_id: u64,
        /// Chain label derived from the spec.
        label: String,
        /// Index of the worker that executed the chain.
        worker: u32,
        /// Summed simulated latency across all steps, ms.
        total_ms: f64,
        /// `nnz` of the final step's output.
        nnz_c: u64,
        /// Per-step summaries, in program order.
        steps: Vec<ChainStepSummary>,
    },
}

impl Frame {
    fn frame_type(&self) -> u8 {
        match self {
            Frame::Hello { .. } => 1,
            Frame::HelloAck { .. } => 2,
            Frame::Submit { .. } => 3,
            Frame::Result { .. } => 4,
            Frame::Shed { .. } => 5,
            Frame::Reject { .. } => 6,
            Frame::Release => 7,
            Frame::Shutdown => 8,
            Frame::DrainNotice { .. } => 9,
            Frame::Goodbye => 10,
            Frame::Error { .. } => 11,
            Frame::SubmitChain { .. } => 12,
            Frame::ChainResult { .. } => 13,
        }
    }

    /// Short display name of the frame type.
    pub fn name(&self) -> &'static str {
        match self {
            Frame::Hello { .. } => "hello",
            Frame::HelloAck { .. } => "hello_ack",
            Frame::Submit { .. } => "submit",
            Frame::Result { .. } => "result",
            Frame::Shed { .. } => "shed",
            Frame::Reject { .. } => "reject",
            Frame::Release => "release",
            Frame::Shutdown => "shutdown",
            Frame::DrainNotice { .. } => "drain_notice",
            Frame::Goodbye => "goodbye",
            Frame::Error { .. } => "error",
            Frame::SubmitChain { .. } => "submit_chain",
            Frame::ChainResult { .. } => "chain_result",
        }
    }

    fn encode_payload(&self, out: &mut Vec<u8>) {
        match self {
            Frame::Hello { client_id } => put_str(out, client_id),
            Frame::HelloAck {
                version,
                held,
                shed_threshold,
                quota,
            } => {
                out.push(*version);
                out.push(*held as u8);
                put_u32(out, *shed_threshold);
                put_u32(out, *quota);
            }
            Frame::Submit {
                request_id,
                lane,
                deadline_ms,
                spec,
            } => {
                put_u64(out, *request_id);
                out.push(lane.code());
                put_u32(out, *deadline_ms);
                put_str(out, spec);
            }
            Frame::Result {
                request_id,
                label,
                worker,
                cache_hit,
                total_ms,
                gflops,
                nnz_c,
            } => {
                put_u64(out, *request_id);
                put_str(out, label);
                put_u32(out, *worker);
                out.push(*cache_hit as u8);
                put_u64(out, total_ms.to_bits());
                put_u64(out, gflops.to_bits());
                put_u64(out, *nnz_c);
            }
            Frame::Shed {
                request_id,
                lane,
                depth,
                threshold,
            } => {
                put_u64(out, *request_id);
                out.push(lane.code());
                put_u32(out, *depth);
                put_u32(out, *threshold);
            }
            Frame::Reject {
                request_id,
                code,
                message,
            } => {
                put_u64(out, *request_id);
                out.push(code.code());
                put_str(out, message);
            }
            Frame::Release | Frame::Shutdown | Frame::Goodbye => {}
            Frame::DrainNotice { message } | Frame::Error { message } => put_str(out, message),
            Frame::SubmitChain {
                request_id,
                lane,
                deadline_ms,
                spec,
            } => {
                put_u64(out, *request_id);
                out.push(lane.code());
                put_u32(out, *deadline_ms);
                put_str(out, spec);
            }
            Frame::ChainResult {
                request_id,
                label,
                worker,
                total_ms,
                nnz_c,
                steps,
            } => {
                put_u64(out, *request_id);
                put_str(out, label);
                put_u32(out, *worker);
                put_u64(out, total_ms.to_bits());
                put_u64(out, *nnz_c);
                put_u32(out, steps.len() as u32);
                for step in steps {
                    put_str(out, &step.label);
                    out.push(step.cache_hit as u8);
                    out.push(step.fresh_structure as u8);
                    put_u64(out, step.total_ms.to_bits());
                    put_u64(out, step.fill_in_permille);
                    put_u64(out, step.output_nnz);
                }
            }
        }
    }

    fn decode_payload(frame_type: u8, payload: &[u8]) -> Result<Frame, ProtocolError> {
        let mut c = Cursor::new(payload);
        let frame = match frame_type {
            1 => Frame::Hello {
                client_id: c.get_str()?,
            },
            2 => Frame::HelloAck {
                version: c.get_u8()?,
                held: c.get_bool()?,
                shed_threshold: c.get_u32()?,
                quota: c.get_u32()?,
            },
            3 => Frame::Submit {
                request_id: c.get_u64()?,
                lane: Lane::from_code(c.get_u8()?)?,
                deadline_ms: c.get_u32()?,
                spec: c.get_str()?,
            },
            4 => Frame::Result {
                request_id: c.get_u64()?,
                label: c.get_str()?,
                worker: c.get_u32()?,
                cache_hit: c.get_bool()?,
                total_ms: f64::from_bits(c.get_u64()?),
                gflops: f64::from_bits(c.get_u64()?),
                nnz_c: c.get_u64()?,
            },
            5 => Frame::Shed {
                request_id: c.get_u64()?,
                lane: Lane::from_code(c.get_u8()?)?,
                depth: c.get_u32()?,
                threshold: c.get_u32()?,
            },
            6 => Frame::Reject {
                request_id: c.get_u64()?,
                code: RejectCode::from_code(c.get_u8()?)?,
                message: c.get_str()?,
            },
            7 => Frame::Release,
            8 => Frame::Shutdown,
            9 => Frame::DrainNotice {
                message: c.get_str()?,
            },
            10 => Frame::Goodbye,
            11 => Frame::Error {
                message: c.get_str()?,
            },
            12 => Frame::SubmitChain {
                request_id: c.get_u64()?,
                lane: Lane::from_code(c.get_u8()?)?,
                deadline_ms: c.get_u32()?,
                spec: c.get_str()?,
            },
            13 => {
                let request_id = c.get_u64()?;
                let label = c.get_str()?;
                let worker = c.get_u32()?;
                let total_ms = f64::from_bits(c.get_u64()?);
                let nnz_c = c.get_u64()?;
                let count = c.get_u32()?;
                // No pre-allocation from the declared count: a hostile
                // count fails with Truncated on the first missing step.
                let mut steps = Vec::new();
                for _ in 0..count {
                    steps.push(ChainStepSummary {
                        label: c.get_str()?,
                        cache_hit: c.get_bool()?,
                        fresh_structure: c.get_bool()?,
                        total_ms: f64::from_bits(c.get_u64()?),
                        fill_in_permille: c.get_u64()?,
                        output_nnz: c.get_u64()?,
                    });
                }
                Frame::ChainResult {
                    request_id,
                    label,
                    worker,
                    total_ms,
                    nnz_c,
                    steps,
                }
            }
            v => return Err(ProtocolError::UnknownFrameType(v)),
        };
        c.finish()?;
        Ok(frame)
    }

    /// Serializes the frame to its full wire bytes (header + payload).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(HEADER_LEN + 32);
        out.extend_from_slice(&MAGIC);
        out.push(VERSION);
        out.push(self.frame_type());
        out.extend_from_slice(&[0, 0]);
        out.extend_from_slice(&[0, 0, 0, 0]); // length placeholder
        self.encode_payload(&mut out);
        let len = (out.len() - HEADER_LEN) as u32;
        out[8..12].copy_from_slice(&len.to_le_bytes());
        out
    }

    /// Parses one full frame from `bytes`. Fails on truncation, trailing
    /// bytes, and every malformed field — never panics.
    pub fn decode(bytes: &[u8]) -> Result<Frame, ProtocolError> {
        if bytes.len() < HEADER_LEN {
            return Err(ProtocolError::Truncated {
                needed: HEADER_LEN,
                have: bytes.len(),
            });
        }
        let (frame_type, len) = parse_header(&bytes[..HEADER_LEN])?;
        let total = HEADER_LEN + len;
        if bytes.len() < total {
            return Err(ProtocolError::Truncated {
                needed: total,
                have: bytes.len(),
            });
        }
        if bytes.len() > total {
            return Err(ProtocolError::TrailingBytes {
                extra: bytes.len() - total,
            });
        }
        Frame::decode_payload(frame_type, &bytes[HEADER_LEN..total])
    }
}

/// Validates a 12-byte header, returning `(frame_type, payload_len)`.
fn parse_header(h: &[u8]) -> Result<(u8, usize), ProtocolError> {
    debug_assert_eq!(h.len(), HEADER_LEN);
    if h[0..4] != MAGIC {
        return Err(ProtocolError::BadMagic([h[0], h[1], h[2], h[3]]));
    }
    if h[4] != VERSION {
        return Err(ProtocolError::UnsupportedVersion(h[4]));
    }
    if h[6] != 0 || h[7] != 0 {
        return Err(ProtocolError::NonzeroReserved);
    }
    let len = u32::from_le_bytes([h[8], h[9], h[10], h[11]]);
    if len as usize > MAX_PAYLOAD {
        return Err(ProtocolError::Oversized { len });
    }
    Ok((h[5], len as usize))
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    // Encoding oversized strings is a caller bug worth catching loudly in
    // tests, but truncation keeps the frame well-formed in release builds.
    debug_assert!(s.len() <= MAX_STRING, "string exceeds MAX_STRING");
    let bytes = &s.as_bytes()[..s.len().min(MAX_STRING)];
    put_u32(out, bytes.len() as u32);
    out.extend_from_slice(bytes);
}

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], ProtocolError> {
        if self.buf.len() - self.pos < n {
            return Err(ProtocolError::Truncated {
                needed: self.pos + n,
                have: self.buf.len(),
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn get_u8(&mut self) -> Result<u8, ProtocolError> {
        Ok(self.take(1)?[0])
    }

    fn get_bool(&mut self) -> Result<bool, ProtocolError> {
        match self.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            v => Err(ProtocolError::BadEnum {
                what: "bool",
                value: v,
            }),
        }
    }

    fn get_u32(&mut self) -> Result<u32, ProtocolError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn get_u64(&mut self) -> Result<u64, ProtocolError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    fn get_str(&mut self) -> Result<String, ProtocolError> {
        let len = self.get_u32()?;
        if len as usize > MAX_STRING {
            return Err(ProtocolError::StringTooLong { len });
        }
        let bytes = self.take(len as usize)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| ProtocolError::BadUtf8)
    }

    fn finish(&self) -> Result<(), ProtocolError> {
        if self.pos != self.buf.len() {
            return Err(ProtocolError::TrailingBytes {
                extra: self.buf.len() - self.pos,
            });
        }
        Ok(())
    }
}

/// Everything that can be wrong with received bytes. Decoding never panics
/// and never reads past a declared length.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtocolError {
    /// First four bytes were not [`MAGIC`].
    BadMagic([u8; 4]),
    /// Version byte differs from [`VERSION`].
    UnsupportedVersion(u8),
    /// Frame-type byte matches no known frame.
    UnknownFrameType(u8),
    /// Reserved header bytes were nonzero.
    NonzeroReserved,
    /// Declared payload length exceeds [`MAX_PAYLOAD`].
    Oversized {
        /// The declared length.
        len: u32,
    },
    /// Fewer bytes than a field (or the header) requires.
    Truncated {
        /// Bytes the decoder needed.
        needed: usize,
        /// Bytes it had.
        have: usize,
    },
    /// Bytes left over after the last field.
    TrailingBytes {
        /// How many.
        extra: usize,
    },
    /// A string field was not valid UTF-8.
    BadUtf8,
    /// A string length prefix exceeds [`MAX_STRING`].
    StringTooLong {
        /// The declared length.
        len: u32,
    },
    /// An enum discriminant (lane, reject code, bool) was out of range.
    BadEnum {
        /// Which field.
        what: &'static str,
        /// The offending byte.
        value: u8,
    },
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolError::BadMagic(m) => write!(f, "bad magic {m:02x?} (expected {MAGIC:02x?})"),
            ProtocolError::UnsupportedVersion(v) => {
                write!(f, "unsupported protocol version {v} (expected {VERSION})")
            }
            ProtocolError::UnknownFrameType(t) => write!(f, "unknown frame type {t}"),
            ProtocolError::NonzeroReserved => write!(f, "nonzero reserved header bytes"),
            ProtocolError::Oversized { len } => {
                write!(f, "payload length {len} exceeds max {MAX_PAYLOAD}")
            }
            ProtocolError::Truncated { needed, have } => {
                write!(f, "truncated frame: needed {needed} bytes, have {have}")
            }
            ProtocolError::TrailingBytes { extra } => {
                write!(f, "{extra} trailing bytes after frame payload")
            }
            ProtocolError::BadUtf8 => write!(f, "string field is not valid UTF-8"),
            ProtocolError::StringTooLong { len } => {
                write!(f, "string length {len} exceeds max {MAX_STRING}")
            }
            ProtocolError::BadEnum { what, value } => {
                write!(f, "invalid {what} value {value}")
            }
        }
    }
}

impl std::error::Error for ProtocolError {}

/// A failure while reading a frame off a stream.
#[derive(Debug)]
pub enum FrameError {
    /// Transport error.
    Io(io::Error),
    /// The bytes violated the protocol.
    Protocol(ProtocolError),
    /// The peer closed mid-frame.
    UnexpectedEof,
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "i/o error: {e}"),
            FrameError::Protocol(e) => write!(f, "protocol error: {e}"),
            FrameError::UnexpectedEof => write!(f, "connection closed mid-frame"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> Self {
        FrameError::Io(e)
    }
}

impl From<ProtocolError> for FrameError {
    fn from(e: ProtocolError) -> Self {
        FrameError::Protocol(e)
    }
}

/// Writes one frame (header + payload) and flushes.
pub fn write_frame<W: Write>(w: &mut W, frame: &Frame) -> io::Result<()> {
    w.write_all(&frame.encode())?;
    w.flush()
}

/// Reads one frame. `Ok(None)` means the peer closed cleanly at a frame
/// boundary; closing mid-frame is [`FrameError::UnexpectedEof`].
pub fn read_frame<R: Read>(r: &mut R) -> Result<Option<Frame>, FrameError> {
    let mut header = [0u8; HEADER_LEN];
    if !read_full(r, &mut header)? {
        return Ok(None);
    }
    let (frame_type, len) = parse_header(&header)?;
    let mut payload = vec![0u8; len];
    let mut filled = 0;
    while filled < len {
        let n = r.read(&mut payload[filled..])?;
        if n == 0 {
            return Err(FrameError::UnexpectedEof);
        }
        filled += n;
    }
    Ok(Some(Frame::decode_payload(frame_type, &payload)?))
}

/// Fills `buf` completely. `Ok(false)` if the stream was already at EOF;
/// EOF after a partial read is [`FrameError::UnexpectedEof`].
fn read_full<R: Read>(r: &mut R, buf: &mut [u8]) -> Result<bool, FrameError> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) if filled == 0 => return Ok(false),
            Ok(0) => return Err(FrameError::UnexpectedEof),
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(frame: Frame) {
        let bytes = frame.encode();
        assert_eq!(Frame::decode(&bytes).unwrap(), frame);
        let mut cursor = io::Cursor::new(bytes);
        assert_eq!(read_frame(&mut cursor).unwrap(), Some(frame));
        assert!(read_frame(&mut cursor).unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn all_frame_types_round_trip() {
        round_trip(Frame::Hello {
            client_id: "bench-client".into(),
        });
        round_trip(Frame::HelloAck {
            version: VERSION,
            held: true,
            shed_threshold: 8,
            quota: 32,
        });
        round_trip(Frame::Submit {
            request_id: u64::MAX,
            lane: Lane::Interactive,
            deadline_ms: 1500,
            spec: "rmat=6,4 seed=7".into(),
        });
        round_trip(Frame::Result {
            request_id: 3,
            label: "rmat-6-4".into(),
            worker: 1,
            cache_hit: true,
            total_ms: 12.5,
            gflops: 0.25,
            nnz_c: 12_345,
        });
        round_trip(Frame::Shed {
            request_id: 9,
            lane: Lane::Batch,
            depth: 8,
            threshold: 8,
        });
        round_trip(Frame::Reject {
            request_id: 4,
            code: RejectCode::QuotaExceeded,
            message: "quota 6 reached".into(),
        });
        round_trip(Frame::Release);
        round_trip(Frame::Shutdown);
        round_trip(Frame::DrainNotice {
            message: "draining".into(),
        });
        round_trip(Frame::Goodbye);
        round_trip(Frame::Error {
            message: "unexpected frame".into(),
        });
        round_trip(Frame::SubmitChain {
            request_id: 17,
            lane: Lane::Batch,
            deadline_ms: 30_000,
            spec: "chain=galerkin rmat=8,6 seed=1".into(),
        });
        round_trip(Frame::ChainResult {
            request_id: 17,
            label: "rmat-8-6:galerkin".into(),
            worker: 2,
            total_ms: 42.75,
            nnz_c: 9_876,
            steps: vec![
                ChainStepSummary {
                    label: "restrict".into(),
                    cache_hit: false,
                    fresh_structure: true,
                    total_ms: 10.5,
                    fill_in_permille: 1_500,
                    output_nnz: 4_321,
                },
                ChainStepSummary {
                    label: "restrict-refresh".into(),
                    cache_hit: true,
                    fresh_structure: false,
                    total_ms: 8.25,
                    fill_in_permille: 1_500,
                    output_nnz: 4_321,
                },
            ],
        });
        round_trip(Frame::ChainResult {
            request_id: 1,
            label: "empty".into(),
            worker: 0,
            total_ms: 0.0,
            nnz_c: 0,
            steps: vec![],
        });
    }

    #[test]
    fn chain_result_rejects_every_truncation() {
        let bytes = Frame::ChainResult {
            request_id: 5,
            label: "chain".into(),
            worker: 1,
            total_ms: 1.5,
            nnz_c: 10,
            steps: vec![ChainStepSummary {
                label: "s1".into(),
                cache_hit: true,
                fresh_structure: false,
                total_ms: 1.5,
                fill_in_permille: 1_000,
                output_nnz: 10,
            }],
        }
        .encode();
        for cut in 0..bytes.len() {
            assert!(
                matches!(
                    Frame::decode(&bytes[..cut]),
                    Err(ProtocolError::Truncated { .. })
                ),
                "cut {cut}"
            );
        }
        // A hostile step count with no step bytes is truncation, not OOM.
        let hostile = Frame::ChainResult {
            request_id: 5,
            label: "chain".into(),
            worker: 1,
            total_ms: 1.5,
            nnz_c: 10,
            steps: vec![],
        };
        let mut bytes = hostile.encode();
        let count_at = bytes.len() - 4;
        bytes[count_at..].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            Frame::decode(&bytes),
            Err(ProtocolError::Truncated { .. })
        ));
    }

    #[test]
    fn header_validation_is_typed() {
        let good = Frame::Goodbye.encode();
        let mut bad = good.clone();
        bad[0] = b'X';
        assert!(matches!(
            Frame::decode(&bad),
            Err(ProtocolError::BadMagic(_))
        ));
        let mut bad = good.clone();
        bad[4] = 9;
        assert_eq!(
            Frame::decode(&bad),
            Err(ProtocolError::UnsupportedVersion(9))
        );
        let mut bad = good.clone();
        bad[5] = 200;
        assert_eq!(
            Frame::decode(&bad),
            Err(ProtocolError::UnknownFrameType(200))
        );
        let mut bad = good.clone();
        bad[6] = 1;
        assert_eq!(Frame::decode(&bad), Err(ProtocolError::NonzeroReserved));
        let mut bad = good;
        bad[8..12].copy_from_slice(&(MAX_PAYLOAD as u32 + 1).to_le_bytes());
        assert!(matches!(
            Frame::decode(&bad),
            Err(ProtocolError::Oversized { .. })
        ));
    }

    #[test]
    fn truncation_and_trailing_bytes_are_typed() {
        let bytes = Frame::Hello {
            client_id: "abc".into(),
        }
        .encode();
        for cut in 0..bytes.len() {
            let err = Frame::decode(&bytes[..cut]).unwrap_err();
            assert!(
                matches!(err, ProtocolError::Truncated { .. }),
                "cut {cut}: {err}"
            );
        }
        let mut extra = bytes.clone();
        extra.push(0);
        assert!(matches!(
            Frame::decode(&extra),
            Err(ProtocolError::TrailingBytes { .. })
        ));
        // Mid-frame EOF on a stream is UnexpectedEof, not a clean None.
        let mut cursor = io::Cursor::new(&bytes[..bytes.len() - 1]);
        assert!(matches!(
            read_frame(&mut cursor),
            Err(FrameError::UnexpectedEof)
        ));
    }

    #[test]
    fn bad_utf8_and_bad_enums_are_typed() {
        let mut bytes = Frame::Hello {
            client_id: "ab".into(),
        }
        .encode();
        let n = bytes.len();
        bytes[n - 1] = 0xff; // invalid UTF-8 continuation
        assert_eq!(Frame::decode(&bytes), Err(ProtocolError::BadUtf8));

        let mut bytes = Frame::Submit {
            request_id: 1,
            lane: Lane::Batch,
            deadline_ms: 0,
            spec: String::new(),
        }
        .encode();
        bytes[HEADER_LEN + 8] = 7; // lane byte
        assert_eq!(
            Frame::decode(&bytes),
            Err(ProtocolError::BadEnum {
                what: "lane",
                value: 7
            })
        );
    }
}
