//! # br-net — TCP serving front end for the spGEMM service
//!
//! Puts a real wire protocol in front of the `br-service` worker pool: a
//! zero-dependency std-TCP listener (thread per connection) speaking a
//! length-prefixed binary framing ([`frame`]), with
//!
//! * **two priority lanes** — interactive work always drains before batch
//!   work ([`lane::LaneQueue`]);
//! * **admission control** — per-client in-flight quotas keyed by the id
//!   in the `Hello` frame, and load shedding with an explicit `Shed`
//!   response once combined queue depth reaches a configurable threshold
//!   (the lane queue's capacity, so `max_depth ≤ threshold` holds
//!   structurally);
//! * **per-request deadlines** — a request whose deadline passes while
//!   queued is answered with a typed `Reject` instead of executing;
//! * **graceful drain** — a `Shutdown` frame stops the listener, notifies
//!   every connection with a `DrainNotice`, finishes queued and in-flight
//!   jobs, flushes every response, and lets [`server::NetServer::run`]
//!   return.
//!
//! Every `Submit` receives **exactly one** response: `Result`, `Shed`, or
//! `Reject` (quota, bad spec, draining, deadline, failed).
//!
//! ## Deterministic admission accounting
//!
//! Shedding normally depends on how fast workers drain — a wall-clock
//! race. For reproducible accounting the server supports a **held worker
//! gate** ([`server::ServerConfig::hold`]): admission decisions happen
//! while nothing leaves the queue, making the shed/quota/saturation
//! counters a pure function of the offered load; a `Release` frame then
//! opens the gate. `scripts/bench_gate.sh` floods a held server at
//! `BR_THREADS=1` and `8` and byte-compares the metric exports.
//!
//! Everything is std-only (no tokio — the workspace is offline); the
//! listener uses one reader + one writer thread per connection, which is
//! plenty for the pool sizes a simulated-GPU backend can drive.

#![warn(missing_docs)]

pub mod client;
pub mod frame;
pub mod lane;
pub mod server;

/// Convenient glob-import surface for the CLI and tests.
pub mod prelude {
    pub use crate::client::{ClientError, NetClient, ResponseSummary, ServerInfo};
    pub use crate::frame::{Frame, FrameError, Lane, ProtocolError, RejectCode};
    pub use crate::lane::{LanePushError, LaneQueue};
    pub use crate::server::{NetServer, ServeReport, ServerConfig};
}

pub use client::{ClientError, NetClient, ResponseSummary};
pub use frame::{Frame, Lane, ProtocolError, RejectCode};
pub use lane::{LanePushError, LaneQueue};
pub use server::{NetServer, ServeReport, ServerConfig};
