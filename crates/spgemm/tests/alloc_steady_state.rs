//! Steady-state merge loop performs zero per-row heap allocations.
//!
//! A counting `#[global_allocator]` wraps the system allocator; after one
//! warm-up pass (scratch and output buffers grow to capacity), repeated
//! adaptive merges of the same problem must not allocate at all. This file
//! holds exactly one `#[test]` so no parallel test can touch the global
//! counter mid-measurement.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use br_datasets::rmat::{rmat, RmatConfig};
use br_spgemm::accum::{merge_rows_into, BinThresholds, MergeScratch, RowBins};
use br_spgemm::numeric::spgemm_dense_spa;

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::SeqCst);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::SeqCst);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

#[test]
fn steady_state_merge_allocates_nothing() {
    // A power-law input large enough to populate all four bins: the
    // default tiny/heavy split with the k-way tournament bin opened just
    // above the heavy threshold, so the grow-only tree scratch is
    // exercised alongside the small buffer, hash table, and dense SPA.
    let a = rmat(RmatConfig::graph500(10, 8, 7)).to_csr();
    let thresholds = BinThresholds {
        kway_min: 4096,
        ..BinThresholds::default()
    };
    let bins = RowBins::of(&a, &a, thresholds).unwrap();
    assert!(
        bins.rows.iter().all(|&r| r > 0),
        "input must exercise every bin: {:?}",
        bins.rows
    );

    let mut scratch = MergeScratch::<f64>::new();
    let (mut ptr, mut idx, mut val) = (Vec::new(), Vec::new(), Vec::new());

    // Warm-up: scratch tables and output buffers grow to their final
    // capacity here (allocations allowed).
    merge_rows_into(
        &a,
        &a,
        0..a.nrows(),
        &bins,
        &mut scratch,
        &mut ptr,
        &mut idx,
        &mut val,
    );
    let warm = (ptr.clone(), idx.clone(), val.clone());

    // Steady state: same problem through the warm scratch — zero heap
    // allocations over entire repeated merges, hence zero per row.
    let before = ALLOCATIONS.load(Ordering::SeqCst);
    for _ in 0..3 {
        merge_rows_into(
            &a,
            &a,
            0..a.nrows(),
            &bins,
            &mut scratch,
            &mut ptr,
            &mut idx,
            &mut val,
        );
    }
    let allocated = ALLOCATIONS.load(Ordering::SeqCst) - before;
    assert_eq!(
        allocated, 0,
        "steady-state merge must not allocate (got {allocated} allocations over 3 full merges)"
    );

    // And the allocation-free passes still produce the exact result.
    assert_eq!((ptr, idx, val), warm);
    let oracle = spgemm_dense_spa(&a, &a).unwrap();
    assert_eq!(warm.0, oracle.ptr());
    assert_eq!(warm.1, oracle.idx());
    let bits: Vec<u64> = warm.2.iter().map(|v| v.to_bits()).collect();
    let oracle_bits: Vec<u64> = oracle.val().iter().map(|v| v.to_bits()).collect();
    assert_eq!(bits, oracle_bits);
}
