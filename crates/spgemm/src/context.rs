//! Per-problem symbolic context shared by every method.
//!
//! The paper's Block Reorganizer "first precalculates the workload sizes of
//! all blocks" (Section IV-B); the baselines need the same quantities to
//! size their launches. Computing them once per `(A, B)` pair and sharing
//! across the seven methods keeps the benchmark harness honest (identical
//! inputs) and fast.

use std::sync::Arc;

use br_sparse::error::SparseError;
use br_sparse::ops::symbolic::{block_products, row_intermediate_nnz, symbolic_nnz};
use br_sparse::{CscMatrix, CsrMatrix, Result, Scalar};
use serde::{Deserialize, Serialize};

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// One FNV-1a-style mixing step over a 64-bit word.
fn fnv_mix(h: u64, v: u64) -> u64 {
    (h ^ v).wrapping_mul(FNV_PRIME)
}

/// A compact fingerprint of one matrix's *sparsity structure*: dimensions,
/// nnz, and a hash of the row-pointer and column-index arrays.
///
/// Two matrices with equal signatures have identical structure (up to hash
/// collision), so any structure-derived plan — workload classification,
/// B-Splitting/B-Gathering index rewrites, B-Limiting row flags — built for
/// one is valid for the other. Values are deliberately excluded: plans do
/// not depend on them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MatrixSignature {
    /// Number of rows.
    pub nrows: u64,
    /// Number of columns.
    pub ncols: u64,
    /// Number of stored entries.
    pub nnz: u64,
    /// FNV-1a hash over the row-pointer and column-index arrays.
    pub structure_hash: u64,
}

impl MatrixSignature {
    /// Computes the signature of a CSR matrix.
    pub fn of<T: Scalar>(m: &CsrMatrix<T>) -> Self {
        let mut h = FNV_OFFSET;
        for &p in m.ptr() {
            h = fnv_mix(h, p as u64);
        }
        for &j in m.idx() {
            h = fnv_mix(h, j as u64);
        }
        MatrixSignature {
            nrows: m.nrows() as u64,
            ncols: m.ncols() as u64,
            nnz: m.nnz() as u64,
            structure_hash: h,
        }
    }
}

/// Signature of one multiplication `C = A · B`: the operand signatures.
///
/// This is the key under which reorganization plans are cached and reused
/// (`br-service`): repeated multiplications of structurally identical
/// operands map to the same `ProblemSignature`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ProblemSignature {
    /// Signature of the left operand.
    pub a: MatrixSignature,
    /// Signature of the right operand.
    pub b: MatrixSignature,
}

impl ProblemSignature {
    /// Computes the signature of an operand pair.
    pub fn of<T: Scalar>(a: &CsrMatrix<T>, b: &CsrMatrix<T>) -> Self {
        ProblemSignature {
            a: MatrixSignature::of(a),
            b: MatrixSignature::of(b),
        }
    }
}

/// Symbolic and structural facts about one multiplication `C = A · B`.
///
/// Operands are held behind [`Arc`], so cloning a context — or building one
/// via [`ProblemContext::from_shared`] from operands the caller already
/// shares (as `br-service` does per job) — never deep-copies a matrix.
/// Call sites keep reading `ctx.a` / `ctx.b` / `ctx.a_csc` as before via
/// `Deref`.
#[derive(Debug, Clone)]
pub struct ProblemContext<T> {
    /// Left operand in CSR (rows drive the row-product scheme).
    pub a: Arc<CsrMatrix<T>>,
    /// Left operand in CSC (columns drive the outer-product scheme).
    pub a_csc: Arc<CscMatrix<T>>,
    /// Right operand in CSR.
    pub b: Arc<CsrMatrix<T>>,
    /// Outer-product block workloads: `nnz(a₌ᵢ)·nnz(bᵢ₌)` per inner index.
    pub block_products: Vec<u64>,
    /// Intermediate products landing in each output row (duplicates in).
    pub row_products: Vec<u64>,
    /// Unique output entries per row (`nnz(C)` rowwise).
    pub row_unique: Vec<usize>,
    /// `nnz(Ĉ)` — total intermediate products.
    pub intermediate_total: u64,
    /// `nnz(C)`.
    pub output_total: usize,
    /// FLOP count under the `2·nnz(Ĉ)` convention.
    pub flops: u64,
}

impl<T: Scalar> ProblemContext<T> {
    /// Builds the context from borrowed operands (cloned once into shared
    /// ownership); fails on shape mismatch.
    pub fn new(a: &CsrMatrix<T>, b: &CsrMatrix<T>) -> Result<Self> {
        Self::from_shared(Arc::new(a.clone()), Arc::new(b.clone()))
    }

    /// Builds the context from already-shared operands — no matrix clone at
    /// all; only the CSC view of `A` is materialised. This is the path
    /// `br-service` uses per job: the job's `Arc`s are reference-bumped
    /// into the context.
    pub fn from_shared(a: Arc<CsrMatrix<T>>, b: Arc<CsrMatrix<T>>) -> Result<Self> {
        if a.ncols() != b.nrows() {
            return Err(SparseError::ShapeMismatch {
                op: "spgemm",
                lhs: (a.nrows(), a.ncols()),
                rhs: (b.nrows(), b.ncols()),
            });
        }
        let blocks = block_products(&a, &b)?;
        let rows = row_intermediate_nnz(&a, &b)?;
        let unique = symbolic_nnz(&a, &b)?;
        let intermediate_total: u64 = blocks.iter().sum();
        let output_total: usize = unique.iter().sum();
        let a_csc = Arc::new(a.to_csc());
        Ok(ProblemContext {
            a,
            a_csc,
            b,
            block_products: blocks,
            row_products: rows,
            row_unique: unique,
            intermediate_total,
            output_total,
            flops: 2 * intermediate_total,
            // (fields above)
        })
    }

    /// Number of output rows.
    pub fn nrows(&self) -> usize {
        self.a.nrows()
    }

    /// Number of output columns.
    pub fn ncols(&self) -> usize {
        self.b.ncols()
    }

    /// Inner dimension (outer-product pair count before reorganization).
    pub fn inner_dim(&self) -> usize {
        self.a.ncols()
    }

    /// Effective threads of outer-product pair `i` — `nnz(bᵢ₌)`, the number
    /// of row elements each of which is handled by one thread.
    pub fn pair_effective_threads(&self, i: usize) -> usize {
        self.b.row_nnz(i)
    }

    /// Per-thread work of outer-product pair `i` — `nnz(a₌ᵢ)`.
    pub fn pair_thread_work(&self, i: usize) -> usize {
        self.a_csc.col_nnz(i)
    }

    /// Exclusive prefix sum of `block_products` — block-major `Ĉ` offsets
    /// (in elements) for the outer-product scheme.
    pub fn chat_block_offsets(&self) -> Vec<u64> {
        let mut off = Vec::with_capacity(self.block_products.len() + 1);
        let mut acc = 0u64;
        off.push(0);
        for &p in &self.block_products {
            acc += p;
            off.push(acc);
        }
        off
    }

    /// Structural signature of this problem — the plan-cache key used by
    /// `br-service` (computed from the operands' pointer/index arrays).
    pub fn signature(&self) -> ProblemSignature {
        ProblemSignature::of(&self.a, &self.b)
    }

    /// Exclusive prefix sum of `row_products` — row-major `Ĉ` offsets.
    pub fn chat_row_offsets(&self) -> Vec<u64> {
        let mut off = Vec::with_capacity(self.row_products.len() + 1);
        let mut acc = 0u64;
        off.push(0);
        for &p in &self.row_products {
            acc += p;
            off.push(acc);
        }
        off
    }

    /// The context for the row-permuted problem `P·A × B`, where row `i`
    /// of the permuted `A` is row `forward[i]` of the original (the
    /// gather convention of [`CsrMatrix::permute_rows`]), without
    /// re-running any symbolic analysis:
    ///
    /// * `block_products[i] = nnz(a₌ᵢ)·nnz(bᵢ₌)` is indexed by the inner
    ///   dimension and column nnz never changes under a row permutation,
    ///   so the per-pair workloads — and every total derived from them —
    ///   carry over verbatim;
    /// * `row_products` / `row_unique` are per-output-row and permute
    ///   elementwise;
    /// * `B` is shared untouched (an `Arc` bump, zero-copy).
    pub fn permute_rows(&self, forward: &[u32]) -> ProblemContext<T> {
        let a = Arc::new(self.a.permute_rows(forward));
        let a_csc = Arc::new(self.a_csc.permute_rows(forward));
        let gather = |v: &[u64]| -> Vec<u64> { forward.iter().map(|&r| v[r as usize]).collect() };
        ProblemContext {
            a,
            a_csc,
            b: Arc::clone(&self.b),
            block_products: self.block_products.clone(),
            row_products: gather(&self.row_products),
            row_unique: forward
                .iter()
                .map(|&r| self.row_unique[r as usize])
                .collect(),
            intermediate_total: self.intermediate_total,
            output_total: self.output_total,
            flops: self.flops,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> ProblemContext<f64> {
        // [[1, 0, 2], [0, 3, 0], [4, 5, 0]] squared.
        let a = CsrMatrix::try_new(
            3,
            3,
            vec![0, 2, 3, 5],
            vec![0, 2, 1, 0, 1],
            vec![1.0, 2.0, 3.0, 4.0, 5.0],
        )
        .unwrap();
        ProblemContext::new(&a, &a).unwrap()
    }

    #[test]
    fn totals_are_consistent() {
        let c = ctx();
        assert_eq!(c.intermediate_total, 8);
        assert_eq!(c.flops, 16);
        assert_eq!(c.row_products.iter().sum::<u64>(), c.intermediate_total);
        assert_eq!(c.row_unique.iter().sum::<usize>(), c.output_total);
        assert!(c.output_total <= c.intermediate_total as usize);
    }

    #[test]
    fn pair_views_match_csc_and_csr() {
        let c = ctx();
        for i in 0..c.inner_dim() {
            assert_eq!(
                c.block_products[i],
                (c.pair_thread_work(i) * c.pair_effective_threads(i)) as u64
            );
        }
    }

    #[test]
    fn offsets_are_prefix_sums() {
        let c = ctx();
        let off = c.chat_block_offsets();
        assert_eq!(off[0], 0);
        assert_eq!(*off.last().unwrap(), c.intermediate_total);
        assert!(off.windows(2).all(|w| w[0] <= w[1]));
        let roff = c.chat_row_offsets();
        assert_eq!(*roff.last().unwrap(), c.intermediate_total);
    }

    #[test]
    fn permute_rows_matches_a_fresh_context_over_the_permuted_operand() {
        let c = ctx();
        let forward = [2u32, 0, 1];
        let permuted = c.permute_rows(&forward);
        let fresh = ProblemContext::new(&c.a.permute_rows(&forward), &c.b).unwrap();
        assert_eq!(*permuted.a, *fresh.a);
        assert_eq!(*permuted.a_csc, *fresh.a_csc);
        assert_eq!(permuted.block_products, fresh.block_products);
        assert_eq!(permuted.row_products, fresh.row_products);
        assert_eq!(permuted.row_unique, fresh.row_unique);
        assert_eq!(permuted.intermediate_total, c.intermediate_total);
        assert_eq!(permuted.output_total, c.output_total);
        assert_eq!(permuted.flops, c.flops);
        // B is shared, not copied.
        assert!(Arc::ptr_eq(&permuted.b, &c.b));
        // Row quantities moved with their rows.
        for (i, &r) in forward.iter().enumerate() {
            assert_eq!(permuted.row_products[i], c.row_products[r as usize]);
            assert_eq!(permuted.row_unique[i], c.row_unique[r as usize]);
        }
    }

    #[test]
    fn shape_mismatch_rejected() {
        let a = CsrMatrix::<f64>::zeros(2, 3);
        let b = CsrMatrix::<f64>::zeros(2, 3);
        assert!(ProblemContext::new(&a, &b).is_err());
        assert!(ProblemContext::from_shared(Arc::new(a), Arc::new(b)).is_err());
    }

    #[test]
    fn from_shared_reuses_operands_without_cloning() {
        let c = ctx();
        let a = Arc::new((*c.a).clone());
        let b = Arc::new((*c.b).clone());
        let shared = ProblemContext::from_shared(a.clone(), b.clone()).unwrap();
        // Same allocation, not a copy — and context clones share it too.
        assert!(Arc::ptr_eq(&shared.a, &a));
        assert!(Arc::ptr_eq(&shared.b, &b));
        let cloned = shared.clone();
        assert!(Arc::ptr_eq(&cloned.a, &shared.a));
        assert!(Arc::ptr_eq(&cloned.a_csc, &shared.a_csc));
        assert_eq!(cloned.signature(), c.signature());
        assert_eq!(shared.row_products, c.row_products);
    }

    #[test]
    fn signature_ignores_values_but_sees_structure() {
        let c = ctx();
        let sig = c.signature();
        // Same structure, different values → same signature.
        let scaled = c.a.map_values(|v| v * 3.0);
        assert_eq!(MatrixSignature::of(&scaled), sig.a);
        // Different structure (one entry pruned) → different signature.
        let mut val = c.a.val().to_vec();
        val[0] = 0.0;
        let pruned = CsrMatrix::try_new(
            c.a.nrows(),
            c.a.ncols(),
            c.a.ptr().to_vec(),
            c.a.idx().to_vec(),
            val,
        )
        .unwrap()
        .prune(1e-12);
        assert_ne!(MatrixSignature::of(&pruned), sig.a);
    }

    #[test]
    fn signature_is_deterministic_and_shape_sensitive() {
        let c = ctx();
        assert_eq!(c.signature(), c.signature());
        let z3 = CsrMatrix::<f64>::zeros(3, 3);
        let z4 = CsrMatrix::<f64>::zeros(4, 4);
        assert_ne!(MatrixSignature::of(&z3), MatrixSignature::of(&z4));
        assert_eq!(MatrixSignature::of(&z3).nnz, 0);
    }
}
