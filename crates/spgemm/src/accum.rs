//! Adaptive row-binned numeric merge engine.
//!
//! The paper's core move is *classify, then specialize*: measure each
//! block's workload and give overloaded and underloaded blocks different
//! treatment. This module applies the same idea to the **host** numeric
//! path (the real arithmetic behind every simulated run): every output row
//! is binned by its intermediate-product upper bound — the `row_products`
//! quantity the symbolic precalculation already computes — and merged by a
//! per-bin kernel, bhSPARSE-style:
//!
//! * **tiny** rows (few products) → an insertion-sorted small buffer; no
//!   hashing, no dense sweep, output already sorted.
//! * **medium** rows → an open-addressing hash table sized to the row's
//!   upper bound; gather + sort at the end.
//! * **heavy** rows → a generation-stamped dense accumulator (SPA): clears
//!   cost O(row nnz), not O(ncols), because a stamp comparison replaces
//!   zeroing the whole array.
//! * **kway** rows (the heaviest, past `kway_min`) → a SpArch-style k-way
//!   run merge: one sorted run per A-row nonzero (the scaled B-row),
//!   Huffman-ordered by run length and merged through a tournament (loser)
//!   tree — no dense sweep, no final sort, output streams out in column
//!   order.
//!
//! **Bin choice cannot change the numeric result.** All four mergers
//! accumulate the products of one output column in *generation order* —
//! `k` ascending within the A-row, `j` ascending within each B-row — which
//! is exactly the order [`spgemm_gustavson`](br_sparse::ops::spgemm_gustavson)
//! adds them in, and all four emit the row sorted by column (the k-way
//! tree breaks equal-column ties by run index, so same-column products
//! still pop in `k` order). Floating-point
//! addition is deterministic for a fixed order, so the output is bit-for-bit
//! the dense-SPA reference at every thread count and threshold setting; the
//! thresholds are purely a performance knob.
//!
//! All per-row state lives in a reusable [`MergeScratch`]; in steady state
//! (scratch warm, output buffers at capacity) the merge loop performs zero
//! heap allocations. `br-service` workers keep scratches in a
//! [`ScratchPool`] across jobs, and [`RowBins`] — a pure function of the
//! operands' structure — is cached alongside the `ReorgPlan` under the same
//! `ProblemSignature` key.

use std::fmt;
use std::ops::Range;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

use br_obs::Counter;
use br_sparse::ops::row_intermediate_nnz_threaded;
use br_sparse::{par, CsrMatrix, Result, Scalar, SparseError};
use serde::{Deserialize, Serialize};

/// Merge-phase instrument handles, registered as one unit so every cell
/// (including the kway ones) exists as soon as any of them is touched —
/// exports stay byte-deterministic even when a bin merged nothing.
struct MergeInstruments {
    /// Per-bin row counters, one per [`RowBin`] (indexed by `bin as usize`).
    rows: [Counter; 4],
    /// Total sorted runs fed through the k-way tournament tree — a pure
    /// function of the merged work (bins + operand structure).
    kway_runs: Counter,
}

/// Handles are cached so the merge hot path never touches the registry
/// lock; counts are batched per [`merge_rows_into`] call, and additions
/// commute, so the totals are a pure function of the merged work at any
/// thread count.
fn merge_instruments() -> &'static MergeInstruments {
    static INSTRUMENTS: OnceLock<MergeInstruments> = OnceLock::new();
    INSTRUMENTS.get_or_init(|| {
        let reg = br_obs::global();
        let help = "Output rows merged, by bin kernel.";
        MergeInstruments {
            rows: [
                reg.counter("br_spgemm_rows_merged_total", help, &[("bin", "tiny")]),
                reg.counter("br_spgemm_rows_merged_total", help, &[("bin", "medium")]),
                reg.counter("br_spgemm_rows_merged_total", help, &[("bin", "heavy")]),
                reg.counter("br_spgemm_rows_merged_total", help, &[("bin", "kway")]),
            ],
            kway_runs: reg.counter(
                "br_spgemm_kway_runs_total",
                "Sorted partial-row runs merged through the k-way tournament tree.",
                &[],
            ),
        }
    })
}

/// Scratch footprint high-water gauge. Which scratch handles which rows
/// (and therefore how far each one grows) depends on pool assignment and
/// the thread partition, so this is timing-flagged.
fn scratch_footprint_gauge() -> &'static br_obs::Gauge {
    static GAUGE: OnceLock<br_obs::Gauge> = OnceLock::new();
    GAUGE.get_or_init(|| {
        br_obs::global().timing_gauge(
            "br_spgemm_scratch_footprint_bytes",
            "High-water merge-scratch footprint (scheduling/pool-dependent).",
            &[],
        )
    })
}

/// High-water footprint of the k-way tournament buffers alone. Like the
/// total-footprint gauge, growth depends on the thread partition and pool
/// assignment, so it is timing-flagged.
fn kway_scratch_gauge() -> &'static br_obs::Gauge {
    static GAUGE: OnceLock<br_obs::Gauge> = OnceLock::new();
    GAUGE.get_or_init(|| {
        br_obs::global().timing_gauge(
            "br_spgemm_kway_scratch_bytes",
            "High-water k-way tournament-tree scratch footprint (scheduling/pool-dependent).",
            &[],
        )
    })
}

/// Pre-registers every merge-phase instrument cell (per-bin row counters,
/// the kway run counter, and both scratch high-water gauges) without
/// recording anything. Metric exports taken before any merge — or from a
/// run whose kway bin stayed empty — then carry the same cell set as a
/// busy run, keeping the rendered output byte-deterministic.
pub fn register_merge_instruments() {
    let _ = merge_instruments();
    let _ = scratch_footprint_gauge();
    let _ = kway_scratch_gauge();
}

/// Row-bin boundaries on the intermediate-product upper bound.
///
/// A row with `products <= tiny_max` is **tiny**; otherwise, a row with
/// `products >= kway_min` is **kway**; otherwise, a row with
/// `products >= heavy_min` is **heavy**; everything in between is
/// **medium**. `kway_min = u64::MAX` (the default) disables the kway bin
/// entirely. Degenerate settings are legal and simply collapse bins
/// (e.g. `tiny_max = u64::MAX` sends every row through the small buffer) —
/// the numeric result is identical either way. [`BinThresholds::parse`]
/// is stricter: the CLI rejects inverted or overlapping spellings with a
/// typed error instead of silently collapsing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BinThresholds {
    /// Largest upper bound still handled by the tiny-bin small buffer.
    pub tiny_max: u64,
    /// Smallest upper bound handled by the heavy-bin dense accumulator.
    pub heavy_min: u64,
    /// Smallest upper bound handled by the k-way tournament merge —
    /// the kway/dense-SPA crossover. `u64::MAX` disables the bin.
    pub kway_min: u64,
}

impl Default for BinThresholds {
    /// Tiny rows fit a cache line of products; heavy rows are those whose
    /// hash table would rival the dense accumulator anyway. The k-way
    /// tournament is off by default — the estimator (or a `--bins`
    /// override) opts in per problem.
    fn default() -> Self {
        BinThresholds {
            tiny_max: 16,
            heavy_min: 2048,
            kway_min: u64::MAX,
        }
    }
}

/// Typed rejection from [`BinThresholds::parse`]: the CLI spelling was
/// malformed, or the thresholds it named were inverted/overlapping.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ThresholdParseError {
    /// Not `<tiny>,<heavy>` or `<tiny>,<heavy>,<kway>` with unsigned
    /// integer fields.
    Malformed(String),
    /// `heavy_min <= tiny_max`: the tiny band would swallow the low end
    /// of the dense band, which almost certainly is not what was meant.
    Inverted {
        /// The tiny-band upper bound as spelled.
        tiny_max: u64,
        /// The dense-band lower bound as spelled.
        heavy_min: u64,
    },
    /// `kway_min < heavy_min`: the k-way band must sit at or above the
    /// dense-SPA band it splits off from.
    KwayBelowHeavy {
        /// The dense-band lower bound as spelled.
        heavy_min: u64,
        /// The k-way-band lower bound as spelled.
        kway_min: u64,
    },
}

impl fmt::Display for ThresholdParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ThresholdParseError::Malformed(text) => write!(
                f,
                "malformed bin thresholds {text:?}; expected <tiny_max>,<heavy_min>[,<kway_min>] \
                 (unsigned integers)"
            ),
            ThresholdParseError::Inverted {
                tiny_max,
                heavy_min,
            } => write!(
                f,
                "inverted bin thresholds: heavy_min ({heavy_min}) must exceed tiny_max ({tiny_max})"
            ),
            ThresholdParseError::KwayBelowHeavy {
                heavy_min,
                kway_min,
            } => write!(
                f,
                "overlapping bin thresholds: kway_min ({kway_min}) must be at least heavy_min \
                 ({heavy_min})"
            ),
        }
    }
}

impl std::error::Error for ThresholdParseError {}

impl BinThresholds {
    /// Parses the CLI spelling `<tiny_max>,<heavy_min>` or
    /// `<tiny_max>,<heavy_min>,<kway_min>` (unsigned integers). The
    /// two-field form leaves the k-way bin disabled. Inverted or
    /// overlapping thresholds are rejected with a typed error rather
    /// than silently collapsing bins.
    pub fn parse(text: &str) -> std::result::Result<BinThresholds, ThresholdParseError> {
        let malformed = || ThresholdParseError::Malformed(text.to_string());
        let mut fields = text.split(',');
        let next = |fields: &mut std::str::Split<'_, char>| {
            fields
                .next()
                .and_then(|f| f.trim().parse::<u64>().ok())
                .ok_or_else(&malformed)
        };
        let tiny_max = next(&mut fields)?;
        let heavy_min = next(&mut fields)?;
        let kway_min = match fields.next() {
            Some(field) => field.trim().parse::<u64>().map_err(|_| malformed())?,
            None => u64::MAX,
        };
        if fields.next().is_some() {
            return Err(malformed());
        }
        if heavy_min <= tiny_max {
            return Err(ThresholdParseError::Inverted {
                tiny_max,
                heavy_min,
            });
        }
        if kway_min < heavy_min {
            return Err(ThresholdParseError::KwayBelowHeavy {
                heavy_min,
                kway_min,
            });
        }
        Ok(BinThresholds {
            tiny_max,
            heavy_min,
            kway_min,
        })
    }

    /// Measurement-backed thresholds for a problem with `ncols` output
    /// columns. The hash bin only pays off once the dense accumulator
    /// (stamps + values, ~9 bytes per column) stops being cache-resident:
    /// below that, probing costs more per product than a direct dense
    /// write, and routing medium rows through the hash table is a strict
    /// loss (measured ~20-40% on RMAT squarings up to 2^17 columns, ~6%
    /// win at 2^20). Small problems therefore get an empty medium band.
    /// The k-way bin stays off here; `select_thresholds` places the
    /// kway/dense-SPA crossover per problem from the workload estimate.
    pub fn recommended(ncols: usize) -> BinThresholds {
        const HASH_PAYS_OFF_COLS: usize = 1 << 19;
        if ncols < HASH_PAYS_OFF_COLS {
            BinThresholds {
                tiny_max: 16,
                heavy_min: 17,
                kway_min: u64::MAX,
            }
        } else {
            BinThresholds::default()
        }
    }

    /// The bin a row with the given intermediate-product upper bound
    /// lands in. Tiny wins over every other bin, and kway wins over
    /// heavy, when the thresholds overlap.
    pub fn bin_of(&self, products: u64) -> RowBin {
        if products <= self.tiny_max {
            RowBin::Tiny
        } else if products >= self.kway_min {
            RowBin::Kway
        } else if products >= self.heavy_min {
            RowBin::Heavy
        } else {
            RowBin::Medium
        }
    }

    /// Whether any row can land in the k-way bin under these thresholds.
    pub fn kway_enabled(&self) -> bool {
        self.kway_min < u64::MAX
    }
}

/// Process-wide threshold override (`--bins` on the CLI); encoded as
/// `(tiny_max, heavy_min, set)` behind a mutex — reads are off the hot
/// path (once per multiplication).
static GLOBAL_THRESHOLDS: Mutex<Option<BinThresholds>> = Mutex::new(None);

/// Installs (or with `None` clears) the process-wide threshold override.
pub fn set_global_thresholds(thresholds: Option<BinThresholds>) {
    *GLOBAL_THRESHOLDS.lock().unwrap_or_else(|p| p.into_inner()) = thresholds;
}

/// The raw [`set_global_thresholds`] override, if any — for callers (like
/// the estimation-based planner) that pick their own thresholds when the
/// user has not forced a setting.
pub fn global_thresholds() -> Option<BinThresholds> {
    *GLOBAL_THRESHOLDS.lock().unwrap_or_else(|p| p.into_inner())
}

/// The thresholds in effect: the [`set_global_thresholds`] override when
/// present, else [`BinThresholds::default`].
pub fn effective_thresholds() -> BinThresholds {
    GLOBAL_THRESHOLDS
        .lock()
        .unwrap_or_else(|p| p.into_inner())
        .unwrap_or_default()
}

/// The thresholds in effect for a problem with `ncols` output columns:
/// the [`set_global_thresholds`] override when present, else
/// [`BinThresholds::recommended`] for that width. Classification stays a
/// pure function of operand structure — `ncols` *is* structure.
pub fn effective_thresholds_for(ncols: usize) -> BinThresholds {
    GLOBAL_THRESHOLDS
        .lock()
        .unwrap_or_else(|p| p.into_inner())
        .unwrap_or_else(|| BinThresholds::recommended(ncols))
}

/// Which merge kernel handles a row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RowBin {
    /// Insertion-sorted small buffer.
    Tiny,
    /// Open-addressing hash table.
    Medium,
    /// Generation-stamped dense accumulator.
    Heavy,
    /// K-way tournament merge over sorted partial-row runs.
    Kway,
}

/// Number of row bins ([`RowBin`] variants).
pub const NUM_BINS: usize = 4;

/// Counts every [`RowBins::classify`] run in this process — the
/// re-binning tripwire: a plan-cache hit must serve the stored bins
/// instead of classifying again.
static CLASSIFY_RUNS: AtomicU64 = AtomicU64::new(0);

/// Number of [`RowBins::classify`] runs so far in this process.
pub fn classification_runs() -> u64 {
    CLASSIFY_RUNS.load(Ordering::SeqCst)
}

/// The row-binning artifact: per-row intermediate-product upper bounds
/// plus the thresholds they were binned under.
///
/// A pure function of the operands' *structure* (never their values), so
/// it is cacheable under the same `ProblemSignature` key as a `ReorgPlan`
/// — `br-service` stores it inside the plan and reuses it on every cache
/// hit. The stored `row_products` double as the weights for the balanced
/// row partition, so a planned execution skips the weights scan too.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RowBins {
    /// Thresholds the summary counts below were computed under.
    pub thresholds: BinThresholds,
    /// Per-row intermediate-product upper bounds (duplicates included).
    pub row_products: Vec<u64>,
    /// Rows per bin: `[tiny, medium, heavy, kway]`.
    pub rows: [u64; NUM_BINS],
    /// Intermediate products per bin: `[tiny, medium, heavy, kway]`.
    pub products: [u64; NUM_BINS],
}

impl RowBins {
    /// Bins each row by its intermediate-product upper bound.
    pub fn classify(row_products: &[u64], thresholds: BinThresholds) -> RowBins {
        CLASSIFY_RUNS.fetch_add(1, Ordering::SeqCst);
        let mut rows = [0u64; NUM_BINS];
        let mut products = [0u64; NUM_BINS];
        for &p in row_products {
            let bin = thresholds.bin_of(p) as usize;
            rows[bin] += 1;
            products[bin] += p;
        }
        RowBins {
            thresholds,
            row_products: row_products.to_vec(),
            rows,
            products,
        }
    }

    /// Classifies the rows of `C = A · B` from the operands' structure.
    pub fn of<T: Scalar>(
        a: &CsrMatrix<T>,
        b: &CsrMatrix<T>,
        thresholds: BinThresholds,
    ) -> Result<RowBins> {
        let _span = br_obs::global().span("spgemm_classify");
        let weights = row_intermediate_nnz_threaded(a, b, par::effective_threads(None))?;
        Ok(Self::classify(&weights, thresholds))
    }

    /// Number of classified rows.
    pub fn nrows(&self) -> usize {
        self.row_products.len()
    }

    /// The bin of row `r`.
    pub fn bin(&self, r: usize) -> RowBin {
        self.thresholds.bin_of(self.row_products[r])
    }

    /// Rows that landed in the k-way bin.
    pub fn kway_rows(&self) -> u64 {
        self.rows[RowBin::Kway as usize]
    }
}

/// Reusable per-thread merge state for all three bin kernels.
///
/// Grow-only: buffers are sized to the largest row seen and kept across
/// rows (and, pooled, across jobs), so a warm scratch performs no heap
/// allocation per row. Clearing is O(touched entries): the dense side
/// compares a per-column stamp against the current generation instead of
/// zeroing `ncols` slots, and the hash side resets exactly the slots its
/// `used` list recorded.
#[derive(Debug)]
pub struct MergeScratch<T> {
    // Dense SPA (heavy rows): stamps[j] == generation ⇔ vals[j] is live.
    // One-byte stamps keep the stamp array 4x denser in cache than a
    // u32 generation would; the cheap wrap refill every 255 rows is the
    // price, amortized to O(ncols/255) per row.
    stamps: Vec<u8>,
    dense_vals: Vec<T>,
    generation: u8,
    touched: Vec<u32>,
    // Open-addressing table (medium rows): keys u32::MAX = empty.
    hash_keys: Vec<u32>,
    hash_vals: Vec<T>,
    hash_used: Vec<usize>,
    // Gather buffer shared by the hash path, and the tiny-bin
    // insertion-sorted buffer.
    row_buf: Vec<(u32, T)>,
    // K-way tournament (kway rows): one leaf per non-empty run. `key`
    // packs (column << 32 | run sequence) so the tree pops strictly in
    // (column, generation-order) order; u64::MAX marks an exhausted
    // leaf. `tree[1..m]` hold the losers of the implicit internal
    // nodes, `tree[0]` the current winner.
    kway_key: Vec<u64>,
    kway_tree: Vec<u32>,
    kway_row: Vec<u32>,
    kway_pos: Vec<u32>,
    kway_len: Vec<u32>,
    kway_aval: Vec<T>,
    kway_order: Vec<u32>,
}

impl<T: Scalar> Default for MergeScratch<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Scalar> MergeScratch<T> {
    /// An empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        MergeScratch {
            stamps: Vec::new(),
            dense_vals: Vec::new(),
            generation: 0,
            touched: Vec::new(),
            hash_keys: Vec::new(),
            hash_vals: Vec::new(),
            hash_used: Vec::new(),
            row_buf: Vec::new(),
            kway_key: Vec::new(),
            kway_tree: Vec::new(),
            kway_row: Vec::new(),
            kway_pos: Vec::new(),
            kway_len: Vec::new(),
            kway_aval: Vec::new(),
            kway_order: Vec::new(),
        }
    }

    /// Approximate heap footprint of this scratch's buffers — the
    /// high-water quantity exported through the obs gauge.
    pub fn footprint_bytes(&self) -> usize {
        use std::mem::size_of;
        self.stamps.capacity() * size_of::<u8>()
            + self.dense_vals.capacity() * size_of::<T>()
            + self.touched.capacity() * size_of::<u32>()
            + self.hash_keys.capacity() * size_of::<u32>()
            + self.hash_vals.capacity() * size_of::<T>()
            + self.hash_used.capacity() * size_of::<usize>()
            + self.row_buf.capacity() * size_of::<(u32, T)>()
            + self.kway_footprint_bytes()
    }

    /// Heap footprint of the k-way tournament buffers alone.
    pub fn kway_footprint_bytes(&self) -> usize {
        use std::mem::size_of;
        self.kway_key.capacity() * size_of::<u64>()
            + self.kway_tree.capacity() * size_of::<u32>()
            + self.kway_row.capacity() * size_of::<u32>()
            + self.kway_pos.capacity() * size_of::<u32>()
            + self.kway_len.capacity() * size_of::<u32>()
            + self.kway_aval.capacity() * size_of::<T>()
            + self.kway_order.capacity() * size_of::<u32>()
    }

    /// Grows the dense accumulator to cover `ncols` columns (stamp 0 =
    /// never touched; the live generation starts at 1).
    fn ensure_dense(&mut self, ncols: usize) {
        if self.stamps.len() < ncols {
            self.stamps.resize(ncols, 0);
            self.dense_vals.resize(ncols, T::ZERO);
        }
    }

    /// Grows the hash table to at least `cap` slots (a power of two).
    /// Existing slots are empty between rows, so a grow keeps the
    /// all-`u32::MAX` invariant.
    fn ensure_hash(&mut self, cap: usize) {
        if self.hash_keys.len() < cap {
            self.hash_keys.resize(cap, u32::MAX);
            self.hash_vals.resize(cap, T::ZERO);
        }
    }

    /// Doubles the hash table mid-row and reinserts the live entries.
    ///
    /// Bit-identity safe: each key moves with its *accumulated* value, so
    /// the per-column addition order is untouched, and the gather at the
    /// end of [`Self::merge_row_hash`] sorts by column anyway — capacity
    /// only ever changes probe paths. `row_buf` doubles as staging; it is
    /// idle during accumulation and cleared before the gather.
    fn grow_rehash(&mut self) {
        self.row_buf.clear();
        for &slot in &self.hash_used {
            self.row_buf
                .push((self.hash_keys[slot], self.hash_vals[slot]));
            self.hash_keys[slot] = u32::MAX;
        }
        let new_cap = (self.hash_keys.len() * 2).max(4);
        self.hash_keys.resize(new_cap, u32::MAX);
        self.hash_vals.resize(new_cap, T::ZERO);
        self.hash_used.clear();
        let mask = new_cap - 1;
        for i in 0..self.row_buf.len() {
            let (j, v) = self.row_buf[i];
            let mut slot = (j as usize).wrapping_mul(0x9E37_79B1) & mask;
            while self.hash_keys[slot] != u32::MAX {
                slot = (slot + 1) & mask;
            }
            self.hash_keys[slot] = j;
            self.hash_vals[slot] = v;
            self.hash_used.push(slot);
        }
        self.row_buf.clear();
    }

    /// Advances the dense generation, recycling the stamp space on wrap.
    fn next_generation(&mut self) -> u8 {
        if self.generation == u8::MAX {
            self.stamps.fill(0);
            self.generation = 0;
        }
        self.generation += 1;
        self.generation
    }

    /// Heavy bin: generation-stamped dense SPA. Accumulation order and the
    /// sorted gather match `spgemm_gustavson` exactly.
    fn merge_row_dense(
        &mut self,
        a_cols: &[u32],
        a_vals: &[T],
        b: &CsrMatrix<T>,
        idx: &mut Vec<u32>,
        val: &mut Vec<T>,
    ) {
        let generation = self.next_generation();
        self.touched.clear();
        for (&k, &a_rk) in a_cols.iter().zip(a_vals) {
            let (b_cols, b_vals) = b.row(k as usize);
            for (&j, &b_kj) in b_cols.iter().zip(b_vals) {
                let slot = j as usize;
                if self.stamps[slot] != generation {
                    self.stamps[slot] = generation;
                    self.dense_vals[slot] = a_rk * b_kj;
                    self.touched.push(j);
                } else {
                    self.dense_vals[slot] += a_rk * b_kj;
                }
            }
        }
        self.touched.sort_unstable();
        for &j in &self.touched {
            idx.push(j);
            val.push(self.dense_vals[j as usize]);
        }
    }

    /// Medium bin: open-addressing hash (multiplicative hashing, linear
    /// probing — the standard GPU spGEMM table design), gather + sort.
    /// `cap` is the power-of-two slot count for this row; the table may be
    /// larger from an earlier row, which only changes probe paths, never
    /// the per-column accumulation order.
    ///
    /// `cap` is only a *hint*: when the planner bins rows from **estimated**
    /// upper bounds, a row can hold more distinct columns than the table was
    /// sized for. Inserting a new key while the table is at least half full
    /// doubles it first ([`Self::grow_rehash`]), so the probe loop always
    /// terminates. With exact bounds `cap = 2·products ≥ 2·distinct`, so the
    /// growth path never triggers and behavior is unchanged.
    fn merge_row_hash(
        &mut self,
        a_cols: &[u32],
        a_vals: &[T],
        b: &CsrMatrix<T>,
        cap: usize,
        idx: &mut Vec<u32>,
        val: &mut Vec<T>,
    ) {
        self.ensure_hash(cap);
        let mut mask = self.hash_keys.len() - 1;
        self.hash_used.clear();
        for (&k, &a_rk) in a_cols.iter().zip(a_vals) {
            let (b_cols, b_vals) = b.row(k as usize);
            for (&j, &b_kj) in b_cols.iter().zip(b_vals) {
                let mut slot = (j as usize).wrapping_mul(0x9E37_79B1) & mask;
                loop {
                    if self.hash_keys[slot] == j {
                        self.hash_vals[slot] += a_rk * b_kj;
                        break;
                    }
                    if self.hash_keys[slot] == u32::MAX {
                        if (self.hash_used.len() + 1) * 2 > self.hash_keys.len() {
                            self.grow_rehash();
                            mask = self.hash_keys.len() - 1;
                            slot = (j as usize).wrapping_mul(0x9E37_79B1) & mask;
                            continue;
                        }
                        self.hash_keys[slot] = j;
                        self.hash_vals[slot] = a_rk * b_kj;
                        self.hash_used.push(slot);
                        break;
                    }
                    slot = (slot + 1) & mask;
                }
            }
        }
        self.row_buf.clear();
        for &slot in &self.hash_used {
            self.row_buf
                .push((self.hash_keys[slot], self.hash_vals[slot]));
            self.hash_keys[slot] = u32::MAX; // restore the empty invariant
        }
        self.row_buf.sort_unstable_by_key(|&(j, _)| j);
        for &(j, v) in &self.row_buf {
            idx.push(j);
            val.push(v);
        }
    }

    /// Tiny bin: insertion into a small buffer kept sorted by column.
    /// Duplicate columns accumulate in place (generation order), so the
    /// per-column sums — and the already-sorted output — match the SPA.
    fn merge_row_tiny(
        &mut self,
        a_cols: &[u32],
        a_vals: &[T],
        b: &CsrMatrix<T>,
        idx: &mut Vec<u32>,
        val: &mut Vec<T>,
    ) {
        self.row_buf.clear();
        for (&k, &a_rk) in a_cols.iter().zip(a_vals) {
            let (b_cols, b_vals) = b.row(k as usize);
            for (&j, &b_kj) in b_cols.iter().zip(b_vals) {
                match self.row_buf.binary_search_by_key(&j, |&(c, _)| c) {
                    Ok(pos) => self.row_buf[pos].1 += a_rk * b_kj,
                    Err(pos) => self.row_buf.insert(pos, (j, a_rk * b_kj)),
                }
            }
        }
        for &(j, v) in &self.row_buf {
            idx.push(j);
            val.push(v);
        }
    }

    /// Grows the k-way tournament buffers to at least `slots` leaves.
    /// Grow-only, like every other scratch buffer: a warm scratch merges
    /// rows with up to `slots` runs without touching the heap.
    fn ensure_kway(&mut self, slots: usize) {
        if self.kway_key.len() < slots {
            self.kway_key.resize(slots, u64::MAX);
            self.kway_tree.resize(slots, 0);
            self.kway_row.resize(slots, 0);
            self.kway_pos.resize(slots, 0);
            self.kway_len.resize(slots, 0);
            self.kway_aval.resize(slots, T::ZERO);
            self.kway_order.resize(slots, 0);
        }
    }

    /// Builds the loser tree over the `m` leaves (a power of two):
    /// returns the winner of the subtree rooted at `node`, storing each
    /// internal node's loser in `kway_tree[node]`. Recursion depth is
    /// `log2 m`.
    fn build_kway_tree(&mut self, node: usize, m: usize) -> u32 {
        if node >= m {
            return (node - m) as u32;
        }
        let left = self.build_kway_tree(2 * node, m);
        let right = self.build_kway_tree(2 * node + 1, m);
        let (winner, loser) = if self.kway_key[left as usize] <= self.kway_key[right as usize] {
            (left, right)
        } else {
            (right, left)
        };
        self.kway_tree[node] = loser;
        winner
    }

    /// Kway bin: SpArch-style k-way merge of the row's partial-product
    /// runs. Each nonzero `a[r,k]` contributes one run — the k-th B-row
    /// scaled by `a_rk`, already sorted by column — and a tournament
    /// (loser) tree streams the runs out in `(column, run)` order, so the
    /// output needs no dense sweep and no final sort.
    ///
    /// Bit-identity invariants:
    /// * the tree key packs the run's *generation-order* index `k` below
    ///   the column, so equal-column entries pop in `k`-ascending order
    ///   and per-column accumulation matches the dense SPA exactly;
    /// * runs are laid out on the leaves Huffman-style — longest first —
    ///   which clusters the hottest replay paths but never reorders the
    ///   pops (the key carries the original index, not the leaf slot).
    ///
    /// Returns the number of runs merged (the kway-run counter's unit).
    fn merge_row_kway(
        &mut self,
        a_cols: &[u32],
        a_vals: &[T],
        b: &CsrMatrix<T>,
        idx: &mut Vec<u32>,
        val: &mut Vec<T>,
    ) -> u64 {
        // Gather the non-empty runs, remembering each one's position in
        // the A-row (its generation order).
        self.ensure_kway(a_cols.len());
        let mut runs = 0usize;
        for (i, &k) in a_cols.iter().enumerate() {
            if b.row_nnz(k as usize) > 0 {
                self.kway_order[runs] = i as u32;
                runs += 1;
            }
        }
        if runs == 0 {
            return 0;
        }
        if runs == 1 {
            // Single run: the output is the scaled run itself.
            let i = self.kway_order[0] as usize;
            let a_rk = a_vals[i];
            let (b_cols, b_vals) = b.row(a_cols[i] as usize);
            for (&j, &b_kj) in b_cols.iter().zip(b_vals) {
                idx.push(j);
                val.push(a_rk * b_kj);
            }
            return 1;
        }

        // Huffman-style leaf layout: longest runs first (ties in
        // generation order). Pure layout — the merge order is fixed by
        // the keys, not the slots.
        self.kway_order[..runs].sort_unstable_by(|&x, &y| {
            let lx = b.row_nnz(a_cols[x as usize] as usize);
            let ly = b.row_nnz(a_cols[y as usize] as usize);
            ly.cmp(&lx).then(x.cmp(&y))
        });

        let m = runs.next_power_of_two();
        self.ensure_kway(m);
        for slot in 0..runs {
            let i = self.kway_order[slot] as usize;
            let k = a_cols[i] as usize;
            let (b_cols, _) = b.row(k);
            self.kway_row[slot] = k as u32;
            self.kway_pos[slot] = 0;
            self.kway_len[slot] = b_cols.len() as u32;
            self.kway_aval[slot] = a_vals[i];
            self.kway_key[slot] = ((b_cols[0] as u64) << 32) | i as u64;
        }
        for slot in runs..m {
            self.kway_key[slot] = u64::MAX;
        }
        // runs >= 2 here, so m >= 2 and node 1 is a real internal node.
        let winner = self.build_kway_tree(1, m);
        self.kway_tree[0] = winner;

        let mut have_col = false;
        let mut cur_col = 0u32;
        let mut cur_sum = T::ZERO;
        loop {
            let w = self.kway_tree[0] as usize;
            let key = self.kway_key[w];
            if key == u64::MAX {
                break;
            }
            let col = (key >> 32) as u32;
            let pos = self.kway_pos[w] as usize;
            let (b_cols, b_vals) = b.row(self.kway_row[w] as usize);
            let prod = self.kway_aval[w] * b_vals[pos];
            if have_col && col == cur_col {
                cur_sum += prod;
            } else {
                if have_col {
                    idx.push(cur_col);
                    val.push(cur_sum);
                }
                have_col = true;
                cur_col = col;
                cur_sum = prod;
            }
            // Advance the winning run and replay its path to the root.
            let next_pos = pos + 1;
            self.kway_pos[w] = next_pos as u32;
            self.kway_key[w] = if next_pos == self.kway_len[w] as usize {
                u64::MAX
            } else {
                ((b_cols[next_pos] as u64) << 32) | (key & 0xFFFF_FFFF)
            };
            let mut winner = w as u32;
            let mut node = (w + m) / 2;
            while node >= 1 {
                let contender = self.kway_tree[node];
                if self.kway_key[contender as usize] < self.kway_key[winner as usize] {
                    self.kway_tree[node] = winner;
                    winner = contender;
                }
                node /= 2;
            }
            self.kway_tree[0] = winner;
        }
        if have_col {
            idx.push(cur_col);
            val.push(cur_sum);
        }
        runs as u64
    }
}

/// A shared pool of [`MergeScratch`]es — `br-service` workers draw from it
/// per job and return the warmed-up scratch afterwards, so steady-state
/// jobs merge without growing (or allocating) any per-row buffer.
#[derive(Debug)]
pub struct ScratchPool<T> {
    free: Mutex<Vec<MergeScratch<T>>>,
}

impl<T: Scalar> Default for ScratchPool<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Scalar> ScratchPool<T> {
    /// An empty pool.
    pub fn new() -> Self {
        ScratchPool {
            free: Mutex::new(Vec::new()),
        }
    }

    /// Takes a scratch out of the pool (or a fresh one when empty).
    pub fn acquire(&self) -> MergeScratch<T> {
        self.free
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .pop()
            .unwrap_or_default()
    }

    /// Returns a scratch for reuse.
    pub fn release(&self, scratch: MergeScratch<T>) {
        self.free
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .push(scratch);
    }

    /// Scratches currently idle in the pool.
    pub fn idle(&self) -> usize {
        self.free.lock().unwrap_or_else(|p| p.into_inner()).len()
    }
}

/// Merges output rows `rows` of `C = A · B` into caller-owned CSR triple
/// buffers, dispatching each row to its bin's kernel.
///
/// The buffers are cleared, then filled so that `ptr` holds
/// `rows.len() + 1` range-local offsets starting at 0. Reusing buffers
/// that already reached capacity (and a warm `scratch`) makes the whole
/// call allocation-free — the property the counting-allocator test pins
/// down.
#[allow(clippy::too_many_arguments)]
pub fn merge_rows_into<T: Scalar>(
    a: &CsrMatrix<T>,
    b: &CsrMatrix<T>,
    rows: Range<usize>,
    bins: &RowBins,
    scratch: &mut MergeScratch<T>,
    ptr: &mut Vec<usize>,
    idx: &mut Vec<u32>,
    val: &mut Vec<T>,
) {
    ptr.clear();
    idx.clear();
    val.clear();
    ptr.push(0);
    scratch.ensure_dense(b.ncols());
    // Batched per-bin tallies: one atomic add per bin per call, not per row.
    let mut merged = [0u64; NUM_BINS];
    let mut kway_runs = 0u64;
    for r in rows {
        let (a_cols, a_vals) = a.row(r);
        let products = bins.row_products[r];
        let bin = bins.thresholds.bin_of(products);
        match bin {
            RowBin::Tiny => scratch.merge_row_tiny(a_cols, a_vals, b, idx, val),
            RowBin::Medium => {
                let cap = ((products.max(1) as usize) * 2).next_power_of_two();
                scratch.merge_row_hash(a_cols, a_vals, b, cap, idx, val);
            }
            RowBin::Heavy => scratch.merge_row_dense(a_cols, a_vals, b, idx, val),
            RowBin::Kway => kway_runs += scratch.merge_row_kway(a_cols, a_vals, b, idx, val),
        }
        merged[bin as usize] += 1;
        ptr.push(idx.len());
    }
    let instruments = merge_instruments();
    for (counter, &n) in instruments.rows.iter().zip(merged.iter()) {
        if n > 0 {
            counter.add(n);
        }
    }
    if kway_runs > 0 {
        instruments.kway_runs.add(kway_runs);
    }
    scratch_footprint_gauge().set_max(scratch.footprint_bytes() as f64);
    if merged[RowBin::Kway as usize] > 0 {
        kway_scratch_gauge().set_max(scratch.kway_footprint_bytes() as f64);
    }
}

/// Adaptive row-binned spGEMM: classifies rows, then merges each through
/// its bin's kernel over `threads` workers. Bit-identical to
/// [`crate::numeric::spgemm_dense_spa`] at every thread count and
/// threshold setting.
pub fn spgemm_adaptive<T: Scalar>(
    a: &CsrMatrix<T>,
    b: &CsrMatrix<T>,
    threads: usize,
    thresholds: BinThresholds,
) -> Result<CsrMatrix<T>> {
    let bins = RowBins::of(a, b, thresholds)?;
    spgemm_adaptive_planned(a, b, threads, &bins, None)
}

/// [`spgemm_adaptive`] with a precomputed (typically plan-cached)
/// [`RowBins`] and an optional scratch pool. The bins must describe the
/// same `A` (row count check); the cached `row_products` also serve as the
/// partition weights, so no symbolic scan runs here.
pub fn spgemm_adaptive_planned<T: Scalar>(
    a: &CsrMatrix<T>,
    b: &CsrMatrix<T>,
    threads: usize,
    bins: &RowBins,
    pool: Option<&ScratchPool<T>>,
) -> Result<CsrMatrix<T>> {
    if a.ncols() != b.nrows() {
        return Err(SparseError::ShapeMismatch {
            op: "spgemm",
            lhs: (a.nrows(), a.ncols()),
            rhs: (b.nrows(), b.ncols()),
        });
    }
    if bins.nrows() != a.nrows() {
        return Err(SparseError::InvalidStructure(format!(
            "row bins cover {} rows but A has {}",
            bins.nrows(),
            a.nrows()
        )));
    }
    // The numeric merge phase. Opened on the calling thread (one span per
    // multiply); the fan-out below never opens spans inside short-lived
    // worker threads.
    let _span = br_obs::global().span("spgemm_merge");
    let threads = threads.max(1).min(a.nrows().max(1));
    let acquire = || match pool {
        Some(p) => p.acquire(),
        None => MergeScratch::new(),
    };

    if threads == 1 || a.nrows() < 256 {
        let mut scratch = acquire();
        let (mut ptr, mut idx, mut val) = (Vec::new(), Vec::new(), Vec::new());
        merge_rows_into(
            a,
            b,
            0..a.nrows(),
            bins,
            &mut scratch,
            &mut ptr,
            &mut idx,
            &mut val,
        );
        if let Some(p) = pool {
            p.release(scratch);
        }
        return Ok(CsrMatrix::from_parts_unchecked(
            a.nrows(),
            b.ncols(),
            ptr,
            idx,
            val,
        ));
    }

    // Static row partition balanced by the cached per-row upper bounds.
    let bounds = par::weighted_bounds(&bins.row_products, threads);
    let (parts, scratches) = par::ordered_bounds_map_with(&bounds, acquire, |scratch, range| {
        let (mut ptr, mut idx, mut val) = (Vec::new(), Vec::new(), Vec::new());
        merge_rows_into(a, b, range, bins, scratch, &mut ptr, &mut idx, &mut val);
        (ptr, idx, val)
    });
    if let Some(p) = pool {
        for scratch in scratches {
            p.release(scratch);
        }
    }

    // Stitch the per-range outputs back together in row order.
    let mut ptr = Vec::with_capacity(a.nrows() + 1);
    let mut idx = Vec::new();
    let mut val = Vec::new();
    ptr.push(0usize);
    for (p_ptr, p_idx, p_val) in parts {
        let base = idx.len();
        ptr.extend(p_ptr.iter().skip(1).map(|&x| base + x));
        idx.extend(p_idx);
        val.extend(p_val);
    }
    Ok(CsrMatrix::from_parts_unchecked(
        a.nrows(),
        b.ncols(),
        ptr,
        idx,
        val,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::numeric::spgemm_dense_spa;
    use br_datasets::rmat::{rmat, RmatConfig};

    /// The acceptance-criterion threshold settings plus the degenerate
    /// single-bin collapses — with and without the k-way bin.
    fn threshold_grid() -> Vec<BinThresholds> {
        vec![
            BinThresholds::default(),
            BinThresholds {
                tiny_max: 4,
                heavy_min: 64,
                kway_min: u64::MAX,
            },
            BinThresholds {
                tiny_max: 0,
                heavy_min: u64::MAX,
                kway_min: u64::MAX,
            }, // all medium (and empty rows tiny)
            BinThresholds {
                tiny_max: u64::MAX,
                heavy_min: u64::MAX,
                kway_min: u64::MAX,
            }, // all tiny
            BinThresholds {
                tiny_max: 0,
                heavy_min: 0,
                kway_min: u64::MAX,
            }, // all heavy (empty rows tiny)
            BinThresholds {
                tiny_max: 1,
                heavy_min: 2,
                kway_min: u64::MAX,
            }, // no medium bin
            BinThresholds {
                tiny_max: 4,
                heavy_min: 64,
                kway_min: 256,
            }, // all four bins live
            BinThresholds {
                tiny_max: 0,
                heavy_min: 0,
                kway_min: 0,
            }, // all kway (empty rows tiny)
            BinThresholds {
                tiny_max: 4,
                heavy_min: 64,
                kway_min: 64,
            }, // kway swallows the whole dense band
        ]
    }

    #[test]
    fn adaptive_is_bit_identical_across_thresholds_and_threads() {
        let a = rmat(RmatConfig::graph500(9, 8, 77)).to_csr();
        let oracle = spgemm_dense_spa(&a, &a).unwrap();
        for thresholds in threshold_grid() {
            for threads in [1usize, 2, 8] {
                let c = spgemm_adaptive(&a, &a, threads, thresholds).unwrap();
                assert_eq!(c, oracle, "threads={threads} thresholds={thresholds:?}");
            }
        }
    }

    #[test]
    fn adaptive_handles_rectangular_and_edge_cases() {
        let a = rmat(RmatConfig::uniform(6, 4, 1).with_dim(50).with_edges(150)).to_csr();
        let b = rmat(RmatConfig::uniform(6, 4, 2).with_dim(50).with_edges(120)).to_csr();
        let oracle = spgemm_dense_spa(&a, &b).unwrap();
        assert_eq!(
            spgemm_adaptive(&a, &b, 4, BinThresholds::default()).unwrap(),
            oracle
        );

        let z = CsrMatrix::<f64>::zeros(4, 4);
        assert_eq!(
            spgemm_adaptive(&z, &z, 2, BinThresholds::default())
                .unwrap()
                .nnz(),
            0
        );
        let i = CsrMatrix::<f64>::identity(5);
        assert_eq!(
            spgemm_adaptive(&i, &i, 2, BinThresholds::default()).unwrap(),
            spgemm_dense_spa(&i, &i).unwrap()
        );

        let bad = CsrMatrix::<f64>::zeros(2, 3);
        assert!(spgemm_adaptive(&bad, &bad, 2, BinThresholds::default()).is_err());
    }

    #[test]
    fn merge_tallies_per_bin_rows_in_the_global_registry() {
        let a = rmat(RmatConfig::graph500(8, 8, 13)).to_csr();
        let thresholds = BinThresholds {
            tiny_max: 8,
            heavy_min: 128,
            kway_min: 512,
        };
        let bins = RowBins::of(&a, &a, thresholds).unwrap();
        assert!(
            bins.rows.iter().all(|&r| r > 0),
            "want all bins populated: {:?}",
            bins.rows
        );
        let instruments = merge_instruments();
        let before: Vec<u64> = instruments.rows.iter().map(|c| c.get()).collect();
        let runs_before = instruments.kway_runs.get();
        let _ = spgemm_adaptive_planned(&a, &a, 2, &bins, None).unwrap();
        // The global registry is shared with concurrently running tests, so
        // assert monotone deltas of at least this merge's contribution.
        for (i, counter) in instruments.rows.iter().enumerate() {
            assert!(
                counter.get() >= before[i] + bins.rows[i],
                "bin {i}: {} < {} + {}",
                counter.get(),
                before[i],
                bins.rows[i]
            );
        }
        // Every kway row merges at least one run.
        assert!(
            instruments.kway_runs.get() >= runs_before + bins.kway_rows(),
            "kway runs: {} < {} + {}",
            instruments.kway_runs.get(),
            runs_before,
            bins.kway_rows()
        );
        let footprint = scratch_footprint_gauge().get();
        assert!(footprint > 0.0, "scratch high-water must be recorded");
        let kway_footprint = kway_scratch_gauge().get();
        assert!(kway_footprint > 0.0, "kway high-water must be recorded");
    }

    #[test]
    fn instrument_registration_is_idempotent_and_covers_kway_cells() {
        register_merge_instruments();
        register_merge_instruments();
        let text = br_obs::global().render_prometheus(false);
        assert!(text.contains("br_spgemm_rows_merged_total{bin=\"kway\"}"));
        assert!(text.contains("br_spgemm_kway_runs_total"));
        let timing = br_obs::global().render_prometheus(true);
        assert!(timing.contains("br_spgemm_kway_scratch_bytes"));
    }

    #[test]
    fn undersized_estimated_bins_still_merge_bit_identically() {
        // Simulate a badly underestimating planner: every row claims one
        // intermediate product, and the thresholds route everything through
        // the medium-bin hash. The initial 4-slot tables must grow mid-row
        // (instead of looping forever) and the output must stay bit-exact.
        let a = rmat(RmatConfig::graph500(8, 8, 41)).to_csr();
        let oracle = spgemm_dense_spa(&a, &a).unwrap();
        let all_medium = BinThresholds {
            tiny_max: 0,
            heavy_min: u64::MAX,
            kway_min: u64::MAX,
        };
        let fake_products = vec![1u64; a.nrows()];
        let bins = RowBins::classify(&fake_products, all_medium);
        for threads in [1usize, 4] {
            let c = spgemm_adaptive_planned(&a, &a, threads, &bins, None).unwrap();
            assert_eq!(c, oracle, "threads={threads}");
        }
    }

    #[test]
    fn planned_execution_rejects_mismatched_bins() {
        let a = rmat(RmatConfig::snap_like(7, 6, 5)).to_csr();
        let other = CsrMatrix::<f64>::identity(3);
        let bins = RowBins::of(&other, &other, BinThresholds::default()).unwrap();
        assert!(spgemm_adaptive_planned(&a, &a, 2, &bins, None).is_err());
    }

    #[test]
    fn planned_execution_with_pool_matches_and_recycles_scratch() {
        let a = rmat(RmatConfig::graph500(9, 8, 3)).to_csr();
        let bins = RowBins::of(&a, &a, BinThresholds::default()).unwrap();
        let oracle = spgemm_dense_spa(&a, &a).unwrap();
        let pool = ScratchPool::<f64>::new();
        for _ in 0..3 {
            let c = spgemm_adaptive_planned(&a, &a, 4, &bins, Some(&pool)).unwrap();
            assert_eq!(c, oracle);
        }
        assert!(pool.idle() > 0, "scratches must return to the pool");
    }

    #[test]
    fn classification_is_structure_only_and_counts_runs() {
        let a = rmat(RmatConfig::snap_like(7, 6, 11)).to_csr();
        let before = classification_runs();
        let bins = RowBins::of(&a, &a, BinThresholds::default()).unwrap();
        let scaled = a.map_values(|v| v * 3.0);
        let bins_scaled = RowBins::of(&scaled, &scaled, BinThresholds::default()).unwrap();
        assert_eq!(bins, bins_scaled, "values must not influence binning");
        assert!(classification_runs() >= before + 2);
        assert_eq!(bins.rows.iter().sum::<u64>(), a.nrows() as u64);
        assert_eq!(
            bins.products.iter().sum::<u64>(),
            bins.row_products.iter().sum::<u64>()
        );
    }

    #[test]
    fn row_bins_survive_a_serde_round_trip() {
        let a = rmat(RmatConfig::snap_like(7, 6, 21)).to_csr();
        let bins = RowBins::of(
            &a,
            &a,
            BinThresholds {
                tiny_max: 3,
                heavy_min: 99,
                kway_min: 400,
            },
        )
        .unwrap();
        let json = serde_json::to_string(&bins).unwrap();
        let back: RowBins = serde_json::from_str(&json).unwrap();
        assert_eq!(back, bins);
    }

    #[test]
    fn thresholds_parse_cli_spelling() {
        assert_eq!(
            BinThresholds::parse("4,512"),
            Ok(BinThresholds {
                tiny_max: 4,
                heavy_min: 512,
                kway_min: u64::MAX,
            })
        );
        assert_eq!(
            BinThresholds::parse(" 16 , 2048 "),
            Ok(BinThresholds {
                tiny_max: 16,
                heavy_min: 2048,
                kway_min: u64::MAX,
            })
        );
        assert_eq!(
            BinThresholds::parse("4,512,4096"),
            Ok(BinThresholds {
                tiny_max: 4,
                heavy_min: 512,
                kway_min: 4096,
            })
        );
        // kway_min == heavy_min is legal: kway swallows the dense band.
        assert_eq!(
            BinThresholds::parse("4,512,512"),
            Ok(BinThresholds {
                tiny_max: 4,
                heavy_min: 512,
                kway_min: 512,
            })
        );
        assert!(matches!(
            BinThresholds::parse("16"),
            Err(ThresholdParseError::Malformed(_))
        ));
        assert!(matches!(
            BinThresholds::parse("a,b"),
            Err(ThresholdParseError::Malformed(_))
        ));
        assert!(matches!(
            BinThresholds::parse("-1,2"),
            Err(ThresholdParseError::Malformed(_))
        ));
        assert!(matches!(
            BinThresholds::parse("1,2,3,4"),
            Err(ThresholdParseError::Malformed(_))
        ));
        // Reversed spelling: the dense band would sit below the tiny band.
        assert_eq!(
            BinThresholds::parse("512,4"),
            Err(ThresholdParseError::Inverted {
                tiny_max: 512,
                heavy_min: 4,
            })
        );
        assert_eq!(
            BinThresholds::parse("16,16"),
            Err(ThresholdParseError::Inverted {
                tiny_max: 16,
                heavy_min: 16,
            })
        );
        // Kway below the dense band it splits off from.
        assert_eq!(
            BinThresholds::parse("4,512,256"),
            Err(ThresholdParseError::KwayBelowHeavy {
                heavy_min: 512,
                kway_min: 256,
            })
        );
        // The typed errors render an actionable message.
        let message = BinThresholds::parse("512,4").unwrap_err().to_string();
        assert!(
            message.contains("512") && message.contains("4"),
            "{message}"
        );
    }

    #[test]
    fn global_threshold_override_round_trips() {
        let custom = BinThresholds {
            tiny_max: 7,
            heavy_min: 700,
            kway_min: 7000,
        };
        set_global_thresholds(Some(custom));
        assert_eq!(effective_thresholds(), custom);
        set_global_thresholds(None);
        assert_eq!(effective_thresholds(), BinThresholds::default());
    }

    #[test]
    fn kway_handles_single_run_rows() {
        // Diagonal A: every row contributes exactly one run, exercising
        // the single-run fast path for every nonzero output row.
        let b = rmat(RmatConfig::graph500(8, 8, 19)).to_csr();
        let a = CsrMatrix::<f64>::identity(b.nrows()).map_values(|v| v * 2.5);
        let oracle = spgemm_dense_spa(&a, &b).unwrap();
        let all_kway = BinThresholds {
            tiny_max: 0,
            heavy_min: 0,
            kway_min: 0,
        };
        for threads in [1usize, 4, 8] {
            let c = spgemm_adaptive(&a, &b, threads, all_kway).unwrap();
            assert_eq!(c, oracle, "threads={threads}");
        }
    }

    #[test]
    fn kway_handles_all_duplicate_columns() {
        // Every B-row is the single column 0, so every product of a kway
        // row collides on one output column — the per-column accumulation
        // order (run index ascending) is all that keeps this bit-exact.
        let n = 64;
        let ptr: Vec<usize> = (0..=n).collect();
        let idx = vec![0u32; n];
        let val: Vec<f64> = (0..n).map(|i| 1.0 + (i as f64) * 0.125).collect();
        let b = CsrMatrix::from_parts_unchecked(n, n, ptr, idx, val);
        let a = rmat(RmatConfig::uniform(6, 4, 9).with_dim(n).with_edges(400)).to_csr();
        let oracle = spgemm_dense_spa(&a, &b).unwrap();
        let all_kway = BinThresholds {
            tiny_max: 0,
            heavy_min: 0,
            kway_min: 0,
        };
        for threads in [1usize, 4, 8] {
            let c = spgemm_adaptive(&a, &b, threads, all_kway).unwrap();
            assert_eq!(c, oracle, "threads={threads}");
        }
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(12))]
        /// Property: the adaptive engine is bit-for-bit the dense SPA for
        /// arbitrary power-law inputs, thread counts, and thresholds —
        /// including degenerate thresholds collapsing everything into one
        /// bin.
        #[test]
        fn prop_adaptive_bit_identical(
            seed in 0u64..500,
            threads in 1usize..10,
            tiny_max in 0u64..64,
            heavy_min in 0u64..4096,
        ) {
            let a = rmat(RmatConfig::snap_like(8, 6, seed)).to_csr();
            let oracle = spgemm_dense_spa(&a, &a).unwrap();
            let thresholds = BinThresholds { tiny_max, heavy_min, kway_min: u64::MAX };
            let c = spgemm_adaptive(&a, &a, threads, thresholds).unwrap();
            proptest::prop_assert_eq!(c, oracle);
        }

        /// Property: the k-way tournament merge is bit-for-bit the dense
        /// SPA across RMAT seeds, thread counts, and threshold mixes —
        /// `kway_sel` sweeps the kway band from swallowing everything
        /// past tiny (0) through disabled (>= 4096 maps to `u64::MAX`).
        #[test]
        fn prop_kway_bit_identical(
            seed in 0u64..500,
            threads in 1usize..10,
            tiny_max in 0u64..64,
            heavy_min in 0u64..4096,
            kway_sel in 0u64..4608,
        ) {
            let a = rmat(RmatConfig::snap_like(8, 6, seed)).to_csr();
            let oracle = spgemm_dense_spa(&a, &a).unwrap();
            let kway_min = if kway_sel >= 4096 { u64::MAX } else { kway_sel };
            let thresholds = BinThresholds { tiny_max, heavy_min, kway_min };
            let c = spgemm_adaptive(&a, &a, threads, thresholds).unwrap();
            proptest::prop_assert_eq!(c, oracle);
        }
    }
}
