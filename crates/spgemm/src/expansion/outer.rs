//! Outer-product expansion (Algorithm 1 of the paper).
//!
//! One thread block per column/row pair `(a₌ᵢ, bᵢ₌)`: each of the
//! `nnz(bᵢ₌)` effective threads holds one element of the row and loops over
//! the `nnz(a₌ᵢ)` column elements — so **every thread in a block does
//! identical work** (the scheme's thread-level balance), while the *block*
//! workload `nnz(a₌ᵢ)·nnz(bᵢ₌)` varies by orders of magnitude on power-law
//! data (the block-level imbalance the Block Reorganizer attacks).
//!
//! `Ĉ` is written in block-major (matrix) form: pair `i`'s products land at
//! the block-offset prefix. That layout is what makes the plain
//! outer-product merge scatter-heavy (Section III-A.3); the Block
//! Reorganizer instead relocates products row-major during expansion.

use crate::context::ProblemContext;
use crate::workspace::{Workspace, ELEM_BYTES};
use br_gpu_sim::trace::{KernelLaunch, TraceBuilder};
use br_sparse::Scalar;

/// Default CUDA block size for expansion kernels.
pub const DEFAULT_BLOCK_SIZE: u32 = 256;

/// Builds the outer-product expansion launch over all non-empty pairs.
///
/// `row_major_chat = true` models the Block Reorganizer's row-wise
/// relocation of products (extra scatter cost during expansion, coalesced
/// merge later); `false` is the plain outer-product baseline.
#[allow(clippy::needless_range_loop)] // i is the pair id, used across several per-pair arrays
pub fn outer_expansion_launch<T: Scalar>(
    ctx: &ProblemContext<T>,
    ws: &Workspace,
    block_size: u32,
    row_major_chat: bool,
) -> KernelLaunch {
    let _span = br_obs::global().span("spgemm_expansion");
    let chat_offsets = ctx.chat_block_offsets();
    let mut blocks = Vec::new();
    for i in 0..ctx.inner_dim() {
        let products = ctx.block_products[i];
        if products == 0 {
            continue;
        }
        blocks.push(outer_pair_block(
            ctx,
            ws,
            i,
            chat_offsets[i],
            block_size,
            row_major_chat,
        ));
    }
    KernelLaunch::new("outer-expansion", blocks)
}

/// Builds the trace of a single outer-product pair block. Exposed so the
/// Block Reorganizer can re-emit (split / gathered) variants of it.
pub fn outer_pair_block<T: Scalar>(
    ctx: &ProblemContext<T>,
    ws: &Workspace,
    pair: usize,
    chat_elem_offset: u64,
    block_size: u32,
    row_major_chat: bool,
) -> br_gpu_sim::trace::BlockTrace {
    let nnz_a = ctx.pair_thread_work(pair) as u64;
    let nnz_b = ctx.pair_effective_threads(pair) as u64;
    let products = nnz_a * nnz_b;
    let effective = nnz_b.min(block_size as u64) as u32;
    // Thread coarsening when the row is wider than the block.
    let coarsen = nnz_b.div_ceil(block_size as u64).max(1);
    let mut tb = TraceBuilder::new(block_size, effective)
        .compute(nnz_a * coarsen)
        .read(
            ws.a_csc_data,
            ws.a_col_offset(ctx, pair),
            nnz_a * ELEM_BYTES,
        )
        .read(ws.b_data, ws.b_row_offset(ctx, pair), nnz_b * ELEM_BYTES)
        .barriers(1);
    tb = if row_major_chat {
        // Row-wise relocation: each of the nnz_a column elements deposits a
        // contiguous nnz_b-wide chunk at its output row's precomputed slot.
        let chunk = (nnz_b * ELEM_BYTES).min(u32::MAX as u64) as u32;
        tb.scatter_write(
            ws.chat,
            0,
            ctx.intermediate_total.max(1) * ELEM_BYTES,
            nnz_a,
            chunk,
        )
    } else {
        // Block-major: a single coalesced streaming write.
        tb.write(
            ws.chat,
            chat_elem_offset * ELEM_BYTES,
            products * ELEM_BYTES,
        )
    };
    tb.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use br_sparse::CsrMatrix;

    fn ctx() -> ProblemContext<f64> {
        // [[1, 0, 2], [0, 3, 0], [4, 5, 0]]
        let a = CsrMatrix::try_new(
            3,
            3,
            vec![0, 2, 3, 5],
            vec![0, 2, 1, 0, 1],
            vec![1.0, 2.0, 3.0, 4.0, 5.0],
        )
        .unwrap();
        ProblemContext::new(&a, &a).unwrap()
    }

    #[test]
    fn one_block_per_nonempty_pair() {
        let c = ctx();
        let ws = Workspace::for_context(&c);
        let k = outer_expansion_launch(&c, &ws, 256, false);
        // pairs: (col0,row0): 2*2=4, (col1,row1): 2*1=2, (col2,row2): 1*2=2
        assert_eq!(k.blocks.len(), 3);
    }

    #[test]
    fn effective_threads_equal_b_row_nnz() {
        let c = ctx();
        let ws = Workspace::for_context(&c);
        let k = outer_expansion_launch(&c, &ws, 256, false);
        assert_eq!(k.blocks[0].effective_threads, 2); // nnz(b0*) = 2
        assert_eq!(k.blocks[1].effective_threads, 1); // nnz(b1*) = 1
    }

    #[test]
    fn per_thread_work_equals_column_nnz() {
        let c = ctx();
        let ws = Workspace::for_context(&c);
        let k = outer_expansion_launch(&c, &ws, 256, false);
        assert_eq!(k.blocks[0].compute_per_thread, 2); // nnz(a*0) = 2
        assert_eq!(k.blocks[0].lane_imbalance, 1.0); // perfectly balanced
    }

    #[test]
    fn chat_writes_cover_all_products_without_overlap() {
        let c = ctx();
        let ws = Workspace::for_context(&c);
        let k = outer_expansion_launch(&c, &ws, 256, false);
        let total_written: u64 = k.blocks.iter().map(|b| b.bytes_written()).sum();
        assert_eq!(total_written, c.intermediate_total * ELEM_BYTES);
        // offsets strictly increase block to block
        let mut offsets: Vec<u64> = k
            .blocks
            .iter()
            .flat_map(|b| b.segments.iter().filter(|s| s.write).map(|s| s.offset))
            .collect();
        let sorted = offsets.clone();
        offsets.sort_unstable();
        assert_eq!(offsets, sorted);
    }

    #[test]
    fn coarsening_kicks_in_for_wide_rows() {
        // b row with 1000 nnz, block size 256 → coarsen = 4
        let mut rows = vec![0usize];
        rows.push(1000);
        let idx: Vec<u32> = (0..1000).collect();
        let val = vec![1.0f64; 1000];
        let b = CsrMatrix::try_new(1, 1000, rows, idx, val).unwrap();
        let a = CsrMatrix::try_new(
            1000,
            1,
            (0..=1000).collect(),
            vec![0u32; 1000],
            vec![1.0; 1000],
        )
        .unwrap();
        let c = ProblemContext::new(&a, &b).unwrap();
        let ws = Workspace::for_context(&c);
        let k = outer_expansion_launch(&c, &ws, 256, false);
        assert_eq!(k.blocks.len(), 1);
        assert_eq!(k.blocks[0].effective_threads, 256);
        assert_eq!(k.blocks[0].compute_per_thread, 1000 * 4);
    }

    #[test]
    fn row_major_chat_scatters_block_major_streams() {
        let c = ctx();
        let ws = Workspace::for_context(&c);
        let block_major = outer_expansion_launch(&c, &ws, 256, false);
        let row_major = outer_expansion_launch(&c, &ws, 256, true);
        let scatters = |k: &br_gpu_sim::trace::KernelLaunch| {
            k.blocks
                .iter()
                .flat_map(|b| &b.segments)
                .filter(|s| {
                    s.write && matches!(s.pattern, br_gpu_sim::trace::AccessPattern::Random { .. })
                })
                .count()
        };
        assert_eq!(scatters(&block_major), 0);
        assert_eq!(scatters(&row_major), row_major.blocks.len());
        // Relocation is precomputed — never atomic.
        assert!(row_major.blocks.iter().all(|b| b.atomics == 0));
        // Logical volume is identical either way.
        let vol = |k: &br_gpu_sim::trace::KernelLaunch| -> u64 {
            k.blocks.iter().map(|b| b.bytes_written()).sum()
        };
        assert_eq!(vol(&block_major), vol(&row_major));
    }
}
