//! Row-product expansion — the paper's baseline scheme (Figure 2 left).
//!
//! One thread block per row `i` of `A`; thread `t` takes element `a_ik` and
//! walks row `b_k*`. Because `nnz(b_k*)` varies wildly on power-law data,
//! lanes of the same warp finish at very different times — the
//! **thread-level load imbalance** that motivates the outer product
//! (Section III-A). We capture it as the `lane_imbalance` multiplier:
//! the warp runs at the speed of its slowest lane.
//!
//! `Ĉ` is produced in row-major (single-row) form, which is what makes the
//! row product's merge cheaper than the outer product's (Section II-C).

use crate::context::ProblemContext;
use crate::workspace::{Workspace, ELEM_BYTES};
use br_gpu_sim::trace::{BlockTrace, KernelLaunch, TraceBuilder};
use br_sparse::Scalar;

/// Builds the row-product expansion launch: one block per non-empty row of
/// `A`, `block_size` threads each (use 32 for a warp-per-row scheme).
#[allow(clippy::needless_range_loop)] // r is the row id, used across several per-row arrays
pub fn row_expansion_launch<T: Scalar>(
    ctx: &ProblemContext<T>,
    ws: &Workspace,
    block_size: u32,
) -> KernelLaunch {
    let _span = br_obs::global().span("spgemm_expansion");
    let chat_rows = ctx.chat_row_offsets();
    let mut blocks = Vec::new();
    for r in 0..ctx.nrows() {
        if ctx.row_products[r] == 0 {
            continue;
        }
        blocks.push(row_block(ctx, ws, r, chat_rows[r], block_size));
    }
    KernelLaunch::new("row-expansion", blocks)
}

fn row_block<T: Scalar>(
    ctx: &ProblemContext<T>,
    ws: &Workspace,
    r: usize,
    chat_elem_offset: u64,
    block_size: u32,
) -> BlockTrace {
    let (a_cols, _) = ctx.a.row(r);
    let k = a_cols.len() as u64;
    let products = ctx.row_products[r];

    // Lane imbalance: each lane's work is nnz(b_row) of its assignment.
    let mut max_work = 0u64;
    for &col in a_cols {
        max_work = max_work.max(ctx.b.row_nnz(col as usize) as u64);
    }
    let mean_work = products as f64 / k.max(1) as f64;
    let imbalance = if mean_work > 0.0 {
        (max_work as f64 / mean_work).max(1.0)
    } else {
        1.0
    };

    let effective = k.min(block_size as u64) as u32;
    let coarsen = k.div_ceil(block_size as u64).max(1);
    let mut tb = TraceBuilder::new(block_size, effective)
        .compute(((mean_work).ceil() as u64) * coarsen)
        .lane_imbalance(imbalance)
        .read(ws.a_data, ws.a_row_offset(ctx, r), k * ELEM_BYTES)
        .barriers(1)
        // Products append row-major: coalesced within the row's slot.
        .write(
            ws.chat,
            chat_elem_offset * ELEM_BYTES,
            products * ELEM_BYTES,
        );
    // Each lane reads its own row of B — one coalesced segment per distinct
    // referenced row, preserving cross-block L2 reuse of hot B rows.
    for &col in a_cols {
        let nnz_b = ctx.b.row_nnz(col as usize) as u64;
        if nnz_b > 0 {
            tb = tb.read(
                ws.b_data,
                ws.b_row_offset(ctx, col as usize),
                nnz_b * ELEM_BYTES,
            );
        }
    }
    tb.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use br_sparse::CsrMatrix;

    fn skewed_ctx() -> ProblemContext<f64> {
        // Row 0 of B has 4 nnz, rows 1..3 have 1 → lanes referencing row 0
        // dominate their warp.
        let b = CsrMatrix::try_new(
            4,
            4,
            vec![0, 4, 5, 6, 7],
            vec![0, 1, 2, 3, 0, 1, 2],
            vec![1.0; 7],
        )
        .unwrap();
        // A row 0 references all four rows of B.
        let a =
            CsrMatrix::try_new(4, 4, vec![0, 4, 4, 4, 4], vec![0, 1, 2, 3], vec![1.0; 4]).unwrap();
        ProblemContext::new(&a, &b).unwrap()
    }

    #[test]
    fn one_block_per_productive_row() {
        let c = skewed_ctx();
        let ws = Workspace::for_context(&c);
        let k = row_expansion_launch(&c, &ws, 256);
        assert_eq!(k.blocks.len(), 1); // only row 0 produces anything
    }

    #[test]
    fn lane_imbalance_reflects_b_row_skew() {
        let c = skewed_ctx();
        let ws = Workspace::for_context(&c);
        let k = row_expansion_launch(&c, &ws, 256);
        // works: [4,1,1,1] → max 4, mean 7/4 → imbalance = 16/7
        let b = &k.blocks[0];
        assert!((b.lane_imbalance - 4.0 / (7.0 / 4.0)).abs() < 1e-9);
    }

    #[test]
    fn reads_one_segment_per_referenced_b_row() {
        let c = skewed_ctx();
        let ws = Workspace::for_context(&c);
        let k = row_expansion_launch(&c, &ws, 256);
        let reads = k.blocks[0].segments.iter().filter(|s| !s.write).count();
        // 1 for the A row + 4 B rows
        assert_eq!(reads, 5);
    }

    #[test]
    fn chat_written_row_major_and_complete() {
        let c = skewed_ctx();
        let ws = Workspace::for_context(&c);
        let k = row_expansion_launch(&c, &ws, 256);
        let written: u64 = k.blocks.iter().map(|b| b.bytes_written()).sum();
        assert_eq!(written, c.intermediate_total * ELEM_BYTES);
        assert!(k.blocks.iter().all(|b| b.atomics == 0));
    }

    #[test]
    fn uniform_matrix_has_no_divergence() {
        let i = CsrMatrix::<f64>::identity(16);
        let c = ProblemContext::new(&i, &i).unwrap();
        let ws = Workspace::for_context(&c);
        let k = row_expansion_launch(&c, &ws, 32);
        assert!(k
            .blocks
            .iter()
            .all(|b| (b.lane_imbalance - 1.0).abs() < 1e-12));
    }
}
