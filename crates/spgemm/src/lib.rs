//! # br-spgemm — spGEMM kernels on the simulated GPU
//!
//! Implements every multiplication scheme the paper evaluates, all as
//! *execution-driven* kernels: they compute the true numeric result in Rust
//! while emitting [`br_gpu_sim`] cost traces, so simulated time reflects the
//! algorithm's real memory and compute behaviour.
//!
//! Methods (Figure 8's seven bars, minus the Block Reorganizer which builds
//! on this crate from `crates/core`):
//!
//! * [`methods::row_product`] — the paper's **row-product baseline**:
//!   Gustavson-style expansion (one block per row of `A`, divergent lanes)
//!   plus a dense-accumulator merge.
//! * [`methods::outer_product`] — the **outer-product baseline**: one block
//!   per column/row pair (perfect intra-block balance, block-level skew),
//!   intermediate `Ĉ` in matrix (block-major) form, hence a scatter-heavy
//!   merge.
//! * [`methods::cusparse_like`] — two-phase row-product with a global-memory
//!   hash merge, one warp per row (cuSPARSE's generalised scheme).
//! * [`methods::cusp_esc`] — CUSP's Expand–Sort–Compress: flat expansion,
//!   multi-pass radix sort of `Ĉ`, then segmented reduction.
//! * [`methods::bhsparse_like`] — bhSPARSE's hybrid: rows binned by
//!   upper-bound product count, small bins merged in shared memory, large
//!   rows in global memory.
//! * [`methods::mkl_like`] — multithreaded CPU Gustavson under an analytic
//!   CPU cost model, in the same simulated-time domain.
//!
//! Supporting modules: [`context`] (per-problem symbolic precomputation
//! shared across methods), [`workspace`] (device-memory layout),
//! [`expansion`] / [`merge`] (trace generators), [`numeric`] (three
//! independent numeric mergers used to verify each method's arithmetic),
//! [`accum`] (the adaptive row-binned host merge engine with reusable
//! scratch), [`estimate`] (the seeded sampling estimator the planner uses
//! for per-problem method selection and bin thresholds), and [`pipeline`]
//! (the run orchestrator producing [`pipeline::SpgemmRun`]).

#![warn(missing_docs)]

pub mod accum;
pub mod context;
pub mod estimate;
pub mod expansion;
pub mod merge;
pub mod methods;
pub mod numeric;
pub mod pipeline;
pub mod workspace;

pub use accum::{BinThresholds, MergeScratch, RowBin, RowBins, ScratchPool, ThresholdParseError};
pub use context::ProblemContext;
pub use estimate::{EstimatorConfig, MethodChoice, WorkloadEstimate};
pub use pipeline::{run_method, SpgemmMethod, SpgemmRun};
pub use workspace::Workspace;
