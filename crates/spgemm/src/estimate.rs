//! Sampling-based workload estimation for the planner (Ocean-style).
//!
//! Exact cold-path planning scans every entry of `A` for `row_products`
//! and runs a full symbolic SPA for `nnz(C)` — the dominant plan-time cost
//! the plan cache exists to amortize. This module replaces both scans with
//! a **seeded, fingerprint-derived sample**: `k` columns of `A` are drawn
//! with a splitmix64 PRNG seeded from the problem signature and the
//! estimator configuration, the sampled columns' products are scattered
//! into per-row totals and extrapolated by `n/k`, and `nnz(C)` is
//! extrapolated from an exact symbolic pass over `k` sampled *rows*.
//!
//! Determinism is load-bearing: the sample depends only on the operands'
//! structure hashes and the sample count, so the same problem yields
//! byte-identical estimates at any thread count, in any process, on any
//! rerun — which keeps `BENCH_estplan.json` reproducible and lets
//! cached plans built from estimates be value-independent artifacts.
//!
//! A normal-approximation confidence band over the sampled per-column
//! products guards accuracy: when the relative half-width exceeds the
//! configured tolerance, the caller falls back to exact precalculation.
//! The degenerate sample `k ≥ inner_dim` visits every column (and every
//! row), so the "estimates" are exactly the exact quantities.

use std::sync::Mutex;

use br_obs::{Counter, Histogram};
use br_sparse::Scalar;
use serde::{Deserialize, Serialize};
use std::sync::OnceLock;

use crate::accum::BinThresholds;
use crate::context::ProblemContext;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv_mix(h: u64, v: u64) -> u64 {
    (h ^ v).wrapping_mul(FNV_PRIME)
}

/// Estimator instruments in the process-wide registry. All are pure
/// functions of the estimated work (never of wall clock or scheduling),
/// so they export by default and byte-compare across thread counts.
struct PlanInstruments {
    estimates: Counter,
    fallbacks: Counter,
    exact_samples: Counter,
    sampled_cols: Counter,
    ops: Counter,
    rel_band_ppm: Histogram,
}

fn plan_instruments() -> &'static PlanInstruments {
    static CELLS: OnceLock<PlanInstruments> = OnceLock::new();
    CELLS.get_or_init(|| {
        let reg = br_obs::global();
        PlanInstruments {
            estimates: reg.counter(
                "br_plan_estimates_total",
                "Sampling-based workload estimates produced.",
                &[],
            ),
            fallbacks: reg.counter(
                "br_plan_fallbacks_total",
                "Estimates whose confidence band exceeded the tolerance.",
                &[],
            ),
            exact_samples: reg.counter(
                "br_plan_exact_total",
                "Degenerate full samples (k >= dimension; estimate is exact).",
                &[],
            ),
            sampled_cols: reg.counter(
                "br_plan_sampled_cols_total",
                "Columns of A visited by the sampling estimator.",
                &[],
            ),
            ops: reg.counter(
                "br_plan_ops_total",
                "Modeled host operations spent estimating workloads.",
                &[],
            ),
            rel_band_ppm: reg.histogram(
                "br_plan_rel_band_ppm",
                "Relative confidence-band half-width of each estimate, in ppm.",
                &[],
            ),
        }
    })
}

/// Configuration of the sampling estimator.
///
/// Part of the plan-cache key (via [`EstimatorConfig::fingerprint`]):
/// plans built under different sample sizes or tolerances are different
/// artifacts and must not alias.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EstimatorConfig {
    /// Number of columns (and rows, for the output estimate) to sample.
    pub samples: usize,
    /// Maximum relative confidence-band half-width before the planner
    /// falls back to exact precalculation.
    pub tolerance: f64,
}

impl Default for EstimatorConfig {
    /// 64 samples keep the sampled scan an order of magnitude below the
    /// exact symbolic pass on the suite's problems. The fallback line is
    /// 1.0 — fall back only when the 95% band is wider than the estimate
    /// itself. That is deliberately permissive: the estimate only steers
    /// performance knobs (method, bins, limiting) whose worst case is a
    /// slower-but-correct run, and power-law degree distributions put the
    /// band near 0.5–0.9 at any affordable sample size. Tighten the
    /// tolerance (`--est-tolerance`) when a workload wants exact plans.
    fn default() -> Self {
        EstimatorConfig {
            samples: 64,
            tolerance: 1.0,
        }
    }
}

impl EstimatorConfig {
    /// FNV fingerprint over the configuration — mixed into plan-cache keys
    /// and the PRNG seed.
    pub fn fingerprint(&self) -> u64 {
        [self.samples as u64, self.tolerance.to_bits()]
            .iter()
            .fold(FNV_OFFSET, |h, &v| fnv_mix(h, v))
    }
}

/// Process-wide estimator override (`--est-samples` / `--est-tolerance` /
/// `--no-estimate` on the CLI). `enabled = false` forces every
/// estimation-capable path back to exact precalculation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EstimatorOverride {
    /// The configuration estimation-capable paths should use.
    pub config: EstimatorConfig,
    /// Whether estimation is allowed at all.
    pub enabled: bool,
}

impl Default for EstimatorOverride {
    fn default() -> Self {
        EstimatorOverride {
            config: EstimatorConfig::default(),
            enabled: true,
        }
    }
}

static GLOBAL_ESTIMATOR: Mutex<Option<EstimatorOverride>> = Mutex::new(None);

/// Installs (or with `None` clears) the process-wide estimator override.
pub fn set_global_estimator(setting: Option<EstimatorOverride>) {
    *GLOBAL_ESTIMATOR.lock().unwrap_or_else(|p| p.into_inner()) = setting;
}

/// The estimator setting in effect: the [`set_global_estimator`] override
/// when present, else the default (estimation enabled, default config).
pub fn effective_estimator() -> EstimatorOverride {
    GLOBAL_ESTIMATOR
        .lock()
        .unwrap_or_else(|p| p.into_inner())
        .unwrap_or_default()
}

/// The expansion method the estimator picked for one problem.
///
/// Per-problem selection is bhSPARSE's framework idea: no single scheme
/// wins across sparsity patterns, so the planner routes each problem by
/// its estimated shape. The choice swaps the **simulated kernel stream**
/// only — the host numeric result is always produced by the adaptive
/// row-binned engine, so output stays bit-identical to the dense SPA
/// whichever method is chosen.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MethodChoice {
    /// Block-reorganized pipeline (split/gather/limit) — the default for
    /// skewed, dominator-heavy workloads.
    Reorganized,
    /// Row-product (Gustavson) baseline — cheap rows, little skew.
    RowProduct,
    /// Outer-product baseline — balanced blocks, moderate compression.
    OuterProduct,
    /// Expand–sort–compress — little duplicate compression to exploit.
    Esc,
    /// Warp-per-row hash — heavy duplicate compression.
    Hash,
}

impl MethodChoice {
    /// Stable lower-case name used in reports and metric labels.
    pub fn name(&self) -> &'static str {
        match self {
            MethodChoice::Reorganized => "reorganized",
            MethodChoice::RowProduct => "row-product",
            MethodChoice::OuterProduct => "outer-product",
            MethodChoice::Esc => "esc",
            MethodChoice::Hash => "hash",
        }
    }
}

/// The estimator's output: extrapolated workloads plus the bookkeeping
/// the planner and the bench suite need (band width, modeled cost).
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadEstimate {
    /// Extrapolated per-row intermediate-product counts.
    pub row_products: Vec<u64>,
    /// Extrapolated `nnz(C)`.
    pub output_total: usize,
    /// Columns of `A` actually visited.
    pub sampled_cols: usize,
    /// Rows of `A` given an exact symbolic pass for the output estimate.
    pub sampled_rows: usize,
    /// Relative half-width of the 95% confidence band on the intermediate
    /// total (0 for a full sample).
    pub rel_band: f64,
    /// Modeled host operations the estimate cost (selection + scatter +
    /// sampled symbolic) — the deterministic cold-plan latency metric.
    pub ops: u64,
    /// Whether the sample was degenerate (covered everything), making the
    /// estimates exactly equal to the exact quantities.
    pub exact: bool,
}

impl WorkloadEstimate {
    /// Whether the band is narrow enough for `config`, i.e. the planner
    /// may use this estimate instead of falling back to exact precalc.
    pub fn within(&self, config: &EstimatorConfig) -> bool {
        self.exact || self.rel_band <= config.tolerance
    }
}

/// Modeled host operations of the **exact** precalculation the estimator
/// replaces: the `row_products` scan (`nnz(A)`) plus the full symbolic
/// SPA (one op per intermediate product). The shared work both paths do
/// (block products, CSC view) is excluded from both sides.
pub fn exact_plan_ops<T: Scalar>(ctx: &ProblemContext<T>) -> u64 {
    ctx.a.nnz() as u64 + ctx.intermediate_total
}

/// splitmix64 — tiny, seedable, excellent diffusion; the standard choice
/// for deterministic index sampling.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Draws `k` distinct indices from `0..n`, sorted ascending, via Floyd's
/// algorithm over a seeded splitmix64 stream. `k >= n` returns all of
/// `0..n`.
fn sample_indices(n: usize, k: usize, seed: u64) -> Vec<usize> {
    if k >= n {
        return (0..n).collect();
    }
    let mut state = seed;
    let mut chosen = std::collections::BTreeSet::new();
    for j in (n - k)..n {
        let r = (splitmix64(&mut state) % (j as u64 + 1)) as usize;
        if !chosen.insert(r) {
            chosen.insert(j);
        }
    }
    chosen.into_iter().collect()
}

/// Runs the sampling estimator over one problem.
///
/// Reads only what a lean cold-path planner would have in hand: the CSC
/// view of `A`, row lengths of `B`, and the operands' structure — never
/// `ctx.row_products` / `ctx.row_unique` / `ctx.output_total`.
pub fn estimate_workload<T: Scalar>(
    ctx: &ProblemContext<T>,
    config: &EstimatorConfig,
) -> WorkloadEstimate {
    let inner = ctx.inner_dim();
    let nrows = ctx.nrows();
    let sig = ctx.signature();
    // Seed from the structures and the sample COUNT only. The tolerance is
    // a decision threshold applied after measurement — folding it into the
    // seed would reshuffle the sample whenever the fallback line moves.
    let seed = [
        sig.a.structure_hash,
        sig.b.structure_hash,
        config.samples as u64,
    ]
    .iter()
    .fold(FNV_OFFSET, |h, &v| fnv_mix(h, v));

    let cols = sample_indices(inner, config.samples.max(1), seed);
    let full_cols = cols.len() == inner;
    let mut ops = cols.len() as u64; // selection cost

    // Scatter each sampled column's products into per-row totals, and
    // record the exact per-column total for the confidence band.
    let mut raw = vec![0u64; nrows];
    let mut col_totals = Vec::with_capacity(cols.len());
    for &i in &cols {
        let bn = ctx.b.row_nnz(i) as u64;
        let (rows, _) = ctx.a_csc.col(i);
        for &r in rows {
            raw[r as usize] += bn;
        }
        ops += rows.len() as u64;
        col_totals.push(rows.len() as u64 * bn);
    }

    let row_products: Vec<u64> = if full_cols {
        raw
    } else {
        // Extrapolate by n/k with half-up rounding — deterministic, and a
        // row the sample never touched keeps its honest zero (the merge
        // engine tolerates under-estimates; see `MergeScratch`).
        let n = inner as u64;
        let k = cols.len() as u64;
        raw.iter().map(|&p| (p * n + k / 2) / k).collect()
    };

    // Normal-approximation 95% band on the extrapolated intermediate
    // total, from the spread of the sampled per-column totals.
    let rel_band = if full_cols {
        0.0
    } else {
        let k = col_totals.len() as f64;
        let mean = col_totals.iter().sum::<u64>() as f64 / k;
        let var = col_totals
            .iter()
            .map(|&t| {
                let d = t as f64 - mean;
                d * d
            })
            .sum::<f64>()
            / (k - 1.0).max(1.0);
        let total_est = mean * inner as f64;
        if total_est <= 0.0 {
            0.0
        } else {
            1.96 * var.sqrt() / k.sqrt() * inner as f64 / total_est
        }
    };

    // Output-size estimate: exact symbolic SPA over sampled *rows*, then
    // extrapolate nnz(C) through the sampled compression ratio applied to
    // the exact intermediate total (which the shared block-products pass
    // already provides).
    let rows = sample_indices(nrows, config.samples.max(1), fnv_mix(seed, 0x5eed));
    let full_rows = rows.len() == nrows;
    let mut mark = vec![u32::MAX; ctx.ncols()];
    let mut sampled_products = 0u64;
    let mut sampled_unique = 0u64;
    for (stamp, &r) in rows.iter().enumerate() {
        let stamp = stamp as u32;
        let (a_cols, _) = ctx.a.row(r);
        for &k in a_cols {
            let (b_cols, _) = ctx.b.row(k as usize);
            for &j in b_cols {
                sampled_products += 1;
                if mark[j as usize] != stamp {
                    mark[j as usize] = stamp;
                    sampled_unique += 1;
                }
            }
        }
    }
    ops += sampled_products + rows.len() as u64;
    let output_total = if full_rows {
        sampled_unique as usize
    } else if sampled_products == 0 {
        0
    } else {
        let ratio = sampled_unique as f64 / sampled_products as f64;
        (ctx.intermediate_total as f64 * ratio).round() as usize
    };

    let exact = full_cols && full_rows;
    let cells = plan_instruments();
    cells.estimates.add(1);
    cells.sampled_cols.add(cols.len() as u64);
    cells.ops.add(ops);
    cells.rel_band_ppm.observe((rel_band * 1e6) as u64);
    if exact {
        cells.exact_samples.add(1);
    }
    let estimate = WorkloadEstimate {
        row_products,
        output_total,
        sampled_cols: cols.len(),
        sampled_rows: rows.len(),
        rel_band,
        ops,
        exact,
    };
    if !estimate.within(config) {
        cells.fallbacks.add(1);
    }
    estimate
}

/// Picks the expansion method for one problem from its estimated shape.
///
/// Heuristic (documented in DESIGN.md §13): dominator skew in the exact
/// block products routes to the reorganized pipeline, and so does any
/// merge-bound problem at scale (rows averaging hundreds of products with
/// enough rows for B-Limiting to matter — flat baseline mappings lose
/// there even when the blocks look balanced, e.g. FEM meshes). Otherwise
/// cheap rows go row-product, high duplicate compression goes hash,
/// near-zero compression goes ESC, and the balanced middle goes
/// outer-product.
pub fn select_method<T: Scalar>(ctx: &ProblemContext<T>, est: &WorkloadEstimate) -> MethodChoice {
    let productive = ctx.block_products.iter().filter(|&&p| p > 0).count();
    let mean_block = ctx.intermediate_total as f64 / productive.max(1) as f64;
    let max_block = ctx.block_products.iter().copied().max().unwrap_or(0) as f64;
    if productive > 0 && max_block >= 4.0 * mean_block {
        return MethodChoice::Reorganized;
    }
    let avg_row = ctx.intermediate_total as f64 / ctx.nrows().max(1) as f64;
    if avg_row <= 16.0 {
        return MethodChoice::RowProduct;
    }
    if avg_row >= 256.0 && ctx.nrows() >= 256 {
        return MethodChoice::Reorganized;
    }
    let compression = ctx.intermediate_total as f64 / est.output_total.max(1) as f64;
    if compression >= 4.0 {
        MethodChoice::Hash
    } else if compression <= 1.25 {
        MethodChoice::Esc
    } else {
        MethodChoice::OuterProduct
    }
}

/// Picks merge-bin thresholds from the estimated row-product distribution.
///
/// Starts from the width-based [`BinThresholds::recommended`] split; when
/// that width activates the hash band, the heavy cutoff is re-centred at
/// four times the estimated mean row products so typical rows stay in the
/// hash table and only true outliers pay the dense sweep. Thresholds are
/// a pure performance knob — any setting yields bit-identical output.
///
/// The kway/dense-SPA crossover (`kway_min`) is placed from the estimated
/// *compression* (intermediate products per output nonzero). The k-way
/// tournament spends ~`log2(runs)` comparisons per product but never
/// sweeps the accumulator or sorts the output, while the dense SPA pays
/// its `unique·log2(unique)` sort once per row — a cost that duplication
/// amortizes. Low compression (≲2×: nearly every product is a distinct
/// column) puts the crossover right above the dense cutoff; moderate
/// compression pushes it out so only extreme rows switch; past ~8× the
/// sort is cheap per product and the bin stays off for the problem.
pub fn select_thresholds(est: &WorkloadEstimate, ncols: usize) -> BinThresholds {
    let base = BinThresholds::recommended(ncols);
    if base.heavy_min <= base.tiny_max + 1 {
        return base; // no medium band at this width
    }
    let nrows = est.row_products.len().max(1) as u64;
    let total: u64 = est.row_products.iter().sum();
    let mean = total / nrows;
    let heavy = mean
        .saturating_mul(4)
        .next_power_of_two()
        .clamp(base.tiny_max + 2, 1 << 20);
    let compression = total as f64 / est.output_total.max(1) as f64;
    let kway_min = if compression <= 2.0 {
        heavy.saturating_mul(4)
    } else if compression <= 8.0 {
        heavy.saturating_mul(16)
    } else {
        u64::MAX
    };
    BinThresholds {
        tiny_max: base.tiny_max,
        heavy_min: heavy,
        kway_min,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use br_datasets::rmat::{rmat, RmatConfig};
    use br_sparse::CsrMatrix;

    fn ctx_of(seed: u64) -> ProblemContext<f64> {
        let a = rmat(RmatConfig::graph500(9, 8, seed)).to_csr();
        ProblemContext::new(&a, &a).unwrap()
    }

    #[test]
    fn degenerate_full_sample_equals_exact() {
        let ctx = ctx_of(7);
        let config = EstimatorConfig {
            samples: ctx.inner_dim() + 10,
            tolerance: 0.0,
        };
        let est = estimate_workload(&ctx, &config);
        assert!(est.exact);
        assert_eq!(est.row_products, ctx.row_products);
        assert_eq!(est.output_total, ctx.output_total);
        assert_eq!(est.rel_band, 0.0);
        assert!(est.within(&config));
    }

    #[test]
    fn estimates_are_deterministic_and_structure_only() {
        let ctx = ctx_of(11);
        let config = EstimatorConfig::default();
        let e1 = estimate_workload(&ctx, &config);
        let e2 = estimate_workload(&ctx, &config);
        assert_eq!(e1, e2);
        // Same structure, different values → same estimate.
        let scaled = ctx.a.map_values(|v| v * 2.5);
        let ctx2 = ProblemContext::new(&scaled, &scaled).unwrap();
        assert_eq!(estimate_workload(&ctx2, &config), e1);
        // Different sample size → different fingerprint → (almost surely)
        // different sample.
        let other = estimate_workload(
            &ctx,
            &EstimatorConfig {
                samples: 32,
                tolerance: 0.25,
            },
        );
        assert_ne!(other.sampled_cols, e1.sampled_cols);
    }

    #[test]
    fn estimate_is_cheaper_than_exact_and_roughly_right() {
        let ctx = ctx_of(3);
        let est = estimate_workload(&ctx, &EstimatorConfig::default());
        assert!(
            est.ops * 2 <= exact_plan_ops(&ctx),
            "estimate ops {} vs exact {}",
            est.ops,
            exact_plan_ops(&ctx)
        );
        let exact_total: u64 = ctx.row_products.iter().sum();
        let est_total: u64 = est.row_products.iter().sum();
        assert!(est_total > 0);
        // Crude accuracy sanity: within 4x either way.
        assert!(est_total <= exact_total * 4 && exact_total <= est_total * 4);
    }

    #[test]
    fn sampling_indices_are_distinct_sorted_and_seed_stable() {
        let s1 = sample_indices(1000, 64, 42);
        let s2 = sample_indices(1000, 64, 42);
        assert_eq!(s1, s2);
        assert_eq!(s1.len(), 64);
        assert!(s1.windows(2).all(|w| w[0] < w[1]));
        assert!(s1.iter().all(|&i| i < 1000));
        assert_ne!(sample_indices(1000, 64, 43), s1);
        assert_eq!(sample_indices(5, 64, 1), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn method_selection_covers_every_arm() {
        // Power-law squaring: dominator skew → Reorganized.
        let ctx = ctx_of(5);
        let est = estimate_workload(&ctx, &EstimatorConfig::default());
        assert_eq!(select_method(&ctx, &est), MethodChoice::Reorganized);

        // Identity: uniform single-product rows → RowProduct.
        let i = CsrMatrix::<f64>::identity(64);
        let ictx = ProblemContext::new(&i, &i).unwrap();
        let iest = estimate_workload(&ictx, &EstimatorConfig::default());
        assert_eq!(select_method(&ictx, &iest), MethodChoice::RowProduct);

        // Dense-ish uniform block: every product collides into few outputs
        // → Hash; same structure with no collisions → Esc is exercised via
        // a synthetic estimate below.
        let n = 64usize;
        let dense_row: Vec<u32> = (0..n as u32).collect();
        let ptr: Vec<usize> = (0..=n).map(|r| r * n).collect();
        let idx: Vec<u32> = (0..n).flat_map(|_| dense_row.clone()).collect();
        let val = vec![1.0f64; n * n];
        let d = CsrMatrix::try_new(n, n, ptr, idx, val).unwrap();
        let dctx = ProblemContext::new(&d, &d).unwrap();
        let dest = estimate_workload(&dctx, &EstimatorConfig::default());
        assert_eq!(select_method(&dctx, &dest), MethodChoice::Hash);

        // Synthetic no-compression estimate on the same context → Esc.
        let mut esc_est = dest.clone();
        esc_est.output_total = dctx.intermediate_total as usize;
        assert_eq!(select_method(&dctx, &esc_est), MethodChoice::Esc);

        // Moderate compression → OuterProduct.
        let mut mid_est = dest.clone();
        mid_est.output_total = (dctx.intermediate_total / 2) as usize;
        assert_eq!(select_method(&dctx, &mid_est), MethodChoice::OuterProduct);
    }

    #[test]
    fn threshold_selection_tracks_the_estimated_mean() {
        let ctx = ctx_of(9);
        let est = estimate_workload(&ctx, &EstimatorConfig::default());
        let t = select_thresholds(&est, ctx.ncols());
        // Small width → recommended split (no medium band), untouched.
        assert_eq!(t, BinThresholds::recommended(ctx.ncols()));

        // Wide problem with the hash band active: cutoff follows the mean.
        let wide = WorkloadEstimate {
            row_products: vec![100; 10],
            output_total: 500,
            sampled_cols: 4,
            sampled_rows: 4,
            rel_band: 0.1,
            ops: 10,
            exact: false,
        };
        let tw = select_thresholds(&wide, 1 << 20);
        assert_eq!(tw.tiny_max, BinThresholds::default().tiny_max);
        assert_eq!(tw.heavy_min, 512); // next_power_of_two(400)

        // Compression 1000/500 = 2x: barely any duplication, so the
        // kway crossover sits right above the dense cutoff.
        assert_eq!(tw.kway_min, 512 * 4);

        // Moderate duplication pushes the crossover out 16x...
        let mid = WorkloadEstimate {
            output_total: 250,
            ..wide.clone()
        };
        assert_eq!(select_thresholds(&mid, 1 << 20).kway_min, 512 * 16);

        // ...and heavy duplication (>8x) keeps the kway bin off.
        let dup = WorkloadEstimate {
            output_total: 100,
            ..wide.clone()
        };
        assert_eq!(select_thresholds(&dup, 1 << 20).kway_min, u64::MAX);
        assert!(!select_thresholds(&dup, 1 << 20).kway_enabled());
    }

    #[test]
    fn global_estimator_override_round_trips() {
        let custom = EstimatorOverride {
            config: EstimatorConfig {
                samples: 16,
                tolerance: 0.5,
            },
            enabled: false,
        };
        set_global_estimator(Some(custom));
        assert_eq!(effective_estimator(), custom);
        set_global_estimator(None);
        assert_eq!(effective_estimator(), EstimatorOverride::default());
        assert!(effective_estimator().enabled);
    }

    #[test]
    fn fingerprint_separates_configs() {
        let a = EstimatorConfig::default().fingerprint();
        let b = EstimatorConfig {
            samples: 65,
            tolerance: 0.25,
        }
        .fingerprint();
        let c = EstimatorConfig {
            samples: 64,
            tolerance: 0.26,
        }
        .fingerprint();
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, EstimatorConfig::default().fingerprint());
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(16))]
        /// Property: estimator-driven thresholds and bins never change the
        /// numeric result. For arbitrary power-law matrices, sample sizes
        /// (including the degenerate full sample `k >= inner_dim`, where
        /// the estimate IS the exact precalculation), and thread counts,
        /// the adaptive merge over estimated bins is bit-for-bit the
        /// dense-SPA reference — estimation only moves performance knobs.
        #[test]
        fn prop_estimated_bins_bit_identical(
            seed in 0u64..1000,
            samples in 1usize..700,
            threads in 1usize..10,
        ) {
            let a = rmat(RmatConfig::graph500(8, 6, seed)).to_csr();
            let ctx = ProblemContext::new(&a, &a).unwrap();
            let config = EstimatorConfig { samples, tolerance: 10.0 };
            let est = estimate_workload(&ctx, &config);
            if samples >= ctx.inner_dim() {
                proptest::prop_assert!(est.exact);
                proptest::prop_assert_eq!(&est.row_products, &ctx.row_products);
                proptest::prop_assert_eq!(est.output_total, ctx.output_total);
                proptest::prop_assert_eq!(est.rel_band, 0.0);
            }
            let _ = select_method(&ctx, &est);
            let thresholds = select_thresholds(&est, ctx.b.ncols());
            let bins = crate::accum::RowBins::classify(&est.row_products, thresholds);
            let planned =
                crate::accum::spgemm_adaptive_planned(&a, &a, threads, &bins, None).unwrap();
            let reference = crate::numeric::spgemm_dense_spa(&a, &a).unwrap();
            proptest::prop_assert_eq!(planned, reference);
        }
    }
}
