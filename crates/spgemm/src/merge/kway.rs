//! SpArch-style k-way tournament merge trace (the kway bin's kernel).
//!
//! One thread block per kway row: the block streams the row's sorted
//! partial-product runs from `Ĉ` (one run per A-row nonzero) through a
//! tournament (loser) tree kept in shared memory and writes the winners
//! straight to `C` in column order. Against the Gustavson dense-accumulator
//! kernel this trades:
//!
//! * **no atomics** — a single merger owns the row, so there is no
//!   conflict-serialized accumulator traffic;
//! * **no gather** — output streams out of the tree already sorted, so the
//!   unique-entry sweep over the dense array disappears;
//!
//! for `~log2(runs)` comparator levels per product and a tournament tree
//! resident in shared memory (which, like B-Limiting, lowers how many such
//! blocks co-reside on an SM). The crossover against the dense SPA
//! therefore sits where duplication is low and runs are few relative to
//! the row's product count — exactly what `select_thresholds` models on
//! the host side, and what the `kway` bench suite sweeps across the
//! dataset grid.

use crate::accum::{RowBin, RowBins};
use crate::context::ProblemContext;
use crate::merge::gustavson::gustavson_merge_launch_filtered;
use crate::workspace::{Workspace, ELEM_BYTES};
use br_gpu_sim::trace::{KernelLaunch, TraceBuilder};
use br_sparse::Scalar;

/// Shared-memory bytes for a tournament tree over `runs` runs: one 8-byte
/// key plus one 4-byte loser index per leaf slot (padded to a power of
/// two), like the host-side `MergeScratch` layout.
fn tree_smem_bytes(runs: u64) -> u32 {
    let slots = runs.max(1).next_power_of_two();
    (slots.saturating_mul(12)).min(u32::MAX as u64) as u32
}

/// Builds the k-way merge launch over exactly the rows `bins` puts in the
/// kway bin. Output offsets advance over every productive row, so each
/// block writes the same `C` slice as its counterpart in the (filtered)
/// Gustavson launch.
#[allow(clippy::needless_range_loop)] // r is the row id, used across several per-row arrays
pub fn kway_merge_launch<T: Scalar>(
    ctx: &ProblemContext<T>,
    ws: &Workspace,
    block_size: u32,
    chat_row_major: bool,
    bins: &RowBins,
    extra_smem_for_row: impl Fn(usize) -> u32,
) -> KernelLaunch {
    let chat_rows = ctx.chat_row_offsets();
    let mut c_written = 0u64;
    let mut blocks = Vec::new();
    for r in 0..ctx.nrows() {
        let products = ctx.row_products[r];
        if products == 0 {
            continue;
        }
        let unique = ctx.row_unique[r] as u64;
        if bins.bin(r) != RowBin::Kway {
            c_written += unique;
            continue;
        }
        let runs = ctx.a.row_nnz(r).max(1) as u64;
        // Replay path length of the loser tree: log2 of the padded leaf
        // count, at least one comparator level per product.
        let depth = (runs.next_power_of_two().trailing_zeros() as u64).max(1);
        let effective = products.min(block_size as u64) as u32;
        let coarsen = products.div_ceil(block_size as u64).max(1);

        let mut tb = TraceBuilder::new(block_size, effective)
            // ~log2(runs) comparisons per product through the tree.
            .compute(coarsen * depth)
            .barriers(2)
            .shared_mem(extra_smem_for_row(r) + tree_smem_bytes(runs))
            // Winners stream straight to C — no accumulator, no gather.
            .write(ws.c_data, c_written * ELEM_BYTES, unique * ELEM_BYTES);
        tb = if chat_row_major {
            // Row-major Ĉ: the row's runs are contiguous, streamed once.
            tb.read(ws.chat, chat_rows[r] * ELEM_BYTES, products * ELEM_BYTES)
        } else {
            tb.gather(
                ws.chat,
                0,
                ctx.intermediate_total.max(1) * ELEM_BYTES,
                products,
                ELEM_BYTES as u32,
            )
        };
        blocks.push(tb.build());
        c_written += unique;
    }
    KernelLaunch::new("kway-merge", blocks)
}

/// The bin-dispatched merge phase: the Gustavson launch over tiny, medium,
/// and heavy rows, plus — only when the plan's bins route rows there — the
/// k-way tournament launch over kway rows. With an empty kway bin this is
/// exactly the single unfiltered Gustavson launch, byte-identical traces
/// included, so kway-off plans simulate precisely as before.
pub fn binned_merge_launches<T: Scalar>(
    ctx: &ProblemContext<T>,
    ws: &Workspace,
    block_size: u32,
    chat_row_major: bool,
    bins: &RowBins,
    extra_smem_for_row: impl Fn(usize) -> u32 + Copy,
) -> Vec<KernelLaunch> {
    if bins.kway_rows() == 0 {
        return vec![gustavson_merge_launch_filtered(
            ctx,
            ws,
            block_size,
            chat_row_major,
            extra_smem_for_row,
            |_| false,
        )];
    }
    vec![
        gustavson_merge_launch_filtered(
            ctx,
            ws,
            block_size,
            chat_row_major,
            extra_smem_for_row,
            |r| bins.bin(r) == RowBin::Kway,
        ),
        kway_merge_launch(
            ctx,
            ws,
            block_size,
            chat_row_major,
            bins,
            extra_smem_for_row,
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::accum::BinThresholds;
    use crate::merge::gustavson::gustavson_merge_launch;
    use br_datasets::rmat::{rmat, RmatConfig};

    fn ctx() -> ProblemContext<f64> {
        let a = rmat(RmatConfig::graph500(8, 8, 5)).to_csr();
        ProblemContext::new(&a, &a).unwrap()
    }

    fn bins_of(ctx: &ProblemContext<f64>, thresholds: BinThresholds) -> RowBins {
        RowBins::classify(&ctx.row_products, thresholds)
    }

    #[test]
    fn empty_kway_bin_reduces_to_the_plain_gustavson_launch() {
        let c = ctx();
        let ws = Workspace::for_context(&c);
        let bins = bins_of(&c, BinThresholds::default());
        assert_eq!(bins.kway_rows(), 0);
        let launches = binned_merge_launches(&c, &ws, 256, true, &bins, |_| 0);
        assert_eq!(launches.len(), 1);
        let plain = gustavson_merge_launch(&c, &ws, 256, true, |_| 0);
        assert_eq!(launches[0].blocks, plain.blocks);
        assert_eq!(launches[0].name, plain.name);
    }

    #[test]
    fn kway_rows_split_out_with_no_atomics_and_tree_smem() {
        let c = ctx();
        let ws = Workspace::for_context(&c);
        let thresholds = BinThresholds {
            tiny_max: 8,
            heavy_min: 64,
            kway_min: 256,
        };
        let bins = bins_of(&c, thresholds);
        assert!(bins.kway_rows() > 0, "grid must produce kway rows");
        let launches = binned_merge_launches(&c, &ws, 256, true, &bins, |_| 0);
        assert_eq!(launches.len(), 2);
        let kway_blocks = bins.kway_rows() as usize;
        let productive = (0..c.nrows()).filter(|&r| c.row_products[r] > 0).count();
        assert_eq!(launches[1].blocks.len(), kway_blocks);
        assert_eq!(launches[0].blocks.len(), productive - kway_blocks);
        for b in &launches[1].blocks {
            assert_eq!(b.atomics, 0, "the tournament merge never uses atomics");
            assert!(b.shared_mem_bytes >= 12, "tree must reserve shared memory");
        }
    }

    #[test]
    fn output_writes_cover_nnz_c_across_both_launches() {
        let c = ctx();
        let ws = Workspace::for_context(&c);
        let thresholds = BinThresholds {
            tiny_max: 8,
            heavy_min: 64,
            kway_min: 256,
        };
        let bins = bins_of(&c, thresholds);
        let launches = binned_merge_launches(&c, &ws, 256, true, &bins, |_| 0);
        let c_bytes: u64 = launches
            .iter()
            .flat_map(|l| &l.blocks)
            .flat_map(|b| &b.segments)
            .filter(|s| s.write && !s.atomic && s.region == ws.c_data)
            .map(|s| s.bytes)
            .sum();
        assert_eq!(c_bytes, c.output_total as u64 * ELEM_BYTES);
    }

    #[test]
    fn tree_smem_grows_with_padded_run_count() {
        assert_eq!(tree_smem_bytes(1), 12);
        assert_eq!(tree_smem_bytes(2), 24);
        assert_eq!(tree_smem_bytes(5), 96);
        assert_eq!(tree_smem_bytes(0), 12);
    }
}
