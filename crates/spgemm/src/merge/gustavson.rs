//! Gustavson dense-accumulator merge (Section III-A.3).
//!
//! One thread block per non-empty output row: the block streams the row's
//! intermediate products from `Ĉ`, accumulates them into a dense scratch
//! array with atomics ("we used atomic functions to manage parallel
//! execution"), then writes the unique entries to `C`.
//!
//! Two knobs reproduce the paper's observations:
//!
//! * `chat_row_major` — when the expansion left `Ĉ` in block-major (plain
//!   outer product) form, the row's products are scattered across the whole
//!   intermediate array and the reads become random ("full matrix-wise
//!   accumulation may be slower than row-wise accumulation owing to the
//!   additional column address indexing").
//! * `extra_smem_for_row` — B-Limiting: extra shared memory allocated to
//!   blocks merging long rows, reducing how many such blocks co-reside on
//!   an SM (Figure 7).

use crate::context::ProblemContext;
use crate::workspace::{Workspace, ELEM_BYTES};
use br_gpu_sim::trace::{KernelLaunch, TraceBuilder};
use br_sparse::Scalar;

/// Builds the merge launch.
///
/// `extra_smem_for_row(r)` returns the *additional* shared-memory bytes for
/// the block merging row `r` (0 disables limiting for that row).
pub fn gustavson_merge_launch<T: Scalar>(
    ctx: &ProblemContext<T>,
    ws: &Workspace,
    block_size: u32,
    chat_row_major: bool,
    extra_smem_for_row: impl Fn(usize) -> u32,
) -> KernelLaunch {
    gustavson_merge_launch_filtered(
        ctx,
        ws,
        block_size,
        chat_row_major,
        extra_smem_for_row,
        |_| false,
    )
}

/// [`gustavson_merge_launch`] minus the rows `skip` claims — the
/// bin-dispatched merge routes those through the k-way tournament kernel
/// instead. Output offsets still advance over *every* productive row, so
/// each block writes to the same `C` slice it would in the unfiltered
/// launch; with a never-skip predicate the launch is identical to
/// [`gustavson_merge_launch`].
#[allow(clippy::needless_range_loop)] // r is the row id, used across several per-row arrays
pub fn gustavson_merge_launch_filtered<T: Scalar>(
    ctx: &ProblemContext<T>,
    ws: &Workspace,
    block_size: u32,
    chat_row_major: bool,
    extra_smem_for_row: impl Fn(usize) -> u32,
    skip: impl Fn(usize) -> bool,
) -> KernelLaunch {
    let chat_rows = ctx.chat_row_offsets();
    let mut c_written = 0u64;
    let mut blocks = Vec::new();
    for r in 0..ctx.nrows() {
        let products = ctx.row_products[r];
        if products == 0 {
            continue;
        }
        if skip(r) {
            c_written += ctx.row_unique[r] as u64;
            continue;
        }
        let unique = ctx.row_unique[r] as u64;
        let effective = products.min(block_size as u64) as u32;
        let coarsen = products.div_ceil(block_size as u64).max(1);
        let (acc_off, acc_len) = ws.accum_slice(blocks.len());
        let conflict = products as f64 / unique.max(1) as f64;

        let mut tb = TraceBuilder::new(block_size, effective)
            // Index comparison / accumulation bookkeeping per product.
            .compute(coarsen)
            .barriers(2)
            .shared_mem(extra_smem_for_row(r))
            // Accumulate every product with an atomic into the dense array.
            .atomic_scatter(ws.accum, acc_off, acc_len, products, 8, conflict)
            // Gather the unique entries back out and stream them to C.
            .gather(ws.accum, acc_off, acc_len, unique, 8)
            .write(ws.c_data, c_written * ELEM_BYTES, unique * ELEM_BYTES);
        tb = if chat_row_major {
            tb.read(ws.chat, chat_rows[r] * ELEM_BYTES, products * ELEM_BYTES)
        } else {
            // Block-major Ĉ: this row's products are strewn across the
            // entire intermediate array.
            tb.gather(
                ws.chat,
                0,
                ctx.intermediate_total.max(1) * ELEM_BYTES,
                products,
                ELEM_BYTES as u32,
            )
        };
        blocks.push(tb.build());
        c_written += unique;
    }
    KernelLaunch::new("gustavson-merge", blocks)
}

#[cfg(test)]
mod tests {
    use super::*;
    use br_sparse::CsrMatrix;

    fn ctx() -> ProblemContext<f64> {
        let a = CsrMatrix::try_new(
            3,
            3,
            vec![0, 2, 3, 5],
            vec![0, 2, 1, 0, 1],
            vec![1.0, 2.0, 3.0, 4.0, 5.0],
        )
        .unwrap();
        ProblemContext::new(&a, &a).unwrap()
    }

    #[test]
    fn one_block_per_productive_row_and_atomics_cover_products() {
        let c = ctx();
        let ws = Workspace::for_context(&c);
        let k = gustavson_merge_launch(&c, &ws, 256, true, |_| 0);
        assert_eq!(k.blocks.len(), 3);
        let atomics: u64 = k.blocks.iter().map(|b| b.atomics).sum();
        assert_eq!(atomics, c.intermediate_total);
    }

    #[test]
    fn output_writes_cover_nnz_c() {
        let c = ctx();
        let ws = Workspace::for_context(&c);
        let k = gustavson_merge_launch(&c, &ws, 256, true, |_| 0);
        let c_bytes: u64 = k
            .blocks
            .iter()
            .flat_map(|b| &b.segments)
            .filter(|s| s.write && !s.atomic && s.region == ws.c_data)
            .map(|s| s.bytes)
            .sum();
        assert_eq!(c_bytes, c.output_total as u64 * ELEM_BYTES);
    }

    #[test]
    fn block_major_reads_are_random_row_major_coalesced() {
        let c = ctx();
        let ws = Workspace::for_context(&c);
        let row = gustavson_merge_launch(&c, &ws, 256, true, |_| 0);
        let blockm = gustavson_merge_launch(&c, &ws, 256, false, |_| 0);
        let is_random = |b: &br_gpu_sim::trace::BlockTrace| {
            b.segments.iter().any(|s| {
                s.region == ws.chat
                    && matches!(s.pattern, br_gpu_sim::trace::AccessPattern::Random { .. })
            })
        };
        assert!(row.blocks.iter().all(|b| !is_random(b)));
        assert!(blockm.blocks.iter().all(is_random));
    }

    #[test]
    fn limiting_sets_extra_shared_memory_selectively() {
        let c = ctx();
        let ws = Workspace::for_context(&c);
        // Limit only row 0.
        let k = gustavson_merge_launch(&c, &ws, 256, true, |r| if r == 0 { 4 * 6144 } else { 0 });
        assert_eq!(k.blocks[0].shared_mem_bytes, 4 * 6144);
        assert!(k.blocks[1..].iter().all(|b| b.shared_mem_bytes == 0));
    }

    #[test]
    fn atomic_conflict_is_duplicates_per_output() {
        let c = ctx();
        let ws = Workspace::for_context(&c);
        let k = gustavson_merge_launch(&c, &ws, 256, true, |_| 0);
        for (b, r) in k.blocks.iter().zip([0usize, 1, 2]) {
            let expect = c.row_products[r] as f64 / c.row_unique[r].max(1) as f64;
            assert!((b.atomic_conflict - expect).abs() < 1e-9);
        }
    }
}
