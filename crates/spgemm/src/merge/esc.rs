//! ESC merge: sort `Ĉ` globally, then compress — CUSP's strategy.
//!
//! The sort is a multi-pass LSD radix sort over the (row, column) keys of
//! the intermediate array: every pass streams all of `Ĉ` in and out of
//! global memory, which is why ESC's cost explodes with `nnz(Ĉ)` and why
//! CUSP trails every other method on large inputs (Figure 8, 0.22×).

use crate::context::ProblemContext;
use crate::workspace::{Workspace, ELEM_BYTES};
use br_gpu_sim::trace::{KernelLaunch, TraceBuilder};
use br_sparse::Scalar;

/// Radix passes: 8 bits per pass over the 48-bit `(row, column)` composite
/// keys CUSP sorts by.
pub const RADIX_PASSES: usize = 6;

/// Work (elements of `Ĉ`) per sorting block.
const SORT_TILE: u64 = 4096;

/// Builds the ESC merge launches: `RADIX_PASSES` sort kernels followed by a
/// compress (segmented-reduction) kernel.
pub fn esc_merge_launches<T: Scalar>(
    ctx: &ProblemContext<T>,
    ws: &Workspace,
    block_size: u32,
) -> Vec<KernelLaunch> {
    let total = ctx.intermediate_total;
    let mut launches = Vec::with_capacity(RADIX_PASSES + 1);
    if total == 0 {
        return launches;
    }
    let tiles = total.div_ceil(SORT_TILE);

    for pass in 0..RADIX_PASSES {
        let mut blocks = Vec::with_capacity(tiles as usize);
        for t in 0..tiles {
            let start = t * SORT_TILE;
            let len = SORT_TILE.min(total - start);
            blocks.push(
                TraceBuilder::new(block_size, block_size)
                    // Histogram + rank + scatter ≈ 3 ops per element.
                    .compute(3 * len.div_ceil(block_size as u64))
                    .read(ws.chat, start * ELEM_BYTES, len * ELEM_BYTES)
                    // Scatter to radix buckets: effectively random at pass
                    // granularity (bucket destinations interleave globally).
                    .atomic_scatter(ws.chat, 0, total * ELEM_BYTES, len, ELEM_BYTES as u32, 1.0)
                    .barriers(3)
                    .shared_mem(block_size * 16)
                    .build(),
            );
        }
        launches.push(KernelLaunch::new(format!("esc-sort-pass{pass}"), blocks));
    }

    // Compress: stream the sorted array once, reduce runs, write C. Each
    // tile's share of the `output_total` unique entries is apportioned
    // proportionally to its position in the sorted stream:
    // `u_t = floor(output·(start+len)/total) − floor(output·start/total)`.
    // The telescoping sum makes Σ u_t == output_total exactly (no truncated
    // remainder), and each share is ≤ the tile's input length.
    let mut c_written = 0u64;
    let mut blocks = Vec::with_capacity(tiles as usize);
    let output = ctx.output_total as u128;
    for t in 0..tiles {
        let start = t * SORT_TILE;
        let len = SORT_TILE.min(total - start);
        let unique = (output * (start + len) as u128 / total as u128
            - output * start as u128 / total as u128) as u64;
        let mut tb = TraceBuilder::new(block_size, block_size)
            .compute(2 * len.div_ceil(block_size as u64))
            .read(ws.chat, start * ELEM_BYTES, len * ELEM_BYTES);
        if unique > 0 {
            tb = tb.write(ws.c_data, c_written * ELEM_BYTES, unique * ELEM_BYTES);
        }
        blocks.push(tb.barriers(2).build());
        c_written += unique;
    }
    debug_assert_eq!(c_written, ctx.output_total as u64);
    launches.push(KernelLaunch::new("esc-compress", blocks));
    launches
}

#[cfg(test)]
mod tests {
    use super::*;
    use br_datasets::rmat::{rmat, RmatConfig};
    use br_sparse::CsrMatrix;

    fn ctx() -> ProblemContext<f64> {
        let a = rmat(RmatConfig::uniform(8, 8, 3)).to_csr();
        ProblemContext::new(&a, &a).unwrap()
    }

    #[test]
    fn pass_count_is_radix_plus_compress() {
        let c = ctx();
        let ws = Workspace::for_context(&c);
        let launches = esc_merge_launches(&c, &ws, 256);
        assert_eq!(launches.len(), RADIX_PASSES + 1);
    }

    #[test]
    fn each_sort_pass_streams_all_of_chat() {
        let c = ctx();
        let ws = Workspace::for_context(&c);
        let launches = esc_merge_launches(&c, &ws, 256);
        for pass in &launches[..RADIX_PASSES] {
            let read: u64 = pass.blocks.iter().map(|b| b.bytes_read()).sum();
            let written: u64 = pass.blocks.iter().map(|b| b.bytes_written()).sum();
            assert_eq!(read, c.intermediate_total * ELEM_BYTES);
            assert_eq!(written, c.intermediate_total * ELEM_BYTES);
        }
    }

    #[test]
    fn esc_traffic_dwarfs_single_pass_merge() {
        // Total ESC bytes ≈ (2·passes + 1) × chat — the cost blow-up the
        // paper's Figure 8 shows for CUSP.
        let c = ctx();
        let ws = Workspace::for_context(&c);
        let launches = esc_merge_launches(&c, &ws, 256);
        let total: u64 = launches
            .iter()
            .flat_map(|k| &k.blocks)
            .map(|b| b.bytes_read() + b.bytes_written())
            .sum();
        let chat_bytes = c.intermediate_total * ELEM_BYTES;
        assert!(total >= (2 * RADIX_PASSES as u64) * chat_bytes);

        // The compress pass emits exactly nnz(C): remainder distribution
        // must not truncate (output_total % tiles used to go missing).
        let compress = launches.last().unwrap();
        let compress_written: u64 = compress.blocks.iter().map(|b| b.bytes_written()).sum();
        assert_eq!(compress_written, c.output_total as u64 * ELEM_BYTES);
    }

    #[test]
    fn empty_problem_produces_no_launches() {
        let z = CsrMatrix::<f64>::zeros(4, 4);
        let c = ProblemContext::new(&z, &z).unwrap();
        let ws = Workspace::for_context(&c);
        assert!(esc_merge_launches(&c, &ws, 256).is_empty());
    }
}
