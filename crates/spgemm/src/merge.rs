//! Merge-phase trace generators.

pub mod esc;
pub mod gustavson;

pub use esc::esc_merge_launches;
pub use gustavson::gustavson_merge_launch;
