//! Merge-phase trace generators.

pub mod esc;
pub mod gustavson;
pub mod kway;

pub use esc::esc_merge_launches;
pub use gustavson::{gustavson_merge_launch, gustavson_merge_launch_filtered};
pub use kway::{binned_merge_launches, kway_merge_launch};
