//! Device-memory layout of one spGEMM invocation.
//!
//! Mirrors what the CUDA implementation would `cudaMalloc`: the operand
//! arrays, the intermediate matrix `Ĉ` (sized by the precalculated
//! `nnz(Ĉ)` — "Block reorganizer first calculates nnz(Ĉ) to allocate the
//! upper bound memory space", Section IV-B), the output `C`, and the dense
//! accumulator scratch used by the Gustavson merge.
//!
//! Sparse elements are modelled as 12 bytes (4-byte column index + 8-byte
//! value); pointer arrays as 8 bytes per entry.

use crate::context::ProblemContext;
use br_gpu_sim::trace::{MemoryLayout, RegionId};
use br_sparse::Scalar;

/// Bytes per stored sparse element (u32 index + f64 value).
pub const ELEM_BYTES: u64 = 12;
/// Bytes per row/column pointer entry.
pub const PTR_BYTES: u64 = 8;
/// Bytes per dense-accumulator slot.
pub const ACC_BYTES: u64 = 8;
/// Dense-accumulator slices allocated (bounded by resident merge blocks).
pub const ACC_SLICES: u64 = 64;

/// Region handles for one multiplication.
#[derive(Debug, Clone)]
pub struct Workspace {
    /// The flat address map handed to the simulator.
    pub layout: MemoryLayout,
    /// `A` in CSR element order (idx+val interleaved).
    pub a_data: RegionId,
    /// `A` in CSC element order.
    pub a_csc_data: RegionId,
    /// `A` row/column pointers.
    pub a_ptr: RegionId,
    /// `B` in CSR element order.
    pub b_data: RegionId,
    /// `B` row pointers.
    pub b_ptr: RegionId,
    /// Intermediate `Ĉ` elements.
    pub chat: RegionId,
    /// Output `C` elements.
    pub c_data: RegionId,
    /// Dense accumulator scratch (`ACC_SLICES` slices of `ncols` slots).
    pub accum: RegionId,
    /// Columns of the output (accumulator slice length in slots).
    ncols: u64,
}

impl Workspace {
    /// Lays out all regions for the given problem.
    pub fn for_context<T: Scalar>(ctx: &ProblemContext<T>) -> Self {
        let mut layout = MemoryLayout::new();
        let a_data = layout.alloc(ctx.a.nnz() as u64 * ELEM_BYTES);
        let a_csc_data = layout.alloc(ctx.a.nnz() as u64 * ELEM_BYTES);
        let a_ptr = layout.alloc((ctx.a.nrows() as u64 + 1) * PTR_BYTES);
        let b_data = layout.alloc(ctx.b.nnz() as u64 * ELEM_BYTES);
        let b_ptr = layout.alloc((ctx.b.nrows() as u64 + 1) * PTR_BYTES);
        let chat = layout.alloc(ctx.intermediate_total.max(1) * ELEM_BYTES);
        let c_data = layout.alloc(ctx.output_total.max(1) as u64 * ELEM_BYTES);
        let ncols = ctx.ncols() as u64;
        let accum = layout.alloc(ncols.max(1) * ACC_BYTES * ACC_SLICES);
        Workspace {
            layout,
            a_data,
            a_csc_data,
            a_ptr,
            b_data,
            b_ptr,
            chat,
            c_data,
            accum,
            ncols,
        }
    }

    /// Byte offset of CSR row `r` of `A` within [`Workspace::a_data`].
    pub fn a_row_offset<T: Scalar>(&self, ctx: &ProblemContext<T>, r: usize) -> u64 {
        ctx.a.ptr()[r] as u64 * ELEM_BYTES
    }

    /// Byte offset of CSC column `i` of `A` within [`Workspace::a_csc_data`].
    pub fn a_col_offset<T: Scalar>(&self, ctx: &ProblemContext<T>, i: usize) -> u64 {
        ctx.a_csc.ptr()[i] as u64 * ELEM_BYTES
    }

    /// Byte offset of CSR row `i` of `B` within [`Workspace::b_data`].
    pub fn b_row_offset<T: Scalar>(&self, ctx: &ProblemContext<T>, i: usize) -> u64 {
        ctx.b.ptr()[i] as u64 * ELEM_BYTES
    }

    /// Accumulator slice for merge block `block_id`: `(offset, len_bytes)`.
    pub fn accum_slice(&self, block_id: usize) -> (u64, u64) {
        let slice_bytes = self.ncols.max(1) * ACC_BYTES;
        let slot = block_id as u64 % ACC_SLICES;
        (slot * slice_bytes, slice_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use br_sparse::CsrMatrix;

    fn ctx() -> ProblemContext<f64> {
        let a = CsrMatrix::try_new(
            3,
            3,
            vec![0, 2, 3, 5],
            vec![0, 2, 1, 0, 1],
            vec![1.0, 2.0, 3.0, 4.0, 5.0],
        )
        .unwrap();
        ProblemContext::new(&a, &a).unwrap()
    }

    #[test]
    fn regions_are_distinct_and_sized() {
        let c = ctx();
        let ws = Workspace::for_context(&c);
        assert_eq!(ws.layout.size(ws.a_data), 5 * ELEM_BYTES);
        assert_eq!(ws.layout.size(ws.chat), c.intermediate_total * ELEM_BYTES);
        assert_ne!(ws.layout.base(ws.a_data), ws.layout.base(ws.b_data));
        assert_eq!(ws.layout.size(ws.accum), 3 * ACC_BYTES * ACC_SLICES);
    }

    #[test]
    fn offsets_follow_pointers() {
        let c = ctx();
        let ws = Workspace::for_context(&c);
        assert_eq!(ws.a_row_offset(&c, 0), 0);
        assert_eq!(ws.a_row_offset(&c, 2), 3 * ELEM_BYTES);
        assert_eq!(ws.b_row_offset(&c, 1), 2 * ELEM_BYTES);
        // CSC of a: col0 has 2 entries (rows 0,2), col1 has 2, col2 has 1
        assert_eq!(ws.a_col_offset(&c, 1), 2 * ELEM_BYTES);
        assert_eq!(ws.a_col_offset(&c, 2), 4 * ELEM_BYTES);
    }

    #[test]
    fn accum_slices_wrap_around() {
        let c = ctx();
        let ws = Workspace::for_context(&c);
        let (o0, len) = ws.accum_slice(0);
        let (o64, _) = ws.accum_slice(ACC_SLICES as usize);
        assert_eq!(o0, o64);
        let (o1, _) = ws.accum_slice(1);
        assert_eq!(o1, len);
    }

    #[test]
    fn empty_problem_still_lays_out() {
        let a = CsrMatrix::<f64>::zeros(2, 2);
        let c = ProblemContext::new(&a, &a).unwrap();
        let ws = Workspace::for_context(&c);
        assert!(ws.layout.footprint() > 0);
    }
}
