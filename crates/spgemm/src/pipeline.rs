//! Run orchestration: execute a method's kernels on a device, collect
//! phase profiles, and report the paper's metrics (time, GFLOPS).
//!
//! Timing convention follows Section V: "All experimental results include
//! the overhead, except the data transfer time between host and the device"
//! — so preprocessing (simulated on GPU or host) counts, transfers don't.

use crate::context::ProblemContext;
use crate::methods;
use br_gpu_sim::device::DeviceConfig;
use br_gpu_sim::profiler::KernelProfile;
use br_gpu_sim::sim::GpuSimulator;
use br_gpu_sim::trace::{KernelLaunch, MemoryLayout};
use br_sparse::{CsrMatrix, Scalar};

/// The baseline method zoo (the Block Reorganizer is added by
/// `crates/core`, which builds on the same plumbing).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpgemmMethod {
    /// Row-product expansion + Gustavson merge — the paper's primary
    /// baseline (all Figure 8 numbers are normalized to it).
    RowProduct,
    /// Outer-product expansion + matrix-form merge — the scheme the Block
    /// Reorganizer optimizes.
    OuterProduct,
    /// cuSPARSE-like: two-phase row-product, warp per row, hash merge.
    CusparseLike,
    /// CUSP-like: expand–sort–compress.
    CuspEsc,
    /// bhSPARSE-like: bin-by-upper-bound hybrid row-product.
    BhsparseLike,
    /// Intel MKL-like multithreaded CPU Gustavson.
    MklLike,
}

impl SpgemmMethod {
    /// Display name matching the paper's figure legends.
    pub fn name(self) -> &'static str {
        match self {
            SpgemmMethod::RowProduct => "row-product",
            SpgemmMethod::OuterProduct => "outer-product",
            SpgemmMethod::CusparseLike => "cuSPARSE",
            SpgemmMethod::CuspEsc => "CUSP",
            SpgemmMethod::BhsparseLike => "bhSPARSE",
            SpgemmMethod::MklLike => "MKL",
        }
    }

    /// All six baselines in Figure 8 legend order.
    pub fn all() -> [SpgemmMethod; 6] {
        [
            SpgemmMethod::RowProduct,
            SpgemmMethod::OuterProduct,
            SpgemmMethod::CusparseLike,
            SpgemmMethod::CuspEsc,
            SpgemmMethod::BhsparseLike,
            SpgemmMethod::MklLike,
        ]
    }
}

/// Outcome of one simulated multiplication.
#[derive(Debug, Clone)]
pub struct SpgemmRun<T> {
    /// Method display name.
    pub method: String,
    /// The numeric result (canonical CSR), really computed by the method's
    /// own merge arithmetic.
    pub result: CsrMatrix<T>,
    /// Per-kernel profiles (expansion, merge, preprocessing kernels …).
    pub profiles: Vec<KernelProfile>,
    /// Host-side preprocessing time in ms (0 for most methods; B-Splitting
    /// preprocessing for the reorganizer).
    pub preprocess_ms: f64,
    /// Total time in ms (kernels + preprocessing).
    pub total_ms: f64,
    /// FLOP count (`2·nnz(Ĉ)`).
    pub flops: u64,
}

impl<T> SpgemmRun<T> {
    /// Sum of kernel times in ms.
    pub fn kernel_ms(&self) -> f64 {
        self.profiles.iter().map(|p| p.time_ms).sum()
    }

    /// Achieved GFLOPS over the total time — the Figure 9 metric.
    pub fn gflops(&self) -> f64 {
        if self.total_ms <= 0.0 {
            0.0
        } else {
            self.flops as f64 / (self.total_ms * 1e-3) / 1e9
        }
    }

    /// Time of the profile whose name contains `tag`, in ms (0 if absent).
    pub fn phase_ms(&self, tag: &str) -> f64 {
        self.profiles
            .iter()
            .filter(|p| p.name.contains(tag))
            .map(|p| p.time_ms)
            .sum()
    }
}

/// Executes a sequence of launches (shared L2) and assembles a run.
pub fn assemble_run<T: Scalar>(
    method: &str,
    result: CsrMatrix<T>,
    launches: &[KernelLaunch],
    layout: &MemoryLayout,
    device: &DeviceConfig,
    preprocess_ms: f64,
    flops: u64,
) -> SpgemmRun<T> {
    assemble_run_on(
        &GpuSimulator::new(device.clone()),
        method,
        result,
        launches,
        layout,
        preprocess_ms,
        flops,
    )
}

/// [`assemble_run`] against a caller-owned simulator — the `br-service`
/// worker pool keeps one [`GpuSimulator`] per worker and executes many
/// prebuilt launch sequences (reorganization plans) against it. Each call
/// still starts from a cold L2, matching [`GpuSimulator::run_sequence`].
pub fn assemble_run_on<T: Scalar>(
    sim: &GpuSimulator,
    method: &str,
    result: CsrMatrix<T>,
    launches: &[KernelLaunch],
    layout: &MemoryLayout,
    preprocess_ms: f64,
    flops: u64,
) -> SpgemmRun<T> {
    let profiles = sim.run_sequence(launches, layout);
    let kernel_ms: f64 = profiles.iter().map(|p| p.time_ms).sum();
    SpgemmRun {
        method: method.to_string(),
        result,
        profiles,
        preprocess_ms,
        total_ms: kernel_ms + preprocess_ms,
        flops,
    }
}

/// Runs one baseline method on one device.
pub fn run_method<T: Scalar>(
    ctx: &ProblemContext<T>,
    method: SpgemmMethod,
    device: &DeviceConfig,
) -> br_sparse::Result<SpgemmRun<T>> {
    match method {
        SpgemmMethod::RowProduct => methods::row_product::run(ctx, device),
        SpgemmMethod::OuterProduct => methods::outer_product::run(ctx, device),
        SpgemmMethod::CusparseLike => methods::cusparse_like::run(ctx, device),
        SpgemmMethod::CuspEsc => methods::cusp_esc::run(ctx, device),
        SpgemmMethod::BhsparseLike => methods::bhsparse_like::run(ctx, device),
        SpgemmMethod::MklLike => methods::mkl_like::run(ctx, device),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use br_datasets::rmat::{rmat, RmatConfig};
    use br_sparse::ops::spgemm_gustavson;

    fn problem() -> ProblemContext<f64> {
        let a = rmat(RmatConfig::snap_like(8, 6, 17)).to_csr();
        ProblemContext::new(&a, &a).unwrap()
    }

    #[test]
    fn every_method_computes_the_oracle_result() {
        let ctx = problem();
        let oracle = spgemm_gustavson(&ctx.a, &ctx.b).unwrap();
        let dev = DeviceConfig::titan_xp();
        for m in SpgemmMethod::all() {
            let run = run_method(&ctx, m, &dev).unwrap();
            assert_eq!(
                run.result.ptr(),
                oracle.ptr(),
                "{} structure differs",
                m.name()
            );
            assert!(
                run.result.approx_eq(&oracle, 1e-9),
                "{} values differ",
                m.name()
            );
        }
    }

    #[test]
    fn every_gpu_method_produces_positive_time_and_profiles() {
        let ctx = problem();
        let dev = DeviceConfig::titan_xp();
        for m in SpgemmMethod::all() {
            let run = run_method(&ctx, m, &dev).unwrap();
            assert!(run.total_ms > 0.0, "{} has zero time", m.name());
            assert!(run.gflops() > 0.0);
            if m != SpgemmMethod::MklLike {
                assert!(!run.profiles.is_empty(), "{} has no profiles", m.name());
            }
        }
    }

    #[test]
    fn method_names_match_figure_legend() {
        let names: Vec<_> = SpgemmMethod::all().iter().map(|m| m.name()).collect();
        assert_eq!(
            names,
            vec![
                "row-product",
                "outer-product",
                "cuSPARSE",
                "CUSP",
                "bhSPARSE",
                "MKL"
            ]
        );
    }

    #[test]
    fn phase_split_is_reported() {
        let ctx = problem();
        let dev = DeviceConfig::titan_xp();
        let run = run_method(&ctx, SpgemmMethod::OuterProduct, &dev).unwrap();
        assert!(run.phase_ms("expansion") > 0.0);
        assert!(run.phase_ms("merge") > 0.0);
        let sum = run.phase_ms("expansion") + run.phase_ms("merge");
        assert!((sum - run.kernel_ms()).abs() < 1e-9);
    }
}
