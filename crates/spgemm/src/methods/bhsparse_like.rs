//! bhSPARSE-like spGEMM (Liu & Vinter, IPDPS'14): hybrid row-product with
//! upper-bound binning.
//!
//! Rows are binned by their intermediate-product upper bound; small bins
//! merge entirely in shared memory (heap/bitonic — no global atomics),
//! medium bins use a larger on-chip buffer, and only the heaviest rows fall
//! back to global-memory merging. This fixes much of cuSPARSE's
//! hub-serialization but keeps the row product's thread-level imbalance —
//! the paper measures it at ~0.55× the row-product baseline overall, and
//! notably strong on *relatively dense* regular matrices.

use crate::context::ProblemContext;
use crate::numeric::{default_threads, spgemm_sort_reduce_parallel};
use crate::pipeline::{assemble_run, SpgemmRun};
use crate::workspace::{Workspace, ELEM_BYTES};
use br_gpu_sim::device::DeviceConfig;
use br_gpu_sim::trace::{KernelLaunch, TraceBuilder};
use br_sparse::{Result, Scalar};

/// Upper-bound bin boundaries on intermediate products per row.
/// (bhSPARSE proper uses 38 bins; four groups capture the cost regimes.)
pub const BIN_BOUNDS: [u64; 3] = [32, 512, 4096];

/// Runs the bhSPARSE-like method.
#[allow(clippy::needless_range_loop)] // r is the row id, used across several per-row arrays
pub fn run<T: Scalar>(ctx: &ProblemContext<T>, device: &DeviceConfig) -> Result<SpgemmRun<T>> {
    let ws = Workspace::for_context(ctx);
    let chat_rows = ctx.chat_row_offsets();

    // Binning pass: a cheap kernel scanning row upper bounds.
    let n = ctx.nrows() as u64;
    let bin_kernel = KernelLaunch::new(
        "bhsparse-binning",
        vec![TraceBuilder::new(256, 256)
            .compute(n.div_ceil(256).max(1))
            .read(ws.a_ptr, 0, (n + 1) * 8)
            .barriers(1)
            .build()],
    );

    // One merged expansion+merge kernel per bin group, as in bhSPARSE.
    let mut bins: [Vec<br_gpu_sim::trace::BlockTrace>; 4] = Default::default();
    let mut c_written = 0u64; // running offset into C (element units)
    for r in 0..ctx.nrows() {
        let products = ctx.row_products[r];
        if products == 0 {
            continue;
        }
        let unique = ctx.row_unique[r] as u64;
        let k = ctx.a.row_nnz(r) as u64;
        let (a_cols, _) = ctx.a.row(r);
        let mut max_work = 0u64;
        for &col in a_cols {
            max_work = max_work.max(ctx.b.row_nnz(col as usize) as u64);
        }
        let mean_work = products as f64 / k.max(1) as f64;
        let imbalance = (max_work as f64 / mean_work.max(1e-12)).max(1.0);

        let bin = BIN_BOUNDS.iter().position(|&b| products <= b).unwrap_or(3);
        let (threads, smem, global_merge) = match bin {
            0 => (64u32, 2 * 1024u32, false),
            1 => (256, 8 * 1024, false),
            2 => (256, 24 * 1024, false),
            _ => (512, 0, true),
        };
        let effective = k.min(threads as u64) as u32;
        let coarsen = k.div_ceil(threads as u64).max(1);
        // bhSPARSE's per-row merge is ESC with a bitonic network: the array
        // is padded to the next power of two of the *upper bound* (bitonic
        // needs 2^k inputs; bhSPARSE sizes by upper bound, not actual nnz)
        // and every element passes O(log² n) comparator stages.
        let padded = products.max(2).next_power_of_two();
        let log_ub = padded.trailing_zeros() as u64;
        let sort_macs = (padded * log_ub * log_ub).div_ceil(threads as u64);
        let mut tb = TraceBuilder::new(threads, effective)
            .compute((mean_work.ceil() as u64) * coarsen + sort_macs)
            .lane_imbalance(imbalance)
            .read(ws.a_data, ws.a_row_offset(ctx, r), k * ELEM_BYTES)
            .shared_mem(smem)
            .barriers(2 + (log_ub * log_ub) as u32)
            .write(ws.c_data, c_written * ELEM_BYTES, unique * ELEM_BYTES)
            // Every bin stages the expanded products through its
            // upper-bound-sized global scratch before sorting.
            .write(ws.chat, chat_rows[r] * ELEM_BYTES, products * ELEM_BYTES)
            .read(ws.chat, chat_rows[r] * ELEM_BYTES, products * ELEM_BYTES);
        for &col in a_cols {
            let nnz_b = ctx.b.row_nnz(col as usize) as u64;
            if nnz_b > 0 {
                tb = tb.read(
                    ws.b_data,
                    ws.b_row_offset(ctx, col as usize),
                    nnz_b * ELEM_BYTES,
                );
            }
        }
        if global_merge {
            // Heaviest rows additionally accumulate through global memory.
            let (acc_off, acc_len) = ws.accum_slice(r);
            tb = tb.atomic_scatter(
                ws.accum,
                acc_off,
                acc_len,
                products,
                8,
                products as f64 / unique.max(1) as f64,
            );
        }
        bins[bin].push(tb.build());
        c_written += unique;
    }

    let mut launches = vec![bin_kernel];
    for (i, blocks) in bins.into_iter().enumerate() {
        if !blocks.is_empty() {
            launches.push(KernelLaunch::new(format!("bhsparse-bin{i}-merge"), blocks));
        }
    }

    let result = spgemm_sort_reduce_parallel(&ctx.a, &ctx.b, default_threads())?;
    Ok(assemble_run(
        "bhSPARSE", result, &launches, &ws.layout, device, 0.0, ctx.flops,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::methods::cusparse_like;
    use br_datasets::rmat::{rmat, RmatConfig};

    #[test]
    fn beats_cusparse_on_regular_dense_rows() {
        // bhSPARSE's home turf (Figure 8's Florida column, and the sparsity
        // sweep in Figure 16(a)): regular matrices with moderately dense
        // rows, where its binning fits everything in shared memory while
        // cuSPARSE still pays global hash probes per product.
        let dev = DeviceConfig::titan_xp();
        let a = br_datasets::mesh::banded(3000, 300, 40, 5).to_csr();
        let ctx = ProblemContext::new(&a, &a).unwrap();
        let bh = run(&ctx, &dev).unwrap();
        let cu = cusparse_like::run(&ctx, &dev).unwrap();
        assert!(
            bh.total_ms < cu.total_ms,
            "binning should beat warp-per-row hashing: {} vs {}",
            bh.total_ms,
            cu.total_ms
        );
    }

    #[test]
    fn small_rows_avoid_global_atomics() {
        let dev = DeviceConfig::titan_xp();
        // Sparse uniform matrix: every row's upper bound is tiny.
        let a = rmat(RmatConfig::uniform(9, 3, 6)).to_csr();
        let ctx = ProblemContext::new(&a, &a).unwrap();
        let r = run(&ctx, &dev).unwrap();
        let total_atomics: u64 = r
            .profiles
            .iter()
            .map(|p| p.l2.write_bytes) // proxy: bin kernels write only C
            .sum::<u64>();
        assert!(total_atomics > 0);
        // All rows should land in the shared-memory bins.
        assert!(r.profiles.iter().all(|p| !p.name.contains("bin3")));
    }
}
