//! CUSP-like spGEMM: the Expand–Sort–Compress (ESC) pipeline.
//!
//! Expansion writes all `nnz(Ĉ)` products as explicit triples, a global
//! multi-pass radix sort orders them by (row, column), and a segmented
//! reduction compresses duplicates. Every sort pass streams the entire
//! intermediate array through DRAM, so the cost scales with
//! `passes × nnz(Ĉ)` — the paper measures CUSP at 0.22× the row-product
//! baseline, the slowest GPU method on large inputs.

use crate::context::ProblemContext;
use crate::expansion::row::row_expansion_launch;
use crate::merge::esc::esc_merge_launches;
use crate::numeric::{default_threads, spgemm_sort_reduce_parallel};
use crate::pipeline::{assemble_run, SpgemmRun};
use crate::workspace::Workspace;
use br_gpu_sim::device::DeviceConfig;
use br_sparse::{Result, Scalar};

/// ESC block size.
const BLOCK_SIZE: u32 = 256;

/// The method's kernel launches (expansion, sort passes, compress) against
/// a prepared workspace — shared by [`run`] and the planner's method
/// dispatch.
pub fn launches<T: Scalar>(
    ctx: &ProblemContext<T>,
    ws: &Workspace,
) -> Vec<br_gpu_sim::trace::KernelLaunch> {
    let mut launches = vec![row_expansion_launch(ctx, ws, BLOCK_SIZE)];
    launches.extend(esc_merge_launches(ctx, ws, BLOCK_SIZE));
    launches
}

/// Runs the CUSP-like ESC method.
pub fn run<T: Scalar>(ctx: &ProblemContext<T>, device: &DeviceConfig) -> Result<SpgemmRun<T>> {
    let ws = Workspace::for_context(ctx);
    let result = spgemm_sort_reduce_parallel(&ctx.a, &ctx.b, default_threads())?;
    Ok(assemble_run(
        "CUSP",
        result,
        &launches(ctx, &ws),
        &ws.layout,
        device,
        0.0,
        ctx.flops,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::methods::row_product;
    use br_datasets::rmat::{rmat, RmatConfig};

    #[test]
    fn sort_passes_make_esc_slowest_on_dense_intermediates() {
        let dev = DeviceConfig::titan_xp();
        // edge factor 16 → large nnz(Ĉ) relative to nnz(A)
        let a = rmat(RmatConfig::uniform(9, 16, 9)).to_csr();
        let ctx = ProblemContext::new(&a, &a).unwrap();
        let esc = run(&ctx, &dev).unwrap();
        let rowp = row_product::run(&ctx, &dev).unwrap();
        assert!(
            esc.total_ms > 1.5 * rowp.total_ms,
            "ESC should pay for its sort: {} vs {}",
            esc.total_ms,
            rowp.total_ms
        );
    }

    #[test]
    fn sort_dominates_the_esc_time() {
        let dev = DeviceConfig::titan_xp();
        let a = rmat(RmatConfig::uniform(9, 12, 2)).to_csr();
        let ctx = ProblemContext::new(&a, &a).unwrap();
        let r = run(&ctx, &dev).unwrap();
        let sort_ms = r.phase_ms("sort");
        assert!(
            sort_ms > r.kernel_ms() * 0.4,
            "sort {} of {} ms",
            sort_ms,
            r.kernel_ms()
        );
    }
}
