//! MKL-like CPU baseline: multithreaded Gustavson under an analytic CPU
//! cost model, in the same simulated-time domain as the GPU methods.
//!
//! `mkl_sparse_spmm` parallelises Gustavson over row blocks. The cost model
//! is roofline-style: compute time (MACs over aggregate MAC throughput,
//! degraded by indexing-heavy gathers) versus memory time (operand + output
//! traffic over socket bandwidth), plus a parallel-efficiency factor for
//! load imbalance across threads on skewed data.

use crate::context::ProblemContext;
use crate::numeric::{default_threads, spgemm_parallel};
use crate::pipeline::SpgemmRun;
use br_gpu_sim::device::{CpuConfig, DeviceConfig};
use br_sparse::{Result, Scalar};

/// Runs the MKL-like CPU baseline. The `device` argument selects the host
/// CPU paired with that GPU in Table I (we use the System 1 Xeon for all,
/// as the paper's MKL bars do not vary by system).
pub fn run<T: Scalar>(ctx: &ProblemContext<T>, _device: &DeviceConfig) -> Result<SpgemmRun<T>> {
    run_on_cpu(ctx, &CpuConfig::xeon_e5_2640v4())
}

/// Runs the model against an explicit CPU configuration.
pub fn run_on_cpu<T: Scalar>(ctx: &ProblemContext<T>, cpu: &CpuConfig) -> Result<SpgemmRun<T>> {
    let result = spgemm_parallel(&ctx.a, &ctx.b, default_threads())?;

    let macs = ctx.intermediate_total as f64;
    let clock_hz = cpu.clock_mhz as f64 * 1e6;

    // Parallel efficiency: rows are distributed across threads; the busiest
    // thread is bounded below by the single heaviest row.
    let threads = cpu.threads as f64;
    let max_row = ctx.row_products.iter().copied().max().unwrap_or(0) as f64;
    let per_thread_mean = macs / threads;
    let busiest = per_thread_mean.max(max_row);
    let efficiency = if busiest > 0.0 {
        per_thread_mean / busiest
    } else {
        1.0
    };

    let compute_s = macs / (cpu.cores as f64 * clock_hz * cpu.macs_per_cycle);

    // Traffic: read A and B (with re-reads of B rows ≈ products), write C.
    let bytes = (ctx.a.nnz() as f64 + ctx.b.nnz() as f64) * 12.0
        + ctx.intermediate_total as f64 * 12.0
        + ctx.output_total as f64 * 12.0;
    let memory_s = bytes / (cpu.mem_bandwidth_gbs * cpu.scatter_efficiency * 1e9);

    // Imbalance stretches the critical path whichever resource binds: the
    // busiest thread finishes last and its memory traffic trails with it.
    let total_ms = compute_s.max(memory_s) / efficiency.max(0.05) * 1e3;
    Ok(SpgemmRun {
        method: "MKL".to_string(),
        result,
        profiles: Vec::new(),
        preprocess_ms: 0.0,
        total_ms,
        flops: ctx.flops,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use br_datasets::rmat::{rmat, RmatConfig};

    #[test]
    fn produces_correct_result_and_positive_time() {
        let a = rmat(RmatConfig::uniform(8, 6, 7)).to_csr();
        let ctx = ProblemContext::new(&a, &a).unwrap();
        let r = run(&ctx, &DeviceConfig::titan_xp()).unwrap();
        let oracle = br_sparse::ops::spgemm_gustavson(&a, &a).unwrap();
        assert!(r.result.approx_eq(&oracle, 1e-9));
        assert!(r.total_ms > 0.0);
        assert!(r.profiles.is_empty());
    }

    #[test]
    fn skew_reduces_parallel_efficiency() {
        // Arrow-ish matrix: row 0 spans H columns, every other row holds a
        // single entry — one thread inherits the whole hub row while the
        // rest idle.
        let n = 1000usize;
        let h = 500usize;
        let mut ptr = vec![0usize; n + 1];
        let mut idx: Vec<u32> = (0..h as u32).collect();
        ptr[1] = h;
        for r in 1..n {
            idx.push((n - 1) as u32);
            ptr[r + 1] = ptr[r] + 1;
        }
        let val = vec![1.0f64; idx.len()];
        let skewed = br_sparse::CsrMatrix::try_new(n, n, ptr, idx, val).unwrap();
        let ctx_s = ProblemContext::new(&skewed, &skewed).unwrap();
        let rs = run(&ctx_s, &DeviceConfig::titan_xp()).unwrap();

        let uniform = br_datasets::mesh::banded(n, 16, 2, 1).to_csr();
        let ctx_u = ProblemContext::new(&uniform, &uniform).unwrap();
        let ru = run(&ctx_u, &DeviceConfig::titan_xp()).unwrap();

        // ms per byte of traffic must be worse for the skewed problem: its
        // critical path is one thread long.
        let traffic = |c: &ProblemContext<f64>| {
            (c.a.nnz() + c.b.nnz() + c.intermediate_total as usize + c.output_total) as f64
        };
        let per_s = rs.total_ms / traffic(&ctx_s);
        let per_u = ru.total_ms / traffic(&ctx_u);
        assert!(per_s > 2.0 * per_u, "{per_s} vs {per_u}");
    }

    #[test]
    fn more_cores_is_faster_on_balanced_work() {
        let a = rmat(RmatConfig::uniform(10, 8, 5)).to_csr();
        let ctx = ProblemContext::new(&a, &a).unwrap();
        let small = CpuConfig {
            cores: 4,
            threads: 8,
            ..CpuConfig::xeon_e5_2640v4()
        };
        let big = CpuConfig {
            cores: 20,
            threads: 40,
            mem_bandwidth_gbs: 120.0,
            ..CpuConfig::xeon_e5_2640v4()
        };
        let rs = run_on_cpu(&ctx, &small).unwrap();
        let rb = run_on_cpu(&ctx, &big).unwrap();
        assert!(rb.total_ms < rs.total_ms);
    }
}
