//! Row-product baseline: Gustavson expansion + dense-accumulator merge.
//!
//! This is the method every Figure 8/9 number is normalized against.
//! Expansion is one 256-thread block per row of `A` (divergent lanes on
//! skewed data); the merge enjoys row-major `Ĉ` (coalesced reads), which is
//! the row product's structural advantage over the plain outer product.

use crate::context::ProblemContext;
use crate::expansion::row::row_expansion_launch;
use crate::merge::gustavson::gustavson_merge_launch;
use crate::numeric::{default_threads, spgemm_parallel};
use crate::pipeline::{assemble_run, SpgemmRun};
use crate::workspace::Workspace;
use br_gpu_sim::device::DeviceConfig;
use br_sparse::{Result, Scalar};

/// Expansion/merge block size.
pub const BLOCK_SIZE: u32 = 256;

/// The method's kernel launches (expansion then merge) against a prepared
/// workspace — shared by [`run`] and the planner's per-problem method
/// dispatch (`ReorgPlan` executes the chosen method's launches while the
/// host numeric path stays the adaptive engine).
pub fn launches<T: Scalar>(
    ctx: &ProblemContext<T>,
    ws: &Workspace,
) -> Vec<br_gpu_sim::trace::KernelLaunch> {
    vec![
        row_expansion_launch(ctx, ws, BLOCK_SIZE),
        gustavson_merge_launch(ctx, ws, BLOCK_SIZE, true, |_| 0),
    ]
}

/// Runs the row-product baseline.
pub fn run<T: Scalar>(ctx: &ProblemContext<T>, device: &DeviceConfig) -> Result<SpgemmRun<T>> {
    let ws = Workspace::for_context(ctx);
    let result = spgemm_parallel(&ctx.a, &ctx.b, default_threads())?;
    Ok(assemble_run(
        "row-product",
        result,
        &launches(ctx, &ws),
        &ws.layout,
        device,
        0.0,
        ctx.flops,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use br_datasets::rmat::{rmat, RmatConfig};

    #[test]
    fn skewed_data_diverges_lanes_uniform_does_not() {
        use crate::expansion::row::row_expansion_launch;
        use crate::workspace::Workspace;
        let uniform = rmat(RmatConfig::uniform(9, 8, 5)).to_csr();
        let skewed = rmat(RmatConfig::graph500(9, 8, 5)).to_csr();
        let mean_imbalance = |m: &br_sparse::CsrMatrix<f64>| {
            let ctx = ProblemContext::new(m, m).unwrap();
            let ws = Workspace::for_context(&ctx);
            let k = row_expansion_launch(&ctx, &ws, BLOCK_SIZE);
            // Work-weighted mean of the per-block divergence multiplier.
            let (mut num, mut den) = (0.0, 0.0);
            for b in &k.blocks {
                let w = b.compute_per_thread as f64 * b.effective_threads as f64;
                num += b.lane_imbalance * w;
                den += w;
            }
            num / den
        };
        let iu = mean_imbalance(&uniform);
        let is = mean_imbalance(&skewed);
        assert!(
            is > 1.5 * iu,
            "power-law hubs must diverge warps: skewed {is} vs uniform {iu}"
        );
    }

    #[test]
    fn two_kernels_expansion_then_merge() {
        let dev = DeviceConfig::titan_xp();
        let a = rmat(RmatConfig::uniform(7, 4, 2)).to_csr();
        let ctx = ProblemContext::new(&a, &a).unwrap();
        let r = run(&ctx, &dev).unwrap();
        assert_eq!(r.profiles.len(), 2);
        assert!(r.profiles[0].name.contains("expansion"));
        assert!(r.profiles[1].name.contains("merge"));
    }
}
