//! cuSPARSE-like spGEMM: two-phase row-product with a global hash merge.
//!
//! Models `cusparseXcsrgemm`'s generalised scheme: a symbolic pass sizes
//! each output row, then a numeric pass assigns **one warp per row** and
//! accumulates into a per-row hash table in global memory. The warp-per-row
//! mapping is catastrophic on power-law data — hub rows serialize over a
//! single warp — which is why cuSPARSE lands at ~0.29× the row-product
//! baseline on the paper's suite.

use crate::context::ProblemContext;
use crate::numeric::{default_threads, spgemm_hash_parallel};
use crate::pipeline::{assemble_run, SpgemmRun};
use crate::workspace::{Workspace, ELEM_BYTES, PTR_BYTES};
use br_gpu_sim::device::DeviceConfig;
use br_gpu_sim::trace::{KernelLaunch, TraceBuilder};
use br_sparse::{Result, Scalar};

/// Warp-per-row block size.
const WARP: u32 = 32;

/// The method's two kernel launches (symbolic sizing, then warp-per-row
/// hash numeric) against a prepared workspace — shared by [`run`] and the
/// planner's method dispatch.
pub fn launches<T: Scalar>(ctx: &ProblemContext<T>, ws: &Workspace) -> Vec<KernelLaunch> {
    // ---- phase 1: symbolic ----
    // cuSPARSE's generalised csrgemm runs the *full* expansion twice: the
    // symbolic pass inserts every product's column into the hash structure
    // (values omitted) to size each output row exactly. Warp per row, like
    // the numeric pass.
    let mut sym_blocks = Vec::new();
    for row in 0..ctx.nrows() {
        let k = ctx.a.row_nnz(row) as u64;
        let products = ctx.row_products[row];
        if products == 0 {
            continue;
        }
        let (a_cols, _) = ctx.a.row(row);
        // Per-row hash tables are allocated across the whole scratch
        // arena — unlike a reused accumulator slice, probes have no
        // cross-row locality (cuSPARSE's known weakness on large outputs).
        let arena = ws.layout.size(ws.accum);
        let mut tb = TraceBuilder::new(WARP, k.min(WARP as u64) as u32)
            .compute(products.div_ceil(k.max(1)))
            .read(ws.a_data, ws.a_row_offset(ctx, row), k * ELEM_BYTES)
            .read(ws.a_ptr, row as u64 * PTR_BYTES, 2 * PTR_BYTES)
            // symbolic hash inserts: probe + insert per product
            .gather(ws.accum, 0, arena, 2 * products, 8)
            .barriers(1);
        for &col in a_cols {
            let nnz_b = ctx.b.row_nnz(col as usize) as u64;
            if nnz_b > 0 {
                tb = tb.read(
                    ws.b_data,
                    ws.b_row_offset(ctx, col as usize),
                    nnz_b * ELEM_BYTES,
                );
            }
        }
        sym_blocks.push(tb.build());
    }
    let symbolic = KernelLaunch::new("cusparse-symbolic", sym_blocks);

    // ---- phase 2: numeric (warp per row, hash merge in global) ----
    let mut num_blocks = Vec::new();
    for row in 0..ctx.nrows() {
        let k = ctx.a.row_nnz(row) as u64;
        let products = ctx.row_products[row];
        if products == 0 {
            continue;
        }
        let unique = ctx.row_unique[row] as u64;
        // Lane j walks row b_{a_idx[j]}: divergent like the row product,
        // but with only 32 lanes the hub rows serialize hard.
        let (a_cols, _) = ctx.a.row(row);
        let mut max_work = 0u64;
        for &col in a_cols {
            max_work = max_work.max(ctx.b.row_nnz(col as usize) as u64);
        }
        let mean_work = products as f64 / k.max(1) as f64;
        let imbalance = if mean_work > 0.0 {
            (max_work as f64 / mean_work).max(1.0)
        } else {
            1.0
        };
        let coarsen = k.div_ceil(WARP as u64).max(1);
        let arena = ws.layout.size(ws.accum);
        let mut tb = TraceBuilder::new(WARP, k.min(WARP as u64) as u32)
            .compute((mean_work.ceil() as u64) * coarsen)
            .lane_imbalance(imbalance)
            .read(ws.a_data, ws.a_row_offset(ctx, row), k * ELEM_BYTES)
            // Hash insertion: a CAS per product plus a probe read, against
            // tables scattered across the whole arena (no locality).
            .atomic_scatter(
                ws.accum,
                0,
                arena,
                products,
                8,
                products as f64 / unique.max(1) as f64,
            )
            .gather(ws.accum, 0, arena, products, 8)
            .write(
                ws.c_data,
                0, // rows write disjoint slices; offset detail not modelled
                unique * ELEM_BYTES,
            )
            .barriers(1);
        for &col in a_cols {
            let nnz_b = ctx.b.row_nnz(col as usize) as u64;
            if nnz_b > 0 {
                tb = tb.read(
                    ws.b_data,
                    ws.b_row_offset(ctx, col as usize),
                    nnz_b * ELEM_BYTES,
                );
            }
        }
        num_blocks.push(tb.build());
    }
    let numeric = KernelLaunch::new("cusparse-numeric-merge", num_blocks);
    vec![symbolic, numeric]
}

/// Runs the cuSPARSE-like method.
pub fn run<T: Scalar>(ctx: &ProblemContext<T>, device: &DeviceConfig) -> Result<SpgemmRun<T>> {
    let ws = Workspace::for_context(ctx);
    let result = spgemm_hash_parallel(&ctx.a, &ctx.b, default_threads())?;
    Ok(assemble_run(
        "cuSPARSE",
        result,
        &launches(ctx, &ws),
        &ws.layout,
        device,
        0.0,
        ctx.flops,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::methods::row_product;
    use br_datasets::chung_lu::{chung_lu, ChungLuConfig};
    use br_datasets::rmat::{rmat, RmatConfig};

    #[test]
    fn slower_than_row_product_on_skewed_data() {
        let dev = DeviceConfig::titan_xp();
        let a = chung_lu(ChungLuConfig {
            gamma: 2.0,
            ..ChungLuConfig::social(4000, 32_000, 21)
        })
        .to_csr();
        let ctx = ProblemContext::new(&a, &a).unwrap();
        let cus = run(&ctx, &dev).unwrap();
        let rowp = row_product::run(&ctx, &dev).unwrap();
        assert!(
            cus.total_ms > rowp.total_ms,
            "warp-per-row must lose on hubs: {} vs {}",
            cus.total_ms,
            rowp.total_ms
        );
    }

    #[test]
    fn result_is_correct_despite_hash_path() {
        let dev = DeviceConfig::titan_xp();
        let a = rmat(RmatConfig::snap_like(7, 6, 4)).to_csr();
        let ctx = ProblemContext::new(&a, &a).unwrap();
        let r = run(&ctx, &dev).unwrap();
        let oracle = br_sparse::ops::spgemm_gustavson(&a, &a).unwrap();
        assert!(r.result.approx_eq(&oracle, 1e-9));
    }
}
