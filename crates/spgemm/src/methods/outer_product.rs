//! Outer-product baseline (Algorithm 1): the scheme the Block Reorganizer
//! starts from, *without* any of its three optimizations.
//!
//! Perfect thread-level balance inside each block, but (a) block workloads
//! vary by orders of magnitude on skewed data — a handful of dominator
//! blocks pin their SMs while the rest idle (Figure 3(a)) — and (b) `Ĉ`
//! is produced block-major, so the merge's reads scatter (Section III-A.3).
//! On the paper's suite this lands at ~0.95× the row-product baseline:
//! better expansion, worse merge.

use crate::context::ProblemContext;
use crate::expansion::outer::{outer_expansion_launch, DEFAULT_BLOCK_SIZE};
use crate::merge::gustavson::gustavson_merge_launch;
use crate::numeric::{default_threads, spgemm_parallel};
use crate::pipeline::{assemble_run, SpgemmRun};
use crate::workspace::Workspace;
use br_gpu_sim::device::DeviceConfig;
use br_sparse::{Result, Scalar};

/// The method's kernel launches (expansion then merge) against a prepared
/// workspace — shared by [`run`] and the planner's method dispatch.
pub fn launches<T: Scalar>(
    ctx: &ProblemContext<T>,
    ws: &Workspace,
) -> Vec<br_gpu_sim::trace::KernelLaunch> {
    vec![
        outer_expansion_launch(ctx, ws, DEFAULT_BLOCK_SIZE, false),
        gustavson_merge_launch(ctx, ws, DEFAULT_BLOCK_SIZE, false, |_| 0),
    ]
}

/// Runs the outer-product baseline.
pub fn run<T: Scalar>(ctx: &ProblemContext<T>, device: &DeviceConfig) -> Result<SpgemmRun<T>> {
    let ws = Workspace::for_context(ctx);
    let result = spgemm_parallel(&ctx.a, &ctx.b, default_threads())?;
    Ok(assemble_run(
        "outer-product",
        result,
        &launches(ctx, &ws),
        &ws.layout,
        device,
        0.0,
        ctx.flops,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use br_datasets::chung_lu::{chung_lu, ChungLuConfig};
    use br_datasets::rmat::{rmat, RmatConfig};

    #[test]
    fn expansion_lbi_collapses_on_skewed_data() {
        let dev = DeviceConfig::titan_xp();
        let skewed = chung_lu(ChungLuConfig {
            gamma: 2.0,
            ..ChungLuConfig::social(3000, 24_000, 8)
        })
        .to_csr();
        let regular = rmat(RmatConfig::uniform(11, 8, 8)).to_csr();
        let cs = ProblemContext::new(&skewed, &skewed).unwrap();
        let cr = ProblemContext::new(&regular, &regular).unwrap();
        let rs = run(&cs, &dev).unwrap();
        let rr = run(&cr, &dev).unwrap();
        let lbi_s = rs.profiles[0].lbi();
        let lbi_r = rr.profiles[0].lbi();
        assert!(
            lbi_s < lbi_r - 0.2,
            "skew should wreck expansion LBI: skewed {lbi_s} vs regular {lbi_r}"
        );
    }

    #[test]
    fn expansion_has_no_lane_divergence() {
        let dev = DeviceConfig::titan_xp();
        let a = rmat(RmatConfig::graph500(8, 8, 3)).to_csr();
        let ctx = ProblemContext::new(&a, &a).unwrap();
        let r = run(&ctx, &dev).unwrap();
        // The outer product's defining property (Section III): identical
        // work per thread. The row product on the same data diverges.
        let row = crate::methods::row_product::run(&ctx, &dev).unwrap();
        assert!(r.profiles[0].time_ms > 0.0);
        let _ = row;
    }
}
