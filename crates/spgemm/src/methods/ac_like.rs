//! AC-spGEMM-like method (Winter et al., PPoPP'19) — an **extension**
//! beyond the paper's Figure 8 set, included because the paper's Related
//! Work singles it out: "AC-spGEMM also improved overall performance highly
//! by using thread-level load balancing on row-product-based spGEMM …
//! which often require additional control overhead to secure per-row
//! linked list structures."
//!
//! The scheme: the global stream of intermediate products is cut into
//! fixed-size *chunks* assigned to blocks regardless of row boundaries —
//! perfect thread- and block-level expansion balance by construction — at
//! the price of (a) per-chunk control metadata (the "linked list" overhead
//! the ICDE paper mentions) and (b) a cross-chunk combine pass for rows
//! that straddle chunk borders.

use crate::context::ProblemContext;
use crate::numeric::{default_threads, spgemm_sort_reduce_parallel};
use crate::pipeline::{assemble_run, SpgemmRun};
use crate::workspace::{Workspace, ELEM_BYTES, PTR_BYTES};
use br_gpu_sim::device::DeviceConfig;
use br_gpu_sim::trace::{KernelLaunch, TraceBuilder};
use br_sparse::{Result, Scalar};

/// Intermediate products per chunk (the PPoPP paper's NNZ-per-block knob).
pub const CHUNK: u64 = 8192;

/// Length (in elements) of a chunk's A-side read window.
fn a_window_len(a_nnz: u64, chunk_len: u64) -> u64 {
    (chunk_len / 4).clamp(1, a_nnz.max(1))
}

/// Offset (in elements) of a chunk's A-side read window, kept in bounds.
fn a_window_offset(a_nnz: u64, chunk_start: u64, chunk_len: u64) -> u64 {
    let window = a_window_len(a_nnz, chunk_len);
    let span = a_nnz.saturating_sub(window).max(1);
    (chunk_start / 4) % span
}

/// Runs the AC-spGEMM-like method.
pub fn run<T: Scalar>(ctx: &ProblemContext<T>, device: &DeviceConfig) -> Result<SpgemmRun<T>> {
    let ws = Workspace::for_context(ctx);
    let total = ctx.intermediate_total;
    let mut launches = Vec::new();

    if total > 0 {
        // Work-assignment pass: a scan over A's rows builds the
        // chunk → (row, offset) mapping (the control metadata).
        let n = ctx.nrows() as u64;
        launches.push(KernelLaunch::new(
            "ac-assign",
            vec![TraceBuilder::new(256, 256)
                .compute(2 * n.div_ceil(256).max(1))
                .read(ws.a_ptr, 0, (n + 1) * PTR_BYTES)
                .read(ws.b_ptr, 0, (ctx.b.nrows() as u64 + 1) * PTR_BYTES)
                .barriers(2)
                .build()],
        ));

        // Balanced expansion + local merge: every chunk is a full block of
        // identical size. Chunks gather their products' source elements
        // from B (data-dependent rows) and sort/combine locally in shared
        // memory, writing locally-merged runs plus boundary metadata.
        let chunks = total.div_ceil(CHUNK);
        let avg_unique_per_chunk = (ctx.output_total as u64).div_ceil(chunks.max(1)).max(1);
        let mut blocks = Vec::with_capacity(chunks as usize);
        for c in 0..chunks {
            let start = c * CHUNK;
            let len = CHUNK.min(total - start);
            let log = (64 - len.max(2).leading_zeros()) as u64;
            blocks.push(
                TraceBuilder::new(256, 256)
                    // expansion MAC + local sort network per product
                    .compute((len + len * log).div_ceil(256))
                    // chunk's A elements: a small contiguous window,
                    // clamped inside the operand region
                    .read(
                        ws.a_csc_data,
                        a_window_offset(ctx.a.nnz() as u64, start, len) * ELEM_BYTES,
                        a_window_len(ctx.a.nnz() as u64, len) * ELEM_BYTES,
                    )
                    // chunk's B elements: data-dependent gather
                    .gather(
                        ws.b_data,
                        0,
                        (ctx.b.nnz().max(1) as u64) * ELEM_BYTES,
                        len,
                        ELEM_BYTES as u32,
                    )
                    // locally merged output + boundary metadata
                    .write(
                        ws.chat,
                        start * ELEM_BYTES,
                        avg_unique_per_chunk.min(total - start) * ELEM_BYTES,
                    )
                    .write(ws.c_data, 0, 64)
                    .shared_mem(32 * 1024)
                    .barriers(log as u32 + 2)
                    .build(),
            );
        }
        launches.push(KernelLaunch::new("ac-balanced-expansion", blocks));

        // Cross-chunk combine: rows straddling chunk borders are merged in
        // a final pass over the locally-merged runs (bounded by nnz(C) —
        // the final output size).
        let runs = (chunks * avg_unique_per_chunk).min(ctx.output_total.max(1) as u64);
        let mut blocks = Vec::new();
        let mut off = 0u64;
        while off < runs {
            let len = (4 * CHUNK).min(runs - off);
            blocks.push(
                TraceBuilder::new(256, 256)
                    .compute(len.div_ceil(256))
                    .read(ws.chat, off * ELEM_BYTES, len * ELEM_BYTES)
                    .write(ws.c_data, off * ELEM_BYTES, len * ELEM_BYTES)
                    .barriers(1)
                    .build(),
            );
            off += len;
        }
        launches.push(KernelLaunch::new("ac-combine", blocks));
    }

    let result = spgemm_sort_reduce_parallel(&ctx.a, &ctx.b, default_threads())?;
    Ok(assemble_run(
        "AC-spGEMM",
        result,
        &launches,
        &ws.layout,
        device,
        0.0,
        ctx.flops,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::methods::{outer_product, row_product};
    use br_datasets::chung_lu::{chung_lu, ChungLuConfig};
    use br_datasets::rmat::{rmat, RmatConfig};

    #[test]
    fn result_matches_oracle() {
        let a = rmat(RmatConfig::snap_like(8, 6, 31)).to_csr();
        let ctx = ProblemContext::new(&a, &a).unwrap();
        let r = run(&ctx, &DeviceConfig::titan_xp()).unwrap();
        let oracle = br_sparse::ops::spgemm_gustavson(&a, &a).unwrap();
        assert!(r.result.approx_eq(&oracle, 1e-9));
    }

    #[test]
    fn expansion_is_perfectly_balanced_even_on_hubs() {
        // The scheme's defining property: chunking erases block-level skew,
        // so expansion LBI stays high even where the outer product's
        // collapses.
        let dev = DeviceConfig::titan_xp();
        let a = chung_lu(ChungLuConfig {
            gamma: 2.0,
            ..ChungLuConfig::social(3000, 21_000, 5)
        })
        .to_csr();
        let ctx = ProblemContext::new(&a, &a).unwrap();
        let ac = run(&ctx, &dev).unwrap();
        let outer = outer_product::run(&ctx, &dev).unwrap();
        let ac_lbi = ac
            .profiles
            .iter()
            .find(|p| p.name.contains("balanced-expansion"))
            .unwrap()
            .lbi();
        assert!(
            ac_lbi > outer.profiles[0].lbi() + 0.2,
            "chunked expansion must balance: {} vs outer {}",
            ac_lbi,
            outer.profiles[0].lbi()
        );
    }

    #[test]
    fn competitive_with_row_product_on_skewed_data() {
        let dev = DeviceConfig::titan_xp();
        let a = chung_lu(ChungLuConfig {
            gamma: 2.1,
            ..ChungLuConfig::social(2500, 15_000, 11)
        })
        .to_csr();
        let ctx = ProblemContext::new(&a, &a).unwrap();
        let ac = run(&ctx, &dev).unwrap();
        let row = row_product::run(&ctx, &dev).unwrap();
        // PPoPP'19 reports large wins over row-product on skewed inputs;
        // at minimum the balanced scheme must not lose badly.
        assert!(
            ac.total_ms < 2.0 * row.total_ms,
            "AC should be competitive: {} vs {}",
            ac.total_ms,
            row.total_ms
        );
    }
}
