//! Expansion-phase trace generators.

pub mod outer;
pub mod row;

pub use outer::outer_expansion_launch;
pub use row::row_expansion_launch;
