//! The spGEMM method zoo — one module per Figure 8 bar (the Block
//! Reorganizer itself lives in `crates/core`).

pub mod ac_like;
pub mod bhsparse_like;
pub mod cusp_esc;
pub mod cusparse_like;
pub mod mkl_like;
pub mod outer_product;
pub mod row_product;
