//! Three independent numeric mergers.
//!
//! Each simulated method owes the user a *real* result, and each family of
//! methods accumulates intermediate products differently: Gustavson-style
//! kernels use a dense accumulator (SPA), cuSPARSE-style kernels a hash
//! table, and ESC a sort + segmented reduction. We implement all three so
//! that every method's arithmetic path is genuinely exercised and checked
//! against the others (and against the dense oracle) rather than sharing
//! one implementation.
//!
//! All three produce canonical (sorted-row) CSR.

use std::ops::Range;

use br_sparse::ops::spgemm_gustavson;
use br_sparse::{par, CsrMatrix, Result, Scalar};

use crate::accum;

/// Dense-accumulator (SPA) merge — delegates to the crate-level reference,
/// which is exactly this algorithm.
pub fn spgemm_dense_spa<T: Scalar>(a: &CsrMatrix<T>, b: &CsrMatrix<T>) -> Result<CsrMatrix<T>> {
    spgemm_gustavson(a, b)
}

/// Expand–sort–reduce merge (the ESC numeric path): per output row, gather
/// all `(column, value)` products, sort by column, reduce adjacent runs.
pub fn spgemm_sort_reduce<T: Scalar>(a: &CsrMatrix<T>, b: &CsrMatrix<T>) -> Result<CsrMatrix<T>> {
    check_shapes(a, b)?;
    let (ptr, idx, val) = sort_reduce_rows(a, b, 0..a.nrows());
    Ok(CsrMatrix::from_parts_unchecked(
        a.nrows(),
        b.ncols(),
        ptr,
        idx,
        val,
    ))
}

/// Range-based core of [`spgemm_sort_reduce`]: merges rows `rows` into a
/// range-local CSR triple (`ptr` starts at 0). One products buffer serves
/// the whole range.
fn sort_reduce_rows<T: Scalar>(
    a: &CsrMatrix<T>,
    b: &CsrMatrix<T>,
    rows: Range<usize>,
) -> (Vec<usize>, Vec<u32>, Vec<T>) {
    let mut ptr = Vec::with_capacity(rows.len() + 1);
    let mut idx: Vec<u32> = Vec::new();
    let mut val: Vec<T> = Vec::new();
    ptr.push(0usize);
    let mut products: Vec<(u32, T)> = Vec::new();
    for r in rows {
        products.clear();
        let (a_cols, a_vals) = a.row(r);
        for (&k, &a_rk) in a_cols.iter().zip(a_vals) {
            let (b_cols, b_vals) = b.row(k as usize);
            products.extend(
                b_cols
                    .iter()
                    .zip(b_vals)
                    .map(|(&j, &b_kj)| (j, a_rk * b_kj)),
            );
        }
        // Stable sort keeps products in B-row generation order within a
        // column, matching the SPA accumulation order bit-for-bit for the
        // common case of left-to-right addition.
        products.sort_by_key(|&(j, _)| j);
        let mut i = 0;
        while i < products.len() {
            let (j, mut acc) = products[i];
            let mut k = i + 1;
            while k < products.len() && products[k].0 == j {
                acc += products[k].1;
                k += 1;
            }
            idx.push(j);
            val.push(acc);
            i = k;
        }
        ptr.push(idx.len());
    }
    (ptr, idx, val)
}

/// Hash merge (the cuSPARSE-style numeric path): per output row, accumulate
/// into an open-addressing table sized to the next power of two above the
/// row's upper bound, then gather and sort.
///
/// The table, its used-slot list, and the gather buffer are hoisted out of
/// the row loop and grow monotonically to the largest row's capacity, so
/// the merger is no longer allocation-bound: clears touch only the slots
/// the previous row used. A larger-than-needed table changes probe paths
/// but never the per-column accumulation order, so results are unaffected.
pub fn spgemm_hash<T: Scalar>(a: &CsrMatrix<T>, b: &CsrMatrix<T>) -> Result<CsrMatrix<T>> {
    check_shapes(a, b)?;
    let (ptr, idx, val) = hash_rows(a, b, 0..a.nrows());
    Ok(CsrMatrix::from_parts_unchecked(
        a.nrows(),
        b.ncols(),
        ptr,
        idx,
        val,
    ))
}

/// Range-based core of [`spgemm_hash`]: merges rows `rows` into a
/// range-local CSR triple with one grow-only table for the whole range.
fn hash_rows<T: Scalar>(
    a: &CsrMatrix<T>,
    b: &CsrMatrix<T>,
    rows: Range<usize>,
) -> (Vec<usize>, Vec<u32>, Vec<T>) {
    let mut ptr = Vec::with_capacity(rows.len() + 1);
    let mut idx: Vec<u32> = Vec::new();
    let mut val: Vec<T> = Vec::new();
    ptr.push(0usize);

    let mut keys: Vec<u32> = Vec::new();
    let mut vals: Vec<T> = Vec::new();
    let mut used: Vec<usize> = Vec::new();
    let mut row: Vec<(u32, T)> = Vec::new();
    for r in rows {
        let (a_cols, a_vals) = a.row(r);
        let upper: usize = a_cols
            .iter()
            .map(|&k| b.row_nnz(k as usize))
            .sum::<usize>()
            .max(1);
        let cap = (upper * 2).next_power_of_two();
        if keys.len() < cap {
            keys.resize(cap, u32::MAX);
            vals.resize(cap, T::ZERO);
        }
        let mask = keys.len() - 1;
        used.clear();
        for (&k, &a_rk) in a_cols.iter().zip(a_vals) {
            let (b_cols, b_vals) = b.row(k as usize);
            for (&j, &b_kj) in b_cols.iter().zip(b_vals) {
                // Multiplicative hashing with linear probing — the standard
                // GPU spGEMM table design.
                let mut slot = (j as usize).wrapping_mul(0x9E37_79B1) & mask;
                loop {
                    if keys[slot] == j {
                        vals[slot] += a_rk * b_kj;
                        break;
                    }
                    if keys[slot] == u32::MAX {
                        keys[slot] = j;
                        vals[slot] = a_rk * b_kj;
                        used.push(slot);
                        break;
                    }
                    slot = (slot + 1) & mask;
                }
            }
        }
        row.clear();
        for &s in &used {
            row.push((keys[s], vals[s]));
            keys[s] = u32::MAX; // restore the empty invariant for the next row
        }
        row.sort_unstable_by_key(|&(j, _)| j);
        for &(j, v) in &row {
            idx.push(j);
            val.push(v);
        }
        ptr.push(idx.len());
    }
    (ptr, idx, val)
}

/// Multithreaded adaptive merge: rows are binned by intermediate-product
/// upper bound and dispatched to per-bin kernels (see [`crate::accum`]),
/// distributed over `threads` scoped workers with reusable scratch.
/// Produces bit-identical results to [`spgemm_dense_spa`] (same per-row,
/// per-column accumulation order) at every thread count and threshold
/// setting — this is the fast oracle path for large benchmark runs, and
/// also what the MKL-like baseline *functionally* computes.
pub fn spgemm_parallel<T: Scalar>(
    a: &CsrMatrix<T>,
    b: &CsrMatrix<T>,
    threads: usize,
) -> Result<CsrMatrix<T>> {
    accum::spgemm_adaptive(a, b, threads, accum::effective_thresholds_for(b.ncols()))
}

/// Parallel sort-reduce merge (the ESC arithmetic path, multithreaded).
pub fn spgemm_sort_reduce_parallel<T: Scalar>(
    a: &CsrMatrix<T>,
    b: &CsrMatrix<T>,
    threads: usize,
) -> Result<CsrMatrix<T>> {
    spgemm_parallel_with(a, b, threads, sort_reduce_rows)
}

/// Parallel hash merge (the cuSPARSE arithmetic path, multithreaded).
pub fn spgemm_hash_parallel<T: Scalar>(
    a: &CsrMatrix<T>,
    b: &CsrMatrix<T>,
    threads: usize,
) -> Result<CsrMatrix<T>> {
    spgemm_parallel_with(a, b, threads, hash_rows)
}

/// A sensible default worker count for the numeric mergers: the resolved
/// [`br_sparse::par`] configuration (`--threads` override, `BR_THREADS`,
/// else available cores).
pub fn default_threads() -> usize {
    par::effective_threads(None)
}

/// Row-partitioned parallel driver: any *range-based* per-row merger
/// distributes over `threads` std-scoped workers and is stitched back
/// together. Workers merge row ranges of `a` directly — no `row_slice`
/// clone per worker — and each range's scratch (hash table, products
/// buffer) is hoisted inside the range merger, so it is allocated once per
/// range rather than once per row.
///
/// Determinism: the row partition ([`par::weighted_bounds`]) is a pure
/// function of the operands' structure and `threads`, each worker runs the
/// *sequential* merger on its row range with its own scratch, and the
/// per-range CSR triples are concatenated in row order — so the output is
/// bit-for-bit the sequential result at any thread count.
fn spgemm_parallel_with<T: Scalar>(
    a: &CsrMatrix<T>,
    b: &CsrMatrix<T>,
    threads: usize,
    merger: impl Fn(&CsrMatrix<T>, &CsrMatrix<T>, Range<usize>) -> (Vec<usize>, Vec<u32>, Vec<T>)
        + Copy
        + Send
        + Sync,
) -> Result<CsrMatrix<T>> {
    check_shapes(a, b)?;
    let threads = threads.max(1).min(a.nrows().max(1));
    if threads == 1 || a.nrows() < 256 {
        let (ptr, idx, val) = merger(a, b, 0..a.nrows());
        return Ok(CsrMatrix::from_parts_unchecked(
            a.nrows(),
            b.ncols(),
            ptr,
            idx,
            val,
        ));
    }

    // Static row partition balanced by intermediate products, so one hub
    // region doesn't serialize the whole run. The weights scan itself is
    // O(nnz(A)) and parallelizes per row.
    let weights: Vec<u64> = par::ordered_index_map(a.nrows(), threads, |r| {
        let (cols, _) = a.row(r);
        cols.iter().map(|&k| b.row_nnz(k as usize) as u64).sum()
    });
    let bounds = par::weighted_bounds(&weights, threads);

    // Each worker produces the (ptr, idx, val) triple of its row range;
    // ranges come back in row order.
    let parts = par::ordered_bounds_map(&bounds, |range| merger(a, b, range));

    // Stitch the per-range outputs back together.
    let mut ptr = Vec::with_capacity(a.nrows() + 1);
    let mut idx = Vec::new();
    let mut val = Vec::new();
    ptr.push(0usize);
    for (p_ptr, p_idx, p_val) in parts {
        let base = idx.len();
        ptr.extend(p_ptr.iter().skip(1).map(|&x| base + x));
        idx.extend(p_idx);
        val.extend(p_val);
    }
    Ok(CsrMatrix::from_parts_unchecked(
        a.nrows(),
        b.ncols(),
        ptr,
        idx,
        val,
    ))
}

fn check_shapes<T: Scalar>(a: &CsrMatrix<T>, b: &CsrMatrix<T>) -> Result<()> {
    if a.ncols() != b.nrows() {
        return Err(br_sparse::SparseError::ShapeMismatch {
            op: "spgemm",
            lhs: (a.nrows(), a.ncols()),
            rhs: (b.nrows(), b.ncols()),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use br_datasets::rmat::{rmat, RmatConfig};

    fn sample() -> CsrMatrix<f64> {
        rmat(RmatConfig::snap_like(7, 6, 42)).to_csr()
    }

    #[test]
    fn all_three_mergers_agree_on_structure_and_values() {
        let a = sample();
        let spa = spgemm_dense_spa(&a, &a).unwrap();
        let esc = spgemm_sort_reduce(&a, &a).unwrap();
        let hash = spgemm_hash(&a, &a).unwrap();
        assert_eq!(spa.ptr(), esc.ptr());
        assert_eq!(spa.idx(), esc.idx());
        assert_eq!(spa.ptr(), hash.ptr());
        assert_eq!(spa.idx(), hash.idx());
        assert!(spa.approx_eq(&esc, 1e-9));
        assert!(spa.approx_eq(&hash, 1e-9));
    }

    #[test]
    fn rectangular_agreement() {
        let a = rmat(RmatConfig::uniform(6, 4, 1).with_dim(50).with_edges(150)).to_csr();
        let b = rmat(RmatConfig::uniform(6, 4, 2).with_dim(50).with_edges(120)).to_csr();
        let spa = spgemm_dense_spa(&a, &b).unwrap();
        let esc = spgemm_sort_reduce(&a, &b).unwrap();
        let hash = spgemm_hash(&a, &b).unwrap();
        assert!(spa.approx_eq(&esc, 1e-9));
        assert!(spa.approx_eq(&hash, 1e-9));
    }

    #[test]
    fn empty_and_identity_edge_cases() {
        let z = CsrMatrix::<f64>::zeros(4, 4);
        assert_eq!(spgemm_sort_reduce(&z, &z).unwrap().nnz(), 0);
        assert_eq!(spgemm_hash(&z, &z).unwrap().nnz(), 0);
        let i = CsrMatrix::<f64>::identity(5);
        assert!(spgemm_hash(&i, &i).unwrap().approx_eq(&i, 1e-15));
        assert!(spgemm_sort_reduce(&i, &i).unwrap().approx_eq(&i, 1e-15));
    }

    #[test]
    fn shape_mismatch_rejected() {
        let a = CsrMatrix::<f64>::zeros(2, 3);
        assert!(spgemm_sort_reduce(&a, &a).is_err());
        assert!(spgemm_hash(&a, &a).is_err());
        assert!(spgemm_parallel(&a, &a, 4).is_err());
    }

    #[test]
    fn parallel_is_bit_identical_to_sequential() {
        let a = rmat(RmatConfig::graph500(9, 8, 77)).to_csr();
        let seq = spgemm_dense_spa(&a, &a).unwrap();
        for threads in [1, 2, 3, 8, 20] {
            let par = spgemm_parallel(&a, &a, threads).unwrap();
            assert_eq!(par, seq, "threads = {threads}");
        }
    }

    #[test]
    fn parallel_handles_hub_concentrated_work() {
        // All the work lives in one row: partitioning must still cover
        // every row exactly once.
        let n = 600;
        let mut ptr = vec![0usize; n + 1];
        let mut idx: Vec<u32> = (0..n as u32).collect();
        ptr[1] = n;
        for r in 1..n {
            idx.push(0);
            ptr[r + 1] = ptr[r] + 1;
        }
        let a = CsrMatrix::try_new(n, n, ptr, idx, vec![1.0; 2 * n - 1]).unwrap();
        let par = spgemm_parallel(&a, &a, 8).unwrap();
        let seq = spgemm_dense_spa(&a, &a).unwrap();
        assert_eq!(par, seq);
    }

    #[test]
    fn parallel_small_input_falls_back_to_sequential() {
        let i = CsrMatrix::<f64>::identity(10);
        assert_eq!(
            spgemm_parallel(&i, &i, 16).unwrap(),
            spgemm_dense_spa(&i, &i).unwrap()
        );
    }

    #[test]
    fn parallel_handles_interspersed_empty_rows() {
        // Every other row is empty (zero weight): the weighted partition
        // must still cover all rows and the stitched `ptr` must stay flat
        // across the empty ones.
        let n = 400;
        let mut ptr = vec![0usize; n + 1];
        let mut idx = Vec::new();
        for r in 0..n {
            if r % 2 == 0 {
                idx.push((r % 7) as u32);
                idx.push((7 + r % 11) as u32);
            }
            ptr[r + 1] = idx.len();
        }
        let nnz = idx.len();
        let a = CsrMatrix::try_new(n, n, ptr, idx, vec![0.5f64; nnz]).unwrap();
        let seq = spgemm_dense_spa(&a, &a).unwrap();
        for threads in [2, 5, 16] {
            assert_eq!(spgemm_parallel(&a, &a, threads).unwrap(), seq);
        }
    }

    #[test]
    fn parallel_weight_cliffs_at_chunk_boundaries() {
        // Weights arranged so greedy prefix cuts land right before/after
        // huge rows: alternating runs of featherweight rows and one row
        // that multiplies against a dense hub row of B.
        let n = 512;
        let hub_width = 256u32;
        let mut ptr = vec![0usize; n + 1];
        let mut idx = Vec::new();
        let mut val = Vec::new();
        for r in 0..n {
            if r % 64 == 63 {
                // Heavy row: points at row 0 of B (the hub) many times over
                // distinct columns 0..8, each expanding hub_width products.
                for j in 0..8 {
                    idx.push(j);
                    val.push(1.0 + j as f64);
                }
            } else {
                idx.push((r % 32) as u32 + 8);
                val.push(0.25);
            }
            ptr[r + 1] = idx.len();
        }
        let a = CsrMatrix::try_new(n, n, ptr, idx, val).unwrap();

        // B: rows 0..8 dense over `hub_width` columns, the rest singletons.
        let mut bptr = vec![0usize; n + 1];
        let mut bidx = Vec::new();
        let mut bval = Vec::new();
        for r in 0..n {
            if r < 8 {
                for j in 0..hub_width {
                    bidx.push(j);
                    bval.push(1.0 / (1.0 + j as f64));
                }
            } else {
                bidx.push((r % 300) as u32);
                bval.push(2.0);
            }
            bptr[r + 1] = bidx.len();
        }
        let b = CsrMatrix::try_new(n, n, bptr, bidx, bval).unwrap();

        let seq = spgemm_dense_spa(&a, &b).unwrap();
        for threads in [2, 3, 7, 8, 64] {
            assert_eq!(spgemm_parallel(&a, &b, threads).unwrap(), seq);
        }
    }

    #[test]
    fn parallel_all_products_collapse_to_one_column() {
        // B has a single column, so every intermediate product for a row
        // lands on the same accumulator slot — the worst case for
        // accumulation-order sensitivity. All three parallel mergers must
        // still match their sequential counterparts bit-for-bit.
        let n = 256;
        let a = rmat(RmatConfig::snap_like(8, 5, 9)).to_csr();
        let n_a = a.ncols();
        let bptr: Vec<usize> = (0..=n_a).collect();
        let b = CsrMatrix::try_new(
            n_a,
            1,
            bptr,
            vec![0u32; n_a],
            (0..n_a).map(|k| 1.0 + (k % 13) as f64 * 0.125).collect(),
        )
        .unwrap();
        assert!(a.nrows() >= n); // large enough to take the parallel path
        let spa = spgemm_dense_spa(&a, &b).unwrap();
        let esc = spgemm_sort_reduce(&a, &b).unwrap();
        let hash = spgemm_hash(&a, &b).unwrap();
        for threads in [2, 8] {
            assert_eq!(spgemm_parallel(&a, &b, threads).unwrap(), spa);
            assert_eq!(spgemm_sort_reduce_parallel(&a, &b, threads).unwrap(), esc);
            assert_eq!(spgemm_hash_parallel(&a, &b, threads).unwrap(), hash);
        }
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(16))]
        /// Property: for arbitrary power-law matrices and thread counts the
        /// parallel driver is bit-for-bit the sequential merger.
        #[test]
        fn prop_parallel_bit_identical(seed in 0u64..1000, threads in 2usize..12) {
            let a = rmat(RmatConfig::snap_like(8, 6, seed)).to_csr();
            let seq = spgemm_dense_spa(&a, &a).unwrap();
            let par = spgemm_parallel(&a, &a, threads).unwrap();
            proptest::prop_assert_eq!(par, seq);
        }
    }
}
