//! Three independent numeric mergers.
//!
//! Each simulated method owes the user a *real* result, and each family of
//! methods accumulates intermediate products differently: Gustavson-style
//! kernels use a dense accumulator (SPA), cuSPARSE-style kernels a hash
//! table, and ESC a sort + segmented reduction. We implement all three so
//! that every method's arithmetic path is genuinely exercised and checked
//! against the others (and against the dense oracle) rather than sharing
//! one implementation.
//!
//! All three produce canonical (sorted-row) CSR.

use br_sparse::ops::spgemm_gustavson;
use br_sparse::{CsrMatrix, Result, Scalar};

/// Dense-accumulator (SPA) merge — delegates to the crate-level reference,
/// which is exactly this algorithm.
pub fn spgemm_dense_spa<T: Scalar>(a: &CsrMatrix<T>, b: &CsrMatrix<T>) -> Result<CsrMatrix<T>> {
    spgemm_gustavson(a, b)
}

/// Expand–sort–reduce merge (the ESC numeric path): per output row, gather
/// all `(column, value)` products, sort by column, reduce adjacent runs.
pub fn spgemm_sort_reduce<T: Scalar>(a: &CsrMatrix<T>, b: &CsrMatrix<T>) -> Result<CsrMatrix<T>> {
    check_shapes(a, b)?;
    let mut ptr = Vec::with_capacity(a.nrows() + 1);
    let mut idx: Vec<u32> = Vec::new();
    let mut val: Vec<T> = Vec::new();
    ptr.push(0usize);
    let mut products: Vec<(u32, T)> = Vec::new();
    for r in 0..a.nrows() {
        products.clear();
        let (a_cols, a_vals) = a.row(r);
        for (&k, &a_rk) in a_cols.iter().zip(a_vals) {
            let (b_cols, b_vals) = b.row(k as usize);
            products.extend(
                b_cols
                    .iter()
                    .zip(b_vals)
                    .map(|(&j, &b_kj)| (j, a_rk * b_kj)),
            );
        }
        // Stable sort keeps products in B-row generation order within a
        // column, matching the SPA accumulation order bit-for-bit for the
        // common case of left-to-right addition.
        products.sort_by_key(|&(j, _)| j);
        let mut i = 0;
        while i < products.len() {
            let (j, mut acc) = products[i];
            let mut k = i + 1;
            while k < products.len() && products[k].0 == j {
                acc += products[k].1;
                k += 1;
            }
            idx.push(j);
            val.push(acc);
            i = k;
        }
        ptr.push(idx.len());
    }
    Ok(CsrMatrix::from_parts_unchecked(
        a.nrows(),
        b.ncols(),
        ptr,
        idx,
        val,
    ))
}

/// Hash merge (the cuSPARSE-style numeric path): per output row, accumulate
/// into an open-addressing table sized to the next power of two above the
/// row's upper bound, then gather and sort.
pub fn spgemm_hash<T: Scalar>(a: &CsrMatrix<T>, b: &CsrMatrix<T>) -> Result<CsrMatrix<T>> {
    check_shapes(a, b)?;
    let mut ptr = Vec::with_capacity(a.nrows() + 1);
    let mut idx: Vec<u32> = Vec::new();
    let mut val: Vec<T> = Vec::new();
    ptr.push(0usize);

    for r in 0..a.nrows() {
        let (a_cols, a_vals) = a.row(r);
        let upper: usize = a_cols
            .iter()
            .map(|&k| b.row_nnz(k as usize))
            .sum::<usize>()
            .max(1);
        let cap = (upper * 2).next_power_of_two();
        let mask = cap - 1;
        let mut keys: Vec<u32> = vec![u32::MAX; cap];
        let mut vals: Vec<T> = vec![T::ZERO; cap];
        let mut used: Vec<usize> = Vec::new();
        for (&k, &a_rk) in a_cols.iter().zip(a_vals) {
            let (b_cols, b_vals) = b.row(k as usize);
            for (&j, &b_kj) in b_cols.iter().zip(b_vals) {
                // Multiplicative hashing with linear probing — the standard
                // GPU spGEMM table design.
                let mut slot = (j as usize).wrapping_mul(0x9E37_79B1) & mask;
                loop {
                    if keys[slot] == j {
                        vals[slot] += a_rk * b_kj;
                        break;
                    }
                    if keys[slot] == u32::MAX {
                        keys[slot] = j;
                        vals[slot] = a_rk * b_kj;
                        used.push(slot);
                        break;
                    }
                    slot = (slot + 1) & mask;
                }
            }
        }
        let mut row: Vec<(u32, T)> = used.iter().map(|&s| (keys[s], vals[s])).collect();
        row.sort_unstable_by_key(|&(j, _)| j);
        for (j, v) in row {
            idx.push(j);
            val.push(v);
        }
        ptr.push(idx.len());
    }
    Ok(CsrMatrix::from_parts_unchecked(
        a.nrows(),
        b.ncols(),
        ptr,
        idx,
        val,
    ))
}

/// Multithreaded dense-accumulator Gustavson: output rows are independent,
/// so row ranges are distributed over `threads` scoped workers,
/// each with its own accumulator. Produces bit-identical results to
/// [`spgemm_dense_spa`] (same per-row accumulation order) — this is the
/// fast oracle path for large benchmark runs, and also what the MKL-like
/// baseline *functionally* computes.
pub fn spgemm_parallel<T: Scalar>(
    a: &CsrMatrix<T>,
    b: &CsrMatrix<T>,
    threads: usize,
) -> Result<CsrMatrix<T>> {
    spgemm_parallel_with(a, b, threads, spgemm_dense_spa)
}

/// Parallel sort-reduce merge (the ESC arithmetic path, multithreaded).
pub fn spgemm_sort_reduce_parallel<T: Scalar>(
    a: &CsrMatrix<T>,
    b: &CsrMatrix<T>,
    threads: usize,
) -> Result<CsrMatrix<T>> {
    spgemm_parallel_with(a, b, threads, spgemm_sort_reduce)
}

/// Parallel hash merge (the cuSPARSE arithmetic path, multithreaded).
pub fn spgemm_hash_parallel<T: Scalar>(
    a: &CsrMatrix<T>,
    b: &CsrMatrix<T>,
    threads: usize,
) -> Result<CsrMatrix<T>> {
    spgemm_parallel_with(a, b, threads, spgemm_hash)
}

/// A sensible default worker count for the numeric mergers.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Row-partitioned parallel driver: any per-row merger distributes over
/// `threads` std-scoped workers and is stitched back together.
fn spgemm_parallel_with<T: Scalar>(
    a: &CsrMatrix<T>,
    b: &CsrMatrix<T>,
    threads: usize,
    merger: impl Fn(&CsrMatrix<T>, &CsrMatrix<T>) -> Result<CsrMatrix<T>> + Copy + Send + Sync,
) -> Result<CsrMatrix<T>> {
    check_shapes(a, b)?;
    let threads = threads.max(1).min(a.nrows().max(1));
    if threads == 1 || a.nrows() < 256 {
        return merger(a, b);
    }

    // Static row partition balanced by intermediate products, so one hub
    // region doesn't serialize the whole run.
    let weights: Vec<u64> = (0..a.nrows())
        .map(|r| {
            let (cols, _) = a.row(r);
            cols.iter().map(|&k| b.row_nnz(k as usize) as u64).sum()
        })
        .collect();
    let total: u64 = weights.iter().sum();
    let per_part = total / threads as u64 + 1;
    let mut bounds = vec![0usize];
    let mut acc = 0u64;
    for (r, &w) in weights.iter().enumerate() {
        acc += w;
        if acc >= per_part && bounds.len() < threads {
            bounds.push(r + 1);
            acc = 0;
        }
    }
    bounds.push(a.nrows());

    // Each worker produces the (ptr, idx, val) triple of its row range.
    type Part<T> = (Vec<usize>, Vec<u32>, Vec<T>);
    let mut parts: Vec<Option<Part<T>>> = Vec::new();
    parts.resize_with(bounds.len() - 1, || None);
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for w in 0..bounds.len() - 1 {
            let (lo, hi) = (bounds[w], bounds[w + 1]);
            handles.push(scope.spawn(move || -> Part<T> {
                let slice = a.row_slice(lo..hi);
                let c = merger(&slice, b).expect("shapes already validated");
                let (_, _, ptr, idx, val) = c.into_parts();
                (ptr, idx, val)
            }));
        }
        for (w, h) in handles.into_iter().enumerate() {
            parts[w] = Some(h.join().expect("worker must not panic"));
        }
    });

    // Stitch the per-range outputs back together.
    let mut ptr = Vec::with_capacity(a.nrows() + 1);
    let mut idx = Vec::new();
    let mut val = Vec::new();
    ptr.push(0usize);
    for part in parts.into_iter().map(|p| p.expect("worker filled")) {
        let (p_ptr, p_idx, p_val) = part;
        let base = idx.len();
        ptr.extend(p_ptr.iter().skip(1).map(|&x| base + x));
        idx.extend(p_idx);
        val.extend(p_val);
    }
    Ok(CsrMatrix::from_parts_unchecked(
        a.nrows(),
        b.ncols(),
        ptr,
        idx,
        val,
    ))
}

fn check_shapes<T: Scalar>(a: &CsrMatrix<T>, b: &CsrMatrix<T>) -> Result<()> {
    if a.ncols() != b.nrows() {
        return Err(br_sparse::SparseError::ShapeMismatch {
            op: "spgemm",
            lhs: (a.nrows(), a.ncols()),
            rhs: (b.nrows(), b.ncols()),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use br_datasets::rmat::{rmat, RmatConfig};

    fn sample() -> CsrMatrix<f64> {
        rmat(RmatConfig::snap_like(7, 6, 42)).to_csr()
    }

    #[test]
    fn all_three_mergers_agree_on_structure_and_values() {
        let a = sample();
        let spa = spgemm_dense_spa(&a, &a).unwrap();
        let esc = spgemm_sort_reduce(&a, &a).unwrap();
        let hash = spgemm_hash(&a, &a).unwrap();
        assert_eq!(spa.ptr(), esc.ptr());
        assert_eq!(spa.idx(), esc.idx());
        assert_eq!(spa.ptr(), hash.ptr());
        assert_eq!(spa.idx(), hash.idx());
        assert!(spa.approx_eq(&esc, 1e-9));
        assert!(spa.approx_eq(&hash, 1e-9));
    }

    #[test]
    fn rectangular_agreement() {
        let a = rmat(RmatConfig::uniform(6, 4, 1).with_dim(50).with_edges(150)).to_csr();
        let b = rmat(RmatConfig::uniform(6, 4, 2).with_dim(50).with_edges(120)).to_csr();
        let spa = spgemm_dense_spa(&a, &b).unwrap();
        let esc = spgemm_sort_reduce(&a, &b).unwrap();
        let hash = spgemm_hash(&a, &b).unwrap();
        assert!(spa.approx_eq(&esc, 1e-9));
        assert!(spa.approx_eq(&hash, 1e-9));
    }

    #[test]
    fn empty_and_identity_edge_cases() {
        let z = CsrMatrix::<f64>::zeros(4, 4);
        assert_eq!(spgemm_sort_reduce(&z, &z).unwrap().nnz(), 0);
        assert_eq!(spgemm_hash(&z, &z).unwrap().nnz(), 0);
        let i = CsrMatrix::<f64>::identity(5);
        assert!(spgemm_hash(&i, &i).unwrap().approx_eq(&i, 1e-15));
        assert!(spgemm_sort_reduce(&i, &i).unwrap().approx_eq(&i, 1e-15));
    }

    #[test]
    fn shape_mismatch_rejected() {
        let a = CsrMatrix::<f64>::zeros(2, 3);
        assert!(spgemm_sort_reduce(&a, &a).is_err());
        assert!(spgemm_hash(&a, &a).is_err());
        assert!(spgemm_parallel(&a, &a, 4).is_err());
    }

    #[test]
    fn parallel_is_bit_identical_to_sequential() {
        let a = rmat(RmatConfig::graph500(9, 8, 77)).to_csr();
        let seq = spgemm_dense_spa(&a, &a).unwrap();
        for threads in [1, 2, 3, 8, 20] {
            let par = spgemm_parallel(&a, &a, threads).unwrap();
            assert_eq!(par, seq, "threads = {threads}");
        }
    }

    #[test]
    fn parallel_handles_hub_concentrated_work() {
        // All the work lives in one row: partitioning must still cover
        // every row exactly once.
        let n = 600;
        let mut ptr = vec![0usize; n + 1];
        let mut idx: Vec<u32> = (0..n as u32).collect();
        ptr[1] = n;
        for r in 1..n {
            idx.push(0);
            ptr[r + 1] = ptr[r] + 1;
        }
        let a = CsrMatrix::try_new(n, n, ptr, idx, vec![1.0; 2 * n - 1]).unwrap();
        let par = spgemm_parallel(&a, &a, 8).unwrap();
        let seq = spgemm_dense_spa(&a, &a).unwrap();
        assert_eq!(par, seq);
    }

    #[test]
    fn parallel_small_input_falls_back_to_sequential() {
        let i = CsrMatrix::<f64>::identity(10);
        assert_eq!(
            spgemm_parallel(&i, &i, 16).unwrap(),
            spgemm_dense_spa(&i, &i).unwrap()
        );
    }
}
