//! Property tests for the row-reordering stage (DESIGN.md §15): any
//! strategy's permute → multiply → un-permute pipeline must return results
//! bit-identical to the identity ordering, across random structures, RMAT
//! seeds, host thread counts, and degenerate inputs.

use block_reorganizer::config::ReorganizerConfig;
use block_reorganizer::plan::{PlanMode, ReorgPlan};
use block_reorganizer::reorder::{Permutation, ReorderStrategy};
use br_datasets::rmat::{rmat, RmatConfig};
use br_gpu_sim::device::DeviceConfig;
use br_sparse::{CooMatrix, CsrMatrix};
use br_spgemm::context::ProblemContext;
use proptest::prelude::*;

const STRATEGIES: [ReorderStrategy; 4] = [
    ReorderStrategy::Degree,
    ReorderStrategy::Rcm,
    ReorderStrategy::Cluster,
    ReorderStrategy::Auto,
];

/// Strategy: a random square CSR matrix with at least one entry.
fn square_csr(max_dim: u32, max_nnz: usize) -> impl Strategy<Value = CsrMatrix<f64>> {
    (2..max_dim).prop_flat_map(move |n| {
        proptest::collection::vec((0..n, 0..n, 0.25f64..4.0), 1..max_nnz).prop_map(move |trips| {
            let mut coo = CooMatrix::new(n as usize, n as usize);
            for (r, c, v) in trips {
                coo.push(r, c, v).expect("in bounds by construction");
            }
            coo.to_csr()
        })
    })
}

/// Executes the square of `a` under every strategy and asserts the output
/// is bitwise equal to the unreordered baseline.
fn assert_all_strategies_bit_identical(a: &CsrMatrix<f64>, what: &str) {
    let dev = DeviceConfig::titan_xp();
    let cfg = ReorganizerConfig::default();
    let ctx = ProblemContext::new(a, a).expect("square shapes agree");
    let oracle = ReorgPlan::build(&ctx, &cfg, &dev)
        .execute(&ctx, &dev, PlanMode::Cached)
        .expect("baseline executes");
    for strategy in STRATEGIES {
        let plan = ReorgPlan::build_with_reorder(&ctx, &cfg, &dev, strategy);
        if let Some(p) = &plan.permutation {
            // The stored permutation must be a bijection with a consistent
            // inverse before we trust it to un-permute anything.
            assert_eq!(p.len(), a.nrows(), "{what}/{strategy:?}");
            let mut seen = vec![false; p.len()];
            for (i, &f) in p.forward().iter().enumerate() {
                assert!(!seen[f as usize], "{what}/{strategy:?}: duplicate row");
                seen[f as usize] = true;
                assert_eq!(p.inverse()[f as usize], i as u32, "{what}/{strategy:?}");
            }
        }
        let run = plan
            .execute(&ctx, &dev, PlanMode::Cached)
            .expect("reordered plan executes");
        assert_eq!(run.result.ptr(), oracle.result.ptr(), "{what}/{strategy:?}");
        assert_eq!(run.result.idx(), oracle.result.idx(), "{what}/{strategy:?}");
        let obits: Vec<u64> = oracle.result.val().iter().map(|v| v.to_bits()).collect();
        let rbits: Vec<u64> = run.result.val().iter().map(|v| v.to_bits()).collect();
        assert_eq!(
            obits, rbits,
            "{what}/{strategy:?}: values must match bitwise"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn random_structures_unpermute_to_the_identity_result(a in square_csr(48, 200)) {
        assert_all_strategies_bit_identical(&a, "random");
    }

    #[test]
    fn permute_then_unpermute_is_the_identity(a in square_csr(48, 200)) {
        for strategy in STRATEGIES {
            let (_, permutation) =
                block_reorganizer::reorder::plan_permutation(&a, strategy);
            let Some(p) = permutation else { continue };
            let permuted = a.permute_rows(p.forward());
            let back = permuted.permute_rows(p.inverse());
            prop_assert_eq!(back.ptr(), a.ptr());
            prop_assert_eq!(back.idx(), a.idx());
            prop_assert_eq!(back.val(), a.val());
        }
    }

    #[test]
    fn rmat_seeds_unpermute_to_the_identity_result(
        seed in 0u64..1000,
        scale in 5u32..8,
    ) {
        let a = rmat(RmatConfig::graph500(scale, 6, seed)).to_csr();
        assert_all_strategies_bit_identical(&a, "rmat");
    }
}

/// Thread counts sweep: the reordered pipeline keeps the bit-identity
/// contract at 1 and 8 host workers. Runs as one sequential test because
/// the thread override is process-global.
#[test]
fn reorder_is_bit_identical_at_any_thread_count() {
    let a = rmat(RmatConfig::graph500(9, 8, 7)).to_csr();
    for threads in [1usize, 8] {
        br_sparse::par::set_global_threads(threads);
        assert_all_strategies_bit_identical(&a, "threads");
    }
    br_sparse::par::set_global_threads(1);
}

#[test]
fn degenerate_inputs_survive_every_strategy() {
    // All-zero structure: nothing to reorder, nothing to break.
    let empty = CsrMatrix::<f64>::zeros(4, 4);
    assert_all_strategies_bit_identical(&empty, "empty");

    // A single row (1×1 with one entry): every order is the identity.
    let mut coo = CooMatrix::new(1, 1);
    coo.push(0, 0, 2.5).unwrap();
    assert_all_strategies_bit_identical(&coo.to_csr(), "single-row");

    // Already degree-sorted banded matrix: strategies that would produce
    // the identity must store no permutation at all.
    let n = 16u32;
    let mut coo = CooMatrix::new(n as usize, n as usize);
    for r in 0..n {
        for c in r..n.min(r + 3) {
            coo.push(r, c, 1.0 + f64::from(r + c)).unwrap();
        }
    }
    let sorted = coo.to_csr();
    assert_all_strategies_bit_identical(&sorted, "banded");
    let identity = Permutation::identity(n as usize);
    assert!(identity.is_identity());
    assert_eq!(identity.forward(), identity.inverse());
}
