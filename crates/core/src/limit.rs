//! B-Limiting (paper Section IV-D, Figure 7).
//!
//! The merge is memory-intensive; blocks merging long rows of `Ĉ` flood the
//! L2, and because L2 bandwidth is shared, *everyone* slows down. Rather
//! than throttle explicitly, the paper allocates **extra shared memory** to
//! those blocks so the occupancy calculator itself limits how many co-reside
//! on an SM — "we allocate extra shared memory to the merge kernel functions
//! in order to reduce the number of blocks in an SM".
//!
//! A row is limited when its intermediate-product count exceeds `β ×` the
//! mean row workload (β = 10). The limiting factor (how much extra shared
//! memory) trades contention against warp occupancy; Figure 14 sweeps it.

use br_sparse::Scalar;
use br_spgemm::context::ProblemContext;
use serde::{Deserialize, Serialize};

use crate::config::ReorganizerConfig;

/// The merge-limiting plan.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LimitPlan {
    /// Per-row flag: `true` ⇒ the row's merge block gets extra shared mem.
    pub limited: Vec<bool>,
    /// The row-workload threshold used.
    pub threshold: u64,
    /// Extra shared-memory bytes per limited block.
    pub extra_bytes: u32,
}

impl LimitPlan {
    /// Plans limiting for all output rows.
    pub fn of<T: Scalar>(ctx: &ProblemContext<T>, config: &ReorganizerConfig) -> Self {
        Self::from_products(&ctx.row_products, ctx.intermediate_total, config)
    }

    /// Plans limiting from a per-row workload slice directly — the path the
    /// estimation-based planner uses, where `row_products` are extrapolated
    /// from a sample instead of exactly precalculated. `intermediate_total`
    /// stays exact either way (it comes from the cheap block-products pass).
    pub fn from_products(
        row_products: &[u64],
        intermediate_total: u64,
        config: &ReorganizerConfig,
    ) -> Self {
        let productive_rows = row_products.iter().filter(|&&p| p > 0).count().max(1);
        let mean = intermediate_total as f64 / productive_rows as f64;
        let threshold = (config.beta * mean).ceil().max(1.0) as u64;
        let limited = row_products.iter().map(|&p| p > threshold).collect();
        LimitPlan {
            limited,
            threshold,
            extra_bytes: if config.enable_limit {
                config.limit_bytes()
            } else {
                0
            },
        }
    }

    /// Number of limited rows (the paper reports 12 657 for YouTube).
    pub fn limited_count(&self) -> usize {
        self.limited.iter().filter(|&&l| l).count()
    }

    /// Extra shared memory for the merge block of row `r`.
    pub fn extra_smem(&self, r: usize) -> u32 {
        if self.limited[r] {
            self.extra_bytes
        } else {
            0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use br_datasets::chung_lu::{chung_lu, ChungLuConfig};
    use br_datasets::mesh::banded;

    fn skewed_ctx() -> ProblemContext<f64> {
        let a = chung_lu(ChungLuConfig {
            gamma: 2.0,
            ..ChungLuConfig::social(2000, 14_000, 9)
        })
        .to_csr();
        ProblemContext::new(&a, &a).unwrap()
    }

    #[test]
    fn limits_only_rows_above_threshold() {
        let ctx = skewed_ctx();
        let plan = LimitPlan::of(&ctx, &ReorganizerConfig::default());
        for (r, &lim) in plan.limited.iter().enumerate() {
            assert_eq!(lim, ctx.row_products[r] > plan.threshold);
        }
    }

    #[test]
    fn skewed_data_limits_a_small_nonzero_fraction() {
        let ctx = skewed_ctx();
        let plan = LimitPlan::of(&ctx, &ReorganizerConfig::default());
        let n = plan.limited_count();
        assert!(n > 0, "hubs must trigger limiting");
        assert!(
            (n as f64) < 0.1 * ctx.nrows() as f64,
            "limiting is for the heavy tail only: {n} of {}",
            ctx.nrows()
        );
    }

    #[test]
    fn regular_data_limits_nothing() {
        let a = banded(1000, 32, 8, 4).to_csr();
        let ctx = ProblemContext::new(&a, &a).unwrap();
        let plan = LimitPlan::of(&ctx, &ReorganizerConfig::default());
        assert_eq!(plan.limited_count(), 0);
    }

    #[test]
    fn disabled_limiting_allocates_no_extra_memory() {
        let ctx = skewed_ctx();
        let plan = LimitPlan::of(
            &ctx,
            &ReorganizerConfig {
                enable_limit: false,
                ..Default::default()
            },
        );
        assert!(ctx
            .row_products
            .iter()
            .enumerate()
            .all(|(r, _)| plan.extra_smem(r) == 0));
    }

    #[test]
    fn default_extra_memory_is_4_units() {
        let ctx = skewed_ctx();
        let plan = LimitPlan::of(&ctx, &ReorganizerConfig::default());
        assert_eq!(plan.extra_bytes, 4 * 6144);
    }
}
