//! B-Splitting (paper Section IV-C.1, Figure 5).
//!
//! A dominator pair's column vector is divided into `2ⁿ` pieces "by simply
//! expanding the pointer index of the sparse format matrix"; a **mapper
//! array** records which original pair each piece belongs to so the divided
//! blocks produce exactly the original products. The row vector is *not*
//! split ("to guarantee a sufficient number of effective threads").
//!
//! Two effects follow, both visible in the model: the dominator's work
//! spreads over many SMs (LBI recovers — Figure 11), and the divided blocks
//! all re-read the same row vector, turning its traffic into L2 hits
//! (Figure 12).

use br_gpu_sim::device::DeviceConfig;
use br_gpu_sim::trace::{BlockTrace, TraceBuilder};
use br_sparse::Scalar;
use br_spgemm::context::ProblemContext;
use br_spgemm::workspace::{Workspace, ELEM_BYTES};
use serde::{Deserialize, Serialize};

use crate::config::SplitPolicy;

/// Host-to-host copy bandwidth used to cost the preprocessing step
/// ("all preprocesses are performed on the target GPUs except for
/// B-Splitting, which is performed on host CPUs").
const HOST_COPY_GBS: f64 = 8.0;
/// Fixed host cost per dominator (pointer expansion bookkeeping), ms.
const HOST_PER_DOMINATOR_MS: f64 = 0.002;

/// The split plan of one dominator pair.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SplitPlan {
    /// Original pair index.
    pub pair: usize,
    /// Number of pieces (a power of two).
    pub factor: u32,
    /// Element ranges `[start, end)` within the pair's column vector.
    pub pieces: Vec<(usize, usize)>,
}

impl SplitPlan {
    /// Builds the plan for `pair`, splitting its `col_nnz` elements into
    /// `factor` near-equal contiguous pieces (empty pieces are dropped, so
    /// `factor > col_nnz` degrades gracefully).
    pub fn new(pair: usize, col_nnz: usize, factor: u32) -> Self {
        let factor = factor.max(1);
        let mut pieces = Vec::with_capacity(factor as usize);
        let base = col_nnz / factor as usize;
        let rem = col_nnz % factor as usize;
        let mut start = 0usize;
        for p in 0..factor as usize {
            let len = base + usize::from(p < rem);
            if len > 0 {
                pieces.push((start, start + len));
                start += len;
            }
        }
        SplitPlan {
            pair,
            factor,
            pieces,
        }
    }
}

/// Picks the splitting factor under the given policy; `work_threshold` is
/// the dominator classification threshold in intermediate products (only
/// used by [`SplitPolicy::Greedy`]). Factors never exceed the number of
/// column elements (a piece needs at least one element).
pub fn choose_factor(
    policy: SplitPolicy,
    device: &DeviceConfig,
    col_nnz: usize,
    pair_products: u64,
    work_threshold: u64,
) -> u32 {
    let cap = (col_nnz.max(1) as u32).next_power_of_two();
    match policy {
        SplitPolicy::Fixed(f) => f.max(1).next_power_of_two().min(cap),
        SplitPolicy::Auto => {
            let per_sm = device.num_sms.next_power_of_two();
            (per_sm * 2).min(cap)
        }
        SplitPolicy::Greedy => {
            // Enough pieces to reach every SM…
            let by_sms = device.num_sms.next_power_of_two() as u64;
            // …and enough that each piece stops being a dominator.
            let by_work = pair_products
                .div_ceil(work_threshold.max(1))
                .next_power_of_two();
            (by_sms.max(by_work).min(cap as u64)) as u32
        }
    }
}

/// Plans splits for all dominators. `work_threshold` is the classification
/// threshold from [`crate::classify::Classification`]; Auto/Fixed policies
/// ignore it.
pub fn plan_splits<T: Scalar>(
    ctx: &ProblemContext<T>,
    dominators: &[usize],
    policy: SplitPolicy,
    device: &DeviceConfig,
    work_threshold: u64,
) -> Vec<SplitPlan> {
    dominators
        .iter()
        .map(|&pair| {
            let col_nnz = ctx.pair_thread_work(pair);
            let factor = choose_factor(
                policy,
                device,
                col_nnz,
                ctx.block_products[pair],
                work_threshold,
            );
            SplitPlan::new(pair, col_nnz, factor)
        })
        .collect()
}

/// The mapper array of Figure 5: one entry per piece, naming its original
/// pair, in piece launch order.
pub fn mapper_array(plans: &[SplitPlan]) -> Vec<u32> {
    plans
        .iter()
        .flat_map(|p| std::iter::repeat_n(p.pair as u32, p.pieces.len()))
        .collect()
}

/// Host-side preprocessing cost: copying the dominator vectors into the
/// temporary matrices `A′, B′` plus pointer expansion.
pub fn preprocess_ms<T: Scalar>(ctx: &ProblemContext<T>, plans: &[SplitPlan]) -> f64 {
    let elements: u64 = plans
        .iter()
        .map(|p| (ctx.pair_thread_work(p.pair) + ctx.pair_effective_threads(p.pair)) as u64)
        .sum();
    let copy_ms = elements as f64 * ELEM_BYTES as f64 / (HOST_COPY_GBS * 1e9) * 1e3;
    copy_ms + plans.len() as f64 * HOST_PER_DOMINATOR_MS
}

/// Emits the expansion blocks of one split plan. Each piece reads its slice
/// of the column and the *entire* row vector (shared across pieces — the
/// L2-reuse effect), and writes its slice of the pair's products.
pub fn split_blocks<T: Scalar>(
    ctx: &ProblemContext<T>,
    ws: &Workspace,
    plan: &SplitPlan,
    chat_elem_offset: u64,
    block_size: u32,
    row_major_chat: bool,
) -> Vec<BlockTrace> {
    let pair = plan.pair;
    let nnz_b = ctx.pair_effective_threads(pair) as u64;
    let effective = nnz_b.min(block_size as u64) as u32;
    let coarsen = nnz_b.div_ceil(block_size as u64).max(1);
    let col_off = ws.a_col_offset(ctx, pair);
    let row_off = ws.b_row_offset(ctx, pair);

    plan.pieces
        .iter()
        .map(|&(start, end)| {
            let len = (end - start) as u64;
            let products = len * nnz_b;
            let mut tb = TraceBuilder::new(block_size, effective)
                .compute(len * coarsen)
                .read(
                    ws.a_csc_data,
                    col_off + start as u64 * ELEM_BYTES,
                    len * ELEM_BYTES,
                )
                .read(ws.b_data, row_off, nnz_b * ELEM_BYTES)
                .barriers(1);
            tb = if row_major_chat {
                let chunk = (nnz_b * ELEM_BYTES).min(u32::MAX as u64) as u32;
                tb.scatter_write(
                    ws.chat,
                    0,
                    ctx.intermediate_total.max(1) * ELEM_BYTES,
                    len,
                    chunk,
                )
            } else {
                tb.write(
                    ws.chat,
                    (chat_elem_offset + start as u64 * nnz_b) * ELEM_BYTES,
                    products * ELEM_BYTES,
                )
            };
            tb.build()
        })
        .collect()
}

/// Builds an expansion launch containing **only** the dominator blocks,
/// split at a fixed factor — the Figure 11/12 experiment ("the execution
/// time of dominator blocks is only measured to show the effect of
/// block-splitting"). `factor = 1` reproduces the unsplit baseline.
pub fn dominator_only_launch<T: Scalar>(
    ctx: &ProblemContext<T>,
    ws: &Workspace,
    dominators: &[usize],
    factor: u32,
    block_size: u32,
) -> br_gpu_sim::trace::KernelLaunch {
    let chat_offsets = ctx.chat_block_offsets();
    let mut blocks = Vec::new();
    for &pair in dominators {
        let plan = SplitPlan::new(pair, ctx.pair_thread_work(pair), factor);
        blocks.extend(split_blocks(
            ctx,
            ws,
            &plan,
            chat_offsets[pair],
            block_size,
            false,
        ));
    }
    br_gpu_sim::trace::KernelLaunch::new(format!("dominators-split{factor}"), blocks)
}

#[cfg(test)]
mod tests {
    use super::*;
    use br_sparse::CsrMatrix;

    #[test]
    fn pieces_partition_the_column_exactly() {
        for (nnz, factor) in [(100, 8), (7, 4), (3, 8), (1, 64), (1000, 32)] {
            let plan = SplitPlan::new(0, nnz, factor);
            // coverage: consecutive, disjoint, total = nnz
            let mut cursor = 0usize;
            for &(s, e) in &plan.pieces {
                assert_eq!(s, cursor);
                assert!(e > s);
                cursor = e;
            }
            assert_eq!(cursor, nnz);
            assert!(plan.pieces.len() <= factor as usize);
        }
    }

    #[test]
    fn auto_factor_spreads_over_all_sms() {
        let dev = DeviceConfig::titan_xp(); // 30 SMs
        let f = choose_factor(SplitPolicy::Auto, &dev, 1_000_000, 1 << 30, 1 << 20);
        assert_eq!(f, 64); // next_pow2(30) = 32, doubled
                           // tiny columns cannot split beyond their element count
        assert!(choose_factor(SplitPolicy::Auto, &dev, 3, 1 << 30, 1 << 20) <= 4);
    }

    #[test]
    fn fixed_factor_rounds_to_power_of_two() {
        let dev = DeviceConfig::titan_xp();
        assert_eq!(choose_factor(SplitPolicy::Fixed(6), &dev, 1 << 20, 0, 1), 8);
        assert_eq!(choose_factor(SplitPolicy::Fixed(1), &dev, 1 << 20, 0, 1), 1);
    }

    #[test]
    fn greedy_factor_scales_with_pair_workload() {
        let dev = DeviceConfig::titan_xp();
        // Pair barely over the threshold: the SM count dominates.
        let light = choose_factor(SplitPolicy::Greedy, &dev, 1 << 20, 2_000, 1_000);
        assert_eq!(light, 32); // next_pow2(30)
                               // Pair 1000x over the threshold: work dominates.
        let heavy = choose_factor(SplitPolicy::Greedy, &dev, 1 << 20, 1_000_000, 1_000);
        assert_eq!(heavy, 1024);
        // Still capped by column size.
        let capped = choose_factor(SplitPolicy::Greedy, &dev, 10, 1_000_000, 1_000);
        assert!(capped <= 16);
    }

    #[test]
    fn mapper_tracks_piece_to_pair() {
        let plans = vec![SplitPlan::new(5, 10, 2), SplitPlan::new(9, 6, 4)];
        let mapper = mapper_array(&plans);
        assert_eq!(mapper, vec![5, 5, 9, 9, 9, 9]);
    }

    fn arrow_ctx() -> ProblemContext<f64> {
        // Column 0 of A is dense (dominator pair 0), B = A.
        let n = 64usize;
        let mut ptr = vec![0usize];
        let mut idx = Vec::new();
        let mut val = Vec::new();
        for r in 0..n {
            idx.push(0u32);
            val.push(1.0);
            if r == 0 {
                for c in 1..n as u32 {
                    idx.push(c);
                    val.push(1.0);
                }
            }
            ptr.push(idx.len());
        }
        let a = CsrMatrix::try_new(n, n, ptr, idx, val).unwrap();
        ProblemContext::new(&a, &a).unwrap()
    }

    #[test]
    fn split_blocks_conserve_products_and_share_the_row() {
        let ctx = arrow_ctx();
        let ws = Workspace::for_context(&ctx);
        let plan = SplitPlan::new(0, ctx.pair_thread_work(0), 8);
        let blocks = split_blocks(&ctx, &ws, &plan, 0, 256, false);
        assert_eq!(blocks.len(), 8);
        let total_written: u64 = blocks.iter().map(|b| b.bytes_written()).sum();
        assert_eq!(total_written, ctx.block_products[0] * ELEM_BYTES);
        // every piece reads the full row vector at the same offset
        let row_reads: Vec<_> = blocks
            .iter()
            .map(|b| {
                b.segments
                    .iter()
                    .find(|s| s.region == ws.b_data)
                    .expect("row read")
                    .offset
            })
            .collect();
        assert!(row_reads.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn preprocess_cost_scales_with_dominator_size() {
        let ctx = arrow_ctx();
        let small = vec![SplitPlan::new(0, 10, 2)];
        let big = vec![SplitPlan::new(0, ctx.pair_thread_work(0), 32)];
        assert!(preprocess_ms(&ctx, &big) >= preprocess_ms(&ctx, &small));
        assert!(preprocess_ms(&ctx, &[]) == 0.0);
    }
}
