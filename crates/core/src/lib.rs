//! # block-reorganizer — the paper's contribution
//!
//! The **Block Reorganizer** (Lee et al., ICDE 2020) is an optimization pass
//! over outer-product spGEMM with three techniques:
//!
//! 1. **Workload classification** ([`classify`]) — precalculate per-pair
//!    workloads `nnz(a₌ᵢ)·nnz(bᵢ₌)` and bin pairs into *dominators*,
//!    *normal* blocks, and *low performers* (< 32 effective threads).
//! 2. **B-Splitting** ([`split`]) — split each dominator's column vector
//!    into `2ⁿ` pieces via pointer expansion plus a mapper array, spreading
//!    one overloaded block over many SMs and letting the divided blocks
//!    share (and therefore L2-hit) the same row vector.
//! 3. **B-Gathering** ([`gather`]) — compact underloaded blocks into
//!    micro-blocks and pack `32/2ⁿ` of them into one warp-sized block,
//!    restoring lock-step lane utilization and latency hiding.
//! 4. **B-Limiting** ([`limit`]) — during the merge, allocate extra shared
//!    memory to blocks merging long rows so fewer of them co-reside per SM,
//!    trading warp occupancy for L2 bandwidth headroom.
//!
//! [`pass::BlockReorganizer`] runs the full pipeline (precalculation →
//! classification → reorganized expansion → limited merge) on the simulated
//! GPU and returns both the numeric result and per-phase profiles;
//! [`ablate`] reruns it with each technique toggled for Figure 10.
//! [`plan::ReorgPlan`] factors all structure-dependent preprocessing into a
//! reusable, serializable artifact so a serving layer (`br-service`) can
//! cache it and skip the analysis on repeated multiplications.
//!
//! Extensions beyond the paper: [`report::WorkloadReport`] (the Figure 4
//! bins, inspectable before running anything), [`classify::auto_alpha`]
//! (data-driven dominator threshold), [`config::SplitPolicy::Greedy`]
//! (the per-vector factor selection the paper sketches), [`mod@tune`]
//! (per-matrix configuration search over the simulator), and
//! [`mod@reorder`] (deterministic row-reordering strategies — degree,
//! RCM-style, structure-hash clustering — planned once and replayed from
//! the cached plan, with the output un-permuted bit-identically).

#![warn(missing_docs)]

pub mod ablate;
pub mod classify;
pub mod config;
pub mod gather;
pub mod limit;
pub mod pass;
pub mod plan;
pub mod reorder;
pub mod report;
pub mod split;
pub mod tune;

pub use ablate::{ablation, AblationReport};
pub use classify::{Classification, WorkloadClass};
pub use config::ReorganizerConfig;
pub use pass::{BlockReorganizer, ReorganizerRun};
pub use plan::{PlanMode, ReorgPlan};
pub use reorder::{Permutation, ReorderParseError, ReorderStrategy};
pub use report::WorkloadReport;
pub use tune::{tune, TuneResult};
