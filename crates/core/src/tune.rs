//! Configuration auto-tuner.
//!
//! The paper repeatedly notes that its constants resist a single optimal
//! choice — "due to irregularity of sparse matrices, it is difficult to
//! identify the optimal factor that can be applied to all datasets", "as
//! the distribution of matrices varies highly, it is difficult to find an
//! optimal point for each matrix" — and settles for fixed values. With a
//! simulator in the loop we can do better: [`tune`] searches a small,
//! structured grid of `(α, splitting policy, limiting units)` and returns
//! the fastest configuration for *this* matrix on *this* device.
//!
//! The search is coordinate descent over the three knobs (each axis swept
//! around the incumbent), which covers the grid in
//! `O(|α| + |policy| + |units|)` simulated runs instead of the full product.

use br_gpu_sim::device::DeviceConfig;
use br_sparse::{Result, Scalar};
use br_spgemm::context::ProblemContext;

use crate::classify::auto_alpha;
use crate::config::{ReorganizerConfig, SplitPolicy};
use crate::pass::BlockReorganizer;

/// Outcome of a tuning session.
#[derive(Debug, Clone)]
pub struct TuneResult {
    /// The best configuration found.
    pub config: ReorganizerConfig,
    /// Its simulated time in ms.
    pub best_ms: f64,
    /// Simulated time of the default configuration, for reference.
    pub default_ms: f64,
    /// Number of simulated runs spent.
    pub evaluations: usize,
}

impl TuneResult {
    /// Speedup of the tuned configuration over the default one.
    pub fn gain(&self) -> f64 {
        if self.best_ms <= 0.0 {
            1.0
        } else {
            self.default_ms / self.best_ms
        }
    }
}

const ALPHAS: [f64; 5] = [4.0, 8.0, 16.0, 32.0, 64.0];
const POLICIES: [SplitPolicy; 3] = [
    SplitPolicy::Auto,
    SplitPolicy::Greedy,
    SplitPolicy::Fixed(32),
];
const UNITS: [u32; 4] = [0, 2, 4, 7];

/// Tunes the reorganizer for one problem/device by coordinate descent,
/// starting from the default configuration with a data-driven α.
pub fn tune<T: Scalar>(ctx: &ProblemContext<T>, device: &DeviceConfig) -> Result<TuneResult> {
    let mut evals = 0usize;
    let mut time_of = |cfg: ReorganizerConfig| -> Result<f64> {
        evals += 1;
        Ok(BlockReorganizer::new(cfg)
            .multiply_ctx(ctx, device)?
            .total_ms)
    };

    let default_ms = time_of(ReorganizerConfig::default())?;
    let mut best = ReorganizerConfig {
        alpha: auto_alpha(ctx),
        ..Default::default()
    };
    let mut best_ms = time_of(best)?;

    // Axis 1: α.
    for alpha in ALPHAS {
        let cfg = ReorganizerConfig { alpha, ..best };
        let ms = time_of(cfg)?;
        if ms < best_ms {
            best_ms = ms;
            best = cfg;
        }
    }
    // Axis 2: splitting policy.
    for policy in POLICIES {
        let cfg = ReorganizerConfig {
            split_policy: policy,
            ..best
        };
        let ms = time_of(cfg)?;
        if ms < best_ms {
            best_ms = ms;
            best = cfg;
        }
    }
    // Axis 3: limiting factor.
    for units in UNITS {
        let cfg = ReorganizerConfig {
            limiting_units: units,
            enable_limit: units > 0,
            ..best
        };
        let ms = time_of(cfg)?;
        if ms < best_ms {
            best_ms = ms;
            best = cfg;
        }
    }

    // Never return something worse than the default.
    if default_ms < best_ms {
        best = ReorganizerConfig::default();
        best_ms = default_ms;
    }
    Ok(TuneResult {
        config: best,
        best_ms,
        default_ms,
        evaluations: evals,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use br_datasets::chung_lu::{chung_lu, ChungLuConfig};
    use br_sparse::ops::spgemm_gustavson;

    fn ctx() -> ProblemContext<f64> {
        let a = chung_lu(ChungLuConfig {
            gamma: 2.0,
            ..ChungLuConfig::social(2000, 14_000, 33)
        })
        .to_csr();
        ProblemContext::new(&a, &a).unwrap()
    }

    #[test]
    fn tuned_config_is_never_worse_than_default() {
        let ctx = ctx();
        let dev = DeviceConfig::titan_xp();
        let r = tune(&ctx, &dev).unwrap();
        assert!(r.best_ms <= r.default_ms * (1.0 + 1e-9));
        assert!(r.gain() >= 1.0);
        assert!(r.evaluations >= ALPHAS.len() + POLICIES.len() + UNITS.len());
    }

    #[test]
    fn tuned_config_still_computes_the_right_answer() {
        let ctx = ctx();
        let dev = DeviceConfig::titan_xp();
        let r = tune(&ctx, &dev).unwrap();
        let run = BlockReorganizer::new(r.config)
            .multiply_ctx(&ctx, &dev)
            .unwrap();
        let oracle = spgemm_gustavson(&ctx.a, &ctx.b).unwrap();
        assert!(run.result.approx_eq(&oracle, 1e-9));
        // And reproduces the reported time.
        assert!((run.total_ms - r.best_ms).abs() < 1e-9);
    }

    #[test]
    fn tuning_is_deterministic() {
        let ctx = ctx();
        let dev = DeviceConfig::titan_xp();
        let a = tune(&ctx, &dev).unwrap();
        let b = tune(&ctx, &dev).unwrap();
        assert_eq!(a.config, b.config);
        assert_eq!(a.best_ms, b.best_ms);
    }
}
