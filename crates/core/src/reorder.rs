//! Deterministic row-reordering strategies for the planning stage.
//!
//! The Block Reorganizer restructures *work* (splitting, gathering,
//! limiting) but runs over whatever row order the input shipped with —
//! block scheduling and L2 behavior are at the mercy of the data layout.
//! Following Islam & Dai's matrix-reordering/cluster-wise-computation
//! line, this module reorders the **rows of A** before planning so that
//! similar rows (and therefore similar merge blocks) are adjacent in the
//! launch stream. Because only rows move — never the accumulation order
//! *within* a row — the multiply stays bit-for-bit identical once the
//! output is un-permuted: row `i` of the permuted product is exactly row
//! `forward[i]` of the original product, computed by the same kernel in
//! the same generation order.
//!
//! Everything here is a pure function of A's **structure** (never its
//! values), so a [`Permutation`] can live inside a cached, serializable
//! `ReorgPlan` and be replayed on every multiplication that hits the
//! plan: permute A, run the planned pipeline over the permuted problem,
//! un-permute the rows of C on the way out.
//!
//! Three concrete strategies (plus `none` and an `auto` selector):
//!
//! * **degree** — rows sorted by nnz descending. Longest-processing-time
//!   ordering for the one-block-per-row merge launch: the greedy list
//!   scheduler sees the heavy blocks first and balances them across SMs
//!   instead of tail-loading whichever SM drew them last.
//! * **rcm** — reverse Cuthill–McKee-style BFS bandwidth reduction:
//!   per-component breadth-first traversal from a minimum-degree seed,
//!   neighbors visited degree-ascending, final order reversed. Rows that
//!   touch the same columns end up close together, so consecutive merge
//!   blocks re-hit the same B rows in L2.
//! * **cluster** — a cheap clustering heuristic over row-structure
//!   hashes: each row is keyed by an FNV-1a hash of its bucketed column
//!   pattern (`j >> 3`), and rows sort by `(hash, index)`. Rows with
//!   identical or near-identical sparsity patterns collapse into runs,
//!   approximating cluster-wise computation without a similarity matrix.

use std::collections::VecDeque;
use std::fmt;
use std::sync::OnceLock;

use br_obs::Counter;
use br_sparse::{CsrMatrix, Scalar};
use serde::{Deserialize, Serialize};

/// FNV-1a offset basis (the same constants the plan fingerprints use).
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv_mix(hash: u64, value: u64) -> u64 {
    (hash ^ value).wrapping_mul(FNV_PRIME)
}

/// Which row ordering the planner applies to A before analysis.
///
/// `None` is the default and keeps every plan byte-identical to the
/// pre-reordering pipeline; `Auto` resolves to a concrete strategy per
/// problem from sampled structure (see [`auto_select`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ReorderStrategy {
    /// Keep the input row order (the historical pipeline, byte-identical).
    #[default]
    None,
    /// Rows by nnz descending — LPT ordering for the merge launch.
    Degree,
    /// Reverse Cuthill–McKee-style BFS bandwidth reduction.
    Rcm,
    /// Row-structure-hash clustering (rows with similar patterns adjacent).
    Cluster,
    /// Pick one of the above per problem from sampled structure.
    Auto,
}

/// Every spelling [`ReorderStrategy::parse`] accepts, for error messages.
pub const REORDER_CHOICES: &str = "none, degree, rcm, cluster, auto";

/// Typed rejection from [`ReorderStrategy::parse`]: the spelling did not
/// name a known strategy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReorderParseError {
    /// Not one of the spellings in [`REORDER_CHOICES`].
    Unknown(String),
}

impl fmt::Display for ReorderParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReorderParseError::Unknown(text) => write!(
                f,
                "unknown reorder strategy {text:?}; valid strategies: {REORDER_CHOICES}"
            ),
        }
    }
}

impl std::error::Error for ReorderParseError {}

impl ReorderStrategy {
    /// Parses the CLI spelling (case-insensitive): `none`, `degree`,
    /// `rcm`, `cluster`, or `auto`.
    pub fn parse(text: &str) -> std::result::Result<ReorderStrategy, ReorderParseError> {
        match text.trim().to_ascii_lowercase().as_str() {
            "none" => Ok(ReorderStrategy::None),
            "degree" => Ok(ReorderStrategy::Degree),
            "rcm" => Ok(ReorderStrategy::Rcm),
            "cluster" => Ok(ReorderStrategy::Cluster),
            "auto" => Ok(ReorderStrategy::Auto),
            _ => Err(ReorderParseError::Unknown(text.to_string())),
        }
    }

    /// The canonical lowercase spelling (also the obs label value).
    pub fn name(self) -> &'static str {
        match self {
            ReorderStrategy::None => "none",
            ReorderStrategy::Degree => "degree",
            ReorderStrategy::Rcm => "rcm",
            ReorderStrategy::Cluster => "cluster",
            ReorderStrategy::Auto => "auto",
        }
    }

    /// Cache-key fingerprint. `None` maps to 0 so pre-reordering plan
    /// keys keep their exact historical value; every other strategy
    /// (including `Auto`, which is keyed as *requested* — its per-problem
    /// resolution is deterministic, so the key stays stable) hashes its
    /// name so no two strategies alias.
    pub fn fingerprint(self) -> u64 {
        match self {
            ReorderStrategy::None => 0,
            other => {
                let mut hash = FNV_OFFSET;
                for byte in other.name().bytes() {
                    hash = fnv_mix(hash, byte as u64);
                }
                hash
            }
        }
    }
}

/// A row permutation with both directions materialized, serializable so
/// it can live inside a cached `ReorgPlan`.
///
/// The **forward** direction is the gather convention used by
/// `CsrMatrix::permute_rows`: row `i` of the permuted matrix is row
/// `forward[i]` of the original. The **inverse** undoes it
/// (`inverse[forward[i]] = i`), so permuting the permuted product's rows
/// by `inverse` restores the original row order exactly.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Permutation {
    forward: Vec<u32>,
    inverse: Vec<u32>,
}

impl Permutation {
    /// Builds the pair from the forward order, which must be a
    /// permutation of `0..forward.len()`.
    pub fn from_forward(forward: Vec<u32>) -> Permutation {
        let mut inverse = vec![u32::MAX; forward.len()];
        for (i, &r) in forward.iter().enumerate() {
            debug_assert!(
                (r as usize) < forward.len() && inverse[r as usize] == u32::MAX,
                "forward order must be a permutation of 0..n"
            );
            inverse[r as usize] = i as u32;
        }
        Permutation { forward, inverse }
    }

    /// The identity permutation over `n` rows.
    pub fn identity(n: usize) -> Permutation {
        let forward: Vec<u32> = (0..n as u32).collect();
        Permutation {
            inverse: forward.clone(),
            forward,
        }
    }

    /// True when applying this permutation is a no-op.
    pub fn is_identity(&self) -> bool {
        self.forward
            .iter()
            .enumerate()
            .all(|(i, &r)| r as usize == i)
    }

    /// Number of rows the permutation covers.
    pub fn len(&self) -> usize {
        self.forward.len()
    }

    /// True for the zero-row permutation.
    pub fn is_empty(&self) -> bool {
        self.forward.is_empty()
    }

    /// The gather order: row `i` of the permuted matrix is row
    /// `forward()[i]` of the original.
    pub fn forward(&self) -> &[u32] {
        &self.forward
    }

    /// The scatter-back order: permuting the permuted rows by this
    /// restores the original order.
    pub fn inverse(&self) -> &[u32] {
        &self.inverse
    }
}

/// Rows by nnz descending, ties broken by original index ascending — the
/// longest-processing-time order for the one-block-per-row merge launch.
pub fn degree_order<T: Scalar>(a: &CsrMatrix<T>) -> Vec<u32> {
    let mut order: Vec<u32> = (0..a.nrows() as u32).collect();
    order.sort_unstable_by_key(|&r| (std::cmp::Reverse(a.row_nnz(r as usize)), r));
    order
}

/// Reverse Cuthill–McKee-style order over A's row structure. Each
/// component is traversed breadth-first from its minimum-degree row
/// (ties by index); a row's neighbors are the rows named by its column
/// indices (columns `>= nrows` have no row counterpart and are skipped),
/// visited degree-ascending; the concatenated visit order is reversed.
/// Fully deterministic — no degree ties are left to hash or pointer
/// order.
pub fn rcm_order<T: Scalar>(a: &CsrMatrix<T>) -> Vec<u32> {
    let n = a.nrows();
    let mut order = Vec::with_capacity(n);
    let mut visited = vec![false; n];
    let mut seeds: Vec<u32> = (0..n as u32).collect();
    seeds.sort_unstable_by_key(|&r| (a.row_nnz(r as usize), r));
    let mut queue = VecDeque::new();
    let mut neighbors: Vec<u32> = Vec::new();
    for &seed in &seeds {
        if visited[seed as usize] {
            continue;
        }
        visited[seed as usize] = true;
        queue.push_back(seed);
        while let Some(r) = queue.pop_front() {
            order.push(r);
            neighbors.clear();
            let (cols, _) = a.row(r as usize);
            for &c in cols {
                if (c as usize) < n && !visited[c as usize] {
                    visited[c as usize] = true;
                    neighbors.push(c);
                }
            }
            neighbors.sort_unstable_by_key(|&c| (a.row_nnz(c as usize), c));
            queue.extend(neighbors.iter().copied());
        }
    }
    order.reverse();
    order
}

/// Rows sorted by an FNV-1a hash of their bucketed column pattern
/// (`j >> 3`), ties by index — rows with identical or near-identical
/// sparsity patterns collapse into adjacent runs, a cheap stand-in for
/// cluster-wise computation.
pub fn cluster_order<T: Scalar>(a: &CsrMatrix<T>) -> Vec<u32> {
    let mut keyed: Vec<(u64, u32)> = (0..a.nrows())
        .map(|r| {
            let mut hash = FNV_OFFSET;
            let (cols, _) = a.row(r);
            for &c in cols {
                hash = fnv_mix(hash, (c >> 3) as u64);
            }
            (hash, r as u32)
        })
        .collect();
    keyed.sort_unstable();
    keyed.into_iter().map(|(_, r)| r).collect()
}

/// Structural bandwidth of A: the maximum `|i - j|` over stored entries.
/// Purely informational (the before/after gauges) — row-only permutations
/// change it even though classic RCM would relabel columns too.
pub fn bandwidth<T: Scalar>(a: &CsrMatrix<T>) -> u64 {
    bandwidth_under(a, None)
}

/// Bandwidth of `a.permute_rows(order)` without materializing the
/// permuted matrix: row `i` of the permuted matrix is row `order[i]`.
fn bandwidth_under<T: Scalar>(a: &CsrMatrix<T>, order: Option<&[u32]>) -> u64 {
    let mut widest = 0u64;
    for i in 0..a.nrows() {
        let src = order.map_or(i, |o| o[i] as usize);
        let (cols, _) = a.row(src);
        for &c in cols {
            widest = widest.max((i as i64 - c as i64).unsigned_abs());
        }
    }
    widest
}

/// splitmix64 — the estimator's sampling PRNG, reproduced locally so the
/// auto-selector's row sample is seeded by structure alone.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Number of rows the auto-selector samples.
const AUTO_SAMPLES: usize = 64;
/// A sampled max degree at least this many times the sampled mean reads
/// as a skewed (power-law) problem, where LPT balancing wins.
const AUTO_SKEW_RATIO: u64 = 4;

/// Picks a concrete strategy for `a` from sampled structure, seeded by
/// the shape alone so the choice is deterministic per problem:
///
/// * empty structure → `None` (nothing to gain);
/// * skewed degrees (sampled max ≥ 4× sampled mean) → `Degree`, because
///   the merge launch is LPT-sensitive exactly when a few rows dominate;
/// * square with a wide band (> nrows/4) → `Rcm`, the bandwidth reducer;
/// * otherwise → `Cluster`, the pattern grouper.
pub fn auto_select<T: Scalar>(a: &CsrMatrix<T>) -> ReorderStrategy {
    let n = a.nrows();
    if n == 0 || a.nnz() == 0 {
        return ReorderStrategy::None;
    }
    let mut state = fnv_mix(fnv_mix(FNV_OFFSET, n as u64), a.nnz() as u64);
    let samples = AUTO_SAMPLES.min(n);
    let mut max_degree = 0u64;
    let mut total = 0u64;
    for _ in 0..samples {
        let r = (splitmix64(&mut state) % n as u64) as usize;
        let degree = a.row_nnz(r) as u64;
        max_degree = max_degree.max(degree);
        total += degree;
    }
    let mean = (total / samples as u64).max(1);
    if max_degree >= AUTO_SKEW_RATIO * mean {
        ReorderStrategy::Degree
    } else if a.nrows() == a.ncols() && bandwidth(a) > (n as u64) / 4 {
        ReorderStrategy::Rcm
    } else {
        ReorderStrategy::Cluster
    }
}

/// Reorder instrument handles, registered as one unit so every strategy
/// cell exists as soon as any of them is touched — exports stay
/// byte-deterministic whichever strategies a run exercises.
struct ReorderInstruments {
    /// Permutations planned, by resolved concrete strategy (indexed
    /// `None`/`Degree`/`Rcm`/`Cluster`; `Auto` always resolves first).
    plans: [Counter; 4],
}

fn reorder_instruments() -> &'static ReorderInstruments {
    static INSTRUMENTS: OnceLock<ReorderInstruments> = OnceLock::new();
    INSTRUMENTS.get_or_init(|| {
        let reg = br_obs::global();
        let help = "Plan-time row reorderings, by resolved strategy.";
        ReorderInstruments {
            plans: [
                reg.counter("br_reorder_plans_total", help, &[("strategy", "none")]),
                reg.counter("br_reorder_plans_total", help, &[("strategy", "degree")]),
                reg.counter("br_reorder_plans_total", help, &[("strategy", "rcm")]),
                reg.counter("br_reorder_plans_total", help, &[("strategy", "cluster")]),
            ],
        }
    })
}

/// Structural bandwidth before reordering. Which problem wrote last
/// depends on scheduling, so the gauge is timing-flagged.
fn bandwidth_before_gauge() -> &'static br_obs::Gauge {
    static GAUGE: OnceLock<br_obs::Gauge> = OnceLock::new();
    GAUGE.get_or_init(|| {
        br_obs::global().timing_gauge(
            "br_reorder_bandwidth_before",
            "Structural bandwidth of A before reordering (last plan built).",
            &[],
        )
    })
}

/// Structural bandwidth after reordering; timing-flagged like `before`.
fn bandwidth_after_gauge() -> &'static br_obs::Gauge {
    static GAUGE: OnceLock<br_obs::Gauge> = OnceLock::new();
    GAUGE.get_or_init(|| {
        br_obs::global().timing_gauge(
            "br_reorder_bandwidth_after",
            "Structural bandwidth of A after reordering (last plan built).",
            &[],
        )
    })
}

/// Pre-registers every `br_reorder_*` instrument cell (the per-strategy
/// plan counter and both bandwidth gauges) without recording anything,
/// so metric exports carry the same cell set whether or not a run built
/// any reordered plan.
pub fn register_reorder_instruments() {
    let _ = reorder_instruments();
    let _ = bandwidth_before_gauge();
    let _ = bandwidth_after_gauge();
}

/// Resolves `strategy` (running [`auto_select`] for `Auto`), builds the
/// permutation over A's row structure, and records the reorder
/// instruments. Returns the resolved strategy plus the permutation —
/// `None` both for strategy `none` and whenever the chosen order turns
/// out to be the identity (already-sorted input), so default-path plans
/// carry no permutation at all.
pub fn plan_permutation<T: Scalar>(
    a: &CsrMatrix<T>,
    strategy: ReorderStrategy,
) -> (ReorderStrategy, Option<Permutation>) {
    let resolved = match strategy {
        ReorderStrategy::Auto => auto_select(a),
        concrete => concrete,
    };
    let _span = br_obs::global().span("reorder_build");
    reorder_instruments().plans[resolved as usize].add(1);
    let order = match resolved {
        ReorderStrategy::None => return (resolved, None),
        ReorderStrategy::Degree => degree_order(a),
        ReorderStrategy::Rcm => rcm_order(a),
        ReorderStrategy::Cluster => cluster_order(a),
        ReorderStrategy::Auto => unreachable!("auto resolves before dispatch"),
    };
    bandwidth_before_gauge().set(bandwidth(a) as f64);
    bandwidth_after_gauge().set(bandwidth_under(a, Some(&order)) as f64);
    let permutation = Permutation::from_forward(order);
    if permutation.is_identity() {
        (resolved, None)
    } else {
        (resolved, Some(permutation))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use br_sparse::CooMatrix;

    fn sample() -> CsrMatrix<f64> {
        // Row degrees 3, 1, 0, 2 over a 4x4 structure.
        let mut coo = CooMatrix::new(4, 4);
        for &(r, c) in &[(0, 0), (0, 2), (0, 3), (1, 1), (3, 0), (3, 3)] {
            coo.push(r, c, 1.0).unwrap();
        }
        coo.to_csr()
    }

    #[test]
    fn parse_accepts_every_choice_and_rejects_garbage() {
        for (text, want) in [
            ("none", ReorderStrategy::None),
            ("degree", ReorderStrategy::Degree),
            ("RCM", ReorderStrategy::Rcm),
            (" cluster ", ReorderStrategy::Cluster),
            ("auto", ReorderStrategy::Auto),
        ] {
            assert_eq!(ReorderStrategy::parse(text).unwrap(), want);
        }
        let err = ReorderStrategy::parse("degre").unwrap_err();
        assert_eq!(err, ReorderParseError::Unknown("degre".to_string()));
        assert!(err.to_string().contains("valid strategies: none, degree"));
    }

    #[test]
    fn fingerprints_keep_none_at_zero_and_never_alias() {
        assert_eq!(ReorderStrategy::None.fingerprint(), 0);
        let prints: Vec<u64> = [
            ReorderStrategy::Degree,
            ReorderStrategy::Rcm,
            ReorderStrategy::Cluster,
            ReorderStrategy::Auto,
        ]
        .iter()
        .map(|s| s.fingerprint())
        .collect();
        for (i, &p) in prints.iter().enumerate() {
            assert_ne!(p, 0);
            for &q in &prints[i + 1..] {
                assert_ne!(p, q);
            }
        }
    }

    #[test]
    fn permutation_inverse_round_trips() {
        let p = Permutation::from_forward(vec![2, 0, 3, 1]);
        for i in 0..4 {
            assert_eq!(p.inverse()[p.forward()[i] as usize], i as u32);
        }
        assert!(!p.is_identity());
        assert!(Permutation::identity(5).is_identity());
        assert!(Permutation::identity(0).is_identity());
    }

    #[test]
    fn degree_order_is_nnz_descending_with_index_ties() {
        let a = sample();
        assert_eq!(degree_order(&a), vec![0, 3, 1, 2]);
        // All-equal degrees keep the input order.
        let i = CsrMatrix::<f64>::identity(4);
        assert_eq!(degree_order(&i), vec![0, 1, 2, 3]);
    }

    #[test]
    fn orders_are_permutations_of_all_rows() {
        let a = sample();
        for order in [degree_order(&a), rcm_order(&a), cluster_order(&a)] {
            let mut sorted = order.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, vec![0, 1, 2, 3]);
        }
    }

    #[test]
    fn rcm_reduces_bandwidth_on_a_banded_matrix_in_reverse_order() {
        // An arrowhead matrix: row 0 touches everyone. RCM-style BFS from
        // the min-degree corner pushes the hub to the far end.
        let n = 8;
        let mut coo = CooMatrix::new(n as usize, n as usize);
        for c in 0..n {
            coo.push(0, c, 1.0).unwrap();
        }
        for r in 1..n {
            coo.push(r, r, 1.0).unwrap();
            coo.push(r, 0, 1.0).unwrap();
        }
        let a = coo.to_csr();
        let order = rcm_order(&a);
        // BFS starts from a min-degree spoke, so the hub (row 0) is
        // visited early and the reversal pushes it toward the tail.
        let hub_at = order.iter().position(|&r| r == 0).unwrap();
        assert!(hub_at >= n as usize / 2, "hub must sit in the tail half");
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..n).collect::<Vec<_>>());
    }

    #[test]
    fn cluster_order_groups_identical_row_patterns() {
        let mut coo = CooMatrix::new(6, 16);
        // Rows 0, 3, 5 share one pattern; rows 1, 4 share another.
        for &r in &[0, 3, 5] {
            coo.push(r, 1, 1.0).unwrap();
            coo.push(r, 9, 1.0).unwrap();
        }
        for &r in &[1, 4] {
            coo.push(r, 12, 1.0).unwrap();
        }
        coo.push(2, 5, 1.0).unwrap();
        let order = cluster_order(&coo.to_csr());
        let pos = |r: u32| order.iter().position(|&x| x == r).unwrap();
        let spread = |rows: &[u32]| {
            rows.iter().map(|&r| pos(r)).max().unwrap()
                - rows.iter().map(|&r| pos(r)).min().unwrap()
        };
        assert_eq!(spread(&[0, 3, 5]), 2, "identical rows must be adjacent");
        assert_eq!(spread(&[1, 4]), 1, "identical rows must be adjacent");
    }

    #[test]
    fn bandwidth_matches_hand_computation() {
        let a = sample();
        // Widest entry: (0,3) or (3,0) → 3.
        assert_eq!(bandwidth(&a), 3);
        assert_eq!(bandwidth(&CsrMatrix::<f64>::identity(7)), 0);
        assert_eq!(bandwidth(&CsrMatrix::<f64>::zeros(3, 3)), 0);
    }

    #[test]
    fn auto_select_is_deterministic_and_handles_degenerates() {
        let empty = CsrMatrix::<f64>::zeros(0, 0);
        assert_eq!(auto_select(&empty), ReorderStrategy::None);
        let blank = CsrMatrix::<f64>::zeros(5, 5);
        assert_eq!(auto_select(&blank), ReorderStrategy::None);
        let a = sample();
        assert_eq!(auto_select(&a), auto_select(&a));
    }

    #[test]
    fn plan_permutation_resolves_none_and_identity_to_no_permutation() {
        let a = sample();
        let (resolved, perm) = plan_permutation(&a, ReorderStrategy::None);
        assert_eq!(resolved, ReorderStrategy::None);
        assert!(perm.is_none());
        // Identity input under degree sort (all-equal degrees) stays put.
        let i = CsrMatrix::<f64>::identity(4);
        let (resolved, perm) = plan_permutation(&i, ReorderStrategy::Degree);
        assert_eq!(resolved, ReorderStrategy::Degree);
        assert!(perm.is_none(), "already-sorted input needs no permutation");
    }

    #[test]
    fn plan_permutation_resolves_auto_to_a_concrete_strategy() {
        let a = sample();
        let (resolved, _) = plan_permutation(&a, ReorderStrategy::Auto);
        assert_ne!(resolved, ReorderStrategy::Auto);
    }

    #[test]
    fn serde_round_trips_strategy_and_permutation() {
        let p = Permutation::from_forward(vec![1, 2, 0]);
        let json = serde_json::to_string(&p).unwrap();
        assert_eq!(serde_json::from_str::<Permutation>(&json).unwrap(), p);
        for s in [
            ReorderStrategy::None,
            ReorderStrategy::Degree,
            ReorderStrategy::Rcm,
            ReorderStrategy::Cluster,
            ReorderStrategy::Auto,
        ] {
            let json = serde_json::to_string(&s).unwrap();
            assert_eq!(serde_json::from_str::<ReorderStrategy>(&json).unwrap(), s);
        }
    }
}
