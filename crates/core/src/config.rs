//! Block Reorganizer tuning knobs.

use serde::{Deserialize, Serialize};

/// Bytes of one shared-memory allocation unit used by B-Limiting; the paper
/// "increases the allocated memory by 6144 bytes" per limiting step.
pub const LIMIT_UNIT_BYTES: u32 = 6144;

/// How B-Splitting chooses the per-dominator splitting factor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SplitPolicy {
    /// One factor for all dominators: the smallest power of two that
    /// spreads a dominator over at least every SM of the target device
    /// (Figure 11 shows LBI saturating once the factor reaches the SM
    /// count; larger factors keep helping via L2 reuse, so `Auto` doubles
    /// once more).
    Auto,
    /// A fixed power-of-two factor — used by the Figure 11 sweep.
    Fixed(u32),
    /// The paper's per-vector greedy heuristic ("the nnz of vectors varies,
    /// and the splitting factor for each vector should be selected
    /// carefully ... split into several smaller vectors in a greedy
    /// manner"): each dominator picks the smallest power of two that both
    /// spreads it over every SM *and* shrinks its pieces below the
    /// dominator classification threshold.
    Greedy,
}

/// Configuration of the Block Reorganizer pass.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReorganizerConfig {
    /// Dominator classification multiplier α: a pair is a *dominator* when
    /// its workload exceeds `α × mean block workload`
    /// (`mean = nnz(Ĉ)/#blocks`). Higher α selects fewer dominators — the
    /// paper notes networks with many medium hubs need a stricter cut.
    pub alpha: f64,
    /// Merge-limiting multiplier β: a row is *limited* when its
    /// intermediate-product count exceeds `β × mean row workload`
    /// (paper: "β is currently 10").
    pub beta: f64,
    /// Shared-memory units (× [`LIMIT_UNIT_BYTES`]) added to limited merge
    /// blocks. The paper fixes 4 × 6144 B after the Figure 14 sweep.
    pub limiting_units: u32,
    /// Splitting-factor policy.
    pub split_policy: SplitPolicy,
    /// Thread-block size for normal (non-gathered) expansion and merge.
    pub block_size: u32,
    /// Target size of gathered blocks (the warp size: gathered blocks are
    /// packed to exactly one fully-effective warp).
    pub gather_block: u32,
    /// Enable B-Splitting (ablation toggle).
    pub enable_split: bool,
    /// Enable B-Gathering (ablation toggle).
    pub enable_gather: bool,
    /// Enable B-Limiting (ablation toggle).
    pub enable_limit: bool,
}

impl Default for ReorganizerConfig {
    fn default() -> Self {
        ReorganizerConfig {
            alpha: 16.0,
            beta: 10.0,
            limiting_units: 4,
            split_policy: SplitPolicy::Auto,
            block_size: 256,
            gather_block: 32,
            enable_split: true,
            enable_gather: true,
            enable_limit: true,
        }
    }
}

impl ReorganizerConfig {
    /// Config with only B-Splitting enabled (Figure 10's "B-Splitting" bar).
    pub fn split_only() -> Self {
        ReorganizerConfig {
            enable_gather: false,
            enable_limit: false,
            ..Default::default()
        }
    }

    /// Config with only B-Gathering enabled.
    pub fn gather_only() -> Self {
        ReorganizerConfig {
            enable_split: false,
            enable_limit: false,
            ..Default::default()
        }
    }

    /// Config with only B-Limiting enabled.
    pub fn limit_only() -> Self {
        ReorganizerConfig {
            enable_split: false,
            enable_gather: false,
            ..Default::default()
        }
    }

    /// Extra shared-memory bytes a limited merge block receives.
    pub fn limit_bytes(&self) -> u32 {
        self.limiting_units * LIMIT_UNIT_BYTES
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_constants() {
        let c = ReorganizerConfig::default();
        assert_eq!(c.beta, 10.0);
        assert_eq!(c.limit_bytes(), 4 * 6144);
        assert_eq!(c.gather_block, 32);
        assert!(c.enable_split && c.enable_gather && c.enable_limit);
    }

    #[test]
    fn ablation_configs_toggle_exactly_one_technique() {
        assert!(ReorganizerConfig::split_only().enable_split);
        assert!(!ReorganizerConfig::split_only().enable_gather);
        assert!(!ReorganizerConfig::split_only().enable_limit);
        assert!(ReorganizerConfig::gather_only().enable_gather);
        assert!(!ReorganizerConfig::gather_only().enable_split);
        assert!(ReorganizerConfig::limit_only().enable_limit);
        assert!(!ReorganizerConfig::limit_only().enable_gather);
    }
}
